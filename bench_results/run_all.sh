#!/bin/bash
set -x
export BENCH_SEEDS=5
../build/bench/fig3_time_to_accuracy > fig3.log 2>&1
../build/bench/fig4_edge_count > fig4.log 2>&1
../build/bench/fig5_participation > fig5.log 2>&1
../build/bench/table1_local_epochs > table1.log 2>&1
../build/bench/ablation_mach --task fmnist > ablation.log 2>&1
../build/bench/micro_substrate --benchmark_min_time=0.2s > micro.log 2>&1
echo DONE
