#!/bin/bash
set -x
export BENCH_SEEDS=5
../build/bench/fig4_edge_count > fig4.log 2>&1
../build/bench/fig5_participation > fig5.log 2>&1
../build/bench/ablation_mach --task fmnist > ablation.log 2>&1
../build/bench/ablation_mobility --task mnist > ablation_mobility.log 2>&1
echo DONE2
