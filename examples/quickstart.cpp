// Quickstart: run MACH on the mnist-like task and watch the global model
// converge.
//
//   ./quickstart [--task mnist|fmnist|cifar10] [--steps N] [--seed S]
//
// This walks the full public API surface: experiment presets, sampler
// construction, the simulator run, and the recorded metrics.
#include <iostream>

#include "common/cli.h"
#include "common/log.h"
#include "common/table.h"
#include "core/registry.h"
#include "hfl/experiment.h"

namespace {

mach::data::TaskKind parse_task(const std::string& name) {
  if (name == "mnist") return mach::data::TaskKind::MnistLike;
  if (name == "fmnist") return mach::data::TaskKind::FmnistLike;
  if (name == "cifar10") return mach::data::TaskKind::CifarLike;
  throw std::invalid_argument("unknown task: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  mach::common::CliParser cli(
      "Quickstart: train a hierarchical federated model with MACH sampling.");
  cli.add_flag("task", std::string("mnist"), "learning task: mnist|fmnist|cifar10");
  cli.add_flag("steps", static_cast<std::int64_t>(0),
               "time steps to run (0 = preset horizon)");
  cli.add_flag("seed", static_cast<std::int64_t>(7), "root random seed");
  cli.add_flag("sampler", std::string("mach"),
               "sampler: mach|mach_p|uniform|class_balance|statistical|full");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  auto config = mach::hfl::ExperimentConfig::preset(parse_task(cli.get_string("task")));
  config = config.with_seed(static_cast<std::uint64_t>(cli.get_int("seed")));
  if (cli.get_int("steps") > 0) {
    config.horizon = static_cast<std::size_t>(cli.get_int("steps"));
  }

  std::cout << "Task:      " << mach::data::task_name(config.task) << "\n"
            << "Devices:   " << config.num_devices << " across " << config.num_edges
            << " edges (participation " << config.hfl.participation << ")\n"
            << "Local:     I=" << config.hfl.local_epochs
            << " steps, batch=" << config.hfl.batch_size
            << ", lr=" << config.hfl.learning_rate << "\n"
            << "Cloud:     every T_g=" << config.hfl.cloud_interval << " steps\n"
            << "Horizon:   " << config.horizon << " steps, target accuracy "
            << config.target_accuracy << "\n\n";

  auto sampler = mach::core::make_sampler(cli.get_string("sampler"));
  const auto result = mach::hfl::run_experiment(config, *sampler);

  mach::common::Table table({"t", "test_acc", "test_loss", "train_loss", "devices"});
  for (const auto& p : result.metrics.points()) {
    table.row()
        .cell(p.t)
        .cell(p.test_accuracy, 4)
        .cell(p.test_loss, 4)
        .cell(p.train_loss, 4)
        .cell(p.participants);
  }
  table.print(std::cout);

  std::cout << "\nBest accuracy: " << result.metrics.best_accuracy() << '\n';
  if (result.time_to_target) {
    std::cout << "Reached target " << config.target_accuracy << " at time step "
              << *result.time_to_target << '\n';
  } else {
    std::cout << "Target " << config.target_accuracy << " not reached within "
              << config.horizon << " steps\n";
  }
  return 0;
}
