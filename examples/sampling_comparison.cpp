// Head-to-head comparison of all five sampling algorithms from the paper on
// one learning task — a miniature version of Figure 3.
//
//   ./sampling_comparison [--task mnist|fmnist|cifar10] [--seeds N]
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/registry.h"
#include "hfl/experiment.h"

namespace {

mach::data::TaskKind parse_task(const std::string& name) {
  if (name == "mnist") return mach::data::TaskKind::MnistLike;
  if (name == "fmnist") return mach::data::TaskKind::FmnistLike;
  if (name == "cifar10") return mach::data::TaskKind::CifarLike;
  throw std::invalid_argument("unknown task: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli("Compare MACH against the paper's baseline samplers.");
  cli.add_flag("task", std::string("mnist"), "learning task: mnist|fmnist|cifar10");
  cli.add_flag("seeds", static_cast<std::int64_t>(2), "number of averaged runs");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const auto config = hfl::ExperimentConfig::preset(parse_task(cli.get_string("task")));
  std::vector<std::uint64_t> seeds;
  for (std::int64_t s = 0; s < cli.get_int("seeds"); ++s) {
    seeds.push_back(static_cast<std::uint64_t>(100 + s));
  }

  std::cout << "Task " << data::task_name(config.task) << ": target accuracy "
            << config.target_accuracy << ", horizon " << config.horizon
            << " steps, " << seeds.size() << " seed(s)\n\n";

  common::Table table({"algorithm", "mean steps to target", "reach rate"});
  for (const auto& name : core::paper_algorithms()) {
    const auto result = hfl::averaged_time_to_target(
        config, [&] { return core::make_sampler(name); }, seeds);
    table.row()
        .cell(core::display_name(name))
        .cell(result.mean_steps, 1)
        .cell(result.reach_rate, 2);
    std::cout << core::display_name(name) << " done\n";
  }
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
