// Mobility substrate walkthrough: synthesise a telecom-style metro area,
// cluster base stations into main edges, generate a Markov mobility trace
// for a device population, and report the statistics the HFL simulator
// cares about (dwell time, churn, edge occupancy).
//
//   ./mobility_trace_demo [--devices N] [--stations N] [--edges N]
//                         [--horizon T] [--stay P] [--csv path]
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "mobility/mobility_model.h"
#include "mobility/schedule.h"
#include "mobility/stations.h"

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli("Generate and inspect a synthetic telecom mobility trace.");
  cli.add_flag("devices", static_cast<std::int64_t>(100), "number of mobile devices");
  cli.add_flag("stations", static_cast<std::int64_t>(60), "number of base stations");
  cli.add_flag("edges", static_cast<std::int64_t>(10), "number of main edges (clusters)");
  cli.add_flag("horizon", static_cast<std::int64_t>(200), "trace length in time steps");
  cli.add_flag("stay", 0.8, "per-step probability of staying at the current station");
  cli.add_flag("seed", static_cast<std::int64_t>(42), "random seed");
  cli.add_flag("csv", std::string(""), "optional path for the raw trace CSV");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const auto devices = static_cast<std::size_t>(cli.get_int("devices"));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  mobility::StationLayoutSpec layout;
  layout.num_stations = static_cast<std::size_t>(cli.get_int("stations"));
  auto stations = mobility::generate_stations(layout, seed);
  std::cout << "Generated " << stations.size() << " base stations in a "
            << layout.area_size << "x" << layout.area_size << " area ("
            << layout.num_hotspots << " hotspots)\n";

  const auto clustering = mobility::cluster_stations(
      stations, static_cast<std::size_t>(cli.get_int("edges")), seed);
  std::cout << "Clustered into " << clustering.num_clusters() << " main edges\n";

  mobility::MarkovMobilityModel model(stations, cli.get_double("stay"), 25.0);
  const mobility::Trace trace = mobility::generate_trace(model, devices, horizon, seed);
  std::cout << "Trace: " << trace.records().size() << " access records, mean dwell "
            << trace.mean_dwell() << " steps\n";

  const mobility::TraceReplay replay(trace);
  const auto schedule = mobility::MobilitySchedule::from_trace(replay, clustering);
  std::cout << "Station-level churn: " << replay.churn_rate()
            << " | edge-level churn: " << schedule.churn_rate() << "\n\n";

  common::Table table({"edge", "stations", "mean occupancy", "devices @t=0",
                       "devices @t=mid"});
  const auto occupancy = schedule.mean_edge_occupancy();
  const auto at_start = schedule.devices_per_edge(0);
  const auto at_mid = schedule.devices_per_edge(horizon / 2);
  std::vector<std::size_t> station_counts(clustering.num_clusters(), 0);
  for (auto a : clustering.assignment) ++station_counts[a];
  for (std::size_t n = 0; n < clustering.num_clusters(); ++n) {
    table.row()
        .cell(n)
        .cell(station_counts[n])
        .cell(occupancy[n], 4)
        .cell(at_start[n].size())
        .cell(at_mid[n].size());
  }
  table.print(std::cout);

  const std::string csv = cli.get_string("csv");
  if (!csv.empty()) {
    if (trace.write_csv(csv)) {
      std::cout << "\nRaw trace written to " << csv << '\n';
    } else {
      std::cerr << "failed to write " << csv << '\n';
      return 1;
    }
  }
  return 0;
}
