// Explore Theorem 1's convergence bound numerically: compare the bound term
// sum G^2/q of the paper's Eq. (13) rule, the exact Lagrangian optimum
// (q ∝ G), uniform sampling, and the MACH strategy (Eq. 16-18) over random
// gradient-norm profiles.
//
// This demonstrates a reproduction finding: Eq. (13) (q ∝ G^2) *equalises*
// the per-device contributions and attains exactly the uniform strategy's
// bound value; the sqrt rule strictly improves it. MACH trades bound
// optimality for bounded inverse-probability weights — the aggregation
// variance channel the transfer function exists for.
#include <iostream>

#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/bound.h"
#include "core/mach.h"
#include "sampling/budget.h"

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli("Numerical exploration of Theorem 1's bound term.");
  cli.add_flag("devices", static_cast<std::int64_t>(10), "devices per edge");
  cli.add_flag("capacity", 5.0, "edge channel capacity K_n");
  cli.add_flag("trials", static_cast<std::int64_t>(1000),
               "random gradient-norm profiles");
  cli.add_flag("seed", static_cast<std::int64_t>(1), "random seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const auto n = static_cast<std::size_t>(cli.get_int("devices"));
  const double capacity = cli.get_double("capacity");
  const auto trials = static_cast<std::size_t>(cli.get_int("trials"));
  common::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  core::TransferFunction transfer({.alpha = 1.0, .beta = 3.0, .warmup_rounds = 0});
  common::RunningStats uniform_stats, eq13_stats, sqrt_stats, mach_stats;
  common::RunningStats mach_weight_stats, sqrt_weight_stats;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::vector<double> g2(n);
    for (auto& g : g2) g = rng.exponential(1.0) + 0.01;

    const std::vector<double> uniform(n, capacity / static_cast<double>(n));
    const auto eq13 = core::optimal_probabilities_eq13(g2, capacity);
    const auto sqrt_rule = core::optimal_probabilities_sqrt(g2, capacity);
    const auto mach = core::edge_sampling_probabilities(g2, capacity, &transfer);

    uniform_stats.add(core::convergence_bound_term(g2, uniform));
    eq13_stats.add(core::convergence_bound_term(g2, eq13));
    sqrt_stats.add(core::convergence_bound_term(g2, sqrt_rule));
    mach_stats.add(core::convergence_bound_term(g2, mach));

    // Largest inverse-probability aggregation weight each strategy risks.
    auto max_inverse = [](const std::vector<double>& q) {
      double worst = 0.0;
      for (double p : q) {
        if (p > 1e-12) worst = std::max(worst, 1.0 / p);
      }
      return worst;
    };
    mach_weight_stats.add(max_inverse(mach));
    sqrt_weight_stats.add(max_inverse(sqrt_rule));
  }

  std::cout << "Bound term sum G^2/q over " << trials << " random profiles ("
            << n << " devices, K_n = " << capacity << "):\n\n";
  common::Table table({"strategy", "mean bound term", "vs uniform"});
  const double base = uniform_stats.mean();
  auto add_row = [&](const char* name, const common::RunningStats& stats) {
    table.row().cell(name).cell(stats.mean(), 2).cell(
        common::format_double(stats.mean() / base * 100.0, 1) + "%");
  };
  add_row("uniform", uniform_stats);
  add_row("Eq. (13): q ~ G^2", eq13_stats);
  add_row("exact optimum: q ~ G", sqrt_stats);
  add_row("MACH (Eq. 16-18)", mach_stats);
  table.print(std::cout);

  std::cout << "\nEq. (13) equalises the per-device terms, so its bound value"
               " matches uniform\nexactly; q ~ G is the true minimiser of the"
               " printed objective.\n\n";
  std::cout << "Worst-case inverse-probability weight 1/q (aggregation "
               "variance risk):\n"
            << "  q ~ G strategy: " << common::format_double(sqrt_weight_stats.mean(), 1)
            << " (mean over trials)\n"
            << "  MACH          : " << common::format_double(mach_weight_stats.mean(), 1)
            << "  <- the transfer function's bounded band\n";
  return 0;
}
