// Extending the library: implement a custom device-sampling strategy against
// the hfl::Sampler interface and benchmark it against MACH and uniform.
//
// The example strategy, "recency sampling", favours devices that have not
// participated recently — a plausible fairness heuristic that the paper's
// convergence bound suggests should underperform gradient-norm sampling.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/registry.h"
#include "hfl/experiment.h"
#include "sampling/budget.h"

namespace {

class RecencySampler final : public mach::hfl::Sampler {
 public:
  std::string name() const override { return "recency"; }

  void bind(const mach::hfl::FederationInfo& info) override {
    last_participation_.assign(info.num_devices, 0);
  }

  std::vector<double> edge_probabilities(
      const mach::hfl::EdgeSamplingContext& ctx) override {
    // Weight grows linearly with the time since last participation.
    std::vector<double> weights(ctx.devices.size());
    for (std::size_t i = 0; i < ctx.devices.size(); ++i) {
      const std::size_t last = last_participation_[ctx.devices[i]];
      weights[i] = 1.0 + static_cast<double>(ctx.t - std::min(ctx.t, last));
    }
    return mach::sampling::budgeted_probabilities(weights, ctx.capacity);
  }

  void observe_training(const mach::hfl::TrainingObservation& obs) override {
    last_participation_[obs.device] = obs.t;
  }

 private:
  std::vector<std::size_t> last_participation_;
};

}  // namespace

int main() {
  using namespace mach;

  auto config = hfl::ExperimentConfig::preset(data::TaskKind::MnistLike);
  const std::vector<std::uint64_t> seeds = {11, 12};

  std::cout << "Custom 'recency' sampler vs library samplers on "
            << data::task_name(config.task) << " (target " << config.target_accuracy
            << ")\n\n";

  common::Table table({"algorithm", "mean steps to target", "reach rate"});

  const auto recency = hfl::averaged_time_to_target(
      config, [] { return std::make_unique<RecencySampler>(); }, seeds);
  table.row().cell("recency (custom)").cell(recency.mean_steps, 1).cell(
      recency.reach_rate, 2);

  for (const std::string name : {"mach", "uniform"}) {
    const auto result = hfl::averaged_time_to_target(
        config, [&] { return core::make_sampler(name); }, seeds);
    table.row()
        .cell(core::display_name(name))
        .cell(result.mean_steps, 1)
        .cell(result.reach_rate, 2);
  }
  table.print(std::cout);
  return 0;
}
