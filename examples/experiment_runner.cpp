// Full-featured experiment CLI: run any HFL configuration from flags, with
// any registered sampler, and report the accuracy trajectory, time-to-target,
// per-class recalls and communication cost. The kitchen-sink entry point for
// exploring the library beyond the paper's fixed experiment grid.
//
//   ./experiment_runner --task fmnist --sampler oort --devices 60 --edges 8 \
//       --participation 0.4 --steps 150 --aggregation self_normalized
//
// Exit-code contract (what tools/sweep_runner and scripts key on):
//   0   run completed
//   2   configuration/usage error (bad flag, unknown preset, unusable path,
//       snapshot version mismatch) — retrying the same argv cannot succeed
//   3   runtime failure (exception out of the engine) — retryable
//   75  drained: SIGTERM/SIGINT arrived, the run checkpointed at the next
//       step barrier and exited; rerun with --resume to continue (75 =
//       EX_TEMPFAIL, "temporary failure, retry later")
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "ckpt/bytes.h"
#include "ckpt/manager.h"
#include "ckpt/run_state.h"
#include "common/cli.h"
#include "common/log.h"
#include "common/table.h"
#include "comm/config.h"
#include "core/registry.h"
#include "fault/schedule.h"
#include "hfl/experiment.h"
#include "obs/jsonl_writer.h"

namespace {

using namespace mach;

data::TaskKind parse_task(const std::string& name) {
  if (name == "mnist") return data::TaskKind::MnistLike;
  if (name == "fmnist") return data::TaskKind::FmnistLike;
  if (name == "cifar10") return data::TaskKind::CifarLike;
  throw std::invalid_argument("unknown task: " + name);
}

hfl::AggregationForm parse_aggregation(const std::string& name) {
  if (name == "literal") return hfl::AggregationForm::Literal;
  if (name == "self_normalized") return hfl::AggregationForm::SelfNormalized;
  if (name == "update") return hfl::AggregationForm::UpdateForm;
  throw std::invalid_argument("unknown aggregation form: " + name);
}

// Exit-code contract (documented in the file comment and DESIGN.md §16).
constexpr int kExitOk = 0;
constexpr int kExitConfig = 2;
constexpr int kExitRuntime = 3;
constexpr int kExitDrained = 75;

// SIGTERM/SIGINT request a checkpoint-and-exit drain via the engine's
// cooperative stop flag; the handler only stores (async-signal-safe).
volatile std::sig_atomic_t g_stop_requested = 0;
extern "C" void request_stop(int) { g_stop_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("Run one hierarchical FL experiment with full control.");
  cli.add_flag("task", std::string("mnist"), "mnist|fmnist|cifar10");
  cli.add_flag("sampler", std::string("mach"), mach::core::sampler_flag_help());
  cli.add_flag("scenario", std::string(""),
               "mobility scenario preset with optional overrides, e.g. "
               "'vehicular' or 'metro:stay=0.6,stations=80' "
               "(presets: metro|campus|vehicular|flash_crowd; empty = the "
               "task preset's default mobility). Composes freely with "
               "--faults and --codec");
  cli.add_flag("devices", static_cast<std::int64_t>(0), "devices (0 = preset)");
  cli.add_flag("edges", static_cast<std::int64_t>(0), "edges (0 = preset)");
  cli.add_flag("steps", static_cast<std::int64_t>(0), "time steps (0 = preset)");
  cli.add_flag("participation", 0.0, "participation proportion (0 = preset)");
  cli.add_flag("local_epochs", static_cast<std::int64_t>(0), "I (0 = preset)");
  cli.add_flag("cloud_interval", static_cast<std::int64_t>(0), "T_g (0 = preset)");
  cli.add_flag("batch", static_cast<std::int64_t>(0), "batch size (0 = preset)");
  cli.add_flag("lr", 0.0, "learning rate (0 = preset)");
  cli.add_flag("target", 0.0, "target accuracy (0 = preset)");
  cli.add_flag("long_tail", 0.0, "long-tail ratio (0 = preset)");
  cli.add_flag("stay_prob", -1.0, "mobility stay probability (-1 = preset)");
  cli.add_flag("aggregation", std::string("literal"),
               "literal|self_normalized|update");
  cli.add_flag("cnn", false, "use the paper CNN instead of the smoke MLP");
  cli.add_flag("threads", static_cast<std::int64_t>(1),
               "worker threads for device training/evaluation "
               "(1 = serial, 0 = all hardware threads; results are "
               "bitwise identical at any value)");
  cli.add_flag("faults", std::string(""),
               "fault-injection spec, e.g. "
               "'dropout:p=0.1;straggler:p=0.2,timeout=1.5;cloud_loss:p=0.05' "
               "(empty = fault-free; runs stay deterministic and replayable)");
  cli.add_flag("codec", std::string("fp32"),
               "transfer codec per link: fp32|bf16|int8|topk:k=<density>, "
               "uniform ('int8') or per-link "
               "('up=topk:k=0.05,down=bf16,probe=int8,edge_up=int8,"
               "cloud_down=bf16'); unlisted links stay fp32. The byte ledger "
               "charges every message at its encoded size");
  cli.add_flag("seed", static_cast<std::int64_t>(7), "run seed");
  cli.add_flag("data_seed", static_cast<std::int64_t>(42), "data/world seed");
  cli.add_flag("csv", std::string(""), "optional accuracy-curve CSV path");
  cli.add_flag("confusion", false, "print the final per-class recalls");
  cli.add_flag("trace", std::string(""),
               "write a JSONL telemetry trace of the run to this path "
               "(inspect with tools/trace_summary)");
  cli.add_flag("trace_devices", true,
               "include per-device training events in the trace");
  cli.add_flag("checkpoint_every", static_cast<std::int64_t>(0),
               "snapshot the full run state every N steps (0 = off); "
               "requires --checkpoint_dir");
  cli.add_flag("checkpoint_dir", std::string(""),
               "directory for run-state snapshots (created on demand)");
  cli.add_flag("checkpoint_keep", static_cast<std::int64_t>(2),
               "snapshots retained per run (older ones are deleted)");
  cli.add_flag("resume", false,
               "continue from the newest valid snapshot in --checkpoint_dir; "
               "the resumed run is bitwise identical to an uninterrupted one");
  cli.add_flag("kill_at_step", static_cast<std::int64_t>(0),
               "crash-test harness: SIGKILL this process right after the "
               "snapshot covering step N is durable (0 = off)");
  cli.add_flag("hang_at_step", static_cast<std::int64_t>(0),
               "hang-test harness: freeze the process forever once step N "
               "completed, heartbeat included — a supervisor watchdog must "
               "SIGKILL it (0 = off)");
  cli.add_flag("phase_times", false,
               "print the wall-clock phase breakdown after the run");
  cli.add_flag("profile", std::string(""),
               "write a Chrome trace-event JSON span profile to this path "
               "(open in Perfetto / chrome://tracing, or summarise with "
               "tools/trace_summary)");
  cli.add_flag("status", std::string(""),
               "rewrite a live status.json heartbeat at this path during the "
               "run (atomic rename; safe to poll)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? kExitOk : kExitConfig;

  auto config = mach::hfl::ExperimentConfig::preset(parse_task(cli.get_string("task")));
  // Scenario first, explicit flags after: --stay_prob etc. override the preset.
  const std::string scenario_spec = cli.get_string("scenario");
  if (!scenario_spec.empty()) {
    try {
      mach::hfl::apply_scenario(mach::mobility::Scenario::parse(scenario_spec),
                                config);
    } catch (const std::invalid_argument& error) {
      std::cerr << "--scenario: " << error.what() << "\n";
      return kExitConfig;
    }
  }
  if (cli.get_int("devices") > 0) {
    config.num_devices = static_cast<std::size_t>(cli.get_int("devices"));
  }
  if (cli.get_int("edges") > 0) {
    config.num_edges = static_cast<std::size_t>(cli.get_int("edges"));
  }
  if (cli.get_int("steps") > 0) {
    config.horizon = static_cast<std::size_t>(cli.get_int("steps"));
  }
  if (cli.get_double("participation") > 0.0) {
    config.hfl.participation = cli.get_double("participation");
  }
  if (cli.get_int("local_epochs") > 0) {
    config.hfl.local_epochs = static_cast<std::size_t>(cli.get_int("local_epochs"));
  }
  if (cli.get_int("cloud_interval") > 0) {
    config.hfl.cloud_interval =
        static_cast<std::size_t>(cli.get_int("cloud_interval"));
  }
  if (cli.get_int("batch") > 0) {
    config.hfl.batch_size = static_cast<std::size_t>(cli.get_int("batch"));
  }
  if (cli.get_double("lr") > 0.0) config.hfl.learning_rate = cli.get_double("lr");
  if (cli.get_double("target") > 0.0) {
    config.target_accuracy = cli.get_double("target");
  }
  if (cli.get_double("long_tail") > 0.0) {
    config.long_tail_ratio = cli.get_double("long_tail");
  }
  if (cli.get_double("stay_prob") >= 0.0) {
    config.stay_prob = cli.get_double("stay_prob");
  }
  if (cli.get_bool("cnn")) {
    config.model = mach::hfl::ModelKind::PaperCnn;
    config.data_spec = mach::data::SyntheticSpec::preset(config.task);
  }
  config.hfl.aggregation = parse_aggregation(cli.get_string("aggregation"));
  if (cli.get_int("threads") >= 0) {
    config.hfl.parallel.threads = static_cast<std::size_t>(cli.get_int("threads"));
  }
  const std::string fault_spec = cli.get_string("faults");
  if (!fault_spec.empty()) {
    try {
      config.hfl.faults = mach::fault::FaultSchedule::parse(fault_spec);
      config.hfl.faults.validate_topology(config.num_devices, config.num_edges);
    } catch (const std::invalid_argument& error) {
      std::cerr << "--faults: " << error.what() << "\n";
      return kExitConfig;
    }
  }
  try {
    config.hfl.comm = mach::comm::CommConfig::parse(cli.get_string("codec"));
  } catch (const std::invalid_argument& error) {
    std::cerr << "--codec: " << error.what() << "\n";
    return kExitConfig;
  }
  config.data_seed = static_cast<std::uint64_t>(cli.get_int("data_seed"));
  config = config.with_seed(static_cast<std::uint64_t>(cli.get_int("seed")));

  mach::ckpt::CheckpointOptions& checkpoint = config.hfl.checkpoint;
  checkpoint.dir = cli.get_string("checkpoint_dir");
  if (cli.get_int("checkpoint_every") > 0) {
    checkpoint.every = static_cast<std::size_t>(cli.get_int("checkpoint_every"));
  }
  if (cli.get_int("checkpoint_keep") > 0) {
    checkpoint.keep = static_cast<std::size_t>(cli.get_int("checkpoint_keep"));
  }
  checkpoint.resume = cli.get_bool("resume");
  if (cli.get_int("kill_at_step") > 0) {
    checkpoint.kill_at = static_cast<std::size_t>(cli.get_int("kill_at_step"));
  }
  if (checkpoint.enabled() && checkpoint.dir.empty()) {
    std::cerr << "--checkpoint_every/--resume require --checkpoint_dir\n";
    return kExitConfig;
  }
  if (cli.get_int("hang_at_step") > 0) {
    config.hfl.hang_at = static_cast<std::size_t>(cli.get_int("hang_at_step"));
  }

  // Drain contract: SIGTERM/SIGINT set the engine's cooperative stop flag;
  // the run checkpoints at the next step barrier and exits kExitDrained. A
  // second signal falls back to the default disposition (terminate), so a
  // hung drain stays killable.
  std::signal(SIGTERM, request_stop);
  std::signal(SIGINT, request_stop);
  config.hfl.stop_flag = &g_stop_requested;

  config.hfl.profile.trace_path = cli.get_string("profile");
  config.hfl.profile.status_path = cli.get_string("status");

  // Everything below can throw; translate to the exit-code contract at the
  // bottom instead of letting std::terminate eat the diagnostic.
  const auto run_configured = [&]() -> int {
  auto sampler = mach::core::make_sampler(cli.get_string("sampler"));

  // Build by hand (instead of run_experiment) so we can query cost/confusion.
  auto artifacts = mach::hfl::build_experiment(config);
  mach::hfl::HflOptions options = config.hfl;
  options.seed = config.seed;
  mach::hfl::HflSimulator simulator(artifacts.train, artifacts.test,
                                    artifacts.partition, artifacts.schedule,
                                    mach::hfl::make_model_factory(config), options);

  // Resolve --resume before any trace file is opened: the snapshot header
  // carries the trace cursor the writer must truncate back to.
  std::optional<mach::ckpt::RunStateHeader> resume_header;
  if (checkpoint.resume) {
    mach::ckpt::CheckpointManager manager(checkpoint.dir, checkpoint.keep);
    auto loaded = manager.load_latest();
    if (loaded.has_value()) {
      if (loaded->version != mach::ckpt::kRunStateVersion) {
        std::cerr << "--resume: snapshot payload version " << loaded->version
                  << " does not match this engine's version "
                  << mach::ckpt::kRunStateVersion
                  << " (delete " << checkpoint.dir << " to start fresh)\n";
        return kExitConfig;
      }
      try {
        mach::ckpt::ByteReader reader(loaded->payload);
        resume_header = mach::ckpt::RunStateHeader::decode(reader);
      } catch (const mach::ckpt::CorruptPayload& error) {
        std::cerr << "--resume: " << error.what() << "\n";
        return kExitConfig;
      }
      simulator.set_resume_payload(std::move(loaded->payload));
      std::cout << "resuming from " << checkpoint.dir << " at step "
                << resume_header->next_t << "\n";
    } else {
      mach::common::log_warn(
          "resume: no usable snapshot in " + checkpoint.dir +
          " -- starting from step 0");
    }
  }

  // Fail fast on unwritable profiling paths, matching --trace: the exports
  // happen at run end, far too late to discover a bad path. Append-mode so
  // an existing file is probed without being clobbered.
  for (const std::string& path :
       {cli.get_string("profile"), cli.get_string("status")}) {
    if (path.empty()) continue;
    if (!std::ofstream(path, std::ios::app)) {
      std::cerr << "cannot open " << path << " for writing\n";
      return kExitConfig;
    }
  }

  std::unique_ptr<mach::obs::JsonlTraceWriter> trace;
  const std::string trace_path = cli.get_string("trace");
  if (!trace_path.empty()) {
    mach::obs::JsonlTraceOptions trace_options;
    trace_options.device_events = cli.get_bool("trace_devices");
    try {
      if (resume_header.has_value() && resume_header->has_trace_cursor) {
        const mach::obs::TraceCursor cursor{resume_header->trace_bytes,
                                            resume_header->trace_lines};
        trace = std::make_unique<mach::obs::JsonlTraceWriter>(trace_path, cursor,
                                                              trace_options);
      } else {
        trace = std::make_unique<mach::obs::JsonlTraceWriter>(trace_path,
                                                              trace_options);
      }
    } catch (const std::runtime_error& error) {
      std::cerr << error.what() << "\n";
      return kExitConfig;
    }
    simulator.set_observer(trace.get());
  }

  std::cout << "task=" << mach::data::task_name(config.task)
            << " sampler=" << sampler->name() << " devices=" << config.num_devices
            << " edges=" << config.num_edges << " steps=" << config.horizon
            << " participation=" << config.hfl.participation
            << " aggregation=" << cli.get_string("aggregation")
            << " threads=" << mach::runtime::resolve_threads(config.hfl.parallel);
  if (!config.scenario_name.empty()) {
    std::cout << " scenario=" << config.scenario_name;
  }
  if (!config.hfl.faults.empty()) {
    std::cout << " faults=" << config.hfl.faults.to_string();
  }
  if (!config.hfl.comm.all_fp32()) {
    std::cout << " codec=" << config.hfl.comm.to_string();
  }
  std::cout << "\n\n";

  const auto metrics = simulator.run(*sampler, config.horizon);

  mach::common::Table curve({"t", "test_acc", "test_loss", "participants"});
  for (const auto& p : metrics.points()) {
    curve.row().cell(p.t).cell(p.test_accuracy, 4).cell(p.test_loss, 4).cell(
        p.participants);
  }
  curve.print(std::cout);

  if (const auto cut = simulator.interrupted_at()) {
    const std::string drained_csv = cli.get_string("csv");
    if (!drained_csv.empty()) metrics.write_csv(drained_csv);
    std::cout << "\ndrained: stop signal honoured at step " << *cut << " / "
              << config.horizon;
    if (config.hfl.checkpoint.every > 0) {
      std::cout << " (snapshot durable in " << config.hfl.checkpoint.dir
                << "; rerun with --resume to continue)";
    }
    std::cout << "\n";
    return kExitDrained;
  }

  const auto target_t = metrics.time_to_accuracy(config.target_accuracy);
  std::cout << "\nbest accuracy:  " << metrics.best_accuracy() << '\n'
            << "time to target " << config.target_accuracy << ": "
            << (target_t ? std::to_string(*target_t)
                         : ">" + std::to_string(config.horizon))
            << " steps\n";

  const auto& cost = simulator.last_run_cost();
  std::cout << "communication:  " << cost.device_uploads << " device uploads, "
            << cost.device_downloads << " downloads, " << cost.probe_downloads
            << " probes, " << cost.edge_uploads + cost.cloud_broadcasts
            << " edge-cloud messages (" << cost.total_bytes() / 1024 << " KiB)\n";
  if (!config.hfl.comm.all_fp32()) {
    const auto& ledger = cost.ledger;
    std::cout << "encoded bytes:  device up " << ledger.device_upload.bytes / 1024
              << " KiB (retries " << ledger.retry_upload.bytes / 1024
              << " KiB), down " << ledger.device_download.bytes / 1024
              << " KiB, probes " << ledger.probe_download.bytes / 1024
              << " KiB, edge-cloud "
              << (ledger.edge_upload.bytes + ledger.cloud_broadcast.bytes) / 1024
              << " KiB; fp32 would be " << cost.assumed_fp32_bytes() / 1024
              << " KiB\n";
  }
  if (!config.hfl.faults.empty()) {
    const auto& reg = simulator.metrics_registry().snapshot();
    std::cout << "faults:         ";
    bool first = true;
    for (const auto& entry : reg.counters) {
      if (entry.name.rfind("fault_", 0) != 0) continue;
      if (!first) std::cout << ", ";
      first = false;
      std::cout << entry.name.substr(6) << "=" << entry.value;
    }
    std::cout << " (" << cost.retry_uploads << " retry uploads)\n";
  }

  if (cli.get_bool("confusion")) {
    const auto confusion = simulator.evaluate_confusion();
    mach::common::Table recalls({"class", "recall", "precision"});
    for (std::size_t c = 0; c < confusion.num_classes(); ++c) {
      recalls.row().cell(c).cell(confusion.recall(c), 3).cell(
          confusion.precision(c), 3);
    }
    std::cout << "\nbalanced accuracy: " << confusion.balanced_accuracy() << "\n";
    recalls.print(std::cout);
  }

  if (cli.get_bool("phase_times")) {
    const auto& timers = simulator.phase_timers();
    mach::common::Table table({"phase", "scopes", "total s", "share %"});
    const double total = timers.total_seconds();
    for (std::size_t i = 0; i < mach::obs::kNumPhases; ++i) {
      const auto phase = static_cast<mach::obs::Phase>(i);
      const auto& acc = timers[phase];
      table.row()
          .cell(std::string(mach::obs::phase_name(phase)))
          .cell(acc.count)
          .cell(acc.total_seconds, 3)
          .cell(total > 0.0 ? acc.total_seconds / total * 100.0 : 0.0, 1);
    }
    std::cout << '\n';
    table.print(std::cout);
  }

  const std::string csv = cli.get_string("csv");
  if (!csv.empty() && metrics.write_csv(csv)) {
    std::cout << "\ncurve written to " << csv << '\n';
  }
  if (trace) {
    std::cout << "\ntrace written to " << trace_path << " (" << trace->lines_written()
              << " events; summarise with tools/trace_summary)\n";
  }
  if (const auto* profiler = simulator.span_profiler();
      profiler != nullptr && simulator.profile_export_ok()) {
    std::cout << "\nspan profile written to " << cli.get_string("profile")
              << " (open in https://ui.perfetto.dev or chrome://tracing";
    if (profiler->spans_dropped() > 0) {
      std::cout << "; " << profiler->spans_dropped()
                << " spans dropped to ring overflow -- raise ring capacity "
                   "for full coverage";
    }
    std::cout << ")\n";
  }
  return kExitOk;
  };

  try {
    return run_configured();
  } catch (const std::invalid_argument& error) {
    std::cerr << "configuration error: " << error.what() << "\n";
    return kExitConfig;
  } catch (const std::exception& error) {
    std::cerr << "runtime failure: " << error.what() << "\n";
    return kExitRuntime;
  }
}
