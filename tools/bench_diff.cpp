// bench_diff: compares two BENCH_*.json files case-by-case and exits
// non-zero when any gated metric regressed beyond the threshold. Used
// interactively to eyeball a change's perf impact and by scripts/ci.sh as
// the perf gate:
//
//   bench_diff --baseline BENCH_kernels.json --current /tmp/kernels.json
//       [--threshold_pct 10]
//
// Exit codes: 0 = no regression, 1 = regression beyond threshold (or bench
// name mismatch), 2 = bad invocation / unreadable input.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "obs/bench_compare.h"

int main(int argc, char** argv) {
  mach::common::CliParser cli(
      "Compare two BENCH_*.json files and gate on perf regressions.");
  cli.add_flag("baseline", std::string(""), "baseline BENCH_*.json (required)");
  cli.add_flag("current", std::string(""), "current BENCH_*.json (required)");
  cli.add_flag("threshold_pct", 10.0,
               "max tolerated regression, percent of the baseline value");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  const std::string baseline_path = cli.get_string("baseline");
  const std::string current_path = cli.get_string("current");
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "bench_diff: --baseline and --current are required\n");
    return 2;
  }

  std::string error;
  const auto baseline = mach::obs::load_bench_file(baseline_path, &error);
  if (!baseline) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 2;
  }
  const auto current = mach::obs::load_bench_file(current_path, &error);
  if (!current) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 2;
  }

  const double threshold = cli.get_double("threshold_pct");
  const mach::obs::BenchComparison comparison =
      mach::obs::compare_benchmarks(*baseline, *current);
  std::fputs(mach::obs::format_comparison(comparison, threshold).c_str(),
             stdout);
  if (comparison.bench_mismatch) return 1;
  return comparison.regression_beyond(threshold) ? 1 : 0;
}
