// Offline trace analyser. Sniffs its input and summarises any of the three
// telemetry artefacts the engine writes:
//
//   * a JSONL run trace (obs::JsonlTraceWriter; experiment_runner --trace or
//     any bench --trace): run inventory, wall-clock phase breakdown,
//     per-edge sampling health (realised vs expected participation against
//     the channel budget K_n, q-vector spread, probability-floor clamping,
//     Horvitz-Thompson diagnostics), evaluation trajectory endpoints and
//     MACH's latest Eq. 15 experience state;
//   * a Chrome trace-event span profile (experiment_runner --profile): the
//     per-span-name time breakdown, span-derived per-round p50/p95/max round
//     latency, the top-N slowest devices and edges, and the profiler's
//     spans_dropped counter;
//   * a status.json heartbeat (experiment_runner --status): the live-run
//     snapshot plus its staleness relative to the current wall clock.
//
//   ./trace_summary run.jsonl
//   ./trace_summary --devices 8 run.jsonl   # top-N G~^2 device listing
//   ./trace_summary profile.json            # span profile breakdown
//   ./trace_summary status.json             # heartbeat + staleness
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/table.h"
#include "obs/json.h"

namespace {

using mach::obs::JsonValue;

struct EdgeStats {
  std::size_t rounds = 0;
  double devices_sum = 0.0;
  double capacity_sum = 0.0;
  double sampled_sum = 0.0;
  double expected_sum = 0.0;  // sum of q.sum (expected participants)
  std::size_t over_budget_rounds = 0;  // q.sum > capacity (infeasible strategy)
  double q_min = 1.0;
  double q_max = 0.0;
  double q_mean_sum = 0.0;
  std::uint64_t q_entries = 0;
  std::uint64_t q_floor_clamped = 0;
  double ht_sum_total = 0.0;
  double ht_var_total = 0.0;
};

struct PhaseStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double max_s = 0.0;
};

/// Realised fault tallies (edge_agg "faults" payloads + cloud_round
/// "uploads_lost"); the section only prints when a trace carries them.
struct FaultStats {
  bool seen = false;
  std::uint64_t outage_rounds = 0;
  std::uint64_t dropped = 0;
  std::uint64_t straggler_arrivals = 0;
  std::uint64_t straggler_timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t survivors = 0;
  std::uint64_t lost = 0;
  std::uint64_t cloud_uploads_lost = 0;
  std::uint64_t cloud_rounds_with_loss = 0;
};

/// Encoded-byte ledger tallies (run_end "comm" payloads, summed across
/// runs). `seen` gates the section so pre-codec traces print unchanged.
struct CommStats {
  bool seen = false;
  bool mixed_model_sizes = false;
  std::uint64_t total_bytes = 0;
  std::uint64_t assumed_fp32_bytes = 0;
  // Link order matches the ByteLedger layout (retry_upload is the redundant
  // share of device_upload, excluded from totals).
  static constexpr const char* kLinks[6] = {
      "device_download", "device_upload", "retry_upload",
      "probe_download",  "edge_upload",   "cloud_broadcast"};
  std::uint64_t messages[6] = {};
  std::uint64_t bytes[6] = {};
};

void print_usage() {
  std::cout
      << "usage: trace_summary [--devices N] "
         "<trace.jsonl|profile.json|status.json|BENCH_*.json>\n\n"
         "Summarises one of the engine's telemetry artefacts (auto-detected):\n"
         "  * JSONL run trace (--trace): phase-time breakdown, per-edge\n"
         "    sampling health, evaluation trajectory, sampler experience;\n"
         "  * Chrome span profile (--profile): per-span breakdown, round\n"
         "    latency percentiles, slowest devices/edges, dropped spans;\n"
         "  * status heartbeat (--status): live-run snapshot + staleness;\n"
         "  * BENCH_*.json results: gates, per-case wall-time percentiles\n"
         "    and peak RSS (BENCH_scale.json).\n\n"
         "Flags:\n"
         "  --devices N   rows in the top-device/edge tables (default 5, 0 off)\n"
         "  --help        this message\n";
}

/// Aggregate over one span name (or one device/edge id) in a span profile.
struct SpanAgg {
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;

  void add(double ms) {
    ++count;
    total_ms += ms;
    max_ms = std::max(max_ms, ms);
  }
};

/// Nearest-rank percentile over an ascending-sorted vector (p in [0,1]).
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

void print_span_agg_table(const std::string& heading,
                          const std::string& key_header,
                          const std::map<std::int64_t, SpanAgg>& by_id,
                          std::size_t top_n) {
  if (by_id.empty() || top_n == 0) return;
  std::vector<std::pair<std::int64_t, SpanAgg>> sorted(by_id.begin(), by_id.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.total_ms > b.second.total_ms;
  });
  const std::size_t rows = std::min(top_n, sorted.size());
  std::cout << heading << " (" << rows << " of " << sorted.size() << "):\n";
  mach::common::Table table({key_header, "spans", "total ms", "mean ms", "max ms"});
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& [id, agg] = sorted[i];
    table.row()
        .cell(id)
        .cell(agg.count)
        .cell(agg.total_ms, 3)
        .cell(agg.total_ms / static_cast<double>(agg.count), 3)
        .cell(agg.max_ms, 3);
  }
  table.print(std::cout);
  std::cout << '\n';
}

/// Summary of a Chrome trace-event span profile (experiment_runner --profile).
int summarize_profile(const JsonValue& doc, const std::string& path,
                      std::size_t top_n) {
  const auto& events = doc["traceEvents"].as_array();
  std::map<std::string, SpanAgg> by_name;
  std::map<std::int64_t, SpanAgg> by_device, by_edge;
  std::vector<double> round_ms;
  std::size_t span_events = 0, counter_samples = 0;
  double peak_rss_mb = 0.0;

  for (const JsonValue& event : events) {
    const std::string ph = event.string_or("ph", "");
    if (ph == "C") {
      ++counter_samples;
      peak_rss_mb = std::max(peak_rss_mb, event["args"].number_or("value", 0));
      continue;
    }
    if (ph != "X") continue;
    ++span_events;
    const std::string name = event.string_or("name", "span");
    const double dur_ms = event.number_or("dur", 0) * 1e-3;  // ts/dur are µs
    by_name[name].add(dur_ms);
    const double id = event["args"].number_or("id", -1);
    if (name == "round") {
      round_ms.push_back(dur_ms);
    } else if (name == "device_train" && id >= 0) {
      by_device[static_cast<std::int64_t>(id)].add(dur_ms);
    } else if (name == "edge_round" && id >= 0) {
      by_edge[static_cast<std::int64_t>(id)].add(dur_ms);
    }
  }

  const JsonValue& other = doc["otherData"];
  const auto dropped =
      static_cast<std::uint64_t>(other.number_or("spans_dropped", 0));

  std::cout << "=== span profile summary: " << path << " ===\n"
            << span_events << " spans across "
            << static_cast<std::size_t>(other.number_or("tracks", 0))
            << " track(s), ring capacity "
            << static_cast<std::size_t>(other.number_or("ring_capacity", 0))
            << '\n';
  if (dropped > 0) {
    std::cout << "WARNING: " << dropped
              << " span(s) dropped at ring-buffer overflow — totals below "
                 "undercount; raise the ring capacity for complete coverage\n";
  }
  std::cout << '\n';

  if (!by_name.empty()) {
    double grand_total = 0.0;
    for (const auto& [name, agg] : by_name) grand_total += agg.total_ms;
    std::vector<std::pair<std::string, SpanAgg>> sorted(by_name.begin(),
                                                        by_name.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second.total_ms > b.second.total_ms;
    });
    std::cout << "span time breakdown ("
              << mach::common::format_double(grand_total, 3)
              << " ms total; nested spans double-count their parents):\n";
    mach::common::Table table(
        {"span", "count", "total ms", "share %", "mean ms", "max ms"});
    for (const auto& [name, agg] : sorted) {
      table.row()
          .cell(name)
          .cell(agg.count)
          .cell(agg.total_ms, 3)
          .cell(grand_total > 0.0 ? agg.total_ms / grand_total * 100.0 : 0.0, 1)
          .cell(agg.total_ms / static_cast<double>(agg.count), 3)
          .cell(agg.max_ms, 3);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  if (!round_ms.empty()) {
    std::sort(round_ms.begin(), round_ms.end());
    std::cout << "round latency over " << round_ms.size()
              << " round span(s): p50 "
              << mach::common::format_double(percentile(round_ms, 0.5), 3)
              << " ms, p95 "
              << mach::common::format_double(percentile(round_ms, 0.95), 3)
              << " ms, max "
              << mach::common::format_double(round_ms.back(), 3) << " ms\n\n";
  }

  print_span_agg_table("slowest devices by training time", "device", by_device,
                       top_n);
  print_span_agg_table("slowest edges by round time", "edge", by_edge, top_n);

  if (counter_samples > 0) {
    std::cout << "resource counters: " << counter_samples
              << " RSS sample(s), peak "
              << mach::common::format_double(peak_rss_mb, 1) << " MB\n";
  }
  return 0;
}

/// Summary of a status.json heartbeat (experiment_runner --status).
int summarize_status(const JsonValue& doc, const std::string& path) {
  const double step = doc.number_or("step", 0);
  const double total = doc.number_or("total_steps", 0);
  const bool finished = doc["finished"].is_bool() && doc["finished"].as_bool();
  const double updated_unix = doc.number_or("updated_unix", 0);

  std::cout << "=== status heartbeat: " << path << " ===\n"
            << "progress: step " << static_cast<std::size_t>(step) << " / "
            << static_cast<std::size_t>(total);
  if (total > 0) {
    std::cout << " (" << mach::common::format_double(step / total * 100.0, 1)
              << "%)";
  }
  std::cout << (finished ? ", finished" : ", running");
  if (doc["aborted"].is_bool() && doc["aborted"].as_bool()) {
    std::cout << " (ABORTED: the writer unwound without finishing)";
  }
  const auto pid = static_cast<std::int64_t>(doc.number_or("pid", 0));
  if (pid > 0) {
    std::cout << "\nwriter: pid " << pid << ", up "
              << mach::common::format_double(
                     doc.number_or("uptime_ms", 0) / 1000.0, 1)
              << " s at last write";
  }
  std::cout << '\n'
            << "cloud rounds: "
            << static_cast<std::size_t>(doc.number_or("cloud_rounds", 0))
            << ", devices trained: "
            << static_cast<std::size_t>(doc.number_or("devices_trained", 0))
            << " ("
            << mach::common::format_double(doc.number_or("devices_per_second", 0), 1)
            << "/s)\n"
            << "elapsed: "
            << mach::common::format_double(doc.number_or("elapsed_seconds", 0), 1)
            << " s, ETA: "
            << mach::common::format_double(doc.number_or("eta_seconds", 0), 1)
            << " s\n"
            << "memory: current "
            << static_cast<std::size_t>(doc.number_or("current_rss_kb", 0))
            << " KB, peak "
            << static_cast<std::size_t>(doc.number_or("peak_rss_kb", 0))
            << " KB\n";
  const auto faults = static_cast<std::uint64_t>(doc.number_or("faults_lost", 0));
  if (faults > 0) std::cout << "fault updates lost: " << faults << '\n';
  const auto dropped =
      static_cast<std::uint64_t>(doc.number_or("spans_dropped", 0));
  if (dropped > 0) std::cout << "profiler spans dropped: " << dropped << '\n';

  if (updated_unix > 0) {
    const double now_unix =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    const double age = now_unix - updated_unix;
    std::cout << "last heartbeat: " << mach::common::format_double(age, 1)
              << " s ago (sequence "
              << static_cast<std::uint64_t>(doc.number_or("sequence", 0)) << ")\n";
    if (!finished && age > 30.0) {
      std::cout << "WARNING: heartbeat is stale for an unfinished run — the "
                   "process crashed, hung, or stopped without a final write\n";
    }
  }
  return 0;
}

/// Summary of a sweep_runner report.json: one line per point in expansion
/// order, with accuracy metrics for completed points and the journaled
/// failure history for quarantined ones.
int summarize_sweep_report(const JsonValue& doc, const std::string& path) {
  std::cout << "=== sweep report: " << path << " (sweep \""
            << doc.string_or("name", "?") << "\") ===\n"
            << "points: " << static_cast<std::size_t>(doc.number_or("points", 0))
            << ", done: " << static_cast<std::size_t>(doc.number_or("done", 0))
            << ", quarantined: "
            << static_cast<std::size_t>(doc.number_or("quarantined", 0))
            << '\n';
  if (!doc["results"].is_array()) return 0;
  for (const auto& entry : doc["results"].as_array()) {
    const std::string outcome = entry.string_or("outcome", "?");
    std::cout << entry.string_or("fingerprint", "????????????????") << "  "
              << outcome;
    if (outcome == "done" && entry["final_accuracy"].is_number()) {
      std::cout << "  acc " << mach::common::format_double(
                       entry.number_or("final_accuracy", 0) * 100.0, 2)
                << "% (best " << mach::common::format_double(
                       entry.number_or("best_accuracy", 0) * 100.0, 2)
                << "%, " << static_cast<std::size_t>(entry.number_or("last_step", 0))
                << " steps)";
    }
    // A compact config echo: the interesting axes are whatever varies, so
    // print everything — sweep configs are small by construction.
    if (entry["config"].is_object()) {
      std::cout << "  [";
      bool first = true;
      for (const auto& [key, value] : entry["config"].as_object()) {
        if (!value.is_string()) continue;
        std::cout << (first ? "" : " ") << key << '=' << value.as_string();
        first = false;
      }
      std::cout << ']';
    }
    std::cout << '\n';
    if (outcome == "quarantined" && entry["failures"].is_array()) {
      for (const auto& failure : entry["failures"].as_array()) {
        std::cout << "    attempt "
                  << static_cast<std::size_t>(failure.number_or("attempt", 0))
                  << ": " << failure.string_or("reason", "?");
        const auto signal =
            static_cast<std::int64_t>(failure.number_or("signal", 0));
        if (signal > 0) std::cout << " (signal " << signal << ')';
        const auto code =
            static_cast<std::int64_t>(failure.number_or("exit_code", -1));
        if (code >= 0) std::cout << " (exit " << code << ')';
        std::cout << '\n';
      }
    }
  }
  return 0;
}

/// Summary of a BENCH_*.json document (any bench/ emitter): the embedded
/// hardware context, the top-level pass/fail gates, and — when the results
/// carry them (BENCH_scale.json) — per-case wall-time percentiles and peak
/// RSS, with the worst case called out for quick triage.
int summarize_bench(const JsonValue& doc, const std::string& path) {
  std::cout << "=== bench results: " << path << " (bench \""
            << doc.string_or("bench", "?") << "\") ===\n";
  const JsonValue& hardware = doc["hardware"];
  if (hardware.is_object()) {
    std::cout << "hardware: " << hardware.string_or("cpu_model", "unknown")
              << ", "
              << static_cast<std::size_t>(
                     hardware.number_or("hardware_threads", 0))
              << " thread(s), process peak RSS "
              << mach::common::format_double(
                     hardware.number_or("peak_rss_kb", 0) / 1024.0, 1)
              << " MiB\n";
  }
  for (const auto& [name, value] : doc.as_object()) {
    if (!value.is_bool()) continue;
    // Pass/fail gates follow the bench/ naming convention; other booleans
    // are configuration echoes (e.g. alias_draws).
    const bool is_gate = name.find("_met") != std::string::npos ||
                         name.find("_ok") != std::string::npos ||
                         name.find("within") != std::string::npos ||
                         name.find("linear") != std::string::npos ||
                         name.find("passed") != std::string::npos;
    if (is_gate) {
      std::cout << "gate " << name << ": "
                << (value.as_bool() ? "pass" : "FAIL") << '\n';
    } else {
      std::cout << "flag " << name << ": "
                << (value.as_bool() ? "true" : "false") << '\n';
    }
  }

  // The zoo bench ships its ranked comparison in a separate "ranking" key
  // (one row per scenario x rank) plus a cross-scenario "leaderboard".
  const JsonValue& ranking = doc["ranking"];
  if (ranking.is_array() && !ranking.as_array().empty()) {
    std::cout << "algorithm ranking (per scenario, by final accuracy):\n";
    mach::common::Table ranks({"scenario", "rank", "sampler", "final acc"});
    for (const JsonValue& entry : ranking.as_array()) {
      if (!entry.is_object()) continue;
      ranks.row()
          .cell(entry.string_or("scenario", "?"))
          .cell(static_cast<std::size_t>(entry.number_or("rank", 0)))
          .cell(entry.string_or("display", entry.string_or("sampler", "?")))
          .cell(entry.number_or("final_accuracy", 0.0), 4);
    }
    ranks.print(std::cout);
    const JsonValue& leaderboard = doc["leaderboard"];
    if (leaderboard.is_array() && !leaderboard.as_array().empty()) {
      std::cout << "overall leaderboard (mean per-scenario rank):\n";
      mach::common::Table overall({"rank", "sampler", "mean rank"});
      for (const JsonValue& entry : leaderboard.as_array()) {
        if (!entry.is_object()) continue;
        overall.row()
            .cell(static_cast<std::size_t>(entry.number_or("rank", 0)))
            .cell(entry.string_or("display", entry.string_or("sampler", "?")))
            .cell(entry.number_or("mean_rank", 0.0), 2);
      }
      overall.print(std::cout);
    }
  }

  const JsonValue& results = doc["results"];
  if (!results.is_array() || results.as_array().empty()) {
    std::cout << "no results[] cases\n";
    return 0;
  }

  // Case labels come from the same identity fields tools/bench_diff keys on.
  const auto case_label = [](const JsonValue& entry) {
    std::string label;
    for (const char* field : {"task", "codec", "kernel", "name", "case",
                              "sampler", "scenario", "devices", "edges"}) {
      const JsonValue& value = entry[field];
      if (value.is_string()) {
        if (!label.empty()) label += ' ';
        label += value.as_string();
      } else if (value.is_number()) {
        if (!label.empty()) label += ' ';
        label += field;
        label += '=';
        label += mach::common::format_double(value.as_number(), 0);
      }
    }
    return label.empty() ? std::string("(unkeyed)") : label;
  };

  bool any_latency = false;
  for (const JsonValue& entry : results.as_array()) {
    any_latency = any_latency || entry["round_p50_ms"].is_number();
  }
  if (!any_latency) {
    std::cout << results.as_array().size()
              << " case(s); no per-round wall-time fields (round_p50_ms) — "
                 "use tools/bench_diff for metric-level comparison\n";
    return 0;
  }

  mach::common::Table table(
      {"case", "p50 ms", "p95 ms", "max ms", "B/device", "peak RSS MiB"});
  double worst_p95 = 0.0;
  std::string worst_case;
  double max_rss_kb = 0.0;
  for (const JsonValue& entry : results.as_array()) {
    if (!entry.is_object()) continue;
    const double p95 = entry.number_or("round_p95_ms", 0.0);
    const double rss_kb = entry.number_or("peak_rss_kb", 0.0);
    if (p95 > worst_p95) {
      worst_p95 = p95;
      worst_case = case_label(entry);
    }
    max_rss_kb = std::max(max_rss_kb, rss_kb);
    table.row()
        .cell(case_label(entry))
        .cell(entry.number_or("round_p50_ms", 0.0), 3)
        .cell(p95, 3)
        .cell(entry.number_or("round_max_ms", 0.0), 3)
        .cell(entry.number_or("per_device_bytes", 0.0), 1)
        .cell(rss_kb / 1024.0, 1);
  }
  table.print(std::cout);
  std::cout << "worst round p95: " << mach::common::format_double(worst_p95, 3)
            << " ms (" << worst_case << "), max case peak RSS "
            << mach::common::format_double(max_rss_kb / 1024.0, 1) << " MiB\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_devices = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--devices") {
      if (i + 1 >= argc) {
        std::cerr << "--devices expects a value\n";
        return 1;
      }
      try {
        top_devices = static_cast<std::size_t>(std::stoul(argv[++i]));
      } catch (const std::exception&) {
        std::cerr << "--devices expects a non-negative integer, got '" << argv[i]
                  << "'\n";
        return 1;
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag: " << arg << "\n\n";
      print_usage();
      return 1;
    }
    if (!path.empty()) {
      std::cerr << "expected exactly one trace path\n";
      return 1;
    }
    path = arg;
  }
  if (path.empty()) {
    print_usage();
    return 1;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }

  // Sniff the artefact kind: a JSONL engine trace carries one "event" object
  // per line, while the span profile and the status heartbeat are a single
  // JSON document spanning the whole file.
  {
    std::string first_line;
    std::getline(in, first_line);
    std::string error;
    const auto first = mach::obs::parse_json(first_line, &error);
    const bool jsonl =
        first && first->is_object() && (*first)["event"].is_string();
    if (!jsonl) {
      std::stringstream whole;
      whole << first_line << '\n' << in.rdbuf();
      const auto doc = mach::obs::parse_json(whole.str(), &error);
      if (doc && doc->is_object()) {
        if ((*doc)["traceEvents"].is_array()) {
          return summarize_profile(*doc, path, top_devices);
        }
        if (doc->string_or("kind", "") == "mach_status") {
          return summarize_status(*doc, path);
        }
        if (doc->string_or("kind", "") == "mach_sweep_report") {
          return summarize_sweep_report(*doc, path);
        }
        if (!doc->string_or("bench", "").empty() &&
            (*doc)["results"].is_array()) {
          return summarize_bench(*doc, path);
        }
      }
      // Neither artefact parsed: fall through to the JSONL reader so its
      // per-line malformed diagnostics name the problem.
    }
    in.clear();
    in.seekg(0);
  }

  // Pass 1: parse and *key* every aggregatable record instead of folding it
  // immediately. A trace holding a crashed run's tail next to its resumed
  // re-execution (e.g. concatenated pre/post-crash files) carries the same
  // (t, edge) coordinates twice; keyed last-wins dedup keeps the resumed
  // record and reports the overlap instead of silently double-counting.
  std::map<std::string, std::uint64_t> event_counts;
  std::vector<JsonValue> run_begins;
  std::uint64_t checkpoint_markers = 0;
  std::uint64_t superseded_records = 0;
  // Keys: run index (0 = before any run_begin; resumed traces keep the
  // original run_begin, so 0 only appears for raw crash tails), time step,
  // and the edge id where one step emits one record per edge.
  std::uint64_t run_index = 0;
  std::map<std::tuple<std::uint64_t, double, std::size_t>, JsonValue> edge_events;
  std::map<std::pair<std::uint64_t, double>, JsonValue> eval_events;
  std::map<std::pair<std::uint64_t, double>, JsonValue> cloud_events;
  std::map<std::uint64_t, JsonValue> run_ends;
  std::size_t parse_errors = 0;
  std::uint64_t lines = 0;

  const auto keyed_insert = [&superseded_records](auto& map, auto key,
                                                  const JsonValue& event) {
    auto [it, inserted] = map.emplace(std::move(key), event);
    if (!inserted) {
      it->second = event;  // last occurrence wins (the resumed re-execution)
      ++superseded_records;
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::string error;
    const auto parsed = mach::obs::parse_json(line, &error);
    if (!parsed || !parsed->is_object()) {
      if (++parse_errors <= 3) {
        std::cerr << "skipping malformed line " << lines << ": " << error << '\n';
      }
      continue;
    }
    const JsonValue& event = *parsed;
    const std::string kind = event.string_or("event", "?");
    ++event_counts[kind];
    const double t = event.number_or("t", -1);

    if (kind == "run_begin") {
      run_begins.push_back(event);
      ++run_index;
    } else if (kind == "checkpoint") {
      ++checkpoint_markers;
    } else if (kind == "edge_agg") {
      const auto edge = static_cast<std::size_t>(event.number_or("edge", 0));
      keyed_insert(edge_events, std::make_tuple(run_index, t, edge), event);
    } else if (kind == "eval") {
      keyed_insert(eval_events, std::make_pair(run_index, t), event);
    } else if (kind == "cloud_round") {
      keyed_insert(cloud_events, std::make_pair(run_index, t), event);
    } else if (kind == "run_end") {
      keyed_insert(run_ends, run_index, event);
    }
  }

  // Pass 2: fold the deduplicated records into the report aggregates.
  std::map<std::size_t, EdgeStats> edges;
  std::map<std::string, PhaseStats> phases;
  JsonValue first_eval, last_eval;
  double best_accuracy = 0.0;
  std::uint64_t evals = 0;
  JsonValue last_introspection;  // last cloud_round carrying sampler state
  FaultStats faults;
  CommStats comm;

  for (const auto& [key, event] : edge_events) {
    EdgeStats& stats = edges[std::get<2>(key)];
    ++stats.rounds;
    stats.devices_sum += event.number_or("num_devices", 0);
    const double capacity = event.number_or("capacity", 0);
    stats.capacity_sum += capacity;
    stats.sampled_sum += event.number_or("num_sampled", 0);
    const JsonValue& q = event["q"];
    const double expected = q.number_or("sum", 0);
    stats.expected_sum += expected;
    // Feasibility check (Eq. 3): the clamped strategy may exceed K_n only
    // through the probability floor; count how often it does.
    if (expected > capacity + 1e-9) ++stats.over_budget_rounds;
    stats.q_min = std::min(stats.q_min, q.number_or("min", 1.0));
    stats.q_max = std::max(stats.q_max, q.number_or("max", 0.0));
    stats.q_mean_sum += q.number_or("mean", 0);
    stats.q_entries += static_cast<std::uint64_t>(q.number_or("count", 0));
    stats.q_floor_clamped +=
        static_cast<std::uint64_t>(q.number_or("clamped_to_floor", 0));
    stats.ht_sum_total += event.number_or("ht_weight_sum", 0);
    stats.ht_var_total += event.number_or("ht_weight_variance", 0);
    const JsonValue& fault = event["faults"];
    if (fault.is_object()) {
      faults.seen = true;
      if (fault["outage"].is_bool() && fault["outage"].as_bool()) {
        ++faults.outage_rounds;
      }
      faults.dropped += static_cast<std::uint64_t>(fault.number_or("dropped", 0));
      faults.straggler_arrivals +=
          static_cast<std::uint64_t>(fault.number_or("straggler_arrivals", 0));
      faults.straggler_timeouts +=
          static_cast<std::uint64_t>(fault.number_or("straggler_timeouts", 0));
      faults.retries += static_cast<std::uint64_t>(fault.number_or("retries", 0));
      if (fault["survivors"].is_array()) {
        faults.survivors += fault["survivors"].as_array().size();
      }
      if (fault["lost"].is_array()) {
        faults.lost += fault["lost"].as_array().size();
      }
    }
  }
  for (const auto& [key, event] : eval_events) {
    if (evals == 0) first_eval = event;
    last_eval = event;
    best_accuracy = std::max(best_accuracy, event.number_or("test_accuracy", 0));
    ++evals;
  }
  for (const auto& [key, event] : cloud_events) {
    if (event["g_squared_summary"].is_object()) last_introspection = event;
    const JsonValue& lost = event["uploads_lost"];
    if (lost.is_array()) {
      faults.seen = true;
      faults.cloud_uploads_lost += lost.as_array().size();
      if (!lost.as_array().empty()) ++faults.cloud_rounds_with_loss;
    }
  }
  for (const auto& [key, event] : run_ends) {
    const JsonValue& phase_map = event["phases"];
    if (phase_map.is_object()) {
      for (const auto& [name, acc] : phase_map.as_object()) {
        PhaseStats& stats = phases[name];
        stats.count += static_cast<std::uint64_t>(acc.number_or("count", 0));
        stats.total_s += acc.number_or("total_s", 0);
        stats.max_s = std::max(stats.max_s, acc.number_or("max_s", 0));
      }
    }
    const JsonValue& comm_map = event["comm"];
    if (comm_map.is_object()) {
      comm.seen = true;
      comm.total_bytes +=
          static_cast<std::uint64_t>(comm_map.number_or("total_bytes", 0));
      comm.assumed_fp32_bytes += static_cast<std::uint64_t>(
          comm_map.number_or("assumed_fp32_bytes", 0));
      if (comm_map["mixed_model_sizes"].is_bool() &&
          comm_map["mixed_model_sizes"].as_bool()) {
        comm.mixed_model_sizes = true;
      }
      for (std::size_t i = 0; i < 6; ++i) {
        const JsonValue& link = comm_map[CommStats::kLinks[i]];
        if (!link.is_object()) continue;
        comm.messages[i] +=
            static_cast<std::uint64_t>(link.number_or("messages", 0));
        comm.bytes[i] += static_cast<std::uint64_t>(link.number_or("bytes", 0));
      }
    }
  }

  if (lines == 0) {
    std::cerr << path << ": empty trace\n";
    return 1;
  }

  std::cout << "=== trace summary: " << path << " ===\n"
            << lines << " events";
  if (parse_errors > 0) std::cout << " (" << parse_errors << " malformed)";
  std::cout << ", " << run_begins.size() << " run(s)\n";
  if (checkpoint_markers > 0) {
    std::cout << "checkpointed run: " << checkpoint_markers
              << " snapshot marker(s)";
    if (superseded_records > 0) std::cout << " — resumed";
    std::cout << '\n';
  }
  if (superseded_records > 0) {
    std::cout << "overlap from a crashed run's tail detected: "
              << superseded_records
              << " superseded record(s) deduplicated (last occurrence wins)\n";
  }
  if (run_begins.size() > run_ends.size()) {
    std::cout << "WARNING: " << (run_begins.size() - run_ends.size())
              << " run(s) missing a run_end — telemetry is truncated (the "
                 "run crashed, was killed, or is still in flight)\n";
  }
  std::cout << '\n';

  if (!run_begins.empty()) {
    mach::common::Table runs({"run", "sampler", "seed", "steps", "devices",
                              "edges", "T_g", "codec"});
    for (std::size_t i = 0; i < run_begins.size(); ++i) {
      const JsonValue& r = run_begins[i];
      runs.row()
          .cell(i + 1)
          .cell(r.string_or("sampler", "?"))
          .cell(static_cast<std::size_t>(r.number_or("seed", 0)))
          .cell(static_cast<std::size_t>(r.number_or("steps", 0)))
          .cell(static_cast<std::size_t>(r.number_or("num_devices", 0)))
          .cell(static_cast<std::size_t>(r.number_or("num_edges", 0)))
          .cell(static_cast<std::size_t>(r.number_or("cloud_interval", 0)))
          .cell(r.string_or("codec", "fp32"));
    }
    runs.print(std::cout);
    std::cout << '\n';
  }

  if (!phases.empty()) {
    double grand_total = 0.0;
    for (const auto& [name, stats] : phases) grand_total += stats.total_s;
    std::cout << "phase time breakdown (" << mach::common::format_double(grand_total, 3)
              << " s total across runs):\n";
    mach::common::Table table({"phase", "scopes", "total s", "share %",
                               "mean ms", "max ms"});
    // Sort by descending total so the hottest phase leads the report.
    std::vector<std::pair<std::string, PhaseStats>> sorted(phases.begin(),
                                                           phases.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second.total_s > b.second.total_s;
    });
    for (const auto& [name, stats] : sorted) {
      const double share =
          grand_total > 0.0 ? stats.total_s / grand_total * 100.0 : 0.0;
      const double mean_ms =
          stats.count > 0 ? stats.total_s / static_cast<double>(stats.count) * 1e3
                          : 0.0;
      table.row()
          .cell(name)
          .cell(stats.count)
          .cell(stats.total_s, 3)
          .cell(share, 1)
          .cell(mean_ms, 3)
          .cell(stats.max_s * 1e3, 3);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  if (!edges.empty()) {
    std::cout << "sampling health per edge (edge_agg events):\n";
    mach::common::Table table({"edge", "rounds", "avg |M|", "avg K_n",
                               "E[sampled]", "avg sampled", "q min", "q mean",
                               "q max", "floor %", "over-budget", "HT sum",
                               "HT var"});
    for (const auto& [edge, stats] : edges) {
      const double rounds = static_cast<double>(stats.rounds);
      const double floor_pct =
          stats.q_entries > 0
              ? static_cast<double>(stats.q_floor_clamped) /
                    static_cast<double>(stats.q_entries) * 100.0
              : 0.0;
      table.row()
          .cell(edge)
          .cell(stats.rounds)
          .cell(stats.devices_sum / rounds, 1)
          .cell(stats.capacity_sum / rounds, 2)
          .cell(stats.expected_sum / rounds, 2)
          .cell(stats.sampled_sum / rounds, 2)
          .cell(stats.q_min, 4)
          .cell(stats.q_mean_sum / rounds, 4)
          .cell(stats.q_max, 4)
          .cell(floor_pct, 1)
          .cell(stats.over_budget_rounds)
          .cell(stats.ht_sum_total / rounds, 3)
          .cell(stats.ht_var_total / rounds, 4);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  if (faults.seen) {
    const std::uint64_t reporting = faults.survivors + faults.lost;
    const double lost_pct =
        reporting > 0
            ? static_cast<double>(faults.lost) / static_cast<double>(reporting) * 100.0
            : 0.0;
    std::cout << "fault injection (realised):\n"
              << "  device updates lost: " << faults.lost << " of " << reporting
              << " sampled (" << mach::common::format_double(lost_pct, 1)
              << "%) — " << faults.dropped << " dropouts, "
              << faults.straggler_timeouts << " straggler timeouts\n"
              << "  stragglers recovered: " << faults.straggler_arrivals
              << " arrivals using " << faults.retries << " retransmissions\n"
              << "  edge outage rounds: " << faults.outage_rounds << "\n"
              << "  cloud uploads lost: " << faults.cloud_uploads_lost << " across "
              << faults.cloud_rounds_with_loss << " cloud round(s)\n\n";
  }

  if (comm.seen) {
    std::cout << "communication bytes by link (encoded sizes, run_end ledger):\n";
    mach::common::Table table({"link", "messages", "bytes", "KiB", "avg B/msg"});
    for (std::size_t i = 0; i < 6; ++i) {
      table.row()
          .cell(CommStats::kLinks[i])
          .cell(comm.messages[i])
          .cell(comm.bytes[i])
          .cell(static_cast<double>(comm.bytes[i]) / 1024.0, 1)
          .cell(comm.messages[i] > 0
                    ? static_cast<double>(comm.bytes[i]) /
                          static_cast<double>(comm.messages[i])
                    : 0.0,
                1);
    }
    table.print(std::cout);
    std::cout << "  total " << comm.total_bytes
              << " bytes on the wire (retry_upload already counted inside "
                 "device_upload); uncompressed fp32 would be "
              << comm.assumed_fp32_bytes << " bytes";
    if (comm.total_bytes > 0 && comm.assumed_fp32_bytes > 0) {
      std::cout << " ("
                << mach::common::format_double(
                       static_cast<double>(comm.assumed_fp32_bytes) /
                           static_cast<double>(comm.total_bytes),
                       2)
                << "x)";
    }
    std::cout << '\n';
    if (comm.mixed_model_sizes) {
      std::cout << "  WARNING: mixed model sizes were folded into one cost "
                   "accumulator — fp32-equivalent totals are a lower bound "
                   "(the encoded ledger above stays exact)\n";
    }
    std::cout << '\n';
  }

  if (evals > 0) {
    std::cout << "evaluation trajectory: " << evals << " points, accuracy "
              << mach::common::format_double(
                     first_eval.number_or("test_accuracy", 0), 4)
              << " (t=" << static_cast<std::size_t>(first_eval.number_or("t", 0))
              << ") -> "
              << mach::common::format_double(last_eval.number_or("test_accuracy", 0),
                                             4)
              << " (t=" << static_cast<std::size_t>(last_eval.number_or("t", 0))
              << "), best "
              << mach::common::format_double(best_accuracy, 4) << "\n\n";
  }

  if (last_introspection.is_object()) {
    const JsonValue& summary = last_introspection["g_squared_summary"];
    std::cout << "sampler experience at cloud round "
              << static_cast<std::size_t>(last_introspection.number_or("round", 0))
              << " (t=" << static_cast<std::size_t>(last_introspection.number_or("t", 0))
              << "): G~^2 min/mean/max = "
              << mach::common::format_double(summary.number_or("min", 0), 4) << " / "
              << mach::common::format_double(summary.number_or("mean", 0), 4) << " / "
              << mach::common::format_double(summary.number_or("max", 0), 4) << '\n';
    const JsonValue& g = last_introspection["g_squared"];
    const JsonValue& buffers = last_introspection["buffer_sizes"];
    const JsonValue& participations = last_introspection["participations"];
    if (g.is_array() && top_devices > 0) {
      const auto& values = g.as_array();
      std::vector<std::size_t> order(values.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return values[a].as_number() > values[b].as_number();
      });
      mach::common::Table table({"device", "G~^2", "buffered", "participations"});
      const std::size_t rows = std::min(top_devices, order.size());
      for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t device = order[i];
        const auto at = [device](const JsonValue& array) {
          return array.is_array() && device < array.as_array().size()
                     ? array.as_array()[device].as_number()
                     : 0.0;
        };
        table.row()
            .cell(device)
            .cell(values[device].as_number(), 4)
            .cell(static_cast<std::size_t>(at(buffers)))
            .cell(static_cast<std::size_t>(at(participations)));
      }
      std::cout << "top " << rows << " devices by experience:\n";
      table.print(std::cout);
    }
    std::cout << '\n';
  }

  if (!event_counts.empty()) {
    std::cout << "event counts:";
    for (const auto& [kind, count] : event_counts) {
      std::cout << ' ' << kind << '=' << count;
    }
    std::cout << '\n';
  }
  return 0;
}
