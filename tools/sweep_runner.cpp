// Self-healing sweep front-end: expand a JSON sweep spec (see sweep/spec.h)
// and supervise one experiment_runner child per point — watchdog on the
// status.json heartbeat, retry with backoff resuming from snapshots,
// quarantine after repeated failures, crash-safe journal, deterministic
// aggregated report.
//
//   ./sweep_runner --spec fig3.json --out /tmp/fig3 --parallel 4
//   ./trace_summary /tmp/fig3/report.json
//
// SIGINT/SIGTERM drain gracefully: children checkpoint and exit, the journal
// stays resumable, and rerunning the same command finishes the sweep without
// redoing completed points.
//
// Exit codes: 0 all points completed; 1 completed but some quarantined;
// 2 bad spec/usage; 3 drained (rerun to continue); 4 internal error.
#include <csignal>
#include <filesystem>
#include <iostream>

#include "common/cli.h"
#include "sweep/orchestrator.h"
#include "sweep/spec.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitQuarantined = 1;
constexpr int kExitUsage = 2;
constexpr int kExitDrained = 3;
constexpr int kExitInternal = 4;

volatile std::sig_atomic_t g_drain_requested = 0;
extern "C" void request_drain(int) { g_drain_requested = 1; }

/// Default runner: the experiment_runner built next to this binary
/// (build/tools/sweep_runner -> build/examples/experiment_runner).
std::string default_runner(const char* argv0) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path self = fs::weakly_canonical(fs::path(argv0), ec);
  if (ec) return "";
  const fs::path candidate =
      self.parent_path().parent_path() / "examples" / "experiment_runner";
  return fs::exists(candidate, ec) ? candidate.string() : "";
}

}  // namespace

int main(int argc, char** argv) {
  mach::common::CliParser cli(
      "Run a sweep spec under supervision: watchdog, retry/backoff with "
      "snapshot resume, quarantine, crash-safe journal, aggregated report.");
  cli.add_flag("spec", std::string(""), "sweep spec JSON file (required)");
  cli.add_flag("out", std::string(""),
               "sweep output directory: journal.machswj, runs/<fingerprint>/, "
               "report.json (required; reuse it to resume)");
  cli.add_flag("runner", std::string(""),
               "experiment_runner binary (default: found next to this one)");
  cli.add_flag("parallel", static_cast<std::int64_t>(1),
               "concurrent supervised runs");
  cli.add_flag("max_attempts", static_cast<std::int64_t>(3),
               "failures per point before quarantine");
  cli.add_flag("watchdog", 30.0,
               "SIGKILL a run whose heartbeat shows no progress for this many "
               "seconds");
  cli.add_flag("poll", 0.05, "supervision loop period in seconds");
  cli.add_flag("backoff_base", 0.25, "first retry delay in seconds");
  cli.add_flag("backoff_cap", 5.0, "retry delay ceiling in seconds");
  cli.add_flag("checkpoint_every", static_cast<std::int64_t>(5),
               "snapshot cadence passed to every child");
  cli.add_flag("dry_run", false,
               "print the expanded points (fingerprint + config) and exit");
  cli.add_flag("kill_after_points", static_cast<std::int64_t>(0),
               "crash-test harness: SIGKILL this orchestrator after N points "
               "complete (0 = off); children die with it");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? kExitOk : kExitUsage;

  const std::string spec_path = cli.get_string("spec");
  if (spec_path.empty()) {
    std::cerr << "--spec is required (see --help)\n";
    return kExitUsage;
  }

  mach::sweep::SweepSpec spec;
  try {
    spec = mach::sweep::SweepSpec::parse_file(spec_path);
  } catch (const mach::sweep::SpecError& error) {
    std::cerr << error.what() << '\n';
    return kExitUsage;
  }
  if (spec.duplicates_dropped > 0) {
    std::cout << "note: " << spec.duplicates_dropped
              << " duplicate point(s) collapsed by fingerprint\n";
  }

  if (cli.get_bool("dry_run")) {
    std::cout << "sweep \"" << spec.name << "\": " << spec.points.size()
              << " point(s)\n";
    for (const auto& point : spec.points) {
      std::cout << point.fingerprint << "  ";
      bool first = true;
      for (const auto& [key, value] : point.config) {
        std::cout << (first ? "" : " ") << "--" << key << '=' << value;
        first = false;
      }
      std::cout << '\n';
    }
    return kExitOk;
  }

  mach::sweep::OrchestratorOptions options;
  options.out_dir = cli.get_string("out");
  if (options.out_dir.empty()) {
    std::cerr << "--out is required (see --help)\n";
    return kExitUsage;
  }
  options.runner_binary = cli.get_string("runner");
  if (options.runner_binary.empty()) {
    options.runner_binary = default_runner(argv[0]);
  }
  if (options.runner_binary.empty()) {
    std::cerr << "cannot locate experiment_runner — pass --runner\n";
    return kExitUsage;
  }
  options.parallel = static_cast<std::size_t>(cli.get_int("parallel"));
  options.max_attempts =
      static_cast<std::uint32_t>(cli.get_int("max_attempts"));
  options.watchdog_seconds = cli.get_double("watchdog");
  options.poll_seconds = cli.get_double("poll");
  options.backoff_base_seconds = cli.get_double("backoff_base");
  options.backoff_cap_seconds = cli.get_double("backoff_cap");
  options.checkpoint_every = cli.get_int("checkpoint_every");
  options.kill_after_points =
      static_cast<std::size_t>(cli.get_int("kill_after_points"));
  options.drain_flag = &g_drain_requested;

  std::signal(SIGINT, request_drain);
  std::signal(SIGTERM, request_drain);

  mach::sweep::SweepResult result;
  try {
    result = mach::sweep::run_sweep(spec, options);
  } catch (const std::exception& error) {
    std::cerr << "sweep failed: " << error.what() << '\n';
    return kExitInternal;
  }

  std::cout << "sweep \"" << spec.name << "\": " << result.done << " / "
            << result.total << " done (" << result.ran_here
            << " in this invocation), " << result.quarantined
            << " quarantined, " << result.pending << " pending\n";
  if (result.drained) {
    std::cout << "drained: rerun the same command to finish the sweep\n";
    return kExitDrained;
  }
  if (!result.report_path.empty()) {
    std::cout << "report: " << result.report_path
              << " (render with trace_summary)\n";
  }
  return result.quarantined > 0 ? kExitQuarantined : kExitOk;
}
