// Mobility-sensitivity ablation: how does device churn (controlled by the
// Markov model's stay probability) affect each sampling strategy?
//
// This probes the paper's central premise — that device mobility is what
// breaks traditional fixed-probability sampling. At stay_prob -> 1 devices
// never move (a static HFL system); lower values mean more cross-edge churn.
//
//   ./ablation_mobility [--task mnist|fmnist|cifar10] [--stay 0.95,0.8,0.5]
//   env: REPRO_FULL=1, BENCH_SEEDS=N
#include "bench_util.h"

#include <sstream>

#include "common/table.h"
#include "mobility/mobility_model.h"
#include "mobility/stations.h"

namespace {

std::vector<double> parse_doubles(const std::string& flag) {
  std::vector<double> out;
  std::stringstream ss(flag);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}

/// Edge-level churn of the schedule a config would generate.
double config_churn(const mach::hfl::ExperimentConfig& config) {
  const auto artifacts = mach::hfl::build_experiment(config);
  return artifacts.schedule.churn_rate();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli("Mobility-churn sensitivity of the sampling strategies.");
  cli.add_flag("task", std::string("mnist"), "task: mnist|fmnist|cifar10");
  cli.add_flag("stay", std::string("0.95,0.8,0.5"),
               "comma-separated Markov stay probabilities");
  cli.add_flag("csv", std::string("ablation_mobility.csv"), "CSV output path");
  bench::add_threads_flag(cli);
  bench::add_trace_flag(cli);
  bench::add_phase_times_flag(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  bench::print_mode_banner("Mobility ablation: churn sensitivity");
  const auto seeds = bench::bench_seeds();
  const auto stay_probs = parse_doubles(cli.get_string("stay"));
  const auto tasks = bench::parse_tasks(cli.get_string("task"));

  const auto trace = bench::open_bench_trace(cli.get_string("trace"));
  obs::PhaseTimerSet sweep_phases;
  common::Table table({"task", "stay prob", "edge churn", "MACH", "MACH-P", "US",
                       "CS", "SS"});
  for (const auto task : tasks) {
    for (const double stay : stay_probs) {
      auto config = hfl::ExperimentConfig::preset(task);
      bench::apply_threads_flag(cli, config);
      config.stay_prob = stay;
      auto& row = table.row()
                      .cell(data::task_name(task))
                      .cell(stay, 2)
                      .cell(config_churn(config), 3);
      for (const auto& name : core::paper_algorithms()) {
        const auto result =
            bench::run_algo_curve(config, name, seeds, trace.get());
        sweep_phases.merge(result.phases);
        row.cell(bench::steps_cell(result, config.horizon));
      }
      std::cout << data::task_name(task) << " stay=" << stay << " done\n";
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  if (cli.get_bool("phase_times")) bench::print_phase_times(sweep_phases);
  if (table.write_csv(cli.get_string("csv"))) {
    std::cout << "\nwritten to " << cli.get_string("csv") << '\n';
  }
  if (trace != nullptr) {
    std::cout << "\ntrace written to " << cli.get_string("trace") << " ("
              << trace->lines_written() << " events)\n";
  }
  return 0;
}
