// Scale-out bench: wall-time and memory envelope of the ScaleSimulator
// across devices x edges, written as BENCH_scale.json for the CI perf gate.
//
// Sweeps devices in {1k, 10k, 100k, 1M} x edges in {10, 100, 1k} (combos
// with more edges than devices are skipped), runs a few warmup rounds, then
// times `--rounds` steady-state rounds and records:
//   * round_p50_ms / round_p95_ms / round_max_ms  — per-round wall time
//   * setup_seconds                               — engine construction
//   * state_bytes / per_device_bytes              — accounted engine memory
//   * peak_rss_kb                                 — process high-water mark
//
// Gates (exit 1 on violation):
//   * budget:      state_bytes <= ScaleSimulator::bytes_per_device() * M
//                  + per-edge/constant overhead, for every case;
//   * latency:     round_p50_ms < 1000 for every case (the tentpole's
//                  1M-device sub-second round);
//   * near-linear: for a fixed edge count, p50 grows no faster than 4x the
//                  device ratio between successive scales;
//   * --rss_ceiling_mb (when > 0): peak RSS stays under the ceiling — the
//     CI scale-smoke stage runs 10k devices under this flag.
//
//   ./scale [--devices 1000,10000,...] [--edges 10,100,1000] [--rounds N]
//           [--alias] [--rss_ceiling_mb N] [--out BENCH_scale.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/scale_sim.h"
#include "obs/json.h"
#include "obs/resource.h"

namespace {

std::vector<std::size_t> parse_size_list(const std::string& flag) {
  std::vector<std::size_t> values;
  std::stringstream stream(flag);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    values.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  if (values.empty()) {
    throw std::invalid_argument("empty size list: " + flag);
  }
  return values;
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(index, sorted_ms.size() - 1)];
}

struct CaseResult {
  std::size_t devices = 0;
  std::size_t edges = 0;
  double setup_seconds = 0.0;
  double round_p50_ms = 0.0;
  double round_p95_ms = 0.0;
  double round_max_ms = 0.0;
  std::uint64_t participants_count = 0;  // per timed window
  std::uint64_t movers_count = 0;
  std::uint64_t state_bytes = 0;
  double per_device_bytes = 0.0;
  long peak_rss_kb = 0;
  bool within_budget = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mach;
  using clock = std::chrono::steady_clock;

  common::CliParser cli(
      "ScaleSimulator wall-time and memory sweep over devices x edges.");
  cli.add_flag("devices", std::string("1000,10000,100000,1000000"),
               "comma-separated device counts");
  cli.add_flag("edges", std::string("10,100,1000"),
               "comma-separated edge counts");
  cli.add_flag("rounds", static_cast<std::int64_t>(20),
               "timed steady-state rounds per case (after 3 warmup rounds)");
  cli.add_flag("alias", false, "use alias-table batch draws instead of "
               "Fenwick without-replacement draws");
  cli.add_flag("rss_ceiling_mb", static_cast<std::int64_t>(0),
               "fail if peak RSS exceeds this many MiB (0 = no ceiling)");
  cli.add_flag("out", std::string("BENCH_scale.json"), "JSON output path");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const auto device_counts = parse_size_list(cli.get_string("devices"));
  const auto edge_counts = parse_size_list(cli.get_string("edges"));
  const std::size_t rounds =
      static_cast<std::size_t>(std::max<std::int64_t>(cli.get_int("rounds"), 1));
  constexpr std::size_t kWarmupRounds = 3;

  obs::ResourceSampler sampler(0.05);
  std::vector<CaseResult> results;
  bool all_within_budget = true;
  bool all_sub_second = true;

  common::Table table({"devices", "edges", "p50 ms", "p95 ms", "max ms",
                       "B/device", "peak RSS MiB"});
  for (const std::size_t edges : edge_counts) {
    for (const std::size_t devices : device_counts) {
      if (edges > devices) continue;

      core::ScaleConfig config;
      config.num_devices = devices;
      config.num_edges = edges;
      config.seed = 1000;
      config.use_alias_draws = cli.get_bool("alias");

      const auto setup_start = clock::now();
      core::ScaleSimulator sim(config);
      CaseResult r;
      r.devices = devices;
      r.edges = edges;
      r.setup_seconds =
          std::chrono::duration<double>(clock::now() - setup_start).count();

      for (std::size_t w = 0; w < kWarmupRounds; ++w) sim.step();
      std::vector<double> round_ms;
      round_ms.reserve(rounds);
      for (std::size_t round = 0; round < rounds; ++round) {
        const auto start = clock::now();
        const auto stats = sim.step();
        round_ms.push_back(
            std::chrono::duration<double, std::milli>(clock::now() - start)
                .count());
        r.participants_count += stats.participants;
        r.movers_count += stats.movers;
        sampler.maybe_sample();
      }
      std::sort(round_ms.begin(), round_ms.end());
      r.round_p50_ms = percentile(round_ms, 0.50);
      r.round_p95_ms = percentile(round_ms, 0.95);
      r.round_max_ms = round_ms.back();

      r.state_bytes = sim.memory_bytes();
      r.per_device_bytes =
          static_cast<double>(r.state_bytes) / static_cast<double>(devices);
      sampler.force_sample();
      r.peak_rss_kb = sampler.latest().usage.peak_rss_kb;

      // The tentpole's memory contract: fixed per-device budget plus
      // per-edge and constant overhead, never allocator luck.
      const std::uint64_t budget =
          static_cast<std::uint64_t>(core::ScaleSimulator::bytes_per_device()) *
              devices +
          static_cast<std::uint64_t>(edges) * 4096 + (1u << 20);
      r.within_budget = r.state_bytes <= budget;
      all_within_budget = all_within_budget && r.within_budget;
      all_sub_second = all_sub_second && r.round_p50_ms < 1000.0;

      table.row()
          .cell(static_cast<double>(devices), 0)
          .cell(static_cast<double>(edges), 0)
          .cell(r.round_p50_ms, 3)
          .cell(r.round_p95_ms, 3)
          .cell(r.round_max_ms, 3)
          .cell(r.per_device_bytes, 1)
          .cell(static_cast<double>(r.peak_rss_kb) / 1024.0, 1);
      results.push_back(r);
      std::cout << "  " << devices << " devices x " << edges << " edges done"
                << (r.within_budget ? "" : "  [OVER BUDGET]") << "\n";
    }
  }

  std::cout << '\n';
  table.print(std::cout);

  // Near-linear gate: within one edge count, p50 may grow at most 4x faster
  // than the device count between successive sweep points (generous slack
  // for timer noise at the sub-millisecond small scales).
  bool near_linear = true;
  for (const std::size_t edges : edge_counts) {
    const CaseResult* previous = nullptr;
    for (const CaseResult& r : results) {
      if (r.edges != edges) continue;
      if (previous != nullptr && previous->round_p50_ms > 0.05) {
        const double device_ratio = static_cast<double>(r.devices) /
                                    static_cast<double>(previous->devices);
        const double time_ratio = r.round_p50_ms / previous->round_p50_ms;
        if (time_ratio > 4.0 * device_ratio) {
          std::cerr << "FAIL: super-linear scaling at " << r.devices << "x"
                    << edges << ": time ratio " << time_ratio
                    << " vs device ratio " << device_ratio << "\n";
          near_linear = false;
        }
      }
      previous = &r;
    }
  }

  bool rss_ok = true;
  const std::int64_t ceiling_mb = cli.get_int("rss_ceiling_mb");
  const long final_rss_kb = sampler.latest().usage.peak_rss_kb;
  if (ceiling_mb > 0 && final_rss_kb > ceiling_mb * 1024) {
    std::cerr << "FAIL: peak RSS " << final_rss_kb / 1024 << " MiB exceeds "
              << ceiling_mb << " MiB ceiling\n";
    rss_ok = false;
  }
  if (!all_within_budget) {
    std::cerr << "FAIL: accounted state exceeds the per-device byte budget\n";
  }
  if (!all_sub_second) {
    std::cerr << "FAIL: a case's median round exceeded 1 s\n";
  }

  std::string json_results = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    obs::JsonObjectWriter w;
    w.begin();
    w.field("devices", static_cast<std::uint64_t>(r.devices));
    w.field("edges", static_cast<std::uint64_t>(r.edges));
    w.field("setup_seconds", r.setup_seconds);
    w.field("round_p50_ms", r.round_p50_ms);
    w.field("round_p95_ms", r.round_p95_ms);
    w.field("round_max_ms", r.round_max_ms);
    w.field("participants_count", r.participants_count);
    w.field("movers_count", r.movers_count);
    w.field("state_bytes", r.state_bytes);
    w.field("per_device_bytes", r.per_device_bytes);
    w.field("peak_rss_kb", static_cast<std::int64_t>(r.peak_rss_kb));
    if (i != 0) json_results += ',';
    json_results += w.end();
  }
  json_results += ']';

  obs::JsonObjectWriter w;
  w.begin();
  w.field("bench", "scale");
  w.field("seed", static_cast<std::uint64_t>(1000));
  w.field("rounds", static_cast<std::uint64_t>(rounds));
  w.field("alias_draws", cli.get_bool("alias"));
  w.field("all_within_budget", all_within_budget);
  w.field("near_linear", near_linear);
  w.raw_field("hardware", obs::hardware_json());
  w.raw_field("results", json_results);

  const std::string out_path = cli.get_string("out");
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << w.end() << "\n";
  std::cout << "\nresults written to " << out_path << "\n";

  return (all_within_budget && all_sub_second && near_linear && rss_ok) ? 0 : 1;
}
