// Ablation bench for the design choices called out in DESIGN.md §5:
//   1. transfer smoothing S(.) (Eq. 17)  — off: raw Eq. 16 water-filled;
//   2. UCB exploration term (Eq. 15 B)   — off: pure greedy exploitation;
//   3. buffer clearing at cloud rounds   — off: stale persistent buffer;
//   4. optimistic initialisation          — off: unexplored devices score 0;
//   5. aggregation form                   — literal Eq. (5) parameter HT
//      weighting instead of the update form (gradient-explosion risk).
//
//   ./ablation_mach [--task mnist|fmnist|cifar10]
//   env: REPRO_FULL=1, BENCH_SEEDS=N
#include "bench_util.h"

#include "common/table.h"
#include "core/mach.h"

namespace {

using mach::core::MachOptions;

struct Variant {
  std::string name;
  MachOptions options;
  // Baseline variants run under the engine default (literal Eq. 5); the two
  // aggregation variants override it.
  mach::hfl::AggregationForm aggregation = mach::hfl::AggregationForm::Literal;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"MACH (full)", MachOptions{}});

  MachOptions no_transfer;
  no_transfer.use_transfer = false;
  out.push_back({"no transfer S(.)", no_transfer});

  MachOptions no_explore;
  no_explore.ucb.use_exploration = false;
  out.push_back({"no UCB exploration", no_explore});

  MachOptions keep_buffer;
  keep_buffer.ucb.clear_buffer_on_cloud_round = false;
  out.push_back({"persistent buffer", keep_buffer});

  MachOptions pessimistic;
  pessimistic.ucb.optimistic_init = false;
  out.push_back({"pessimistic init", pessimistic});

  out.push_back({"self-normalised aggregation", MachOptions{},
                 mach::hfl::AggregationForm::SelfNormalized});
  out.push_back({"update-form aggregation", MachOptions{},
                 mach::hfl::AggregationForm::UpdateForm});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli("MACH design-choice ablations.");
  cli.add_flag("task", std::string("mnist"), "task: mnist|fmnist|cifar10");
  cli.add_flag("csv", std::string("ablation_mach.csv"), "CSV output path");
  bench::add_threads_flag(cli);
  bench::add_trace_flag(cli);
  bench::add_phase_times_flag(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  bench::print_mode_banner("MACH ablations");
  const auto seeds = bench::bench_seeds();
  const auto tasks = bench::parse_tasks(cli.get_string("task"));
  auto config = hfl::ExperimentConfig::preset(tasks.front());
  bench::apply_threads_flag(cli, config);

  std::cout << "task " << data::task_name(config.task) << ", target "
            << config.target_accuracy << ", horizon " << config.horizon << "\n\n";

  const auto trace = bench::open_bench_trace(cli.get_string("trace"));
  obs::PhaseTimerSet sweep_phases;
  common::Table table({"variant", "steps to target", "reach rate", "final acc"});
  for (const auto& variant : variants()) {
    auto run_config = config;
    run_config.hfl.aggregation = variant.aggregation;
    std::vector<hfl::MetricsRecorder> runs;
    for (const auto seed : seeds) {
      core::MachSampler sampler(variant.options);
      auto run =
          hfl::run_experiment(run_config.with_seed(seed), sampler, trace.get());
      sweep_phases.merge(run.phases);
      runs.push_back(std::move(run.metrics));
    }
    const auto curve = hfl::average_curves(runs);
    const auto steps = hfl::curve_time_to_target(curve, config.target_accuracy);
    double reached = 0.0;
    for (const auto& run : runs) {
      if (run.time_to_accuracy(config.target_accuracy)) reached += 1.0;
    }
    table.row()
        .cell(variant.name)
        .cell(steps ? std::to_string(*steps) : ">" + std::to_string(config.horizon))
        .cell(reached / static_cast<double>(runs.size()), 2)
        .cell(curve.empty() ? 0.0 : curve.back().test_accuracy, 4);
    std::cout << variant.name << " done\n";
  }
  std::cout << '\n';
  table.print(std::cout);
  if (cli.get_bool("phase_times")) bench::print_phase_times(sweep_phases);
  if (table.write_csv(cli.get_string("csv"))) {
    std::cout << "\nwritten to " << cli.get_string("csv") << '\n';
  }
  if (trace != nullptr) {
    std::cout << "\ntrace written to " << cli.get_string("trace") << " ("
              << trace->lines_written() << " events)\n";
  }
  return 0;
}
