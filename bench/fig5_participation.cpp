// Figure 5 reproduction: time steps to reach the target accuracy under
// different device participation proportions (0.4 - 0.7). Remark 1 predicts
// all methods speed up with more participation; the paper further observes
// MACH's relative gain shrinking as participation grows.
//
//   ./fig5_participation [--task all|mnist|fmnist|cifar10]
//                        [--participation 0.4,0.5,0.6,0.7]
//   env: REPRO_FULL=1, BENCH_SEEDS=N
#include "bench_util.h"

#include <sstream>

#include "common/table.h"

namespace {

std::vector<double> parse_doubles(const std::string& flag) {
  std::vector<double> out;
  std::stringstream ss(flag);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli(
      "Figure 5: time-to-target under different participation proportions.");
  cli.add_flag("task", std::string("all"), "task filter: all|mnist|fmnist|cifar10");
  cli.add_flag("participation", std::string("0.4,0.5,0.6,0.7"),
               "comma-separated participation proportions");
  cli.add_flag("csv", std::string("fig5_participation.csv"), "CSV output path");
  bench::add_threads_flag(cli);
  bench::add_faults_flag(cli);
  bench::add_codec_flag(cli);
  bench::add_checkpoint_flags(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  bench::print_mode_banner("Figure 5: varying participation proportion");
  const auto seeds = bench::bench_seeds();
  const auto proportions = parse_doubles(cli.get_string("participation"));

  common::Table table({"task", "participation", "MACH", "MACH-P", "US", "CS", "SS",
                       "MACH vs best basic"});
  for (const auto task : bench::parse_tasks(cli.get_string("task"))) {
    for (const double participation : proportions) {
      auto config = hfl::ExperimentConfig::preset(task);
      bench::apply_threads_flag(cli, config);
      bench::apply_faults_flag(cli, config);
      bench::apply_codec_flag(cli, config);
      bench::apply_checkpoint_flags(cli, config);
      config.hfl.participation = participation;

      auto& row =
          table.row().cell(data::task_name(task)).cell(participation, 1);
      double mach_steps = 0.0;
      double best_basic = 1e300;
      for (const auto& name : core::paper_algorithms()) {
        const auto result = bench::run_algo_curve(config, name, seeds);
        row.cell(bench::steps_cell(result, config.horizon));
        const double curve_steps = result.steps_to_target
                                   ? static_cast<double>(*result.steps_to_target)
                                   : static_cast<double>(config.horizon);
        if (name == "mach") mach_steps = curve_steps;
        if (name == "uniform" || name == "class_balance" || name == "statistical") {
          best_basic = std::min(best_basic, curve_steps);
        }
      }
      const double saved = best_basic > 0.0
                               ? (best_basic - mach_steps) / best_basic * 100.0
                               : 0.0;
      row.cell(common::format_double(saved, 2) + "%");
      std::cout << data::task_name(task) << " participation=" << participation
                << " done\n";
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  if (table.write_csv(cli.get_string("csv"))) {
    std::cout << "\nwritten to " << cli.get_string("csv") << '\n';
  }
  return 0;
}
