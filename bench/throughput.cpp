// Runtime-subsystem throughput bench: devices-trained/sec and steps/sec of
// the parallel execution runtime on one synthetic workload, swept over a
// list of thread counts (default 1/2/4 plus the hardware thread count).
//
// Unlike the figure benches this measures the engine, not the paper: every
// sweep point replays the *same* simulation (bitwise-identical global
// parameters, asserted at the end), so any throughput difference is pure
// runtime behaviour. Results are printed as a table and written as
// BENCH_runtime.json for trend tracking.
//
//   ./throughput [--threads_list 1,2,4,0] [--steps 8] [--out BENCH_runtime.json]
#include "bench_util.h"

#include <algorithm>
#include <fstream>

#include "common/table.h"
#include "obs/json.h"
#include "obs/resource.h"
#include "runtime/parallel_config.h"

namespace {

using namespace mach;

std::vector<std::size_t> parse_thread_list(const std::string& flag) {
  // Comma-separated counts; 0 resolves to the hardware thread count and
  // duplicates collapse (so the default list degrades gracefully on small
  // machines).
  std::vector<std::size_t> threads;
  std::size_t value = 0;
  bool have_digit = false;
  for (const char c : flag + ",") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      have_digit = true;
    } else if (c == ',') {
      if (!have_digit) throw std::invalid_argument("bad --threads_list: " + flag);
      threads.push_back(
          runtime::resolve_threads(runtime::ParallelConfig{value}));
      value = 0;
      have_digit = false;
    } else {
      throw std::invalid_argument("bad --threads_list: " + flag);
    }
  }
  std::vector<std::size_t> unique;
  for (const std::size_t t : threads) {
    if (std::find(unique.begin(), unique.end(), t) == unique.end()) {
      unique.push_back(t);
    }
  }
  return unique;
}

struct SweepPoint {
  std::size_t threads = 0;
  double wall_seconds = 0.0;
  double train_seconds = 0.0;     // DeviceTraining phase wall time
  std::uint64_t devices_trained = 0;
  double devices_per_second = 0.0;
  double steps_per_second = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli(
      "Runtime throughput: devices-trained/sec across thread counts.");
  cli.add_flag("threads_list", std::string("1,2,4,0"),
               "comma-separated thread counts to sweep (0 = all hardware "
               "threads; duplicates collapse)");
  cli.add_flag("devices", static_cast<std::int64_t>(24), "devices");
  cli.add_flag("edges", static_cast<std::int64_t>(3), "edges");
  cli.add_flag("steps", static_cast<std::int64_t>(8), "time steps per run");
  cli.add_flag("local_epochs", static_cast<std::int64_t>(6), "I per device");
  cli.add_flag("batch", static_cast<std::int64_t>(24), "local batch size");
  cli.add_flag("hidden", static_cast<std::int64_t>(160), "MLP hidden width");
  cli.add_flag("sampler", std::string("mach"), "sampling strategy to drive");
  cli.add_flag("out", std::string("BENCH_runtime.json"), "JSON output path");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  // One fixed synthetic workload, sized so device training dominates: a
  // wider MLP than the smoke preset and 6 local epochs per sampled device.
  auto config = hfl::ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = static_cast<std::size_t>(cli.get_int("devices"));
  config.num_edges = static_cast<std::size_t>(cli.get_int("edges"));
  config.train_per_device = 40;
  config.test_examples = 256;
  config.mlp_hidden = static_cast<std::size_t>(cli.get_int("hidden"));
  config.data_spec.height = 12;
  config.data_spec.width = 12;
  config.horizon = static_cast<std::size_t>(cli.get_int("steps"));
  config.hfl.local_epochs = static_cast<std::size_t>(cli.get_int("local_epochs"));
  config.hfl.batch_size = static_cast<std::size_t>(cli.get_int("batch"));
  config.hfl.participation = 0.6;
  config = config.with_seed(11);

  const auto thread_counts = parse_thread_list(cli.get_string("threads_list"));
  const auto artifacts = hfl::build_experiment(config);
  const auto hardware = runtime::resolve_threads(runtime::ParallelConfig{0});

  std::cout << "=== runtime throughput ===\n"
            << "workload: " << config.num_devices << " devices / "
            << config.num_edges << " edges, I=" << config.hfl.local_epochs
            << ", batch " << config.hfl.batch_size << ", hidden "
            << config.mlp_hidden << ", " << config.horizon << " steps, sampler "
            << cli.get_string("sampler") << "\n"
            << "hardware threads: " << hardware << "\n\n";

  std::vector<SweepPoint> points;
  std::vector<float> reference_params;
  bool identical = true;
  for (const std::size_t threads : thread_counts) {
    hfl::HflOptions options = config.hfl;
    options.seed = config.seed;
    options.parallel.threads = threads;
    hfl::HflSimulator simulator(artifacts.train, artifacts.test,
                                artifacts.partition, artifacts.schedule,
                                hfl::make_model_factory(config), options);
    auto sampler = core::make_sampler(cli.get_string("sampler"));
    const bench::Stopwatch watch;
    simulator.run(*sampler, config.horizon);
    SweepPoint point;
    point.threads = threads;
    point.wall_seconds = watch.seconds();
    point.train_seconds =
        simulator.phase_timers()[obs::Phase::DeviceTraining].total_seconds;
    const obs::MetricsSnapshot snapshot = simulator.metrics_registry().snapshot();
    for (const auto& entry : snapshot.counters) {
      if (entry.name == "devices_trained") point.devices_trained = entry.value;
    }
    if (point.train_seconds > 0.0) {
      point.devices_per_second =
          static_cast<double>(point.devices_trained) / point.train_seconds;
    }
    if (point.wall_seconds > 0.0) {
      point.steps_per_second =
          static_cast<double>(config.horizon) / point.wall_seconds;
    }
    points.push_back(point);
    if (reference_params.empty()) {
      reference_params = simulator.global_parameters();
    } else if (simulator.global_parameters() != reference_params) {
      identical = false;
    }
  }

  const double serial_rate = points.front().devices_per_second;
  common::Table table({"threads", "wall s", "train s", "devices/s", "steps/s",
                       "speedup"});
  for (const auto& p : points) {
    table.row()
        .cell(p.threads)
        .cell(p.wall_seconds, 3)
        .cell(p.train_seconds, 3)
        .cell(p.devices_per_second, 1)
        .cell(p.steps_per_second, 2)
        .cell(serial_rate > 0.0 ? p.devices_per_second / serial_rate : 0.0, 2);
  }
  table.print(std::cout);
  std::cout << "\nglobal parameters across thread counts: "
            << (identical ? "bitwise identical" : "MISMATCH (bug!)") << "\n";

  std::string results = "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    obs::JsonObjectWriter w;
    w.begin();
    w.field("threads", static_cast<std::uint64_t>(p.threads));
    w.field("wall_seconds", p.wall_seconds);
    w.field("device_training_seconds", p.train_seconds);
    w.field("devices_trained", p.devices_trained);
    w.field("devices_per_second", p.devices_per_second);
    w.field("steps_per_second", p.steps_per_second);
    w.field("speedup_vs_serial",
            serial_rate > 0.0 ? p.devices_per_second / serial_rate : 0.0);
    if (i != 0) results += ',';
    results += w.end();
  }
  results += ']';

  obs::JsonObjectWriter w;
  w.begin();
  w.field("bench", "runtime_throughput");
  w.field("hardware_threads", static_cast<std::uint64_t>(hardware));
  w.field("sampler", cli.get_string("sampler"));
  w.field("devices", static_cast<std::uint64_t>(config.num_devices));
  w.field("edges", static_cast<std::uint64_t>(config.num_edges));
  w.field("steps", static_cast<std::uint64_t>(config.horizon));
  w.field("local_epochs", static_cast<std::uint64_t>(config.hfl.local_epochs));
  w.field("batch_size", static_cast<std::uint64_t>(config.hfl.batch_size));
  w.field("mlp_hidden", static_cast<std::uint64_t>(config.mlp_hidden));
  w.field("identical_parameters", identical);
  w.raw_field("hardware", obs::hardware_json());
  w.raw_field("results", results);

  const std::string out_path = cli.get_string("out");
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << w.end() << "\n";
  std::cout << "results written to " << out_path << "\n";
  return identical ? 0 : 1;
}
