// Table I reproduction: time steps consumed under different local updating
// epochs I (0.8I, I, 1.2I) to reach 70% of the target accuracy and the full
// target accuracy, for MACH vs the US/CS/SS baselines, plus the
// saved-time-step percentage of MACH over the best baseline.
//
//   ./table1_local_epochs [--task all|mnist|fmnist|cifar10]
//   env: REPRO_FULL=1, BENCH_SEEDS=N
#include "bench_util.h"

#include <cmath>

#include "common/table.h"

namespace {

using mach::hfl::EvalPoint;

struct AlgoCurve {
  std::string name;
  std::vector<EvalPoint> curve;
};

std::string steps_str(const std::optional<std::size_t>& steps, std::size_t horizon) {
  return steps ? std::to_string(*steps) : ">" + std::to_string(horizon);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli("Table I: time steps under different local updating epochs.");
  cli.add_flag("task", std::string("all"), "task filter: all|mnist|fmnist|cifar10");
  cli.add_flag("csv", std::string("table1_local_epochs.csv"), "CSV output path");
  bench::add_threads_flag(cli);
  bench::add_trace_flag(cli);
  bench::add_phase_times_flag(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  bench::print_mode_banner("Table I: varying local updating epochs");
  const auto seeds = bench::bench_seeds();
  // Table I compares MACH against the three basic baselines (no MACH-P).
  const std::vector<std::string> algorithms = {"mach", "uniform", "class_balance",
                                               "statistical"};
  const std::vector<double> epoch_scales = {0.8, 1.0, 1.2};

  const auto trace = bench::open_bench_trace(cli.get_string("trace"));
  obs::PhaseTimerSet sweep_phases;
  common::Table table({"dataset", "target", "local epochs", "MACH", "US", "CS",
                       "SS", "saved %"});
  for (const auto task : bench::parse_tasks(cli.get_string("task"))) {
    auto base = hfl::ExperimentConfig::preset(task);
    bench::apply_threads_flag(cli, base);
    const auto base_epochs = static_cast<double>(base.hfl.local_epochs);
    for (const double scale : epoch_scales) {
      auto config = base;
      config.hfl.local_epochs = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(base_epochs * scale)));

      // One set of runs per algorithm serves both accuracy thresholds.
      std::vector<AlgoCurve> curves;
      for (const auto& name : algorithms) {
        std::vector<hfl::MetricsRecorder> runs;
        for (const auto seed : seeds) {
          auto sampler = core::make_sampler(name);
          auto run =
              hfl::run_experiment(config.with_seed(seed), *sampler, trace.get());
          sweep_phases.merge(run.phases);
          runs.push_back(std::move(run.metrics));
        }
        curves.push_back({name, hfl::average_curves(runs)});
      }

      const std::string epochs_label =
          (scale == 1.0 ? "I=" : common::format_double(scale, 1) + "I=") +
          std::to_string(config.hfl.local_epochs);
      for (const auto [label, threshold] :
           {std::pair<std::string, double>{"70% target",
                                           0.7 * config.target_accuracy},
            std::pair<std::string, double>{"target", config.target_accuracy}}) {
        auto& row = table.row()
                        .cell(data::task_name(task))
                        .cell(label)
                        .cell(epochs_label);
        double mach_steps = 0.0;
        double best_baseline = 1e300;
        for (const auto& algo : curves) {
          const auto steps = hfl::curve_time_to_target(algo.curve, threshold);
          row.cell(steps_str(steps, config.horizon));
          const double value = steps ? static_cast<double>(*steps)
                                     : static_cast<double>(config.horizon);
          if (algo.name == "mach") {
            mach_steps = value;
          } else {
            best_baseline = std::min(best_baseline, value);
          }
        }
        const double saved =
            best_baseline > 0.0 ? (best_baseline - mach_steps) / best_baseline * 100.0
                                : 0.0;
        row.cell(common::format_double(saved, 2) + "%");
      }
      std::cout << data::task_name(task) << " scale=" << scale << " done\n";
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  if (cli.get_bool("phase_times")) bench::print_phase_times(sweep_phases);
  if (table.write_csv(cli.get_string("csv"))) {
    std::cout << "\nwritten to " << cli.get_string("csv") << '\n';
  }
  if (trace != nullptr) {
    std::cout << "\ntrace written to " << cli.get_string("trace") << " ("
              << trace->lines_written() << " events)\n";
  }
  return 0;
}
