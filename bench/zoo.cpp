// Algorithm zoo: every registered sampler raced across mobility scenarios.
//
// Sweeps sampler x scenario on one task, averaging accuracy curves over
// BENCH_SEEDS runs per cell, and ranks the algorithms per scenario by final
// accuracy at the byte budget the horizon implies (ties broken by fewer
// steps-to-target, then name). Written as BENCH_zoo.json for the CI
// regression gate: results[] holds one flat scalar row per (sampler,
// scenario) keyed by those two fields — tools/bench_diff treats *accuracy*
// and reach_rate as higher-is-better, steps_to_* and *_bytes as
// lower-is-better. The ranked tables live in separate top-level "ranking"
// and "leaderboard" keys the gate ignores (rendered by tools/trace_summary).
//
//   ./zoo [--task mnist] [--samplers mach,uniform,...] \
//         [--scenarios metro,campus,vehicular,flash_crowd] [--horizon N] \
//         [--faults SPEC] [--codec SPEC] [--out BENCH_zoo.json]
//   env: REPRO_FULL=1 (paper scale), BENCH_SEEDS (default 2)
#include "bench_util.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "mobility/scenario.h"
#include "obs/json.h"
#include "obs/resource.h"

namespace {

using namespace mach;

std::vector<std::string> split_list(const std::string& flag) {
  std::vector<std::string> out;
  std::stringstream stream(flag);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string join_list(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ',';
    out += item;
  }
  return out;
}

struct CaseResult {
  std::string sampler;
  std::string scenario;
  double final_accuracy = 0.0;
  /// From the seed-averaged curve; the horizon when the target is unreached,
  /// so the metric stays a finite lower-is-better number for bench_diff.
  double steps_to_target = 0.0;
  bool reached = false;
  double reach_rate = 0.0;
  double total_bytes = 0.0;  // mean encoded bytes per run
};

/// Rank order within one scenario: accuracy desc, then fewer steps, then name
/// (total and deterministic, so reruns rank ties identically).
bool rank_less(const CaseResult& a, const CaseResult& b) {
  if (a.final_accuracy != b.final_accuracy) {
    return a.final_accuracy > b.final_accuracy;
  }
  if (a.steps_to_target != b.steps_to_target) {
    return a.steps_to_target < b.steps_to_target;
  }
  return a.sampler < b.sampler;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli(
      "Algorithm zoo: rank every registered sampler across mobility scenarios.");
  cli.add_flag("task", std::string("mnist"), "mnist|fmnist|cifar10");
  cli.add_flag("samplers", join_list(core::zoo_algorithms()),
               "comma-separated sampler names to race");
  cli.add_flag("scenarios", std::string("metro,campus,vehicular,flash_crowd"),
               "comma-separated scenario specs (mobility/scenario.h grammar)");
  cli.add_flag("horizon", static_cast<std::int64_t>(0),
               "override the preset horizon (0 = preset; smaller = smoke CI)");
  cli.add_flag("out", std::string("BENCH_zoo.json"), "JSON output path");
  bench::add_threads_flag(cli);
  bench::add_faults_flag(cli);
  bench::add_codec_flag(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  bench::print_mode_banner("Algorithm zoo: sampler x scenario ranking");

  const auto task = bench::parse_tasks(cli.get_string("task")).front();
  const auto samplers = split_list(cli.get_string("samplers"));
  const auto scenario_specs = split_list(cli.get_string("scenarios"));
  if (samplers.empty() || scenario_specs.empty()) {
    std::cerr << "--samplers/--scenarios must name at least one entry each\n";
    return 1;
  }
  // Fail fast on unknown names/specs before the first (slow) run.
  std::vector<mobility::Scenario> scenarios;
  try {
    for (const auto& name : samplers) core::make_sampler(name);
    for (const auto& spec : scenario_specs) {
      scenarios.push_back(mobility::Scenario::parse(spec));
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  const auto seeds = bench::bench_seeds();

  std::vector<CaseResult> results;
  common::Table table({"scenario", "rank", "sampler", "final acc", "steps",
                       "reach", "KiB"});
  // Per-scenario rank accumulated for the cross-scenario leaderboard.
  std::map<std::string, double> rank_sum;
  for (const auto& scenario : scenarios) {
    auto config = hfl::ExperimentConfig::preset(task);
    hfl::apply_scenario(scenario, config);
    bench::apply_threads_flag(cli, config);
    bench::apply_faults_flag(cli, config);
    bench::apply_codec_flag(cli, config);
    if (cli.get_int("horizon") > 0) {
      config.horizon = static_cast<std::size_t>(cli.get_int("horizon"));
    }
    // The world (data + stations + trace) depends only on the data seed and
    // the scenario, so one build serves every sampler and run seed of the cell.
    const hfl::ExperimentArtifacts built = hfl::build_experiment(config);

    std::vector<CaseResult> cell;
    for (const auto& sampler_name : samplers) {
      std::vector<hfl::MetricsRecorder> runs;
      double reached = 0.0;
      std::uint64_t bytes = 0;
      for (const auto seed : seeds) {
        hfl::HflOptions options = config.hfl;
        options.seed = seed;
        hfl::HflSimulator sim(built.train, built.test, built.partition,
                              built.schedule, hfl::make_model_factory(config),
                              options);
        auto sampler = core::make_sampler(sampler_name);
        const hfl::MetricsRecorder metrics = sim.run(*sampler, config.horizon);
        if (metrics.time_to_accuracy(config.target_accuracy)) reached += 1.0;
        bytes += sim.last_run_cost().ledger.total_bytes();
        runs.push_back(metrics);
      }
      const auto curve = hfl::average_curves(runs);
      const auto steps = hfl::curve_time_to_target(curve, config.target_accuracy);

      CaseResult r;
      r.sampler = sampler_name;
      r.scenario = scenario.to_string();
      r.final_accuracy = curve.empty() ? 0.0 : curve.back().test_accuracy;
      r.reached = steps.has_value();
      r.steps_to_target = static_cast<double>(steps.value_or(config.horizon));
      r.reach_rate = reached / static_cast<double>(seeds.size());
      r.total_bytes =
          static_cast<double>(bytes) / static_cast<double>(seeds.size());
      cell.push_back(std::move(r));
      std::cout << "  " << scenario.to_string() << " "
                << core::display_name(sampler_name) << " done\n";
    }

    std::sort(cell.begin(), cell.end(), rank_less);
    for (std::size_t rank = 0; rank < cell.size(); ++rank) {
      const auto& r = cell[rank];
      rank_sum[r.sampler] += static_cast<double>(rank + 1);
      table.row()
          .cell(r.scenario)
          .cell(rank + 1)
          .cell(core::display_name(r.sampler))
          .cell(r.final_accuracy, 4)
          .cell(r.reached ? common::format_double(r.steps_to_target, 0)
                          : ">" + common::format_double(r.steps_to_target, 0))
          .cell(r.reach_rate, 2)
          .cell(r.total_bytes / 1024.0, 1);
    }
    results.insert(results.end(), cell.begin(), cell.end());
  }

  std::cout << '\n';
  table.print(std::cout);

  // Cross-scenario leaderboard: mean per-scenario rank, ascending.
  std::vector<std::pair<std::string, double>> leaderboard;
  for (const auto& sampler_name : samplers) {
    leaderboard.emplace_back(
        sampler_name,
        rank_sum[sampler_name] / static_cast<double>(scenarios.size()));
  }
  std::sort(leaderboard.begin(), leaderboard.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  common::Table overall({"overall", "sampler", "mean rank"});
  for (std::size_t i = 0; i < leaderboard.size(); ++i) {
    overall.row()
        .cell(i + 1)
        .cell(core::display_name(leaderboard[i].first))
        .cell(leaderboard[i].second, 2);
  }
  std::cout << '\n';
  overall.print(std::cout);

  // results: one flat scalar row per (sampler, scenario) for tools/bench_diff.
  std::string json_results = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    obs::JsonObjectWriter w;
    w.begin();
    w.field("sampler", r.sampler);
    w.field("scenario", r.scenario);
    w.field("final_accuracy", r.final_accuracy);
    w.field("steps_to_target", r.steps_to_target);
    w.field("reach_rate", r.reach_rate);
    w.field("total_bytes", r.total_bytes);
    if (i != 0) json_results += ',';
    json_results += w.end();
  }
  json_results += ']';

  // ranking: the per-scenario ranked rows (bench_diff ignores this key).
  std::string json_ranking = "[";
  {
    std::size_t emitted = 0;
    for (const auto& scenario : scenarios) {
      std::vector<const CaseResult*> cell;
      for (const auto& r : results) {
        if (r.scenario == scenario.to_string()) cell.push_back(&r);
      }
      for (std::size_t rank = 0; rank < cell.size(); ++rank) {
        obs::JsonObjectWriter w;
        w.begin();
        w.field("scenario", cell[rank]->scenario);
        w.field("rank", static_cast<std::uint64_t>(rank + 1));
        w.field("sampler", cell[rank]->sampler);
        w.field("display", core::display_name(cell[rank]->sampler));
        w.field("final_accuracy", cell[rank]->final_accuracy);
        if (emitted++ != 0) json_ranking += ',';
        json_ranking += w.end();
      }
    }
  }
  json_ranking += ']';

  std::string json_leaderboard = "[";
  for (std::size_t i = 0; i < leaderboard.size(); ++i) {
    obs::JsonObjectWriter w;
    w.begin();
    w.field("rank", static_cast<std::uint64_t>(i + 1));
    w.field("sampler", leaderboard[i].first);
    w.field("display", core::display_name(leaderboard[i].first));
    w.field("mean_rank", leaderboard[i].second);
    if (i != 0) json_leaderboard += ',';
    json_leaderboard += w.end();
  }
  json_leaderboard += ']';

  obs::JsonObjectWriter w;
  w.begin();
  w.field("bench", "zoo");
  w.field("task", data::task_name(task));
  w.field("seed", seeds.front());
  w.field("seeds", static_cast<std::uint64_t>(seeds.size()));
  w.raw_field("hardware", obs::hardware_json());
  w.raw_field("results", json_results);
  w.raw_field("ranking", json_ranking);
  w.raw_field("leaderboard", json_leaderboard);

  const std::string out_path = cli.get_string("out");
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << w.end() << "\n";
  std::cout << "\nresults written to " << out_path << "\n";
  return 0;
}
