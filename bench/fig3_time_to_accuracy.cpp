// Figure 3 reproduction: time-to-accuracy curves of all five sampling
// algorithms on the three learning tasks (MNIST-like, FMNIST-like,
// CIFAR10-like). Prints the averaged accuracy series per algorithm and the
// steps-to-target summary, and writes one CSV per task.
//
//   ./fig3_time_to_accuracy [--task all|mnist|fmnist|cifar10]
//   env: REPRO_FULL=1 (paper scale), BENCH_SEEDS=N (default 2)
#include "bench_util.h"

#include "common/table.h"

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli("Figure 3: time-to-accuracy over all learning tasks.");
  cli.add_flag("task", std::string("all"), "task filter: all|mnist|fmnist|cifar10");
  cli.add_flag("csv_prefix", std::string("fig3"), "CSV output prefix");
  cli.add_flag("trace_prefix", std::string(""),
               "write one JSONL telemetry trace per task to "
               "<prefix>_<task>.jsonl (empty = off)");
  bench::add_threads_flag(cli);
  bench::add_faults_flag(cli);
  bench::add_codec_flag(cli);
  bench::add_checkpoint_flags(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  bench::print_mode_banner("Figure 3: time-to-accuracy");
  const auto seeds = bench::bench_seeds();

  for (const auto task : bench::parse_tasks(cli.get_string("task"))) {
    auto config = hfl::ExperimentConfig::preset(task);
    bench::apply_threads_flag(cli, config);
    bench::apply_faults_flag(cli, config);
    bench::apply_codec_flag(cli, config);
    bench::apply_checkpoint_flags(cli, config);
    std::cout << "--- " << data::task_name(task) << " (target "
              << config.target_accuracy << ", T_g=" << config.hfl.cloud_interval
              << ", horizon " << config.horizon << ") ---\n";

    const std::string trace_prefix = cli.get_string("trace_prefix");
    const auto trace = bench::open_bench_trace(
        trace_prefix.empty()
            ? std::string{}
            : trace_prefix + "_" + data::task_name(task) + ".jsonl");

    // Collect averaged accuracy curves per algorithm.
    std::vector<std::vector<hfl::EvalPoint>> curves;
    std::vector<std::string> names;
    common::Table summary({"algorithm", "steps to target", "reach rate",
                           "final acc", "wall s"});
    for (const auto& name : core::paper_algorithms()) {
      bench::Stopwatch watch;
      std::vector<hfl::MetricsRecorder> runs;
      for (const auto seed : seeds) {
        auto sampler = core::make_sampler(name);
        runs.push_back(
            hfl::run_experiment(config.with_seed(seed), *sampler, trace.get())
                .metrics);
      }
      auto curve = hfl::average_curves(runs);
      const auto target_t = hfl::curve_time_to_target(curve, config.target_accuracy);
      double reached = 0.0;
      for (const auto& run : runs) {
        if (run.time_to_accuracy(config.target_accuracy)) reached += 1.0;
      }
      summary.row()
          .cell(core::display_name(name))
          .cell(target_t ? std::to_string(*target_t)
                         : ">" + std::to_string(config.horizon))
          .cell(reached / static_cast<double>(runs.size()), 2)
          .cell(curve.empty() ? 0.0 : curve.back().test_accuracy, 4)
          .cell(watch.seconds(), 1);
      names.push_back(core::display_name(name));
      curves.push_back(std::move(curve));
      std::cout << "  " << core::display_name(name) << " done\n";
    }

    // Accuracy-vs-time series (the figure's curves).
    std::vector<std::string> headers = {"t"};
    for (const auto& n : names) headers.push_back(n);
    common::Table series(headers);
    if (!curves.empty()) {
      for (std::size_t i = 0; i < curves.front().size(); ++i) {
        auto& row = series.row().cell(curves.front()[i].t);
        for (const auto& curve : curves) {
          row.cell(i < curve.size() ? curve[i].test_accuracy : 0.0, 4);
        }
      }
    }
    std::cout << '\n';
    series.print(std::cout);
    std::cout << '\n';
    summary.print(std::cout);
    std::cout << '\n';

    const std::string csv =
        cli.get_string("csv_prefix") + "_" + data::task_name(task) + ".csv";
    if (series.write_csv(csv)) std::cout << "curves written to " << csv << "\n\n";
  }
  return 0;
}
