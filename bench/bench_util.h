// Shared plumbing for the paper-reproduction bench binaries.
//
// Every figure/table bench:
//   * runs the scaled "smoke" configuration by default and the paper-scale
//     configuration when REPRO_FULL=1 (see hfl::ExperimentConfig::preset);
//   * averages over BENCH_SEEDS runs (default 2, paper uses 3);
//   * prints the paper's rows/series as an aligned table and writes the raw
//     numbers as CSV next to the binary.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/options.h"
#include "comm/config.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/registry.h"
#include "fault/schedule.h"
#include "hfl/experiment.h"
#include "obs/jsonl_writer.h"
#include "obs/timer.h"

namespace mach::bench {

inline std::vector<data::TaskKind> parse_tasks(const std::string& flag) {
  if (flag == "all") {
    return {data::TaskKind::MnistLike, data::TaskKind::FmnistLike,
            data::TaskKind::CifarLike};
  }
  if (flag == "mnist") return {data::TaskKind::MnistLike};
  if (flag == "fmnist") return {data::TaskKind::FmnistLike};
  if (flag == "cifar10") return {data::TaskKind::CifarLike};
  throw std::invalid_argument("unknown task filter: " + flag);
}

inline std::vector<std::uint64_t> bench_seeds() {
  const long count = std::strtol(common::env_or("BENCH_SEEDS", "2").c_str(),
                                 nullptr, 10);
  std::vector<std::uint64_t> seeds;
  for (long s = 0; s < std::max(count, 1L); ++s) {
    seeds.push_back(1000 + static_cast<std::uint64_t>(s));
  }
  return seeds;
}

inline bool full_mode() { return common::env_flag("REPRO_FULL"); }

/// Registers the shared --threads flag. Benches default to one worker per
/// hardware thread (0): runs are bitwise identical at any thread count, so
/// parallelism is pure wall-clock win for the reproduction sweeps.
inline void add_threads_flag(common::CliParser& cli) {
  cli.add_flag("threads", static_cast<std::int64_t>(0),
               "worker threads for device training/evaluation "
               "(0 = all hardware threads, 1 = serial)");
}

/// Applies the parsed --threads flag to one experiment config.
inline void apply_threads_flag(const common::CliParser& cli,
                               hfl::ExperimentConfig& config) {
  const std::int64_t threads = cli.get_int("threads");
  config.hfl.parallel.threads =
      threads < 0 ? 1 : static_cast<std::size_t>(threads);
}

/// Registers the shared --trace flag: any bench can record a JSONL telemetry
/// trace of every run in its sweep (open with open_bench_trace; summarise
/// with tools/trace_summary).
inline void add_trace_flag(common::CliParser& cli) {
  cli.add_flag("trace", std::string(""),
               "write a JSONL telemetry trace of every run in the sweep to "
               "this path (inspect with tools/trace_summary)");
}

/// Registers the shared --phase_times flag (see print_phase_times).
inline void add_phase_times_flag(common::CliParser& cli) {
  cli.add_flag("phase_times", false,
               "print the wall-clock phase breakdown accumulated over the "
               "whole sweep after the results table");
}

/// Prints one phase-breakdown table (same layout as experiment_runner's
/// --phase_times) for timers accumulated across a sweep via
/// PhaseTimerSet::merge.
inline void print_phase_times(const obs::PhaseTimerSet& timers) {
  common::Table table({"phase", "scopes", "total s", "share %"});
  const double total = timers.total_seconds();
  for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
    const auto phase = static_cast<obs::Phase>(i);
    const auto& acc = timers[phase];
    table.row()
        .cell(std::string(obs::phase_name(phase)))
        .cell(acc.count)
        .cell(acc.total_seconds, 3)
        .cell(total > 0.0 ? acc.total_seconds / total * 100.0 : 0.0, 1);
  }
  std::cout << '\n';
  table.print(std::cout);
}

/// Registers the shared --faults flag: robustness sweeps rerun any figure
/// under an injected failure schedule (fault/schedule.h spec grammar). The
/// empty default leaves every bench bitwise identical to a fault-free build.
inline void add_faults_flag(common::CliParser& cli) {
  cli.add_flag("faults", std::string(""),
               "fault-injection spec, e.g. "
               "'dropout:p=0.1;straggler:p=0.2,timeout=1.5' (empty = none)");
}

/// Applies the parsed --faults flag to one experiment config. A bad spec or
/// a device/edge id outside the config's topology exits with the offending
/// clause named — benches fail fast instead of aborting mid-sweep.
inline void apply_faults_flag(const common::CliParser& cli,
                              hfl::ExperimentConfig& config) {
  const std::string spec = cli.get_string("faults");
  if (spec.empty()) return;
  try {
    config.hfl.faults = fault::FaultSchedule::parse(spec);
    config.hfl.faults.validate_topology(config.num_devices, config.num_edges);
  } catch (const std::invalid_argument& error) {
    std::cerr << "--faults: " << error.what() << "\n";
    std::exit(1);
  }
}

/// Registers the shared --codec flag: any bench can rerun its sweep with
/// per-link transfer codecs (src/comm/) and read the encoded-byte cost off
/// the run_end ledger. The fp32 default is bitwise identical to a build
/// without the comm layer.
inline void add_codec_flag(common::CliParser& cli) {
  cli.add_flag("codec", std::string("fp32"),
               "per-link transfer codecs, e.g. 'int8', 'topk:k=0.05' or "
               "'up=topk:k=0.01,down=bf16' (links: up|down|probe|edge_up|"
               "cloud_down; fp32 = lossless)");
}

/// Applies the parsed --codec flag to one experiment config. A bad spec
/// exits with the offending clause named.
inline void apply_codec_flag(const common::CliParser& cli,
                             hfl::ExperimentConfig& config) {
  const std::string spec = cli.get_string("codec");
  if (spec.empty()) return;
  try {
    config.hfl.comm = comm::CommConfig::parse(spec);
  } catch (const std::invalid_argument& error) {
    std::cerr << "--codec: " << error.what() << "\n";
    std::exit(1);
  }
}

/// Registers the shared --scenario flag: any bench can rerun its sweep inside
/// a named mobility world (mobility/scenario.h presets, optional overrides).
/// The empty default keeps each task preset's own mobility untouched.
inline void add_scenario_flag(common::CliParser& cli) {
  cli.add_flag("scenario", std::string(""),
               "mobility scenario preset, e.g. 'vehicular' or "
               "'metro:stay=0.6,stations=80' "
               "(metro|campus|vehicular|flash_crowd; empty = preset default)");
}

/// Applies the parsed --scenario flag to one experiment config. A bad spec
/// exits with the offending part named.
inline void apply_scenario_flag(const common::CliParser& cli,
                                hfl::ExperimentConfig& config) {
  const std::string spec = cli.get_string("scenario");
  if (spec.empty()) return;
  try {
    hfl::apply_scenario(mobility::Scenario::parse(spec), config);
  } catch (const std::invalid_argument& error) {
    std::cerr << "--scenario: " << error.what() << "\n";
    std::exit(1);
  }
}

/// Registers the shared checkpoint/resume flags. With a directory set, every
/// (task, sampler, seed) run of the sweep snapshots its full state into its
/// own subdirectory of --checkpoint_dir; --resume continues each run from its
/// newest valid snapshot with bitwise-identical results.
inline void add_checkpoint_flags(common::CliParser& cli) {
  cli.add_flag("checkpoint_every", static_cast<std::int64_t>(0),
               "snapshot each run's state every N steps (0 = off); "
               "requires --checkpoint_dir");
  cli.add_flag("checkpoint_dir", std::string(""),
               "root directory for per-run snapshot subdirectories");
  cli.add_flag("checkpoint_keep", static_cast<std::int64_t>(2),
               "snapshots retained per run (older ones are deleted)");
  cli.add_flag("resume", false,
               "continue every run of the sweep from its newest valid snapshot");
}

/// Applies the parsed checkpoint flags to one experiment config. A missing
/// --checkpoint_dir with checkpointing requested exits with a message.
inline void apply_checkpoint_flags(const common::CliParser& cli,
                                   hfl::ExperimentConfig& config) {
  ckpt::CheckpointOptions& checkpoint = config.hfl.checkpoint;
  checkpoint.dir = cli.get_string("checkpoint_dir");
  if (cli.get_int("checkpoint_every") > 0) {
    checkpoint.every = static_cast<std::size_t>(cli.get_int("checkpoint_every"));
  }
  if (cli.get_int("checkpoint_keep") > 0) {
    checkpoint.keep = static_cast<std::size_t>(cli.get_int("checkpoint_keep"));
  }
  checkpoint.resume = cli.get_bool("resume");
  if (checkpoint.enabled() && checkpoint.dir.empty()) {
    std::cerr << "--checkpoint_every/--resume require --checkpoint_dir\n";
    std::exit(1);
  }
}

/// Opens a JSONL telemetry trace for a bench run, or returns nullptr when
/// `path` is empty (tracing off). Bench traces skip the chatty per-device
/// lines by default — the per-edge/cloud/eval granularity is what the
/// sampling-health analysis needs; every seed's run lands in the same file
/// delimited by run_begin/run_end lines.
inline std::unique_ptr<obs::JsonlTraceWriter> open_bench_trace(
    const std::string& path) {
  if (path.empty()) return nullptr;
  obs::JsonlTraceOptions options;
  options.device_events = false;
  options.step_events = false;
  return std::make_unique<obs::JsonlTraceWriter>(path, options);
}

inline void print_mode_banner(const std::string& experiment) {
  std::cout << "=== " << experiment << " ===\n"
            << "mode: " << (full_mode() ? "FULL (paper scale, CNN models)"
                                        : "smoke (scaled population, MLP models; "
                                          "set REPRO_FULL=1 for paper scale)")
            << ", seeds per point: " << bench_seeds().size() << "\n\n";
}

/// Steps-to-target for one (config, sampler) pair, averaged over seeds.
inline hfl::AveragedTimeToTarget run_algo(const hfl::ExperimentConfig& config,
                                          const std::string& sampler_name,
                                          std::span<const std::uint64_t> seeds) {
  return hfl::averaged_time_to_target(
      config, [&] { return core::make_sampler(sampler_name); }, seeds);
}

/// Curve-averaged result: runs per-seed, averages the accuracy curves
/// point-wise (the paper's "average for smoothing"), and reads the
/// time-to-target off the mean curve. Far less sensitive to heavy-tailed
/// single runs than averaging per-seed crossing times.
struct CurveResult {
  std::optional<std::size_t> steps_to_target;
  double reach_rate = 0.0;   // fraction of individual runs reaching it
  double final_accuracy = 0.0;
  /// Mean steps with unreached runs counted as the horizon (secondary view).
  double mean_steps = 0.0;
  /// Phase breakdown summed over the per-seed runs (for --phase_times).
  obs::PhaseTimerSet phases;
};

inline CurveResult run_algo_curve(const hfl::ExperimentConfig& config,
                                  const std::string& sampler_name,
                                  std::span<const std::uint64_t> seeds,
                                  obs::RunObserver* observer = nullptr) {
  CurveResult result;
  std::vector<hfl::MetricsRecorder> runs;
  double reached = 0.0, total_steps = 0.0;
  for (const auto seed : seeds) {
    auto sampler = core::make_sampler(sampler_name);
    const auto run = hfl::run_experiment(config.with_seed(seed), *sampler, observer);
    result.phases.merge(run.phases);
    if (run.time_to_target) {
      reached += 1.0;
      total_steps += static_cast<double>(*run.time_to_target);
    } else {
      total_steps += static_cast<double>(config.horizon);
    }
    runs.push_back(run.metrics);
  }
  const auto curve = hfl::average_curves(runs);
  result.steps_to_target = hfl::curve_time_to_target(curve, config.target_accuracy);
  result.reach_rate = seeds.empty() ? 0.0 : reached / static_cast<double>(seeds.size());
  result.final_accuracy = curve.empty() ? 0.0 : curve.back().test_accuracy;
  result.mean_steps =
      seeds.empty() ? 0.0 : total_steps / static_cast<double>(seeds.size());
  return result;
}

inline std::string steps_cell(const CurveResult& result, std::size_t horizon) {
  if (!result.steps_to_target) return ">" + std::to_string(horizon);
  return std::to_string(*result.steps_to_target);
}

/// "134.0" or ">240" when some run never reached the target.
inline std::string steps_cell(const hfl::AveragedTimeToTarget& result,
                              std::size_t horizon) {
  if (result.reach_rate < 1.0) {
    if (result.reach_rate == 0.0) return ">" + std::to_string(horizon);
    return common::format_double(result.mean_steps, 1) + "*";
  }
  return common::format_double(result.mean_steps, 1);
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mach::bench
