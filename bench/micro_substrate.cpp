// Google-benchmark microbenchmarks for the compute substrates: tensor
// kernels, model forward/backward, sampling-strategy construction and the
// mobility pipeline. These guard the per-step cost of the simulator.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/mach.h"
#include "data/synthetic.h"
#include "mobility/mobility_model.h"
#include "mobility/schedule.h"
#include "mobility/stations.h"
#include "nn/factory.h"
#include "sampling/budget.h"
#include "tensor/ops.h"

namespace {

using namespace mach;

tensor::Tensor random_tensor(std::vector<std::size_t> shape, common::Rng& rng) {
  tensor::Tensor t(std::move(shape));
  for (auto& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  const auto a = random_tensor({n, n}, rng);
  const auto b = random_tensor({n, n}, rng);
  tensor::Tensor c({n, n});
  for (auto _ : state) {
    tensor::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  common::Rng rng(2);
  tensor::ConvSpec spec{.in_channels = 8, .out_channels = 16, .kernel = 3,
                        .pad = 1, .stride = 1};
  const auto input = random_tensor({8, 8, 12, 12}, rng);
  const auto weight = random_tensor({16, 8, 3, 3}, rng);
  const auto bias = random_tensor({16}, rng);
  tensor::Tensor output({8, 16, 12, 12});
  tensor::ScratchArena scratch;
  for (auto _ : state) {
    tensor::conv2d_forward(input, weight, bias, spec, output, scratch);
    benchmark::DoNotOptimize(output.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_MlpTrainStep(benchmark::State& state) {
  common::Rng rng(3);
  auto model = nn::make_mlp(64, 32, 10);
  model.init_params(rng);
  const auto x = random_tensor({8, 64}, rng);
  std::vector<int> labels(8);
  for (auto& l : labels) l = static_cast<int>(rng.uniform_index(10));
  for (auto _ : state) {
    const auto stats = model.forward_backward(x, labels);
    benchmark::DoNotOptimize(stats.loss);
  }
}
BENCHMARK(BM_MlpTrainStep);

void BM_Cnn2TrainStep(benchmark::State& state) {
  common::Rng rng(4);
  auto model = nn::make_cnn2(1, 12, 12, 10);
  model.init_params(rng);
  const auto x = random_tensor({8, 1, 12, 12}, rng);
  std::vector<int> labels(8);
  for (auto& l : labels) l = static_cast<int>(rng.uniform_index(10));
  for (auto _ : state) {
    const auto stats = model.forward_backward(x, labels);
    benchmark::DoNotOptimize(stats.loss);
  }
}
BENCHMARK(BM_Cnn2TrainStep);

void BM_BudgetedProbabilities(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.exponential(1.0);
  for (auto _ : state) {
    auto q = sampling::budgeted_probabilities(weights, static_cast<double>(n) / 2);
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_BudgetedProbabilities)->Arg(10)->Arg(100)->Arg(1000);

void BM_MachEdgeSampling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(6);
  std::vector<double> g2(n);
  for (auto& g : g2) g = rng.exponential(1.0);
  core::TransferFunction transfer({.alpha = 1.0, .beta = 3.0, .warmup_rounds = 0});
  for (auto _ : state) {
    auto q = core::edge_sampling_probabilities(g2, static_cast<double>(n) / 2,
                                               &transfer);
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_MachEdgeSampling)->Arg(10)->Arg(100);

void BM_SyntheticGeneration(benchmark::State& state) {
  data::SyntheticGenerator gen(data::SyntheticSpec::mnist_like(), 7);
  common::Rng rng(7);
  for (auto _ : state) {
    auto d = gen.generate_uniform(64, rng);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(BM_SyntheticGeneration);

void BM_MobilityPipeline(benchmark::State& state) {
  mobility::StationLayoutSpec layout;
  layout.num_stations = 60;
  for (auto _ : state) {
    auto stations = mobility::generate_stations(layout, 8);
    const auto clustering = mobility::cluster_stations(stations, 10, 8);
    mobility::MarkovMobilityModel model(std::move(stations), 0.8, 25.0);
    const auto trace = mobility::generate_trace(model, 100, 100, 8);
    const mobility::TraceReplay replay(trace);
    const auto schedule = mobility::MobilitySchedule::from_trace(replay, clustering);
    benchmark::DoNotOptimize(schedule.churn_rate());
  }
}
BENCHMARK(BM_MobilityPipeline);

}  // namespace

BENCHMARK_MAIN();
