// Communication bench: accuracy-vs-bytes tradeoff curves per transfer codec.
//
// Runs the fig3-style MNIST/FMNIST experiments under each codec (fp32, bf16,
// int8, and top-k at three densities), recording the run_end byte ledger and
// an accuracy-vs-cumulative-bytes curve sampled at every eval point. Written
// as BENCH_comm.json for the CI regression gate (tools/bench_diff treats
// *_bytes as lower-is-better and *accuracy* as higher-is-better); the curves
// live in a separate top-level "curves" key that the gate ignores.
//
//   ./comm [--task all|mnist|fmnist] [--horizon N] [--out BENCH_comm.json]
//   env: REPRO_FULL=1 (paper scale), BENCH_SEEDS ignored (single seed: the
//   curves are per-run trajectories, not averages)
//
// The bench fails (exit 1) if the int8 device-upload reduction drops below
// 3.9x — the headline compression this subsystem exists to deliver.
#include "bench_util.h"

#include <fstream>

#include "common/table.h"
#include "obs/json.h"
#include "obs/observer.h"
#include "obs/resource.h"

namespace {

struct CurvePoint {
  std::size_t t = 0;
  double accuracy = 0.0;
  std::uint64_t bytes = 0;
};

/// Samples cumulative encoded bytes at every eval point. on_eval fires on
/// the coordinator thread, so reading the live cost accumulator is safe.
class AccuracyVsBytesObserver final : public mach::obs::RunObserver {
 public:
  explicit AccuracyVsBytesObserver(const mach::hfl::HflSimulator& sim)
      : sim_(sim) {}

  void on_eval(const mach::obs::EvalEvent& event) override {
    points.push_back({event.t, event.test_accuracy,
                      sim_.last_run_cost().ledger.total_bytes()});
  }

  std::vector<CurvePoint> points;

 private:
  const mach::hfl::HflSimulator& sim_;
};

struct CaseResult {
  std::string task;
  std::string codec;
  double final_accuracy = 0.0;
  mach::hfl::CommunicationCost cost;
  double upload_reduction = 0.0;  // fp32 upload bytes / encoded upload bytes
  std::vector<CurvePoint> curve;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli(
      "Communication codecs: accuracy vs encoded bytes on MNIST/FMNIST.");
  cli.add_flag("task", std::string("all"), "task filter: all|mnist|fmnist");
  cli.add_flag("horizon", static_cast<std::int64_t>(0),
               "override the preset horizon (0 = preset; smaller = smoke CI)");
  cli.add_flag("out", std::string("BENCH_comm.json"), "JSON output path");
  bench::add_threads_flag(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  bench::print_mode_banner("Communication codecs: accuracy vs bytes");

  std::vector<data::TaskKind> tasks;
  const std::string task_flag = cli.get_string("task");
  if (task_flag == "all") {
    tasks = {data::TaskKind::MnistLike, data::TaskKind::FmnistLike};
  } else {
    tasks = bench::parse_tasks(task_flag);
  }
  // The sweep of the tentpole tradeoff: lossless baseline, the two dense
  // quantisers, and the sparsifier across densities (the fig3 codec sweep).
  const std::vector<std::string> codecs = {
      "fp32", "bf16", "int8", "topk:k=0.25", "topk:k=0.05", "topk:k=0.01"};
  const std::uint64_t seed = bench::bench_seeds().front();

  std::vector<CaseResult> results;
  bool int8_target_met = true;
  common::Table table({"task", "codec", "final acc", "upload KiB",
                       "total KiB", "fp32 KiB", "upload x"});
  for (const auto task : tasks) {
    auto base = hfl::ExperimentConfig::preset(task);
    bench::apply_threads_flag(cli, base);
    if (cli.get_int("horizon") > 0) {
      base.horizon = static_cast<std::size_t>(cli.get_int("horizon"));
    }
    for (const auto& codec : codecs) {
      const auto config = base.with_seed(seed);
      hfl::ExperimentArtifacts built = hfl::build_experiment(config);
      hfl::HflOptions options = config.hfl;
      options.seed = config.seed;
      options.comm = comm::CommConfig::parse(codec);
      hfl::HflSimulator sim(built.train, built.test, built.partition,
                            built.schedule, hfl::make_model_factory(config),
                            options);
      AccuracyVsBytesObserver observer(sim);
      sim.set_observer(&observer);
      auto sampler = core::make_sampler("mach");
      const hfl::MetricsRecorder metrics = sim.run(*sampler, config.horizon);
      sim.set_observer(nullptr);

      CaseResult r;
      r.task = data::task_name(task);
      r.codec = codec;
      r.final_accuracy = metrics.points().empty()
                             ? 0.0
                             : metrics.points().back().test_accuracy;
      r.cost = sim.last_run_cost();
      r.curve = std::move(observer.points);
      const auto& up = r.cost.ledger.device_upload;
      const std::uint64_t fp32_up =
          up.messages * 4 * r.cost.model_parameters;
      r.upload_reduction =
          up.bytes > 0 ? static_cast<double>(fp32_up) /
                             static_cast<double>(up.bytes)
                       : 0.0;
      table.row()
          .cell(r.task)
          .cell(r.codec)
          .cell(r.final_accuracy, 4)
          .cell(static_cast<double>(up.bytes) / 1024.0, 1)
          .cell(static_cast<double>(r.cost.ledger.total_bytes()) / 1024.0, 1)
          .cell(static_cast<double>(r.cost.assumed_fp32_bytes()) / 1024.0, 1)
          .cell(r.upload_reduction, 2);
      if (codec == "int8" && r.upload_reduction < 3.9) {
        int8_target_met = false;
      }
      results.push_back(std::move(r));
      std::cout << "  " << data::task_name(task) << " " << codec << " done\n";
    }
  }

  std::cout << '\n';
  table.print(std::cout);
  if (!int8_target_met) {
    std::cerr << "\nFAIL: int8 device-upload reduction below 3.9x\n";
  }

  // results: one flat scalar row per (task, codec) for tools/bench_diff.
  std::string json_results = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    obs::JsonObjectWriter w;
    w.begin();
    w.field("task", r.task);
    w.field("codec", r.codec);
    w.field("final_accuracy", r.final_accuracy);
    w.field("device_upload_bytes", r.cost.ledger.device_upload.bytes);
    w.field("device_download_bytes", r.cost.ledger.device_download.bytes);
    w.field("total_bytes", r.cost.ledger.total_bytes());
    w.field("assumed_fp32_bytes",
            static_cast<std::uint64_t>(r.cost.assumed_fp32_bytes()));
    w.field("upload_speedup", r.upload_reduction);
    if (i != 0) json_results += ',';
    json_results += w.end();
  }
  json_results += ']';

  // curves: accuracy-vs-cumulative-bytes trajectories, keyed task/codec.
  std::string json_curves = "{";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::string points = "[";
    for (std::size_t j = 0; j < r.curve.size(); ++j) {
      obs::JsonObjectWriter p;
      p.begin();
      p.field("t", static_cast<std::uint64_t>(r.curve[j].t));
      p.field("accuracy", r.curve[j].accuracy);
      p.field("bytes", r.curve[j].bytes);
      if (j != 0) points += ',';
      points += p.end();
    }
    points += ']';
    if (i != 0) json_curves += ',';
    json_curves += '"' + obs::json_escape(r.task + "/" + r.codec) + "\":" + points;
  }
  json_curves += '}';

  obs::JsonObjectWriter w;
  w.begin();
  w.field("bench", "comm");
  w.field("seed", seed);
  w.field("int8_target_met", int8_target_met);
  w.raw_field("hardware", obs::hardware_json());
  w.raw_field("results", json_results);
  w.raw_field("curves", json_curves);

  const std::string out_path = cli.get_string("out");
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << w.end() << "\n";
  std::cout << "\nresults written to " << out_path << "\n";
  return int8_target_met ? 0 : 1;
}
