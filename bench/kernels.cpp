// Kernel-layer microbench: blocked GEMM vs the retained reference kernels
// over the paper-shaped sizes (every conv/dense GEMM of the MNIST cnn2 and
// CIFAR-10 cnn3 forward and backward passes, plus a square point), with a
// per-shape exact-equality spot check. Results are printed as a table and
// written as BENCH_kernels.json.
//
//   ./kernels [--min_ms 150] [--out BENCH_kernels.json]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "obs/json.h"
#include "obs/resource.h"
#include "tensor/kernels/kernels.h"

namespace {

using namespace mach;
namespace kern = tensor::kernels;

enum class Op { Nn, Tn, Nt };

struct Case {
  std::string name;   // e.g. "cifar_conv2_fwd"
  std::string group;  // "mnist", "cifar" or "square"
  Op op;
  std::size_t m, k, n;
};

struct Result {
  Case shape;
  double ref_gflops = 0.0;
  double blocked_gflops = 0.0;
  double speedup = 0.0;
  bool exact = false;
};

const char* op_name(Op op) {
  switch (op) {
    case Op::Nn: return "nn";
    case Op::Tn: return "tn";
    case Op::Nt: return "nt";
  }
  return "?";
}

// A and B storage sizes depend on the op (tn stores A as [k,m], nt stores B
// as [n,k]); C is always m x n.
void run_op(Op op, bool blocked, const float* a, const float* b, float* c,
            std::size_t m, std::size_t k, std::size_t n) {
  switch (op) {
    case Op::Nn:
      (blocked ? kern::gemm_nn : kern::ref::gemm_nn)(
          {a, m, k}, {b, k, n}, {c, m, n}, false, nullptr, nullptr);
      break;
    case Op::Tn:
      (blocked ? kern::gemm_tn : kern::ref::gemm_tn)({a, k, m}, {b, k, n},
                                                     {c, m, n}, false);
      break;
    case Op::Nt:
      (blocked ? kern::gemm_nt : kern::ref::gemm_nt)({a, m, k}, {b, n, k},
                                                     {c, m, n}, false);
      break;
  }
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Times one implementation: doubles the repetition count until the batch
/// takes at least min_ms, then reports seconds per call from the final batch.
double time_impl(Op op, bool blocked, const float* a, const float* b, float* c,
                 std::size_t m, std::size_t k, std::size_t n, double min_ms) {
  run_op(op, blocked, a, b, c, m, k, n);  // warm-up (pack buffers, caches)
  for (std::size_t reps = 1;; reps *= 2) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) run_op(op, blocked, a, b, c, m, k, n);
    const double elapsed = seconds_since(start);
    if (elapsed * 1000.0 >= min_ms || reps > (1u << 28)) {
      return elapsed / static_cast<double>(reps);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli(
      "Kernel microbench: blocked vs reference GEMM over paper-shaped sizes.");
  cli.add_flag("min_ms", static_cast<std::int64_t>(150),
               "minimum milliseconds of measured work per timing point");
  cli.add_flag("out", std::string("BENCH_kernels.json"), "JSON output path");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double min_ms = static_cast<double>(cli.get_int("min_ms"));

  // GEMM shapes of the paper's models (batch 32 for the dense layers):
  //   mnist cnn2 on 1x28x28, cifar cnn3 on 3x32x32 (see nn/factory.cpp).
  // Forward = nn, weight-gradient = nt, column-gradient = tn.
  const std::vector<Case> cases = {
      {"mnist_conv1_fwd", "mnist", Op::Nn, 8, 9, 784},
      {"mnist_conv2_fwd", "mnist", Op::Nn, 16, 72, 196},
      {"mnist_dense1_fwd", "mnist", Op::Nn, 32, 784, 32},
      {"mnist_dense2_fwd", "mnist", Op::Nn, 32, 32, 10},
      {"mnist_conv2_dw", "mnist", Op::Nt, 16, 196, 72},
      {"mnist_conv2_dcols", "mnist", Op::Tn, 72, 16, 196},
      {"cifar_conv1_fwd", "cifar", Op::Nn, 8, 27, 1024},
      {"cifar_conv2_fwd", "cifar", Op::Nn, 16, 72, 256},
      {"cifar_conv3_fwd", "cifar", Op::Nn, 32, 144, 64},
      {"cifar_dense1_fwd", "cifar", Op::Nn, 32, 512, 64},
      {"cifar_conv1_dw", "cifar", Op::Nt, 8, 1024, 27},
      {"cifar_conv2_dw", "cifar", Op::Nt, 16, 256, 72},
      {"cifar_conv2_dcols", "cifar", Op::Tn, 72, 16, 256},
      {"cifar_dense1_dw", "cifar", Op::Tn, 512, 32, 64},
      {"cifar_dense1_dx", "cifar", Op::Nt, 32, 64, 512},
      {"square_256", "square", Op::Nn, 256, 256, 256},
  };

  common::Rng rng(99);
  std::vector<Result> results;
  for (const auto& c : cases) {
    std::vector<float> a(c.m * c.k), b(c.k * c.n);
    for (auto& v : a) v = static_cast<float>(rng.normal());
    for (auto& v : b) v = static_cast<float>(rng.normal());
    std::vector<float> c_ref(c.m * c.n, 0.0f), c_blk(c.m * c.n, 0.0f);

    Result r;
    r.shape = c;
    run_op(c.op, false, a.data(), b.data(), c_ref.data(), c.m, c.k, c.n);
    run_op(c.op, true, a.data(), b.data(), c_blk.data(), c.m, c.k, c.n);
    r.exact = c_ref == c_blk;

    const double ref_s = time_impl(c.op, false, a.data(), b.data(),
                                   c_ref.data(), c.m, c.k, c.n, min_ms);
    const double blk_s = time_impl(c.op, true, a.data(), b.data(),
                                   c_blk.data(), c.m, c.k, c.n, min_ms);
    const double flops =
        2.0 * static_cast<double>(c.m) * static_cast<double>(c.k) *
        static_cast<double>(c.n);
    r.ref_gflops = flops / ref_s * 1e-9;
    r.blocked_gflops = flops / blk_s * 1e-9;
    r.speedup = ref_s / blk_s;
    results.push_back(r);
  }

  common::Table table(
      {"case", "op", "m", "k", "n", "ref GF/s", "blk GF/s", "speedup", "exact"});
  double min_cifar_speedup = 1e9;
  bool all_exact = true;
  for (const auto& r : results) {
    table.row()
        .cell(r.shape.name)
        .cell(op_name(r.shape.op))
        .cell(r.shape.m)
        .cell(r.shape.k)
        .cell(r.shape.n)
        .cell(r.ref_gflops, 2)
        .cell(r.blocked_gflops, 2)
        .cell(r.speedup, 2)
        .cell(r.exact ? "yes" : "NO");
    if (r.shape.group == "cifar") {
      min_cifar_speedup = std::min(min_cifar_speedup, r.speedup);
    }
    all_exact = all_exact && r.exact;
  }
  std::cout << "=== kernel microbench (blocked vs reference) ===\n";
  table.print(std::cout);
  std::cout << "\nmin speedup over CIFAR-shaped GEMMs: " << min_cifar_speedup
            << "x; exact equality: " << (all_exact ? "yes" : "NO") << "\n";

  std::string json_results = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    obs::JsonObjectWriter w;
    w.begin();
    w.field("case", r.shape.name);
    w.field("group", r.shape.group);
    w.field("op", op_name(r.shape.op));
    w.field("m", static_cast<std::uint64_t>(r.shape.m));
    w.field("k", static_cast<std::uint64_t>(r.shape.k));
    w.field("n", static_cast<std::uint64_t>(r.shape.n));
    w.field("ref_gflops", r.ref_gflops);
    w.field("blocked_gflops", r.blocked_gflops);
    w.field("speedup", r.speedup);
    w.field("exact_match", r.exact);
    if (i != 0) json_results += ',';
    json_results += w.end();
  }
  json_results += ']';

  obs::JsonObjectWriter w;
  w.begin();
  w.field("bench", "kernels");
  w.field("min_ms", min_ms);
  w.field("min_cifar_speedup", min_cifar_speedup);
  w.field("all_exact", all_exact);
  w.raw_field("hardware", obs::hardware_json());
  w.raw_field("results", json_results);

  const std::string out_path = cli.get_string("out");
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << w.end() << "\n";
  std::cout << "results written to " << out_path << "\n";
  return all_exact ? 0 : 1;
}
