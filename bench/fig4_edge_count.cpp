// Figure 4 reproduction: time steps to reach the target accuracy under
// different numbers of edges (2, 5, 10), with per-edge channel capacity
// rescaled so ~50% of devices participate in every setting. Also reports the
// improvement of MACH over the best basic sampling method per group — the
// paper's headline observation is that this improvement shrinks
// monotonically as the number of edges decreases.
//
//   ./fig4_edge_count [--task all|mnist|fmnist|cifar10] [--edges 2,5,10]
//   env: REPRO_FULL=1, BENCH_SEEDS=N
#include "bench_util.h"

#include <sstream>

#include "common/table.h"

namespace {

std::vector<std::size_t> parse_sizes(const std::string& flag) {
  std::vector<std::size_t> out;
  std::stringstream ss(flag);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mach;

  common::CliParser cli("Figure 4: time-to-target under different edge counts.");
  cli.add_flag("task", std::string("all"), "task filter: all|mnist|fmnist|cifar10");
  cli.add_flag("edges", std::string("2,5,10"), "comma-separated edge counts");
  cli.add_flag("target_scale", 1.0,
               "multiply each task's target accuracy (the 2/5-edge worlds can "
               "plateau below the 10-edge-calibrated targets; 0.85 keeps every "
               "cell informative)");
  cli.add_flag("csv", std::string("fig4_edge_count.csv"), "CSV output path");
  bench::add_threads_flag(cli);
  cli.add_flag("trace", std::string(""),
               "write one JSONL telemetry trace of every run to this path "
               "(empty = off)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  bench::print_mode_banner("Figure 4: varying number of edges");
  const auto seeds = bench::bench_seeds();
  const auto edge_counts = parse_sizes(cli.get_string("edges"));
  const auto trace = bench::open_bench_trace(cli.get_string("trace"));

  common::Table table({"task", "edges", "MACH", "MACH-P", "US", "CS", "SS",
                       "MACH vs best basic"});
  for (const auto task : bench::parse_tasks(cli.get_string("task"))) {
    for (const std::size_t edges : edge_counts) {
      auto config = hfl::ExperimentConfig::preset(task);
      bench::apply_threads_flag(cli, config);
      config.num_edges = edges;
      config.target_accuracy *= cli.get_double("target_scale");
      // Capacity derivation K_n = participation * |M| / |N| keeps ~50% of all
      // devices participating regardless of the edge count (paper §IV-B.2).
      config.num_stations = std::max(config.num_stations, 4 * edges);

      auto& row = table.row().cell(data::task_name(task)).cell(edges);
      double mach_steps = 0.0;
      double best_basic = 1e300;
      for (const auto& name : core::paper_algorithms()) {
        const auto result = bench::run_algo_curve(config, name, seeds, trace.get());
        row.cell(bench::steps_cell(result, config.horizon));
        const double curve_steps = result.steps_to_target
                                   ? static_cast<double>(*result.steps_to_target)
                                   : static_cast<double>(config.horizon);
        if (name == "mach") mach_steps = curve_steps;
        if (name == "uniform" || name == "class_balance" || name == "statistical") {
          best_basic = std::min(best_basic, curve_steps);
        }
      }
      const double saved = best_basic > 0.0
                               ? (best_basic - mach_steps) / best_basic * 100.0
                               : 0.0;
      row.cell(common::format_double(saved, 2) + "%");
      std::cout << data::task_name(task) << " edges=" << edges << " done\n";
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  if (table.write_csv(cli.get_string("csv"))) {
    std::cout << "\nwritten to " << cli.get_string("csv") << '\n';
  }
  return 0;
}
