#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/kernels/kernels.h"

namespace mach::tensor {

namespace {

namespace kern = kernels;

void check_rank2(const Tensor& t, const char* what) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(what) + ": rank must be 2");
}

kern::ConstMat view2d(const Tensor& t) { return {t.data(), t.dim(0), t.dim(1)}; }
kern::Mat view2d(Tensor& t) { return {t.data(), t.dim(0), t.dim(1)}; }

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_rank2(a, "gemm A");
  check_rank2(b, "gemm B");
  check_rank2(c, "gemm C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  kern::gemm_nn(view2d(a), view2d(b), view2d(c), accumulate);
}

void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_rank2(a, "gemm_at_b A");
  check_rank2(b, "gemm_at_b B");
  check_rank2(c, "gemm_at_b C");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_at_b: shape mismatch");
  }
  kern::gemm_tn(view2d(a), view2d(b), view2d(c), accumulate);
}

void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_rank2(a, "gemm_a_bt A");
  check_rank2(b, "gemm_a_bt B");
  check_rank2(c, "gemm_a_bt C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_a_bt: shape mismatch");
  }
  kern::gemm_nt(view2d(a), view2d(b), view2d(c), accumulate);
}

void linear_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                    Tensor& output) {
  check_rank2(input, "linear_forward input");
  check_rank2(weight, "linear_forward weight");
  check_rank2(output, "linear_forward output");
  const std::size_t m = input.dim(0), k = input.dim(1), n = weight.dim(1);
  if (weight.dim(0) != k || output.dim(0) != m || output.dim(1) != n ||
      bias.numel() != n) {
    throw std::invalid_argument("linear_forward: shape mismatch");
  }
  kern::gemm_nn(view2d(input), view2d(weight), view2d(output),
                /*accumulate=*/false, /*bias_row=*/nullptr,
                /*bias_col=*/bias.data());
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  check_rank2(x, "add_row_bias x");
  const std::size_t m = x.dim(0), n = x.dim(1);
  if (bias.numel() != n) throw std::invalid_argument("add_row_bias: bias size mismatch");
  kern::add_bias_rows(m, n, bias.data(), x.data());
}

void sum_rows(const Tensor& grad, Tensor& bias_grad, bool accumulate) {
  check_rank2(grad, "sum_rows grad");
  const std::size_t m = grad.dim(0), n = grad.dim(1);
  if (bias_grad.numel() != n) throw std::invalid_argument("sum_rows: size mismatch");
  kern::col_sums(m, n, grad.data(), bias_grad.data(), accumulate);
}

void im2col(const Tensor& input, std::size_t image_index, const ConvSpec& spec,
            Tensor& columns) {
  const std::size_t c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t rows = c * spec.kernel * spec.kernel;
  const std::size_t cols = oh * ow;
  if (columns.rank() != 2 || columns.dim(0) != rows || columns.dim(1) != cols) {
    columns = Tensor({rows, cols});
  }
  kern::im2col(input.data() + image_index * c * h * w, c, h, w, spec.kernel,
               spec.pad, spec.stride, columns.data());
}

void col2im(const Tensor& columns, std::size_t image_index, const ConvSpec& spec,
            Tensor& grad_input) {
  const std::size_t c = grad_input.dim(1), h = grad_input.dim(2), w = grad_input.dim(3);
  kern::col2im(columns.data(), c, h, w, spec.kernel, spec.pad, spec.stride,
               grad_input.data() + image_index * c * h * w);
}

void conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                    const ConvSpec& spec, Tensor& output, ScratchArena& arena) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t out_c = spec.out_channels;
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  if (input.dim(1) != spec.in_channels) {
    throw std::invalid_argument("conv2d_forward: channel mismatch");
  }
  if (output.rank() != 4 || output.dim(0) != batch || output.dim(1) != out_c ||
      output.dim(2) != oh || output.dim(3) != ow) {
    throw std::invalid_argument("conv2d_forward: bad output shape");
  }
  // In-place views: weight as [out_c, patch], each image's output plane as
  // [out_c, oh*ow]; the im2col buffer lives in the arena. Bias is fused into
  // the GEMM epilogue (same float chain as GEMM-then-add).
  arena.reset();
  arena.reserve(patch * oh * ow);
  float* cols = arena.alloc(patch * oh * ow);
  const kern::ConstMat weight2d{weight.data(), out_c, patch};
  for (std::size_t img = 0; img < batch; ++img) {
    kern::im2col(input.data() + img * spec.in_channels * h * w,
                 spec.in_channels, h, w, spec.kernel, spec.pad, spec.stride,
                 cols);
    kern::gemm_nn(weight2d, {cols, patch, oh * ow},
                  {output.data() + img * out_c * oh * ow, out_c, oh * ow},
                  /*accumulate=*/false, /*bias_row=*/bias.data(),
                  /*bias_col=*/nullptr);
  }
}

void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, const ConvSpec& spec,
                     Tensor& grad_input, Tensor& grad_weight, Tensor& grad_bias,
                     ScratchArena& arena) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t out_c = spec.out_channels;
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  grad_input.zero();
  grad_weight.zero();
  grad_bias.zero();
  // Two arena spans: im2col columns and the W^T*gout column gradients.
  // Reserve the combined footprint up front so the second alloc cannot move
  // the first (ScratchArena pointer-stability rule).
  arena.reset();
  arena.reserve(2 * patch * oh * ow);
  float* cols = arena.alloc(patch * oh * ow);
  float* gcols = arena.alloc(patch * oh * ow);
  const kern::ConstMat weight2d{weight.data(), out_c, patch};
  const kern::Mat grad_weight2d{grad_weight.data(), out_c, patch};
  for (std::size_t img = 0; img < batch; ++img) {
    kern::im2col(input.data() + img * spec.in_channels * h * w,
                 spec.in_channels, h, w, spec.kernel, spec.pad, spec.stride,
                 cols);
    // This image's grad_output viewed in place as [out_c, oh*ow].
    const kern::ConstMat gout2d{grad_output.data() + img * out_c * oh * ow,
                                out_c, oh * ow};
    // dW += gout2d * cols^T
    kern::gemm_nt(gout2d, {cols, patch, oh * ow}, grad_weight2d,
                  /*accumulate=*/true);
    // dcols = W^T * gout2d
    kern::gemm_tn(weight2d, gout2d, {gcols, patch, oh * ow});
    kern::col2im(gcols, spec.in_channels, h, w, spec.kernel, spec.pad,
                 spec.stride,
                 grad_input.data() + img * spec.in_channels * h * w);
    // dbias: each channel row summed into a fresh accumulator, added once.
    kern::row_sums(out_c, oh * ow, gout2d.data, grad_bias.data());
  }
}

void maxpool2x2_forward(const Tensor& input, Tensor& output,
                        std::vector<std::uint32_t>& argmax) {
  const std::size_t batch = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  if (h % 2 != 0 || w % 2 != 0) {
    throw std::invalid_argument("maxpool2x2: odd input dimensions");
  }
  const std::size_t oh = h / 2, ow = w / 2;
  if (output.rank() != 4 || output.dim(0) != batch || output.dim(1) != c ||
      output.dim(2) != oh || output.dim(3) != ow) {
    throw std::invalid_argument("maxpool2x2: bad output shape");
  }
  argmax.assign(batch * c * oh * ow, 0);
  const float* in = input.data();
  float* out = output.data();
  std::size_t oidx = 0;
  for (std::size_t img = 0; img < batch; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (img * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const std::size_t base = (2 * oy) * w + 2 * ox;
          float best = plane[base];
          std::uint32_t best_idx = static_cast<std::uint32_t>(base);
          const std::size_t candidates[3] = {base + 1, base + w, base + w + 1};
          for (std::size_t cand : candidates) {
            if (plane[cand] > best) {
              best = plane[cand];
              best_idx = static_cast<std::uint32_t>(cand);
            }
          }
          out[oidx] = best;
          argmax[oidx] = best_idx;
          ++oidx;
        }
      }
    }
  }
}

void maxpool2x2_backward(const Tensor& grad_output,
                         const std::vector<std::uint32_t>& argmax,
                         Tensor& grad_input) {
  const std::size_t batch = grad_input.dim(0), c = grad_input.dim(1),
                    h = grad_input.dim(2), w = grad_input.dim(3);
  const std::size_t oh = h / 2, ow = w / 2;
  grad_input.zero();
  const float* gout = grad_output.data();
  float* gin = grad_input.data();
  std::size_t oidx = 0;
  for (std::size_t img = 0; img < batch; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* plane = gin + (img * c + ch) * h * w;
      for (std::size_t i = 0; i < oh * ow; ++i, ++oidx) {
        plane[argmax[oidx]] += gout[oidx];
      }
    }
  }
}

void relu_forward(const Tensor& input, Tensor& output) {
  if (!input.same_shape(output)) throw std::invalid_argument("relu: shape mismatch");
  kern::relu(input.numel(), input.data(), output.data());
}

void relu_backward(const Tensor& input, const Tensor& grad_output, Tensor& grad_input) {
  if (!input.same_shape(grad_output) || !input.same_shape(grad_input)) {
    throw std::invalid_argument("relu_backward: shape mismatch");
  }
  kern::relu_bwd(input.numel(), input.data(), grad_output.data(), grad_input.data());
}

void softmax(const Tensor& logits, Tensor& probs) {
  if (logits.rank() != 2 || !logits.same_shape(probs)) {
    throw std::invalid_argument("softmax: bad shapes");
  }
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  const float* in = logits.data();
  float* out = probs.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = in + i * n;
    float* prow = out + i * n;
    float maxv = row[0];
    for (std::size_t j = 1; j < n; ++j) maxv = std::max(maxv, row[j]);
    float total = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      prow[j] = std::exp(row[j] - maxv);
      total += prow[j];
    }
    const float inv = 1.0f / total;
    for (std::size_t j = 0; j < n; ++j) prow[j] *= inv;
  }
}

double cross_entropy_loss(const Tensor& probs, std::span<const int> labels) {
  const std::size_t m = probs.dim(0), n = probs.dim(1);
  if (labels.size() != m) throw std::invalid_argument("cross_entropy: label count");
  double total = 0.0;
  const float* pd = probs.data();
  for (std::size_t i = 0; i < m; ++i) {
    const int label = labels[i];
    if (label < 0 || static_cast<std::size_t>(label) >= n) {
      throw std::out_of_range("cross_entropy: label out of range");
    }
    const double p = std::max<double>(pd[i * n + static_cast<std::size_t>(label)], 1e-12);
    total -= std::log(p);
  }
  return total / static_cast<double>(m);
}

void softmax_cross_entropy_backward(const Tensor& probs, std::span<const int> labels,
                                    Tensor& grad_logits) {
  const std::size_t m = probs.dim(0), n = probs.dim(1);
  if (!probs.same_shape(grad_logits)) {
    throw std::invalid_argument("softmax_xent_backward: shape mismatch");
  }
  const float inv_batch = 1.0f / static_cast<float>(m);
  const float* pd = probs.data();
  float* gd = grad_logits.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) gd[i * n + j] = pd[i * n + j] * inv_batch;
    gd[i * n + static_cast<std::size_t>(labels[i])] -= inv_batch;
  }
}

std::size_t count_correct(const Tensor& logits, std::span<const int> labels) {
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  std::size_t correct = 0;
  const float* ld = logits.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = ld + i * n;
    std::size_t best = 0;
    for (std::size_t j = 1; j < n; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (static_cast<int>(best) == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace mach::tensor
