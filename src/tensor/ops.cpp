#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mach::tensor {

namespace {

void check_rank2(const Tensor& t, const char* what) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(what) + ": rank must be 2");
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_rank2(a, "gemm A");
  check_rank2(b, "gemm B");
  check_rank2(c, "gemm C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  if (!accumulate) c.zero();
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  // ikj loop order: streams B and C rows, keeps a[i*k+p] in register.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float aval = ad[i * k + p];
      if (aval == 0.0f) continue;
      const float* brow = bd + p * n;
      float* crow = cd + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_rank2(a, "gemm_at_b A");
  check_rank2(b, "gemm_at_b B");
  check_rank2(c, "gemm_at_b C");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_at_b: shape mismatch");
  }
  if (!accumulate) c.zero();
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = ad + p * m;
    const float* brow = bd + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aval = arow[i];
      if (aval == 0.0f) continue;
      float* crow = cd + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_rank2(a, "gemm_a_bt A");
  check_rank2(b, "gemm_a_bt B");
  check_rank2(c, "gemm_a_bt C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_a_bt: shape mismatch");
  }
  if (!accumulate) c.zero();
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    float* crow = cd + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  check_rank2(x, "add_row_bias x");
  const std::size_t m = x.dim(0), n = x.dim(1);
  if (bias.numel() != n) throw std::invalid_argument("add_row_bias: bias size mismatch");
  float* xd = x.data();
  const float* bd = bias.data();
  for (std::size_t i = 0; i < m; ++i) {
    float* row = xd + i * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += bd[j];
  }
}

void sum_rows(const Tensor& grad, Tensor& bias_grad, bool accumulate) {
  check_rank2(grad, "sum_rows grad");
  const std::size_t m = grad.dim(0), n = grad.dim(1);
  if (bias_grad.numel() != n) throw std::invalid_argument("sum_rows: size mismatch");
  if (!accumulate) bias_grad.zero();
  const float* gd = grad.data();
  float* bd = bias_grad.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = gd + i * n;
    for (std::size_t j = 0; j < n; ++j) bd[j] += row[j];
  }
}

void im2col(const Tensor& input, std::size_t image_index, const ConvSpec& spec,
            Tensor& columns) {
  const std::size_t c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t kh = spec.kernel, kw = spec.kernel;
  const std::size_t rows = c * kh * kw;
  const std::size_t cols = oh * ow;
  if (columns.rank() != 2 || columns.dim(0) != rows || columns.dim(1) != cols) {
    columns = Tensor({rows, cols});
  }
  const float* in = input.data() + image_index * c * h * w;
  float* out = columns.data();
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx) {
        float* dst = out + ((ch * kh + ky) * kw + kx) * cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
              static_cast<std::ptrdiff_t>(spec.pad);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                static_cast<std::ptrdiff_t>(spec.pad);
            float value = 0.0f;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(h) && ix >= 0 &&
                ix < static_cast<std::ptrdiff_t>(w)) {
              value = in[(ch * h + static_cast<std::size_t>(iy)) * w +
                         static_cast<std::size_t>(ix)];
            }
            dst[oy * ow + ox] = value;
          }
        }
      }
    }
  }
}

void col2im(const Tensor& columns, std::size_t image_index, const ConvSpec& spec,
            Tensor& grad_input) {
  const std::size_t c = grad_input.dim(1), h = grad_input.dim(2), w = grad_input.dim(3);
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t kh = spec.kernel, kw = spec.kernel;
  const std::size_t cols = oh * ow;
  float* out = grad_input.data() + image_index * c * h * w;
  const float* in = columns.data();
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx) {
        const float* src = in + ((ch * kh + ky) * kw + kx) * cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
              static_cast<std::ptrdiff_t>(spec.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                static_cast<std::ptrdiff_t>(spec.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
            out[(ch * h + static_cast<std::size_t>(iy)) * w +
                static_cast<std::size_t>(ix)] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

void conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                    const ConvSpec& spec, Tensor& output, Tensor& scratch) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t out_c = spec.out_channels;
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  if (input.dim(1) != spec.in_channels) {
    throw std::invalid_argument("conv2d_forward: channel mismatch");
  }
  if (output.rank() != 4 || output.dim(0) != batch || output.dim(1) != out_c ||
      output.dim(2) != oh || output.dim(3) != ow) {
    throw std::invalid_argument("conv2d_forward: bad output shape");
  }
  // weight viewed as [out_c, patch]; columns as [patch, oh*ow].
  Tensor weight2d({out_c, patch}, std::vector<float>(weight.flat().begin(),
                                                     weight.flat().end()));
  for (std::size_t img = 0; img < batch; ++img) {
    im2col(input, img, spec, scratch);
    Tensor out2d({out_c, oh * ow});
    gemm(weight2d, scratch, out2d);
    float* dst = output.data() + img * out_c * oh * ow;
    const float* src = out2d.data();
    const float* bd = bias.data();
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      const float b = bd[oc];
      for (std::size_t i = 0; i < oh * ow; ++i) dst[oc * oh * ow + i] = src[oc * oh * ow + i] + b;
    }
  }
}

void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, const ConvSpec& spec,
                     Tensor& grad_input, Tensor& grad_weight, Tensor& grad_bias,
                     Tensor& scratch_cols, Tensor& scratch_grad_cols) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t out_c = spec.out_channels;
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  grad_input.zero();
  grad_weight.zero();
  grad_bias.zero();
  Tensor weight2d({out_c, patch}, std::vector<float>(weight.flat().begin(),
                                                     weight.flat().end()));
  Tensor grad_weight2d({out_c, patch});
  for (std::size_t img = 0; img < batch; ++img) {
    im2col(input, img, spec, scratch_cols);
    // View this image's grad_output as [out_c, oh*ow].
    Tensor gout2d({out_c, oh * ow},
                  std::vector<float>(grad_output.data() + img * out_c * oh * ow,
                                     grad_output.data() + (img + 1) * out_c * oh * ow));
    // dW += gout2d * cols^T
    gemm_a_bt(gout2d, scratch_cols, grad_weight2d, /*accumulate=*/true);
    // dcols = W^T * gout2d
    if (scratch_grad_cols.rank() != 2 || scratch_grad_cols.dim(0) != patch ||
        scratch_grad_cols.dim(1) != oh * ow) {
      scratch_grad_cols = Tensor({patch, oh * ow});
    }
    gemm_at_b(weight2d, gout2d, scratch_grad_cols);
    col2im(scratch_grad_cols, img, spec, grad_input);
    // dbias
    const float* gd = gout2d.data();
    float* bg = grad_bias.data();
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < oh * ow; ++i) acc += gd[oc * oh * ow + i];
      bg[oc] += acc;
    }
  }
  std::copy(grad_weight2d.flat().begin(), grad_weight2d.flat().end(),
            grad_weight.flat().begin());
}

void maxpool2x2_forward(const Tensor& input, Tensor& output,
                        std::vector<std::uint32_t>& argmax) {
  const std::size_t batch = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  if (h % 2 != 0 || w % 2 != 0) {
    throw std::invalid_argument("maxpool2x2: odd input dimensions");
  }
  const std::size_t oh = h / 2, ow = w / 2;
  if (output.rank() != 4 || output.dim(0) != batch || output.dim(1) != c ||
      output.dim(2) != oh || output.dim(3) != ow) {
    throw std::invalid_argument("maxpool2x2: bad output shape");
  }
  argmax.assign(batch * c * oh * ow, 0);
  const float* in = input.data();
  float* out = output.data();
  std::size_t oidx = 0;
  for (std::size_t img = 0; img < batch; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (img * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const std::size_t base = (2 * oy) * w + 2 * ox;
          float best = plane[base];
          std::uint32_t best_idx = static_cast<std::uint32_t>(base);
          const std::size_t candidates[3] = {base + 1, base + w, base + w + 1};
          for (std::size_t cand : candidates) {
            if (plane[cand] > best) {
              best = plane[cand];
              best_idx = static_cast<std::uint32_t>(cand);
            }
          }
          out[oidx] = best;
          argmax[oidx] = best_idx;
          ++oidx;
        }
      }
    }
  }
}

void maxpool2x2_backward(const Tensor& grad_output,
                         const std::vector<std::uint32_t>& argmax,
                         Tensor& grad_input) {
  const std::size_t batch = grad_input.dim(0), c = grad_input.dim(1),
                    h = grad_input.dim(2), w = grad_input.dim(3);
  const std::size_t oh = h / 2, ow = w / 2;
  grad_input.zero();
  const float* gout = grad_output.data();
  float* gin = grad_input.data();
  std::size_t oidx = 0;
  for (std::size_t img = 0; img < batch; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* plane = gin + (img * c + ch) * h * w;
      for (std::size_t i = 0; i < oh * ow; ++i, ++oidx) {
        plane[argmax[oidx]] += gout[oidx];
      }
    }
  }
}

void relu_forward(const Tensor& input, Tensor& output) {
  if (!input.same_shape(output)) throw std::invalid_argument("relu: shape mismatch");
  const float* in = input.data();
  float* out = output.data();
  for (std::size_t i = 0; i < input.numel(); ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

void relu_backward(const Tensor& input, const Tensor& grad_output, Tensor& grad_input) {
  if (!input.same_shape(grad_output) || !input.same_shape(grad_input)) {
    throw std::invalid_argument("relu_backward: shape mismatch");
  }
  const float* in = input.data();
  const float* gout = grad_output.data();
  float* gin = grad_input.data();
  for (std::size_t i = 0; i < input.numel(); ++i) {
    gin[i] = in[i] > 0.0f ? gout[i] : 0.0f;
  }
}

void softmax(const Tensor& logits, Tensor& probs) {
  if (logits.rank() != 2 || !logits.same_shape(probs)) {
    throw std::invalid_argument("softmax: bad shapes");
  }
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  const float* in = logits.data();
  float* out = probs.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = in + i * n;
    float* prow = out + i * n;
    float maxv = row[0];
    for (std::size_t j = 1; j < n; ++j) maxv = std::max(maxv, row[j]);
    float total = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      prow[j] = std::exp(row[j] - maxv);
      total += prow[j];
    }
    const float inv = 1.0f / total;
    for (std::size_t j = 0; j < n; ++j) prow[j] *= inv;
  }
}

double cross_entropy_loss(const Tensor& probs, std::span<const int> labels) {
  const std::size_t m = probs.dim(0), n = probs.dim(1);
  if (labels.size() != m) throw std::invalid_argument("cross_entropy: label count");
  double total = 0.0;
  const float* pd = probs.data();
  for (std::size_t i = 0; i < m; ++i) {
    const int label = labels[i];
    if (label < 0 || static_cast<std::size_t>(label) >= n) {
      throw std::out_of_range("cross_entropy: label out of range");
    }
    const double p = std::max<double>(pd[i * n + static_cast<std::size_t>(label)], 1e-12);
    total -= std::log(p);
  }
  return total / static_cast<double>(m);
}

void softmax_cross_entropy_backward(const Tensor& probs, std::span<const int> labels,
                                    Tensor& grad_logits) {
  const std::size_t m = probs.dim(0), n = probs.dim(1);
  if (!probs.same_shape(grad_logits)) {
    throw std::invalid_argument("softmax_xent_backward: shape mismatch");
  }
  const float inv_batch = 1.0f / static_cast<float>(m);
  const float* pd = probs.data();
  float* gd = grad_logits.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) gd[i * n + j] = pd[i * n + j] * inv_batch;
    gd[i * n + static_cast<std::size_t>(labels[i])] -= inv_batch;
  }
}

std::size_t count_correct(const Tensor& logits, std::span<const int> labels) {
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  std::size_t correct = 0;
  const float* ld = logits.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = ld + i * n;
    std::size_t best = 0;
    for (std::size_t j = 1; j < n; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (static_cast<int>(best) == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace mach::tensor
