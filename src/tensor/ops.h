// Dense kernels backing the neural-network layers: GEMM variants, im2col
// convolution, pooling, activations and the softmax cross-entropy head.
//
// All kernels are single-threaded (the simulator runs many small models, not
// one big one). Since PR 3 the Tensor-level entry points here are thin
// shape-checked adapters over the register-blocked kernel layer in
// tensor/kernels/ (see kernels.h for the blocking scheme and the determinism
// contract); the conv path runs over raw views + a caller-owned ScratchArena
// so steady-state training allocates nothing.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace mach::tensor {

// ---------------------------------------------------------------------------
// GEMM: C = A * B (+ C if accumulate). Shapes: A[m,k], B[k,n], C[m,n].
// ---------------------------------------------------------------------------
void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
/// C = A^T * B. Shapes: A[k,m], B[k,n], C[m,n].
void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
/// C = A * B^T. Shapes: A[m,k], B[n,k], C[m,n].
void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// Dense-layer forward with fused bias epilogue: out[m,n] = in[m,k] *
/// W[k,n] + bias[n] (bias added once after the final k contribution — the
/// float chain is identical to gemm followed by add_row_bias).
void linear_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                    Tensor& output);

/// Adds a row vector bias[n] to every row of x[m,n].
void add_row_bias(Tensor& x, const Tensor& bias);
/// Accumulates column sums of grad[m,n] into bias_grad[n].
void sum_rows(const Tensor& grad, Tensor& bias_grad, bool accumulate = false);

// ---------------------------------------------------------------------------
// Convolution via im2col. Input NCHW, kernel [out_c, in_c, kh, kw], stride 1,
// symmetric zero padding `pad`.
// ---------------------------------------------------------------------------
struct ConvSpec {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;    // square kernels only
  std::size_t pad = 1;       // symmetric zero padding
  std::size_t stride = 1;

  std::size_t out_dim(std::size_t in_dim) const noexcept {
    return (in_dim + 2 * pad - kernel) / stride + 1;
  }
};

/// Unfolds input[n,c,h,w] into columns[c*kh*kw, out_h*out_w] for image n.
void im2col(const Tensor& input, std::size_t image_index, const ConvSpec& spec,
            Tensor& columns);
/// Accumulates columns[c*kh*kw, out_h*out_w] back into grad_input image n.
void col2im(const Tensor& columns, std::size_t image_index, const ConvSpec& spec,
            Tensor& grad_input);

/// Forward convolution. output must be [n, out_c, out_h, out_w]. `arena`
/// provides the im2col scratch (reset + reserved internally); the weight is
/// viewed in place as [out_c, patch] and each image's output plane as
/// [out_c, oh*ow] — no copies, no per-call heap allocations once the arena
/// is warm. Bias is fused into the GEMM epilogue.
void conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                    const ConvSpec& spec, Tensor& output, ScratchArena& arena);
/// Backward convolution: fills grad_input / accumulates grad_weight, grad_bias.
/// `arena` provides both the cols and grad-cols scratch buffers.
void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, const ConvSpec& spec,
                     Tensor& grad_input, Tensor& grad_weight, Tensor& grad_bias,
                     ScratchArena& arena);

// ---------------------------------------------------------------------------
// 2x2 max pooling, stride 2 (dimensions must be even).
// ---------------------------------------------------------------------------
void maxpool2x2_forward(const Tensor& input, Tensor& output,
                        std::vector<std::uint32_t>& argmax);
void maxpool2x2_backward(const Tensor& grad_output,
                         const std::vector<std::uint32_t>& argmax,
                         Tensor& grad_input);

// ---------------------------------------------------------------------------
// Activations.
// ---------------------------------------------------------------------------
void relu_forward(const Tensor& input, Tensor& output);
/// grad_input = grad_output where input > 0 else 0.
void relu_backward(const Tensor& input, const Tensor& grad_output, Tensor& grad_input);

// ---------------------------------------------------------------------------
// Softmax cross-entropy head.
// ---------------------------------------------------------------------------
/// Computes row-wise softmax of logits[m,n] into probs[m,n] (numerically stable).
void softmax(const Tensor& logits, Tensor& probs);
/// Mean cross-entropy loss over the batch given integer labels.
double cross_entropy_loss(const Tensor& probs, std::span<const int> labels);
/// grad_logits = (probs - onehot(labels)) / batch.
void softmax_cross_entropy_backward(const Tensor& probs, std::span<const int> labels,
                                    Tensor& grad_logits);
/// Number of rows whose argmax equals the label.
std::size_t count_correct(const Tensor& logits, std::span<const int> labels);

}  // namespace mach::tensor
