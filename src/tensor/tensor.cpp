#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels/kernels.h"

namespace mach::tensor {

std::size_t Tensor::shape_numel(std::span<const std::size_t> shape) noexcept {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) throw std::out_of_range("Tensor::dim: bad axis");
  return shape_[axis];
}

float& Tensor::at2(std::size_t r, std::size_t c) {
  if (rank() != 2 || r >= shape_[0] || c >= shape_[1]) {
    throw std::out_of_range("Tensor::at2");
  }
  return data_[r * shape_[1] + c];
}

float Tensor::at2(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  if (rank() != 4 || n >= shape_[0] || c >= shape_[1] || h >= shape_[2] ||
      w >= shape_[3]) {
    throw std::out_of_range("Tensor::at4");
  }
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  if (shape_numel(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch");
  }
  shape_ = std::move(new_shape);
}

void Tensor::axpy(float alpha, const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("Tensor::axpy: shape mismatch");
  kernels::axpy(data_.size(), alpha, other.data_.data(), data_.data());
}

void Tensor::scale(float alpha) noexcept {
  kernels::scale(data_.size(), alpha, data_.data());
}

double Tensor::squared_norm() const noexcept {
  return kernels::squared_norm(data_.size(), data_.data());
}

std::string Tensor::shape_string() const {
  std::string out = "Tensor[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(shape_[i]);
  }
  out += "]";
  return out;
}

}  // namespace mach::tensor
