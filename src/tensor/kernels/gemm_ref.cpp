// Reference kernels: the seed's naive loops, retained verbatim (modulo the
// raw-pointer view interface). They define the summation-order contract the
// blocked kernels must reproduce bitwise, and they are the baseline the
// kernels microbench reports speedups against. Do not "optimise" this file —
// its value is being the simple, obviously-correct yardstick.
#include "tensor/kernels/kernels.h"

namespace mach::tensor::kernels::ref {

void gemm_nn(ConstMat a, ConstMat b, Mat c, bool accumulate,
             const float* bias_row, const float* bias_col) {
  const std::size_t m = a.rows, k = a.cols, n = b.cols;
  if (!accumulate) {
    for (std::size_t i = 0; i < m * n; ++i) c.data[i] = 0.0f;
  }
  // ikj loop order: streams B and C rows, keeps a[i*k+p] in register.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float aval = a.data[i * k + p];
      if (aval == 0.0f) continue;
      const float* brow = b.data + p * n;
      float* crow = c.data + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
  if (bias_row != nullptr) {
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c.data + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += bias_row[i];
    }
  }
  if (bias_col != nullptr) {
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c.data + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += bias_col[j];
    }
  }
}

void gemm_tn(ConstMat a, ConstMat b, Mat c, bool accumulate) {
  const std::size_t k = a.rows, m = a.cols, n = b.cols;
  if (!accumulate) {
    for (std::size_t i = 0; i < m * n; ++i) c.data[i] = 0.0f;
  }
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.data + p * m;
    const float* brow = b.data + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aval = arow[i];
      if (aval == 0.0f) continue;
      float* crow = c.data + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void gemm_nt(ConstMat a, ConstMat b, Mat c, bool accumulate) {
  const std::size_t m = a.rows, k = a.cols, n = b.rows;
  if (!accumulate) {
    for (std::size_t i = 0; i < m * n; ++i) c.data[i] = 0.0f;
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data + i * k;
    float* crow = c.data + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.data + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad,
            std::size_t stride, float* cols) {
  const std::size_t oh = (height + 2 * pad - kernel) / stride + 1;
  const std::size_t ow = (width + 2 * pad - kernel) / stride + 1;
  const std::size_t ncols = oh * ow;
  for (std::size_t ch = 0; ch < channels; ++ch) {
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        float* dst = cols + ((ch * kernel + ky) * kernel + kx) * ncols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * stride + ky) -
                                    static_cast<std::ptrdiff_t>(pad);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            float value = 0.0f;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(height) && ix >= 0 &&
                ix < static_cast<std::ptrdiff_t>(width)) {
              value = image[(ch * height + static_cast<std::size_t>(iy)) * width +
                            static_cast<std::size_t>(ix)];
            }
            dst[oy * ow + ox] = value;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad,
            std::size_t stride, float* grad_image) {
  const std::size_t oh = (height + 2 * pad - kernel) / stride + 1;
  const std::size_t ow = (width + 2 * pad - kernel) / stride + 1;
  const std::size_t ncols = oh * ow;
  for (std::size_t ch = 0; ch < channels; ++ch) {
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        const float* src = cols + ((ch * kernel + ky) * kernel + kx) * ncols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * stride + ky) -
                                    static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(height)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(width)) continue;
            grad_image[(ch * height + static_cast<std::size_t>(iy)) * width +
                       static_cast<std::size_t>(ix)] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace mach::tensor::kernels::ref
