// Elementwise, reduction and fused-optimiser kernels. Branch-free loops with
// per-element expressions copied exactly from the naive implementations they
// replace (ops.cpp, nn/sgd.cpp, nn/adam.cpp, hfl/simulator.cpp), so results
// are bitwise identical. Compiled with -O3 -ffp-contract=off: the compiler
// may vectorise the independent-lane loops freely, but must not fuse mul+add
// into FMA (which would round differently from the scalar reference).
//
// The reductions (dot, squared_norm) and the ordered sums (col_sums,
// row_sums) are NOT reassociated: their fixed summation chains are part of
// the determinism contract (gradient-norm observables must not depend on
// thread count or ISA), so they intentionally stay serial chains.
//
// No function multi-versioning here: target_clones de-optimises hot loops on
// GCC 12 (see gemm_blocked.cpp). Wider-than-baseline vectors are available
// via the opt-in MACH_NATIVE_ARCH CMake option.
#include "tensor/kernels/kernels.h"

#include <cmath>

namespace mach::tensor::kernels {

void relu(std::size_t n, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_bwd(std::size_t n, const float* x, const float* gy, float* gx) {
  for (std::size_t i = 0; i < n; ++i) gx[i] = x[i] > 0.0f ? gy[i] : 0.0f;
}

void axpy(std::size_t n, float alpha, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void axpy_delta(std::size_t n, float alpha, const float* x, const float* base,
                float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * (x[i] - base[i]);
}

void scale(std::size_t n, float alpha, float* x) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void scale_copy(std::size_t n, float alpha, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] = alpha * x[i];
}

void vadd(std::size_t n, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void add_bias_rows(std::size_t m, std::size_t n, const float* bias, float* x) {
  for (std::size_t i = 0; i < m; ++i) {
    float* row = x + i * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

void col_sums(std::size_t m, std::size_t n, const float* x, float* out,
              bool accumulate) {
  if (!accumulate) {
    for (std::size_t j = 0; j < n; ++j) out[j] = 0.0f;
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = x + i * n;
    for (std::size_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

void row_sums(std::size_t m, std::size_t n, const float* x, float* out) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = x + i * n;
    float acc = 0.0f;
    for (std::size_t j = 0; j < n; ++j) acc += row[j];
    out[i] += acc;
  }
}

double dot(std::size_t n, const float* x, const float* y) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return total;
}

double squared_norm(std::size_t n, const float* x) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    total += v * v;
  }
  return total;
}

void sgd_step(std::size_t n, float lr, float weight_decay, const float* grad,
              float* value) {
  for (std::size_t j = 0; j < n; ++j) {
    value[j] -= lr * (grad[j] + weight_decay * value[j]);
  }
}

void sgd_momentum_step(std::size_t n, float lr, float momentum,
                       float weight_decay, const float* grad, float* velocity,
                       float* value) {
  for (std::size_t j = 0; j < n; ++j) {
    const float g = grad[j] + weight_decay * value[j];
    velocity[j] = momentum * velocity[j] + g;
    value[j] -= lr * velocity[j];
  }
}

void adam_step(std::size_t n, double lr, double beta1, double beta2,
               double correction1, double correction2, double epsilon,
               float weight_decay, const float* grad, float* moment1,
               float* moment2, float* value) {
  for (std::size_t j = 0; j < n; ++j) {
    const float g = grad[j] + weight_decay * value[j];
    moment1[j] = static_cast<float>(beta1 * moment1[j] + (1.0 - beta1) * g);
    moment2[j] = static_cast<float>(beta2 * moment2[j] + (1.0 - beta2) * g * g);
    const double m_hat = moment1[j] / correction1;
    const double v_hat = moment2[j] / correction2;
    value[j] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + epsilon));
  }
}

}  // namespace mach::tensor::kernels
