// Production im2col / col2im with the padded border split from the interior.
//
// The reference kernels test `iy`/`ix` bounds per element inside the inner
// loop. Here, for each (channel, ky, kx) row of the cols matrix we solve the
// bounds once:
//
//   iy = oy * stride + ky - pad  must lie in [0, height)
//   ix = ox * stride + kx - pad  must lie in [0, width)
//
// giving half-open valid ranges [oy_lo, oy_hi) x [ox_lo, ox_hi). Everything
// outside is the zero-padded border (zero-filled by im2col, contributing
// nothing in col2im); the interior is a contiguous row copy for stride 1 and
// a branch-free strided copy otherwise.
//
// Determinism: im2col writes each destination element exactly once (same
// values as the reference); col2im performs exactly the additions the
// reference performs — the skipped border iterations are precisely the ones
// the reference `continue`d past — in the same (ch, ky, kx, oy, ox) order,
// so the accumulation chains into grad_image are identical.
#include "tensor/kernels/kernels.h"

#include <algorithm>
#include <cstring>

namespace mach::tensor::kernels {

namespace {

/// Valid half-open output range [lo, hi) for one kernel offset: the set of
/// `o` with 0 <= o * stride + offset < extent, clamped to [0, out_extent).
struct ValidRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

ValidRange valid_range(std::ptrdiff_t offset, std::size_t stride,
                       std::size_t extent, std::size_t out_extent) {
  const auto sstride = static_cast<std::ptrdiff_t>(stride);
  std::ptrdiff_t lo = 0;
  if (offset < 0) lo = (-offset + sstride - 1) / sstride;
  const std::ptrdiff_t last = static_cast<std::ptrdiff_t>(extent) - 1 - offset;
  if (last < 0) return {0, 0};
  const std::ptrdiff_t hi =
      std::min(last / sstride + 1, static_cast<std::ptrdiff_t>(out_extent));
  if (hi <= lo) return {0, 0};
  return {static_cast<std::size_t>(lo), static_cast<std::size_t>(hi)};
}

}  // namespace

void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad,
            std::size_t stride, float* cols) {
  const std::size_t oh = (height + 2 * pad - kernel) / stride + 1;
  const std::size_t ow = (width + 2 * pad - kernel) / stride + 1;
  const std::size_t ncols = oh * ow;
  for (std::size_t ch = 0; ch < channels; ++ch) {
    const float* plane = image + ch * height * width;
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      const auto dy = static_cast<std::ptrdiff_t>(ky) -
                      static_cast<std::ptrdiff_t>(pad);
      const ValidRange ry = valid_range(dy, stride, height, oh);
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        const auto dx = static_cast<std::ptrdiff_t>(kx) -
                        static_cast<std::ptrdiff_t>(pad);
        const ValidRange rx = valid_range(dx, stride, width, ow);
        float* dst = cols + ((ch * kernel + ky) * kernel + kx) * ncols;
        if (ry.lo == ry.hi || rx.lo == rx.hi) {
          std::fill_n(dst, ncols, 0.0f);
          continue;
        }
        std::fill_n(dst, ry.lo * ow, 0.0f);
        std::fill_n(dst + ry.hi * ow, (oh - ry.hi) * ow, 0.0f);
        for (std::size_t oy = ry.lo; oy < ry.hi; ++oy) {
          const std::size_t iy = static_cast<std::size_t>(
              static_cast<std::ptrdiff_t>(oy * stride) + dy);
          const float* src_row = plane + iy * width;
          float* dst_row = dst + oy * ow;
          std::fill_n(dst_row, rx.lo, 0.0f);
          std::fill_n(dst_row + rx.hi, ow - rx.hi, 0.0f);
          if (stride == 1) {
            const std::size_t ix0 = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(rx.lo) + dx);
            std::memcpy(dst_row + rx.lo, src_row + ix0,
                        (rx.hi - rx.lo) * sizeof(float));
          } else {
            for (std::size_t ox = rx.lo; ox < rx.hi; ++ox) {
              dst_row[ox] = src_row[static_cast<std::size_t>(
                  static_cast<std::ptrdiff_t>(ox * stride) + dx)];
            }
          }
        }
      }
    }
  }
}

void col2im(const float* cols, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad,
            std::size_t stride, float* grad_image) {
  const std::size_t oh = (height + 2 * pad - kernel) / stride + 1;
  const std::size_t ow = (width + 2 * pad - kernel) / stride + 1;
  const std::size_t ncols = oh * ow;
  for (std::size_t ch = 0; ch < channels; ++ch) {
    float* plane = grad_image + ch * height * width;
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      const auto dy = static_cast<std::ptrdiff_t>(ky) -
                      static_cast<std::ptrdiff_t>(pad);
      const ValidRange ry = valid_range(dy, stride, height, oh);
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        const auto dx = static_cast<std::ptrdiff_t>(kx) -
                        static_cast<std::ptrdiff_t>(pad);
        const ValidRange rx = valid_range(dx, stride, width, ow);
        const float* src = cols + ((ch * kernel + ky) * kernel + kx) * ncols;
        for (std::size_t oy = ry.lo; oy < ry.hi; ++oy) {
          const std::size_t iy =
              static_cast<std::size_t>(static_cast<std::ptrdiff_t>(oy * stride) + dy);
          float* dst_row = plane + iy * width;
          const float* src_row = src + oy * ow;
          if (stride == 1) {
            const std::size_t base = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(rx.lo) + dx);
            for (std::size_t ox = rx.lo; ox < rx.hi; ++ox) {
              dst_row[base + (ox - rx.lo)] += src_row[ox];
            }
          } else {
            for (std::size_t ox = rx.lo; ox < rx.hi; ++ox) {
              dst_row[static_cast<std::size_t>(
                  static_cast<std::ptrdiff_t>(ox * stride) + dx)] += src_row[ox];
            }
          }
        }
      }
    }
  }
}

}  // namespace mach::tensor::kernels
