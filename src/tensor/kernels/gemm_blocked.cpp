// Register-blocked, cache-tiled GEMM kernels.
//
// Structure (classic BLIS-style, single-threaded):
//   * the driver tiles N into NC panels, K into KC blocks and M into MC
//     blocks, packing the B panel (KC x NC, interleaved in NR-wide strips)
//     and the A block (MC x KC, interleaved in MR-wide strips) into
//     thread-local scratch so the micro-kernel streams contiguous memory;
//   * the micro-kernel computes an MR x NR register tile with branch-free
//     constant-trip-count loops the compiler auto-vectorises (no zero-skip
//     branch in the inner loop);
//   * edge tiles are handled by zero-padding the packs and masking only the
//     loads/stores, so the arithmetic stays branch-free everywhere.
//
// Determinism: every C element accumulates its k contributions in strictly
// increasing p order. KC blocking spills the exact partial sum to C between
// blocks (a lossless store/reload), so the float addition chain is identical
// to the retained reference kernels — the equivalence suite asserts exact
// equality, and serial-vs-parallel runs stay bitwise identical because the
// kernels are single-threaded with a fixed order at any thread count.
//
// This TU is compiled with -O3 -ffp-contract=off (see src/tensor/CMakeLists):
// contraction stays off so a fused multiply-add can never round differently
// from the reference's separate mul+add. The kernels deliberately avoid
// function multi-versioning (target_clones): on GCC 12 cloning de-optimises
// the register-tiled micro-kernel (the accumulator tile is spilled to the
// stack in the cloned bodies, costing ~10x). Baseline-ISA auto-vectorisation
// of the constant-trip-count tile loops already beats the reference several
// times over; builds that want host-wide vectors opt in via the
// MACH_NATIVE_ARCH CMake option, which keeps -ffp-contract=off so results
// stay bitwise identical.
#include "tensor/kernels/kernels.h"

#include <algorithm>
#include <vector>

#define MACH_INLINE inline __attribute__((always_inline))

namespace mach::tensor::kernels {

namespace {

// Thread-local pack buffers: grown on first use per thread, then reused —
// steady-state GEMM calls perform zero heap allocations.
std::vector<float>& tls_apack() {
  thread_local std::vector<float> buf;
  return buf;
}
std::vector<float>& tls_bpack() {
  thread_local std::vector<float> buf;
  return buf;
}

MACH_INLINE float* ensure(std::vector<float>& buf, std::size_t count) {
  if (buf.size() < count) buf.resize(count);
  return buf.data();
}

/// Packs an mc x kc block of A (row-major, leading dimension lda) into
/// MR-wide strips: apack[strip][(p * kMR) + r] = block[i0 + r][p], with rows
/// beyond mc zero-padded so the micro-kernel never branches on mr.
MACH_INLINE void pack_a_n(const float* block, std::size_t lda, std::size_t mc,
                          std::size_t kc, float* apack) {
  for (std::size_t i0 = 0; i0 < mc; i0 += kMR) {
    const std::size_t mr = std::min(kMR, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      float* dst = apack + p * kMR;
      for (std::size_t r = 0; r < mr; ++r) dst[r] = block[(i0 + r) * lda + p];
      for (std::size_t r = mr; r < kMR; ++r) dst[r] = 0.0f;
    }
    apack += kc * kMR;
  }
}

/// Same strip layout for a transposed-A block: the source is stored [k, m]
/// and we pack columns ic..ic+mc of rows pc..pc+kc. Reads are contiguous.
MACH_INLINE void pack_a_t(const float* block, std::size_t lda, std::size_t mc,
                          std::size_t kc, float* apack) {
  for (std::size_t i0 = 0; i0 < mc; i0 += kMR) {
    const std::size_t mr = std::min(kMR, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = block + p * lda + i0;
      float* dst = apack + p * kMR;
      for (std::size_t r = 0; r < mr; ++r) dst[r] = src[r];
      for (std::size_t r = mr; r < kMR; ++r) dst[r] = 0.0f;
    }
    apack += kc * kMR;
  }
}

/// Packs a kc x nc block of B (leading dimension ldb) into NR-wide strips:
/// bpack[strip][(p * kNR) + j] = block[p][j0 + j], zero-padded past nc.
MACH_INLINE void pack_b(const float* block, std::size_t ldb, std::size_t kc,
                        std::size_t nc, float* bpack) {
  for (std::size_t j0 = 0; j0 < nc; j0 += kNR) {
    const std::size_t nr = std::min(kNR, nc - j0);
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = block + p * ldb + j0;
      float* dst = bpack + p * kNR;
      for (std::size_t j = 0; j < nr; ++j) dst[j] = src[j];
      for (std::size_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
    }
    bpack += kc * kNR;
  }
}

/// Packs NR rows of B (stored [n, k], i.e. B-transposed access) over the
/// full k into bpack[p * kNR + j] = b[(j0 + j) * k + p].
MACH_INLINE void pack_bt(const float* rows, std::size_t k, std::size_t nr,
                         float* bpack) {
  for (std::size_t j = 0; j < nr; ++j) {
    const float* src = rows + j * k;
    for (std::size_t p = 0; p < k; ++p) bpack[p * kNR + j] = src[p];
  }
  for (std::size_t j = nr; j < kNR; ++j) {
    for (std::size_t p = 0; p < k; ++p) bpack[p * kNR + j] = 0.0f;
  }
}

/// The MR x NR micro-kernel for gemm_nn / gemm_tn. Loads the current C tile
/// (or zero on the first k-block of a non-accumulating call), accumulates kc
/// rank-1 updates in increasing p order, applies the optional fused bias on
/// the final k-block, and stores.
///
/// kFull is the compile-time "interior tile" flag: with it set, EVERY access
/// to the accumulator array uses constant bounds and constant indices, which
/// lets the compiler promote the whole MR x NR tile into vector registers
/// (4 x 8-wide) instead of spilling it to the stack each p iteration. The
/// edge variant (kFull=false) masks loads/stores with the runtime mr/nr and
/// only runs on the tile fringe.
template <bool kFull>
MACH_INLINE void micro_nn(std::size_t kc, const float* ap, const float* bp,
                          float* ct, std::size_t ldc, std::size_t mr,
                          std::size_t nr, bool zero_init, bool last,
                          const float* bias_row, const float* bias_col) {
  float acc[kMR * kNR];
  for (std::size_t i = 0; i < kMR * kNR; ++i) acc[i] = 0.0f;
  if (!zero_init) {
    if constexpr (kFull) {
      for (std::size_t r = 0; r < kMR; ++r) {
        for (std::size_t j = 0; j < kNR; ++j) {
          acc[r * kNR + j] = ct[r * ldc + j];
        }
      }
    } else {
      for (std::size_t r = 0; r < mr; ++r) {
        for (std::size_t j = 0; j < nr; ++j) acc[r * kNR + j] = ct[r * ldc + j];
      }
    }
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float* apr = ap + p * kMR;
    const float* bpr = bp + p * kNR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const float av = apr[r];
      for (std::size_t j = 0; j < kNR; ++j) {
        acc[r * kNR + j] += av * bpr[j];
      }
    }
  }
  if (last && bias_row != nullptr) {
    for (std::size_t r = 0; r < kMR; ++r) {
      const float brv = (kFull || r < mr) ? bias_row[r] : 0.0f;
      for (std::size_t j = 0; j < kNR; ++j) acc[r * kNR + j] += brv;
    }
  }
  if (last && bias_col != nullptr) {
    for (std::size_t r = 0; r < kMR; ++r) {
      for (std::size_t j = 0; j < kNR; ++j) {
        acc[r * kNR + j] += (kFull || j < nr) ? bias_col[j] : 0.0f;
      }
    }
  }
  if constexpr (kFull) {
    for (std::size_t r = 0; r < kMR; ++r) {
      for (std::size_t j = 0; j < kNR; ++j) ct[r * ldc + j] = acc[r * kNR + j];
    }
  } else {
    for (std::size_t r = 0; r < mr; ++r) {
      for (std::size_t j = 0; j < nr; ++j) ct[r * ldc + j] = acc[r * kNR + j];
    }
  }
}

/// Shared packed-panel driver for gemm_nn and gemm_tn (they differ only in
/// how the A block is packed). Loop order jc -> pc -> ic keeps the k-blocks
/// of any C element in increasing order, which the determinism contract
/// requires.
template <bool kTransposedA>
MACH_INLINE void gemm_nn_tn_driver(ConstMat a, ConstMat b, Mat c,
                                   bool accumulate, const float* bias_row,
                                   const float* bias_col) {
  const std::size_t m = c.rows, n = c.cols;
  const std::size_t k = kTransposedA ? a.rows : a.cols;
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::fill_n(c.data, m * n, 0.0f);
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c.data + i * n;
      if (bias_row != nullptr) {
        for (std::size_t j = 0; j < n; ++j) crow[j] += bias_row[i];
      }
      if (bias_col != nullptr) {
        for (std::size_t j = 0; j < n; ++j) crow[j] += bias_col[j];
      }
    }
    return;
  }
  float* apack = ensure(tls_apack(), kMC * kKC);
  float* bpack = ensure(tls_bpack(), kKC * kNC);
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      pack_b(b.data + pc * b.cols + jc, b.cols, kc, nc, bpack);
      for (std::size_t ic = 0; ic < m; ic += kMC) {
        const std::size_t mc = std::min(kMC, m - ic);
        if constexpr (kTransposedA) {
          pack_a_t(a.data + pc * a.cols + ic, a.cols, mc, kc, apack);
        } else {
          pack_a_n(a.data + ic * a.cols + pc, a.cols, mc, kc, apack);
        }
        for (std::size_t j0 = 0; j0 < nc; j0 += kNR) {
          const std::size_t nr = std::min(kNR, nc - j0);
          const float* bp = bpack + (j0 / kNR) * kc * kNR;
          for (std::size_t i0 = 0; i0 < mc; i0 += kMR) {
            const std::size_t mr = std::min(kMR, mc - i0);
            const float* ap = apack + (i0 / kMR) * kc * kMR;
            float* ct = c.data + (ic + i0) * c.cols + jc + j0;
            const float* br = bias_row != nullptr ? bias_row + ic + i0 : nullptr;
            const float* bc = bias_col != nullptr ? bias_col + jc + j0 : nullptr;
            if (mr == kMR && nr == kNR) {
              micro_nn<true>(kc, ap, bp, ct, c.cols, mr, nr,
                             first && !accumulate, last, br, bc);
            } else {
              micro_nn<false>(kc, ap, bp, ct, c.cols, mr, nr,
                              first && !accumulate, last, br, bc);
            }
          }
        }
      }
    }
  }
}

/// Micro-kernel for gemm_nt (dot-product form). The reference sums each
/// element's k products into a fresh accumulator and adds it to C exactly
/// once, so this kernel never spills partial sums to C — it runs the full k
/// per tile (the packed full-k panels of our workload sizes stay cache
/// resident). kFull plays the same register-promotion role as in micro_nn.
template <bool kFull>
MACH_INLINE void micro_nt(std::size_t k, const float* ap, const float* bp,
                          float* ct, std::size_t ldc, std::size_t mr,
                          std::size_t nr, bool accumulate) {
  float acc[kMR * kNR];
  for (std::size_t i = 0; i < kMR * kNR; ++i) acc[i] = 0.0f;
  for (std::size_t p = 0; p < k; ++p) {
    const float* apr = ap + p * kMR;
    const float* bpr = bp + p * kNR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const float av = apr[r];
      for (std::size_t j = 0; j < kNR; ++j) {
        acc[r * kNR + j] += av * bpr[j];
      }
    }
  }
  if constexpr (kFull) {
    for (std::size_t r = 0; r < kMR; ++r) {
      for (std::size_t j = 0; j < kNR; ++j) {
        const float base = accumulate ? ct[r * ldc + j] : 0.0f;
        ct[r * ldc + j] = base + acc[r * kNR + j];
      }
    }
  } else {
    for (std::size_t r = 0; r < mr; ++r) {
      for (std::size_t j = 0; j < nr; ++j) {
        const float base = accumulate ? ct[r * ldc + j] : 0.0f;
        ct[r * ldc + j] = base + acc[r * kNR + j];
      }
    }
  }
}

}  // namespace

void gemm_nn(ConstMat a, ConstMat b, Mat c, bool accumulate,
             const float* bias_row, const float* bias_col) {
  gemm_nn_tn_driver<false>(a, b, c, accumulate, bias_row, bias_col);
}

void gemm_tn(ConstMat a, ConstMat b, Mat c, bool accumulate) {
  gemm_nn_tn_driver<true>(a, b, c, accumulate, nullptr, nullptr);
}

void gemm_nt(ConstMat a, ConstMat b, Mat c, bool accumulate) {
  const std::size_t m = a.rows, k = a.cols, n = b.rows;
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (std::size_t i = 0; i < m * n; ++i) {
      const float base = accumulate ? c.data[i] : 0.0f;
      c.data[i] = base + 0.0f;
    }
    return;
  }
  // A is packed once over the full k (rows are reused for every column
  // panel); B rows are packed per NR panel.
  const std::size_t mpanels = (m + kMR - 1) / kMR;
  float* apack = ensure(tls_apack(), mpanels * kMR * k);
  float* bpack = ensure(tls_bpack(), kNR * k);
  pack_a_n(a.data, k, m, k, apack);
  for (std::size_t j0 = 0; j0 < n; j0 += kNR) {
    const std::size_t nr = std::min(kNR, n - j0);
    pack_bt(b.data + j0 * k, k, nr, bpack);
    for (std::size_t i0 = 0; i0 < m; i0 += kMR) {
      const std::size_t mr = std::min(kMR, m - i0);
      const float* ap = apack + (i0 / kMR) * k * kMR;
      float* ct = c.data + i0 * c.cols + j0;
      if (mr == kMR && nr == kNR) {
        micro_nt<true>(k, ap, bpack, ct, c.cols, mr, nr, accumulate);
      } else {
        micro_nt<false>(k, ap, bpack, ct, c.cols, mr, nr, accumulate);
      }
    }
  }
}

}  // namespace mach::tensor::kernels
