// Cache-blocked, vectorizable math kernels behind the tensor ops.
//
// Everything here works on raw float buffers (or the lightweight 2-D views
// below) so the nn/ hot path can run GEMMs directly over weight/activation
// storage without materialising intermediate Tensors. Two implementations
// coexist:
//
//   * kernels::*       — the production kernels: register-blocked micro-kernel
//                        GEMMs over packed A/B panels, branch-free elementwise
//                        loops the compiler auto-vectorises, fused bias-add
//                        epilogues for the forward paths.
//   * kernels::ref::*  — the retained reference kernels (the seed's naive
//                        loops). They define the summation-order contract and
//                        serve as the equivalence-test and microbench baseline.
//
// Determinism contract (relied on by the parallel runtime's bitwise
// serial-vs-parallel equality): every kernel is single-threaded and uses a
// FIXED summation order identical to the reference kernel's order —
//   * gemm_nn / gemm_tn: C[i,j] accumulates its k contributions in increasing
//     p order directly into the output accumulator (cache blocking only
//     spills/reloads the exact partial value, which is lossless);
//   * gemm_nt: a fresh accumulator per element sums k products in increasing
//     p order and is added to C once at the end (dot-product form);
//   * reductions (dot, squared_norm, col/row sums): strict element order.
// Because the order is fixed and float mul/add are exactly rounded, blocked
// and reference kernels produce bitwise-identical results, at any thread
// count, provided FMA contraction is disabled (see the build flags: the
// kernel TUs are compiled with -ffp-contract=off).
#pragma once

#include <cstddef>

namespace mach::tensor::kernels {

// ---------------------------------------------------------------------------
// Lightweight non-owning 2-D views. Row-major and fully packed (leading
// dimension == cols), which every caller in this codebase satisfies: weight,
// activation and im2col buffers are contiguous, and per-image slices of NCHW
// tensors are contiguous [channels, h*w] planes.
// ---------------------------------------------------------------------------
struct ConstMat {
  const float* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
};

struct Mat {
  float* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  operator ConstMat() const noexcept { return {data, rows, cols}; }
};

// Blocking parameters (exported so the equivalence suite can probe
// non-multiple-of-block shapes deliberately). MR x NR is the register tile
// of the micro-kernel; KC/MC/NC are the cache-tiling panel sizes.
inline constexpr std::size_t kMR = 4;
inline constexpr std::size_t kNR = 8;
inline constexpr std::size_t kKC = 256;
inline constexpr std::size_t kMC = 64;
inline constexpr std::size_t kNC = 256;

// ---------------------------------------------------------------------------
// GEMM. Shapes (rows x cols of the stored views):
//   gemm_nn: C[m,n] (+)= A[m,k]  · B[k,n]
//   gemm_tn: C[m,n] (+)= A[k,m]ᵀ · B[k,n]
//   gemm_nt: C[m,n] (+)= A[m,k]  · B[n,k]ᵀ
// With accumulate=false C is fully overwritten (no pre-zeroing needed).
// gemm_nn optionally fuses a bias epilogue applied once after the final
// k-contribution: bias_row[i] is added to every element of row i (conv
// forward, bias per output channel), bias_col[j] to every element of column
// j (dense forward, bias per output feature). Both default to nullptr.
// ---------------------------------------------------------------------------
void gemm_nn(ConstMat a, ConstMat b, Mat c, bool accumulate = false,
             const float* bias_row = nullptr, const float* bias_col = nullptr);
void gemm_tn(ConstMat a, ConstMat b, Mat c, bool accumulate = false);
void gemm_nt(ConstMat a, ConstMat b, Mat c, bool accumulate = false);

// ---------------------------------------------------------------------------
// im2col / col2im on one NCHW image plane (square kernel, symmetric zero
// padding). `image` points at [channels, height, width]; `cols` holds
// [channels*kernel*kernel, out_h*out_w]. The production im2col splits the
// zero-padded border from the interior so the interior of each (channel,
// ky, kx) row is a straight contiguous row copy for stride 1 (and a
// branch-free strided copy otherwise).
// ---------------------------------------------------------------------------
void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad,
            std::size_t stride, float* cols);
/// Adjoint of im2col: accumulates columns back into the image gradient
/// (which must be pre-zeroed by the caller, matching the reference).
void col2im(const float* cols, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad,
            std::size_t stride, float* grad_image);

// ---------------------------------------------------------------------------
// Elementwise kernels (branch-free, auto-vectorizable; exact per-element
// semantics match the naive loops they replaced).
// ---------------------------------------------------------------------------
void relu(std::size_t n, const float* x, float* y);
void relu_bwd(std::size_t n, const float* x, const float* gy, float* gx);
/// y[i] += alpha * x[i]
void axpy(std::size_t n, float alpha, const float* x, float* y);
/// y[i] += alpha * (x[i] - base[i])  (HT update-form aggregation)
void axpy_delta(std::size_t n, float alpha, const float* x, const float* base,
                float* y);
/// x[i] *= alpha
void scale(std::size_t n, float alpha, float* x);
/// y[i] = alpha * x[i]
void scale_copy(std::size_t n, float alpha, const float* x, float* y);
/// y[i] += x[i]
void vadd(std::size_t n, const float* x, float* y);
/// x[i,j] += bias[j] for every row i of x[m,n].
void add_bias_rows(std::size_t m, std::size_t n, const float* bias, float* x);
/// out[j] (+)= sum_i x[i,j]; rows accumulated in increasing i order.
void col_sums(std::size_t m, std::size_t n, const float* x, float* out,
              bool accumulate);
/// out[i] += sum_j x[i,j]; each row summed into a fresh accumulator in
/// increasing j order, then added to out once (conv bias gradient).
void row_sums(std::size_t m, std::size_t n, const float* x, float* out);

// ---------------------------------------------------------------------------
// Reductions. Double accumulators in strict element order — the fixed order
// is what keeps gradient-norm observables identical at any thread count, so
// these intentionally stay serial chains (documented in DESIGN.md §9).
// ---------------------------------------------------------------------------
double dot(std::size_t n, const float* x, const float* y);
double squared_norm(std::size_t n, const float* x);

// ---------------------------------------------------------------------------
// Fused optimiser update steps (per-element math identical to the loops
// they replaced in nn::Sgd / nn::Adam).
// ---------------------------------------------------------------------------
void sgd_step(std::size_t n, float lr, float weight_decay, const float* grad,
              float* value);
void sgd_momentum_step(std::size_t n, float lr, float momentum,
                       float weight_decay, const float* grad, float* velocity,
                       float* value);
void adam_step(std::size_t n, double lr, double beta1, double beta2,
               double correction1, double correction2, double epsilon,
               float weight_decay, const float* grad, float* moment1,
               float* moment2, float* value);

// ---------------------------------------------------------------------------
// Retained reference kernels — the seed implementation, kept verbatim as the
// summation-order contract, equivalence baseline and microbench yardstick.
// ---------------------------------------------------------------------------
namespace ref {
void gemm_nn(ConstMat a, ConstMat b, Mat c, bool accumulate = false,
             const float* bias_row = nullptr, const float* bias_col = nullptr);
void gemm_tn(ConstMat a, ConstMat b, Mat c, bool accumulate = false);
void gemm_nt(ConstMat a, ConstMat b, Mat c, bool accumulate = false);
void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad,
            std::size_t stride, float* cols);
void col2im(const float* cols, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t pad,
            std::size_t stride, float* grad_image);
}  // namespace ref

}  // namespace mach::tensor::kernels
