// Dense row-major float tensor used by the neural-network substrate.
//
// The simulator trains small CNNs/MLPs on-device, so the tensor type is kept
// deliberately simple: contiguous float32 storage plus shape metadata. All
// layout is row-major (last dimension fastest); images use NCHW.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace mach::tensor {

class Tensor {
 public:
  Tensor() = default;
  /// Allocates a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);
  /// Adopts existing data; `data.size()` must equal the shape's element count.
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t dim(std::size_t axis) const;
  std::size_t numel() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> flat() noexcept { return data_; }
  std::span<const float> flat() const noexcept { return data_; }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Bounds-checked 2-D accessors (rank must be 2).
  float& at2(std::size_t r, std::size_t c);
  float at2(std::size_t r, std::size_t c) const;
  /// Bounds-checked 4-D accessors (rank must be 4, NCHW).
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// Reinterprets the shape without moving data; element count must match.
  void reshape(std::vector<std::size_t> new_shape);

  /// In-place scaled add: this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);
  /// In-place scale: this *= alpha.
  void scale(float alpha) noexcept;

  /// Squared Euclidean norm of all elements.
  double squared_norm() const noexcept;

  bool same_shape(const Tensor& other) const noexcept { return shape_ == other.shape_; }

  /// "Tensor[2, 3]" style debug string.
  std::string shape_string() const;

  static std::size_t shape_numel(std::span<const std::size_t> shape) noexcept;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace mach::tensor
