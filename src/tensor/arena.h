// Bump-allocated float scratch space for the conv/dense hot path.
//
// A ScratchArena owns one contiguous float buffer and hands out sub-spans via
// a bump pointer. Layers reserve their worst-case footprint on first use (or
// when the batch shape grows); afterwards every training step re-uses the
// same storage — reset() just rewinds the bump pointer — so the steady-state
// hot path performs zero heap allocations (asserted by
// tests/nn/test_allocation.cpp).
//
// Pointer-stability rule: alloc() grows the backing store when the request
// exceeds the remaining capacity, which invalidates pointers from earlier
// alloc() calls in the same reset() cycle. Callers that take multiple
// allocations per cycle must reserve() the combined footprint first; the
// grow-event counter in stats() makes violations observable (it must stay
// flat once training is warm).
#pragma once

#include <cstddef>
#include <vector>

namespace mach::tensor {

class ScratchArena {
 public:
  struct Stats {
    std::size_t capacity_floats = 0;   // backing-store size
    std::size_t high_water_floats = 0; // max bytes live at once (in floats)
    std::size_t grow_events = 0;       // backing-store reallocations
  };

  /// Ensures the backing store holds at least `floats` floats. Growing counts
  /// as a grow event; shrinking never happens.
  void reserve(std::size_t floats) {
    if (floats > storage_.size()) {
      storage_.resize(floats);
      ++stats_.grow_events;
      stats_.capacity_floats = storage_.size();
    }
  }

  /// Returns a `floats`-sized span of uninitialised scratch. Grows on demand
  /// (see the pointer-stability rule above).
  float* alloc(std::size_t floats) {
    const std::size_t offset = used_;
    used_ += floats;
    if (used_ > storage_.size()) reserve(used_);
    if (used_ > stats_.high_water_floats) stats_.high_water_floats = used_;
    return storage_.data() + offset;
  }

  /// Rewinds the bump pointer; the backing store is retained.
  void reset() noexcept { used_ = 0; }

  std::size_t used() const noexcept { return used_; }
  const Stats& stats() const noexcept { return stats_; }

 private:
  std::vector<float> storage_;
  std::size_t used_ = 0;
  Stats stats_;
};

}  // namespace mach::tensor
