#include "mobility/telecom.h"

#include <algorithm>
#include <limits>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mach::mobility {

namespace {

/// Proleptic-Gregorian day number (valid for years >= 1).
std::int64_t day_number(int year, int month, int day) {
  // Howard Hinnant's days_from_civil.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 +
                            day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<std::int64_t>(era) * 146097 + static_cast<std::int64_t>(doe) -
         719468;  // days since 1970-01-01
}

void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  year = static_cast<int>(y + (month <= 2));
}

}  // namespace

std::int64_t parse_telecom_timestamp(const std::string& text) {
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &year, &month, &day, &hour,
                  &minute, &second) != 6) {
    throw std::invalid_argument("parse_telecom_timestamp: malformed '" + text + "'");
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 || hour > 23 ||
      minute < 0 || minute > 59 || second < 0 || second > 60) {
    throw std::invalid_argument("parse_telecom_timestamp: out-of-range '" + text +
                                "'");
  }
  return day_number(year, month, day) * 86400 + hour * 3600 + minute * 60 + second;
}

std::string format_telecom_timestamp(std::int64_t seconds) {
  std::int64_t days = seconds / 86400;
  std::int64_t rest = seconds % 86400;
  if (rest < 0) {
    rest += 86400;
    --days;
  }
  int year = 0, month = 0, day = 0;
  civil_from_days(days, year, month, day);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d %02d:%02d:%02d", year,
                month, day, static_cast<int>(rest / 3600),
                static_cast<int>((rest % 3600) / 60), static_cast<int>(rest % 60));
  return buffer;
}

Trace discretize_telecom_records(const std::vector<TelecomRecord>& records,
                                 const TelecomImportOptions& options) {
  if (options.step_seconds <= 0 || options.horizon == 0 ||
      options.num_devices == 0 || options.num_stations == 0) {
    throw std::invalid_argument("discretize_telecom_records: bad options");
  }
  constexpr std::uint32_t kUnset = ~std::uint32_t{0};
  // Station per (step, device), resolved by latest-starting session.
  std::vector<std::uint32_t> grid(options.horizon * options.num_devices, kUnset);
  std::vector<std::int64_t> winner_start(grid.size(),
                                         std::numeric_limits<std::int64_t>::min());

  for (const auto& record : records) {
    if (record.device >= options.num_devices ||
        record.station >= options.num_stations) {
      throw std::invalid_argument("discretize_telecom_records: id out of range");
    }
    if (record.end_time <= record.start_time) continue;  // degenerate session
    const std::int64_t rel_start = record.start_time - options.origin_time;
    const std::int64_t rel_end = record.end_time - options.origin_time;
    // Steps whose midpoint-free [t, t+1) window intersects the session.
    std::int64_t first = rel_start / options.step_seconds;
    std::int64_t last = (rel_end - 1) / options.step_seconds;
    first = std::max<std::int64_t>(first, 0);
    last = std::min<std::int64_t>(last,
                                  static_cast<std::int64_t>(options.horizon) - 1);
    for (std::int64_t t = first; t <= last; ++t) {
      const std::size_t cell =
          static_cast<std::size_t>(t) * options.num_devices + record.device;
      if (record.start_time > winner_start[cell]) {
        winner_start[cell] = record.start_time;
        grid[cell] = record.station;
      }
    }
  }

  // Gap filling: forward-fill the last association; leading gaps take the
  // device's first-ever station.
  for (std::size_t m = 0; m < options.num_devices; ++m) {
    std::uint32_t first_seen = kUnset;
    for (std::size_t t = 0; t < options.horizon && first_seen == kUnset; ++t) {
      first_seen = grid[t * options.num_devices + m];
    }
    if (first_seen == kUnset) {
      throw std::invalid_argument(
          "discretize_telecom_records: device " + std::to_string(m) +
          " has no sessions inside the horizon");
    }
    std::uint32_t current = first_seen;
    for (std::size_t t = 0; t < options.horizon; ++t) {
      auto& cell = grid[t * options.num_devices + m];
      if (cell == kUnset) {
        cell = current;
      } else {
        current = cell;
      }
    }
  }

  // Compress into run-length trace records.
  Trace trace(options.num_devices, options.num_stations, options.horizon);
  for (std::uint32_t m = 0; m < options.num_devices; ++m) {
    std::uint32_t station = grid[m];
    std::uint32_t run_start = 0;
    for (std::uint32_t t = 1; t < options.horizon; ++t) {
      const std::uint32_t next = grid[static_cast<std::size_t>(t) *
                                          options.num_devices +
                                      m];
      if (next != station) {
        trace.add_record({m, station, run_start, t});
        station = next;
        run_start = t;
      }
    }
    trace.add_record({m, station, run_start,
                      static_cast<std::uint32_t>(options.horizon)});
  }
  return trace;
}

std::vector<TelecomRecord> read_telecom_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_telecom_csv: cannot open " + path);
  std::vector<TelecomRecord> records;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string device, station, start, end;
    if (!std::getline(ss, device, ',') || !std::getline(ss, station, ',') ||
        !std::getline(ss, start, ',') || !std::getline(ss, end)) {
      throw std::runtime_error("read_telecom_csv: malformed line: " + line);
    }
    TelecomRecord record;
    record.device = static_cast<std::uint32_t>(std::stoul(device));
    record.station = static_cast<std::uint32_t>(std::stoul(station));
    record.start_time = parse_telecom_timestamp(start);
    record.end_time = parse_telecom_timestamp(end);
    records.push_back(record);
  }
  return records;
}

bool write_telecom_csv(const std::vector<TelecomRecord>& records,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "device_id,station_id,start_time,end_time\n";
  for (const auto& record : records) {
    out << record.device << ',' << record.station << ','
        << format_telecom_timestamp(record.start_time) << ','
        << format_telecom_timestamp(record.end_time) << '\n';
  }
  return static_cast<bool>(out);
}

std::vector<TelecomRecord> synthesize_telecom_records(
    MobilityModel& model, std::size_t num_devices, std::size_t horizon,
    const TelecomImportOptions& options, common::Rng& rng) {
  std::vector<TelecomRecord> records;
  for (std::uint32_t m = 0; m < num_devices; ++m) {
    std::uint32_t station = model.initial_station(m, rng);
    std::size_t run_start = 0;
    auto emit = [&](std::size_t from_step, std::size_t to_step, std::uint32_t s) {
      TelecomRecord record;
      record.device = m;
      record.station = s;
      record.start_time =
          options.origin_time +
          static_cast<std::int64_t>(from_step) * options.step_seconds +
          rng.uniform_int(0, options.step_seconds / 4);
      record.end_time = options.origin_time +
                        static_cast<std::int64_t>(to_step) * options.step_seconds -
                        rng.uniform_int(0, options.step_seconds / 4);
      if (record.end_time <= record.start_time) {
        record.end_time = record.start_time + 1;
      }
      records.push_back(record);
    };
    for (std::size_t t = 1; t < horizon; ++t) {
      const std::uint32_t next = model.next_station(m, station, rng);
      if (next != station) {
        emit(run_start, t, station);
        station = next;
        run_start = t;
      }
    }
    emit(run_start, horizon, station);
  }
  return records;
}

}  // namespace mach::mobility
