// MobilitySchedule: the dense edge-association matrix B[t][n,m] that the HFL
// simulator consumes. It is obtained by composing a station-level trace with
// the station→edge clustering (devices access the nearest station; stations
// belong to main-edge clusters), or built directly for tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mobility/stations.h"
#include "mobility/stream.h"
#include "mobility/trace.h"

namespace mach::mobility {

class MobilitySchedule {
 public:
  /// `device_edge[t * num_devices + m]` is the edge of device m at step t;
  /// every value must be < num_edges.
  MobilitySchedule(std::size_t num_edges, std::size_t num_devices,
                   std::size_t horizon, std::vector<std::uint32_t> device_edge);

  /// Maps each trace step through the clustering: edge = cluster(station).
  static MobilitySchedule from_trace(const TraceReplay& replay,
                                     const Clustering& clustering);

  /// Materialises `horizon` steps of a stream (which must be at step 0)
  /// through the clustering. Paper-scale convenience — at million-device
  /// scale consume the stream directly instead of densifying it.
  static MobilitySchedule from_stream(TraceStream& stream,
                                      const Clustering& clustering,
                                      std::size_t horizon);

  /// Devices never move: a fixed random edge per device.
  static MobilitySchedule stationary(std::size_t num_edges, std::size_t num_devices,
                                     std::size_t horizon, common::Rng& rng);

  /// Devices jump to a uniform random edge every step (max churn).
  static MobilitySchedule uniform_random(std::size_t num_edges,
                                         std::size_t num_devices,
                                         std::size_t horizon, common::Rng& rng);

  std::size_t num_edges() const noexcept { return num_edges_; }
  std::size_t num_devices() const noexcept { return num_devices_; }
  std::size_t horizon() const noexcept { return horizon_; }

  std::uint32_t edge_of(std::size_t t, std::size_t device) const {
    return grid_[(t % horizon_) * num_devices_ + device];
  }

  /// M_n^t: the device set of each edge at step t (Eq. 1's partition).
  std::vector<std::vector<std::uint32_t>> devices_per_edge(std::size_t t) const;

  /// Allocation-free devices_per_edge: reuses `out`'s outer and inner
  /// capacity across calls (the per-round hot path at scale).
  void devices_per_edge_into(
      std::size_t t, std::vector<std::vector<std::uint32_t>>& out) const;

  /// Fraction of (t>0, device) pairs that switched edges — edge-level churn.
  double churn_rate() const noexcept;

  /// Mean fraction of devices per edge over time (occupancy balance check).
  std::vector<double> mean_edge_occupancy() const;

 private:
  std::size_t num_edges_;
  std::size_t num_devices_;
  std::size_t horizon_;
  std::vector<std::uint32_t> grid_;
};

}  // namespace mach::mobility
