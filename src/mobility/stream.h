// Streaming device→station association: the O(active-devices) alternative to
// materialising a full Trace and its dense TraceReplay grid.
//
// A TraceStream holds the association vector for *one* step at a time and
// advances in place, reporting only the devices that moved. Memory is O(M)
// regardless of horizon (a dense replay is O(M·T)), and per-step cost is
// O(movers) for the calendar-based implementations — the property the
// million-device scale engine rests on. Every stream exposes a seekable
// cursor (save_cursor/load_cursor) so checkpoint/resume replays the exact
// same association sequence bit-for-bit from any step.
//
// Implementations:
//   * ModelTraceStream  — drives a MobilityModel with one RNG stream per
//     device (the same split_seed(seed, 0x40b1 + m) streams generate_trace
//     uses), so its per-step associations are bitwise identical to replaying
//     the materialised trace. O(M) per step; cursor = per-device RNG states.
//   * ReplayTraceStream — streams an existing Trace's records through a
//     calendar of end-times without building the dense grid. Validates the
//     same partition invariants as TraceReplay (no overlap, full coverage)
//     up front in O(records log records). O(movers) per step.
//   * GridMobilityStream — synthetic million-device generator. Transitions
//     are pure hash functions of (seed, device, move-time): no per-device
//     RNG state exists, so the cursor is just (t, station, next-move) ≈ 8
//     bytes per device. A calendar ring of due-lists makes a step cost
//     O(devices whose dwell expires), which at mean dwell d̄ is M/d̄ — far
//     below M for realistic dwell times.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ckpt/bytes.h"
#include "common/rng.h"
#include "mobility/mobility_model.h"
#include "mobility/trace.h"

namespace mach::mobility {

class TraceStream {
 public:
  virtual ~TraceStream() = default;
  TraceStream(const TraceStream&) = delete;
  TraceStream& operator=(const TraceStream&) = delete;

  virtual std::size_t num_devices() const noexcept = 0;
  virtual std::size_t num_stations() const noexcept = 0;

  /// Current step index (starts at 0).
  virtual std::size_t t() const noexcept = 0;

  /// Station of every device at the current step.
  virtual std::span<const std::uint32_t> stations() const noexcept = 0;

  /// Advances to step t()+1. `moved` is cleared and filled with the devices
  /// whose station changed, in ascending device order.
  virtual void advance(std::vector<std::uint32_t>& moved) = 0;

  /// Serialises everything needed to continue the stream bit-for-bit.
  virtual void save_cursor(ckpt::ByteWriter& out) const = 0;
  /// Restores a cursor saved by the same stream configuration. Throws
  /// ckpt::CorruptPayload on dimension mismatch.
  virtual void load_cursor(ckpt::ByteReader& in) = 0;

  /// Bytes of state held per the stream (scale accounting).
  virtual std::size_t memory_bytes() const noexcept = 0;

  /// Advances until t() == target (target must be >= t()).
  void seek(std::size_t target);

 protected:
  TraceStream() = default;
};

/// Drives a MobilityModel one step at a time with the same per-device RNG
/// streams as generate_trace — associations are bitwise identical to the
/// materialised trace at every step.
class ModelTraceStream final : public TraceStream {
 public:
  ModelTraceStream(MobilityModel& model, std::size_t num_devices,
                   std::uint64_t seed);

  std::size_t num_devices() const noexcept override { return stations_.size(); }
  std::size_t num_stations() const noexcept override {
    return model_.num_stations();
  }
  std::size_t t() const noexcept override { return t_; }
  std::span<const std::uint32_t> stations() const noexcept override {
    return stations_;
  }
  void advance(std::vector<std::uint32_t>& moved) override;
  void save_cursor(ckpt::ByteWriter& out) const override;
  void load_cursor(ckpt::ByteReader& in) override;
  std::size_t memory_bytes() const noexcept override;

 private:
  MobilityModel& model_;
  std::vector<common::Rng> rngs_;         // one stream per device
  std::vector<std::uint32_t> stations_;
  std::size_t t_ = 0;
};

/// Streams a materialised Trace without the dense O(M·T) replay grid.
/// Construction groups records per device, validates the partition property
/// (every device covered by exactly one record at every step), and builds a
/// calendar of record end-times so a step costs O(devices whose record ends).
class ReplayTraceStream final : public TraceStream {
 public:
  explicit ReplayTraceStream(const Trace& trace);

  std::size_t num_devices() const noexcept override { return stations_.size(); }
  std::size_t num_stations() const noexcept override { return num_stations_; }
  std::size_t horizon() const noexcept { return horizon_; }
  std::size_t t() const noexcept override { return t_; }
  std::span<const std::uint32_t> stations() const noexcept override {
    return stations_;
  }
  /// Advancing past horizon()-1 throws std::out_of_range.
  void advance(std::vector<std::uint32_t>& moved) override;
  void save_cursor(ckpt::ByteWriter& out) const override;
  void load_cursor(ckpt::ByteReader& in) override;
  std::size_t memory_bytes() const noexcept override;

 private:
  void rebuild_calendar();

  std::size_t num_stations_ = 0;
  std::size_t horizon_ = 0;
  // Per-device records, contiguous in time, concatenated; device m's records
  // occupy [offsets_[m], offsets_[m + 1]).
  std::vector<TraceRecord> sorted_;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> index_;     // current record per device
  std::vector<std::uint32_t> stations_;
  // Calendar ring: bucket (end % window_) lists devices whose current record
  // ends at that step. window_ = max record duration + 1, so due-times never
  // collide with later wraps.
  std::vector<std::vector<std::uint32_t>> calendar_;
  std::size_t window_ = 1;
  std::size_t t_ = 0;
};

/// Synthetic mobility over a population too large to materialise: station
/// choices and dwell times are pure hashes of (seed, device, move-time).
/// There is no stored RNG state, so a cursor is (t, stations, next_move) —
/// 8 bytes per device — and two streams with the same config replay
/// identically from any step.
class GridMobilityStream final : public TraceStream {
 public:
  struct Config {
    std::size_t num_devices = 0;
    std::size_t num_stations = 0;
    std::uint64_t seed = 0;
    /// Dwell at a station is uniform in [min_dwell, max_dwell] steps.
    std::uint32_t min_dwell = 1;
    std::uint32_t max_dwell = 16;
  };

  explicit GridMobilityStream(const Config& config);

  std::size_t num_devices() const noexcept override { return stations_.size(); }
  std::size_t num_stations() const noexcept override {
    return config_.num_stations;
  }
  std::size_t t() const noexcept override { return t_; }
  std::span<const std::uint32_t> stations() const noexcept override {
    return stations_;
  }
  void advance(std::vector<std::uint32_t>& moved) override;
  void save_cursor(ckpt::ByteWriter& out) const override;
  void load_cursor(ckpt::ByteReader& in) override;
  std::size_t memory_bytes() const noexcept override;

  /// Fixed per-device state: one station id + one next-move step.
  static constexpr std::size_t bytes_per_device() noexcept {
    return 2 * sizeof(std::uint32_t);
  }

 private:
  /// The station a device hops to when it moves at step `t` (pure function).
  std::uint32_t station_at(std::uint32_t device, std::uint64_t t) const;
  /// The dwell rolled at that move (pure function, in [min_dwell, max_dwell]).
  std::uint32_t dwell_at(std::uint32_t device, std::uint64_t t) const;
  void rebuild_calendar();

  Config config_;
  std::vector<std::uint32_t> stations_;
  std::vector<std::uint32_t> next_move_;  // absolute step of the next hop
  // Calendar ring over window_ = max_dwell + 1 buckets: bucket (step %
  // window_) holds the devices due to move at that step.
  std::vector<std::vector<std::uint32_t>> calendar_;
  std::size_t window_ = 2;
  std::size_t t_ = 0;
};

/// Materialises `horizon` steps of a stream into a Trace (device-major record
/// order, matching generate_trace). Intended for paper-scale use and tests;
/// at million-device scale consume the stream directly.
Trace materialise_trace(TraceStream& stream, std::size_t horizon);

}  // namespace mach::mobility
