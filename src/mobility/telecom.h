// Importer for Shanghai-Telecom-style access logs.
//
// The paper replays a dataset of records "device, base station, session
// start timestamp, session end timestamp" spanning months. This module
// ingests that schema from CSV ("device_id,station_id,start,end" with
// ISO-8601-like timestamps "YYYY-MM-DD HH:MM:SS"), discretises wall-clock
// time into fixed-length steps, resolves conflicts (overlapping sessions:
// the later-starting session wins) and fills coverage gaps with the most
// recent station (devices stay associated with their last base station
// while idle), producing the dense Trace the simulator replays.
//
// A matching exporter synthesises logs in the same schema from a mobility
// model, so the full import pipeline can be exercised without the
// proprietary dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mobility/mobility_model.h"
#include "mobility/trace.h"

namespace mach::mobility {

/// One raw telecom session record (wall-clock seconds since epoch).
struct TelecomRecord {
  std::uint32_t device = 0;
  std::uint32_t station = 0;
  std::int64_t start_time = 0;  // seconds
  std::int64_t end_time = 0;    // seconds, exclusive
};

/// Parses "YYYY-MM-DD HH:MM:SS" into seconds since an arbitrary fixed epoch
/// (days are composed via a proleptic-Gregorian day number; only ordering
/// and differences matter). Throws std::invalid_argument on malformed input.
std::int64_t parse_telecom_timestamp(const std::string& text);

/// Renders seconds-since-epoch back into the dataset's timestamp format.
std::string format_telecom_timestamp(std::int64_t seconds);

struct TelecomImportOptions {
  /// Wall-clock seconds per simulation time step.
  std::int64_t step_seconds = 3600;
  /// Number of devices/stations (ids must be < these).
  std::size_t num_devices = 0;
  std::size_t num_stations = 0;
  /// Steps in the output trace; sessions beyond the horizon are clipped.
  std::size_t horizon = 0;
  /// Wall-clock time of simulation step 0.
  std::int64_t origin_time = 0;
};

/// Discretises raw session records into a dense, gap-free Trace.
/// Devices with no record before some step t hold their first-ever station
/// retroactively (every device must have at least one record).
Trace discretize_telecom_records(const std::vector<TelecomRecord>& records,
                                 const TelecomImportOptions& options);

/// Reads "device_id,station_id,start,end" CSV (header required).
std::vector<TelecomRecord> read_telecom_csv(const std::string& path);

/// Writes records in the same schema.
bool write_telecom_csv(const std::vector<TelecomRecord>& records,
                       const std::string& path);

/// Synthesises raw session records by running a mobility model: each
/// station visit becomes a session with slightly jittered boundaries and
/// occasional idle gaps (uncovered wall-clock time), mimicking real logs.
std::vector<TelecomRecord> synthesize_telecom_records(
    MobilityModel& model, std::size_t num_devices, std::size_t horizon,
    const TelecomImportOptions& options, common::Rng& rng);

}  // namespace mach::mobility
