#include "mobility/trace_stats.h"

#include <cmath>
#include <map>

namespace mach::mobility {

std::vector<DeviceMobilityStats> device_mobility_stats(
    const TraceReplay& replay, const std::vector<Point>& stations) {
  const std::size_t horizon = replay.horizon();
  std::vector<DeviceMobilityStats> all;
  all.reserve(replay.num_devices());
  for (std::size_t m = 0; m < replay.num_devices(); ++m) {
    DeviceMobilityStats stats;
    std::map<std::uint32_t, std::size_t> visits;
    std::size_t runs = 1;
    for (std::size_t t = 0; t < horizon; ++t) {
      ++visits[replay.station_of(t, m)];
      if (t > 0 && replay.station_of(t, m) != replay.station_of(t - 1, m)) ++runs;
    }
    stats.distinct_stations = visits.size();
    stats.mean_dwell = static_cast<double>(horizon) / static_cast<double>(runs);

    std::size_t top = 0;
    for (const auto& [station, count] : visits) {
      top = std::max(top, count);
      const double p = static_cast<double>(count) / static_cast<double>(horizon);
      stats.visit_entropy -= p * std::log(p);
    }
    stats.top_station_share =
        static_cast<double>(top) / static_cast<double>(horizon);

    if (!stations.empty()) {
      Point centroid{0.0, 0.0};
      for (const auto& [station, count] : visits) {
        centroid.x += stations.at(station).x * static_cast<double>(count);
        centroid.y += stations.at(station).y * static_cast<double>(count);
      }
      centroid.x /= static_cast<double>(horizon);
      centroid.y /= static_cast<double>(horizon);
      double m2 = 0.0;
      for (const auto& [station, count] : visits) {
        m2 += static_cast<double>(count) *
              squared_distance(stations.at(station), centroid);
      }
      stats.radius_of_gyration = std::sqrt(m2 / static_cast<double>(horizon));
    }
    all.push_back(stats);
  }
  return all;
}

TraceStatsSummary summarize_trace(const TraceReplay& replay,
                                  const std::vector<Point>& stations) {
  const auto per_device = device_mobility_stats(replay, stations);
  TraceStatsSummary summary;
  if (per_device.empty()) return summary;
  for (const auto& stats : per_device) {
    summary.mean_distinct_stations += static_cast<double>(stats.distinct_stations);
    summary.mean_visit_entropy += stats.visit_entropy;
    summary.mean_top_station_share += stats.top_station_share;
    summary.mean_radius_of_gyration += stats.radius_of_gyration;
    summary.mean_dwell += stats.mean_dwell;
  }
  const auto n = static_cast<double>(per_device.size());
  summary.mean_distinct_stations /= n;
  summary.mean_visit_entropy /= n;
  summary.mean_top_station_share /= n;
  summary.mean_radius_of_gyration /= n;
  summary.mean_dwell /= n;
  summary.station_churn = replay.churn_rate();
  return summary;
}

}  // namespace mach::mobility
