#include "mobility/geo.h"

namespace mach::mobility {

std::size_t nearest_point(const std::vector<Point>& points, const Point& p) noexcept {
  std::size_t best = 0;
  double best_d = squared_distance(points[0], p);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double d = squared_distance(points[i], p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace mach::mobility
