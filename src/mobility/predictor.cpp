#include "mobility/predictor.h"

#include <algorithm>
#include <stdexcept>

namespace mach::mobility {

MarkovPredictor::MarkovPredictor(std::size_t num_edges, std::size_t num_devices,
                                 bool shared)
    : num_edges_(num_edges),
      shared_(shared),
      pooled_(num_edges * num_edges, 0) {
  if (num_edges_ == 0) throw std::invalid_argument("MarkovPredictor: zero edges");
  if (!shared_) {
    per_device_.assign(num_devices,
                       std::vector<std::size_t>(num_edges * num_edges, 0));
  }
}

const std::vector<std::size_t>& MarkovPredictor::counts_for(
    std::uint32_t device) const {
  if (shared_) return pooled_;
  return per_device_.at(device);
}

std::vector<std::size_t>& MarkovPredictor::counts_for(std::uint32_t device) {
  if (shared_) return pooled_;
  return per_device_.at(device);
}

void MarkovPredictor::observe(std::uint32_t device, std::uint32_t from_edge,
                              std::uint32_t to_edge) {
  if (from_edge >= num_edges_ || to_edge >= num_edges_) {
    throw std::out_of_range("MarkovPredictor::observe: edge id out of range");
  }
  ++pooled_[from_edge * num_edges_ + to_edge];
  if (!shared_) {
    ++per_device_.at(device)[from_edge * num_edges_ + to_edge];
  }
}

void MarkovPredictor::fit(const MobilitySchedule& schedule, std::size_t from,
                          std::size_t to) {
  if (from >= to) return;
  for (std::size_t t = from + 1; t < to; ++t) {
    for (std::size_t m = 0; m < schedule.num_devices(); ++m) {
      observe(static_cast<std::uint32_t>(m), schedule.edge_of(t - 1, m),
              schedule.edge_of(t, m));
    }
  }
}

std::vector<double> MarkovPredictor::next_edge_distribution(
    std::uint32_t device, std::uint32_t current_edge) const {
  if (current_edge >= num_edges_) {
    throw std::out_of_range("MarkovPredictor: edge id out of range");
  }
  std::vector<double> distribution(num_edges_, 0.0);
  const auto& personal = counts_for(device);
  // Personal counts with smoothing toward the pooled matrix: the pooled row
  // acts as a prior with unit pseudo-count mass when personalised.
  double total = 0.0;
  std::size_t pooled_row_total = 0;
  for (std::size_t n = 0; n < num_edges_; ++n) {
    pooled_row_total += pooled_[current_edge * num_edges_ + n];
  }
  for (std::size_t n = 0; n < num_edges_; ++n) {
    double value = static_cast<double>(personal[current_edge * num_edges_ + n]);
    if (!shared_ && pooled_row_total > 0) {
      value += static_cast<double>(pooled_[current_edge * num_edges_ + n]) /
               static_cast<double>(pooled_row_total);
    }
    distribution[n] = value;
    total += value;
  }
  if (total <= 0.0) {
    distribution.assign(num_edges_, 0.0);
    distribution[current_edge] = 1.0;  // never seen: predict "stay"
    return distribution;
  }
  for (auto& p : distribution) p /= total;
  return distribution;
}

std::uint32_t MarkovPredictor::predict(std::uint32_t device,
                                       std::uint32_t current_edge) const {
  const auto distribution = next_edge_distribution(device, current_edge);
  return static_cast<std::uint32_t>(
      std::max_element(distribution.begin(), distribution.end()) -
      distribution.begin());
}

double MarkovPredictor::evaluate(const MobilitySchedule& schedule, std::size_t from,
                                 std::size_t to) const {
  std::size_t correct = 0, total = 0;
  for (std::size_t t = std::max<std::size_t>(from, 1) ; t < to; ++t) {
    for (std::size_t m = 0; m < schedule.num_devices(); ++m) {
      const auto predicted = predict(static_cast<std::uint32_t>(m),
                                     schedule.edge_of(t - 1, m));
      correct += predicted == schedule.edge_of(t, m) ? 1 : 0;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace mach::mobility
