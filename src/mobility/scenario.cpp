#include "mobility/scenario.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace mach::mobility {

namespace {

Scenario make_metro() {
  Scenario s;
  s.preset = "metro";
  s.num_stations = 64;
  s.num_hotspots = 8;
  s.area_size = 100.0;
  s.hotspot_stddev = 6.0;
  s.background_fraction = 0.15;
  s.stay_prob = 0.85;
  s.move_range = 18.0;
  return s;
}

Scenario make_campus() {
  Scenario s;
  s.preset = "campus";
  s.num_stations = 24;
  s.num_hotspots = 3;
  s.area_size = 50.0;
  s.hotspot_stddev = 5.0;
  s.background_fraction = 0.2;
  s.stay_prob = 0.75;
  s.move_range = 10.0;
  return s;
}

Scenario make_vehicular() {
  Scenario s;
  s.preset = "vehicular";
  s.num_stations = 48;
  s.num_hotspots = 6;
  s.area_size = 120.0;
  s.hotspot_stddev = 10.0;
  s.background_fraction = 0.4;
  s.stay_prob = 0.35;
  s.move_range = 60.0;
  return s;
}

Scenario make_flash_crowd() {
  Scenario s;
  s.preset = "flash_crowd";
  s.num_stations = 40;
  s.num_hotspots = 1;
  s.area_size = 100.0;
  s.hotspot_stddev = 4.0;
  s.background_fraction = 0.05;
  s.stay_prob = 0.6;
  s.move_range = 30.0;
  return s;
}

std::string valid_presets_hint() {
  std::string hint = "valid presets:";
  for (const auto& name : Scenario::preset_names()) {
    hint += ' ';
    hint += name;
  }
  return hint;
}

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("scenario spec: " + what);
}

double parse_number(std::string_view key, std::string_view text) {
  if (text.empty()) bad_spec("override '" + std::string(key) + "' has no value");
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    bad_spec("override '" + std::string(key) + "' has non-numeric value '" +
             std::string(text) + "'");
  }
  return value;
}

std::size_t parse_count(std::string_view key, std::string_view text) {
  const double value = parse_number(key, text);
  const auto count = static_cast<std::size_t>(value);
  if (value < 0.0 || static_cast<double>(count) != value) {
    bad_spec("override '" + std::string(key) + "' must be a non-negative integer, got '" +
             std::string(text) + "'");
  }
  return count;
}

/// Trims `v` of a double to the shortest decimal that std::ostringstream's
/// default precision produces — enough for the canonical-spec round-trip
/// (preset knobs and CLI overrides are short decimals, not float noise).
std::string format_knob(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

const std::vector<std::string>& Scenario::preset_names() {
  static const std::vector<std::string> names = {"metro", "campus", "vehicular",
                                                 "flash_crowd"};
  return names;
}

Scenario Scenario::preset_by_name(std::string_view name) {
  if (name == "metro") return make_metro();
  if (name == "campus") return make_campus();
  if (name == "vehicular") return make_vehicular();
  if (name == "flash_crowd") return make_flash_crowd();
  bad_spec("unknown preset '" + std::string(name) + "' (" + valid_presets_hint() +
           ")");
}

Scenario Scenario::parse(std::string_view spec) {
  if (spec.empty()) bad_spec("empty spec (" + valid_presets_hint() + ")");

  const std::size_t colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  Scenario scenario = preset_by_name(name);
  if (colon == std::string_view::npos) return scenario;

  std::string_view overrides = spec.substr(colon + 1);
  if (overrides.empty()) {
    bad_spec("preset '" + std::string(name) + "' followed by ':' but no overrides");
  }

  std::vector<std::string> seen;
  while (!overrides.empty()) {
    const std::size_t comma = overrides.find(',');
    const std::string_view clause = overrides.substr(0, comma);
    if (comma != std::string_view::npos && comma + 1 == overrides.size()) {
      bad_spec("trailing ',' after override '" + std::string(clause) + "'");
    }
    overrides = comma == std::string_view::npos ? std::string_view{}
                                                : overrides.substr(comma + 1);
    if (clause.empty()) bad_spec("empty override clause (stray ',')");

    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      bad_spec("override '" + std::string(clause) + "' is missing '='");
    }
    const std::string key(clause.substr(0, eq));
    const std::string_view value = clause.substr(eq + 1);

    for (const auto& previous : seen) {
      if (previous == key) {
        bad_spec("conflicting overrides: '" + key + "' given twice");
      }
    }
    seen.push_back(key);

    if (key == "stations") {
      scenario.num_stations = parse_count(key, value);
    } else if (key == "hotspots") {
      scenario.num_hotspots = parse_count(key, value);
    } else if (key == "stay") {
      scenario.stay_prob = parse_number(key, value);
    } else if (key == "range") {
      scenario.move_range = parse_number(key, value);
    } else if (key == "area") {
      scenario.area_size = parse_number(key, value);
    } else if (key == "stddev") {
      scenario.hotspot_stddev = parse_number(key, value);
    } else if (key == "background") {
      scenario.background_fraction = parse_number(key, value);
    } else {
      bad_spec("unknown override key '" + key +
               "' (valid: stations, hotspots, stay, range, area, stddev, "
               "background)");
    }
  }

  scenario.validate();
  return scenario;
}

void Scenario::validate() const {
  if (num_stations == 0) bad_spec("'" + preset + "' needs stations >= 1");
  if (num_hotspots == 0 || num_hotspots > num_stations) {
    bad_spec("'" + preset + "' needs 1 <= hotspots <= stations (got hotspots=" +
             std::to_string(num_hotspots) + ", stations=" +
             std::to_string(num_stations) + ")");
  }
  if (stay_prob < 0.0 || stay_prob > 1.0) {
    bad_spec("'" + preset + "' needs stay in [0, 1], got " + format_knob(stay_prob));
  }
  if (background_fraction < 0.0 || background_fraction > 1.0) {
    bad_spec("'" + preset + "' needs background in [0, 1], got " +
             format_knob(background_fraction));
  }
  if (move_range <= 0.0) {
    bad_spec("'" + preset + "' needs range > 0, got " + format_knob(move_range));
  }
  if (area_size <= 0.0) {
    bad_spec("'" + preset + "' needs area > 0, got " + format_knob(area_size));
  }
  if (hotspot_stddev <= 0.0) {
    bad_spec("'" + preset + "' needs stddev > 0, got " + format_knob(hotspot_stddev));
  }
}

std::string Scenario::to_string() const {
  const Scenario defaults = preset_by_name(preset);
  std::string spec = preset;
  char sep = ':';
  const auto emit = [&](const char* key, const std::string& value) {
    spec += sep;
    spec += key;
    spec += '=';
    spec += value;
    sep = ',';
  };
  if (num_stations != defaults.num_stations) {
    emit("stations", std::to_string(num_stations));
  }
  if (num_hotspots != defaults.num_hotspots) {
    emit("hotspots", std::to_string(num_hotspots));
  }
  if (stay_prob != defaults.stay_prob) emit("stay", format_knob(stay_prob));
  if (move_range != defaults.move_range) emit("range", format_knob(move_range));
  if (area_size != defaults.area_size) emit("area", format_knob(area_size));
  if (hotspot_stddev != defaults.hotspot_stddev) {
    emit("stddev", format_knob(hotspot_stddev));
  }
  if (background_fraction != defaults.background_fraction) {
    emit("background", format_knob(background_fraction));
  }
  return spec;
}

}  // namespace mach::mobility
