// Synthetic base-station layout and clustering into "main" edges.
//
// The Shanghai Telecom dataset contains thousands of base stations which the
// paper clusters into a handful of main base stations (edges). We reproduce
// this pipeline: stations are scattered around urban hotspot centres, then
// k-means clusters them into the requested number of edges; a device's edge
// is the cluster of its currently-accessed station.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mobility/geo.h"

namespace mach::mobility {

struct StationLayoutSpec {
  std::size_t num_stations = 60;
  /// Number of urban hotspot centres stations concentrate around.
  std::size_t num_hotspots = 6;
  /// Side length of the square service area (arbitrary distance units).
  double area_size = 100.0;
  /// Standard deviation of station scatter around each hotspot.
  double hotspot_stddev = 8.0;
  /// Fraction of stations placed uniformly (suburban background).
  double background_fraction = 0.25;
};

/// Generates station positions (deterministic in the seed).
std::vector<Point> generate_stations(const StationLayoutSpec& spec, std::uint64_t seed);

struct Clustering {
  /// station -> cluster (edge) id, in [0, num_clusters).
  std::vector<std::uint32_t> assignment;
  /// Cluster centroids.
  std::vector<Point> centroids;

  std::size_t num_clusters() const noexcept { return centroids.size(); }
};

/// Lloyd's k-means with k-means++-style seeding. `k` must satisfy
/// 1 <= k <= stations.size(); every cluster is guaranteed non-empty.
Clustering cluster_stations(const std::vector<Point>& stations, std::size_t k,
                            std::uint64_t seed, std::size_t max_iters = 50);

}  // namespace mach::mobility
