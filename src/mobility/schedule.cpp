#include "mobility/schedule.h"

#include <stdexcept>

namespace mach::mobility {

MobilitySchedule::MobilitySchedule(std::size_t num_edges, std::size_t num_devices,
                                   std::size_t horizon,
                                   std::vector<std::uint32_t> device_edge)
    : num_edges_(num_edges),
      num_devices_(num_devices),
      horizon_(horizon),
      grid_(std::move(device_edge)) {
  if (num_edges_ == 0 || num_devices_ == 0 || horizon_ == 0) {
    throw std::invalid_argument("MobilitySchedule: empty dimensions");
  }
  if (grid_.size() != horizon_ * num_devices_) {
    throw std::invalid_argument("MobilitySchedule: grid size mismatch");
  }
  for (auto edge : grid_) {
    if (edge >= num_edges_) {
      throw std::invalid_argument("MobilitySchedule: edge id out of range");
    }
  }
}

MobilitySchedule MobilitySchedule::from_trace(const TraceReplay& replay,
                                              const Clustering& clustering) {
  const std::size_t horizon = replay.horizon();
  const std::size_t devices = replay.num_devices();
  std::vector<std::uint32_t> grid(horizon * devices);
  for (std::size_t t = 0; t < horizon; ++t) {
    for (std::size_t m = 0; m < devices; ++m) {
      grid[t * devices + m] = clustering.assignment.at(replay.station_of(t, m));
    }
  }
  return MobilitySchedule(clustering.num_clusters(), devices, horizon, std::move(grid));
}

MobilitySchedule MobilitySchedule::from_stream(TraceStream& stream,
                                               const Clustering& clustering,
                                               std::size_t horizon) {
  if (stream.t() != 0) {
    throw std::invalid_argument(
        "MobilitySchedule::from_stream: stream not at step 0");
  }
  const std::size_t devices = stream.num_devices();
  std::vector<std::uint32_t> grid(horizon * devices);
  std::vector<std::uint32_t> moved;
  for (std::size_t t = 0; t < horizon; ++t) {
    if (t > 0) stream.advance(moved);
    const auto stations = stream.stations();
    for (std::size_t m = 0; m < devices; ++m) {
      grid[t * devices + m] = clustering.assignment.at(stations[m]);
    }
  }
  return MobilitySchedule(clustering.num_clusters(), devices, horizon,
                          std::move(grid));
}

MobilitySchedule MobilitySchedule::stationary(std::size_t num_edges,
                                              std::size_t num_devices,
                                              std::size_t horizon, common::Rng& rng) {
  std::vector<std::uint32_t> grid(horizon * num_devices);
  for (std::size_t m = 0; m < num_devices; ++m) {
    const auto edge = static_cast<std::uint32_t>(rng.uniform_index(num_edges));
    for (std::size_t t = 0; t < horizon; ++t) grid[t * num_devices + m] = edge;
  }
  return MobilitySchedule(num_edges, num_devices, horizon, std::move(grid));
}

MobilitySchedule MobilitySchedule::uniform_random(std::size_t num_edges,
                                                  std::size_t num_devices,
                                                  std::size_t horizon,
                                                  common::Rng& rng) {
  std::vector<std::uint32_t> grid(horizon * num_devices);
  for (auto& cell : grid) {
    cell = static_cast<std::uint32_t>(rng.uniform_index(num_edges));
  }
  return MobilitySchedule(num_edges, num_devices, horizon, std::move(grid));
}

std::vector<std::vector<std::uint32_t>> MobilitySchedule::devices_per_edge(
    std::size_t t) const {
  std::vector<std::vector<std::uint32_t>> result(num_edges_);
  for (std::size_t m = 0; m < num_devices_; ++m) {
    result[edge_of(t, m)].push_back(static_cast<std::uint32_t>(m));
  }
  return result;
}

void MobilitySchedule::devices_per_edge_into(
    std::size_t t, std::vector<std::vector<std::uint32_t>>& out) const {
  out.resize(num_edges_);
  for (auto& members : out) members.clear();
  for (std::size_t m = 0; m < num_devices_; ++m) {
    out[edge_of(t, m)].push_back(static_cast<std::uint32_t>(m));
  }
}

double MobilitySchedule::churn_rate() const noexcept {
  if (horizon_ < 2) return 0.0;
  std::size_t switches = 0;
  for (std::size_t t = 1; t < horizon_; ++t) {
    for (std::size_t m = 0; m < num_devices_; ++m) {
      if (grid_[t * num_devices_ + m] != grid_[(t - 1) * num_devices_ + m]) ++switches;
    }
  }
  return static_cast<double>(switches) /
         static_cast<double>((horizon_ - 1) * num_devices_);
}

std::vector<double> MobilitySchedule::mean_edge_occupancy() const {
  std::vector<double> occupancy(num_edges_, 0.0);
  for (std::size_t t = 0; t < horizon_; ++t) {
    for (std::size_t m = 0; m < num_devices_; ++m) {
      occupancy[grid_[t * num_devices_ + m]] += 1.0;
    }
  }
  const double denom = static_cast<double>(horizon_) * num_devices_;
  for (auto& o : occupancy) o /= denom;
  return occupancy;
}

}  // namespace mach::mobility
