// Declarative mobility scenario presets.
//
// A Scenario is a named parameterisation of the existing mobility pipeline
// (station layout + Markov model): the preset picks every knob — station
// count, hotspot count and scatter, service-area size, stay probability and
// movement range — and the spec grammar lets individual knobs be overridden:
//
//   metro                      — dense urban commuting: many stations around
//                                many hotspots, long dwell times (low churn);
//   campus                     — small-area locality: few stations, short
//                                trips, moderate dwell;
//   vehicular                  — high-mobility regime: low stay probability
//                                and a long movement range, so devices
//                                shuffle between edges nearly every step;
//   flash_crowd                — one dominant hotspot absorbs almost every
//                                station (stadium/concert), with devices
//                                drifting in and out of the crowd.
//
// Spec strings follow the same shape as the `--faults` grammar: a preset
// name, optionally followed by ':'-separated overrides, e.g.
//
//   vehicular
//   metro:stay=0.6,stations=80
//   flash_crowd:hotspots=2,background=0.1
//
// Override keys: stations, hotspots, stay, range, area, stddev, background.
// parse() validates everything (unknown presets, unknown/duplicate keys,
// out-of-range values) and to_string() emits a canonical spec that parses
// back to the same scenario. Scenarios are pure configuration — composing
// one with --faults/--codec/--threads is the caller pasting fields into an
// ExperimentConfig (see hfl::apply_scenario).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mach::mobility {

struct Scenario {
  /// Preset this scenario was derived from ("metro", ...).
  std::string preset;

  /// Station layout (StationLayoutSpec fields).
  std::size_t num_stations = 60;
  std::size_t num_hotspots = 6;
  double area_size = 100.0;
  double hotspot_stddev = 8.0;
  double background_fraction = 0.25;

  /// Markov mobility model.
  double stay_prob = 0.8;
  double move_range = 25.0;

  /// The four preset names, in canonical order.
  static const std::vector<std::string>& preset_names();

  /// The named preset with no overrides. Throws std::invalid_argument for
  /// unknown names (the message lists the valid presets).
  static Scenario preset_by_name(std::string_view name);

  /// Parses "name[:key=value[,key=value]...]" and validates. Throws
  /// std::invalid_argument naming the offending token on any malformed
  /// input: empty spec, unknown preset, unknown key, duplicate (conflicting)
  /// override, non-numeric or out-of-range value.
  static Scenario parse(std::string_view spec);

  /// Canonical spec: the preset name plus any knob that differs from the
  /// preset's default, in fixed key order. parse(to_string()) == *this.
  std::string to_string() const;

  /// Range checks (parse() already calls this): stations >= 1,
  /// 1 <= hotspots <= stations, stay in [0,1], background in [0,1],
  /// range/area/stddev > 0. Throws std::invalid_argument.
  void validate() const;

  bool operator==(const Scenario&) const = default;
};

}  // namespace mach::mobility
