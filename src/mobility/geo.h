// Planar geometry primitives for the synthetic metro area.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace mach::mobility {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline double squared_distance(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point& a, const Point& b) noexcept {
  return std::sqrt(squared_distance(a, b));
}

/// Index of the nearest point in `points` to `p` (points must be non-empty).
std::size_t nearest_point(const std::vector<Point>& points, const Point& p) noexcept;

}  // namespace mach::mobility
