// Device mobility models that synthesise telecom-style traces.
//
// The paper treats B[t][n,m] (which edge a device touches at step t) as
// known input replayed from the Shanghai Telecom dataset, and cites Markov
// mobility models as the standard way to obtain it. We implement two models
// over the synthetic station layout:
//   * MarkovMobilityModel  — first-order Markov chain whose transition
//     kernel prefers nearby stations (distance-decay), with a tunable
//     stay probability controlling dwell times;
//   * HomeBiasedWaypointModel — each device owns a home station and
//     alternates between commuting trips and returning home, giving the
//     recurrent daily patterns observed in real telecom traces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "mobility/geo.h"
#include "mobility/trace.h"

namespace mach::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  MobilityModel(const MobilityModel&) = delete;
  MobilityModel& operator=(const MobilityModel&) = delete;

  virtual std::uint32_t initial_station(std::uint32_t device, common::Rng& rng) = 0;
  virtual std::uint32_t next_station(std::uint32_t device, std::uint32_t current,
                                     common::Rng& rng) = 0;
  virtual std::size_t num_stations() const noexcept = 0;

 protected:
  MobilityModel() = default;
};

class MarkovMobilityModel final : public MobilityModel {
 public:
  /// `stay_prob` is the per-step probability of keeping the current station;
  /// `range` is the distance-decay scale of the movement kernel
  /// (weight ∝ exp(-distance / range)).
  MarkovMobilityModel(std::vector<Point> stations, double stay_prob, double range);

  std::uint32_t initial_station(std::uint32_t device, common::Rng& rng) override;
  std::uint32_t next_station(std::uint32_t device, std::uint32_t current,
                             common::Rng& rng) override;
  std::size_t num_stations() const noexcept override { return stations_.size(); }

  /// Transition weights out of `station` (excluding the stay mass).
  const std::vector<double>& move_kernel(std::size_t station) const {
    return kernels_[station];
  }

 private:
  std::vector<Point> stations_;
  double stay_prob_;
  std::vector<std::vector<double>> kernels_;
};

class HomeBiasedWaypointModel final : public MobilityModel {
 public:
  /// `home_prob`: per-step probability of heading home when away;
  /// `trip_prob`: per-step probability of starting a trip when home;
  /// `range`: distance-decay scale for trip destinations.
  HomeBiasedWaypointModel(std::vector<Point> stations, std::size_t num_devices,
                          double home_prob, double trip_prob, double range,
                          std::uint64_t seed);

  std::uint32_t initial_station(std::uint32_t device, common::Rng& rng) override;
  std::uint32_t next_station(std::uint32_t device, std::uint32_t current,
                             common::Rng& rng) override;
  std::size_t num_stations() const noexcept override { return stations_.size(); }

  std::uint32_t home_of(std::uint32_t device) const { return homes_.at(device); }

 private:
  std::vector<Point> stations_;
  std::vector<std::uint32_t> homes_;
  double home_prob_;
  double trip_prob_;
  double range_;
};

/// Simulates `horizon` steps of the model for every device and compresses
/// constant runs into trace records.
Trace generate_trace(MobilityModel& model, std::size_t num_devices,
                     std::size_t horizon, std::uint64_t seed);

}  // namespace mach::mobility
