#include "mobility/stream.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ckpt/rng_codec.h"

namespace mach::mobility {

void TraceStream::seek(std::size_t target) {
  if (target < t()) {
    throw std::invalid_argument("TraceStream::seek: target before current step");
  }
  std::vector<std::uint32_t> moved;
  while (t() < target) advance(moved);
}

// ---------------------------------------------------------------------------
// ModelTraceStream

ModelTraceStream::ModelTraceStream(MobilityModel& model,
                                   std::size_t num_devices, std::uint64_t seed)
    : model_(model) {
  rngs_.reserve(num_devices);
  stations_.resize(num_devices);
  for (std::uint32_t m = 0; m < num_devices; ++m) {
    // The exact streams generate_trace uses: device m's first draw is its
    // initial station, subsequent draws its transitions.
    rngs_.emplace_back(common::split_seed(seed, 0x40b1 + m));
    stations_[m] = model.initial_station(m, rngs_[m]);
  }
}

void ModelTraceStream::advance(std::vector<std::uint32_t>& moved) {
  moved.clear();
  ++t_;
  for (std::uint32_t m = 0; m < stations_.size(); ++m) {
    const std::uint32_t next = model_.next_station(m, stations_[m], rngs_[m]);
    if (next != stations_[m]) {
      stations_[m] = next;
      moved.push_back(m);
    }
  }
}

void ModelTraceStream::save_cursor(ckpt::ByteWriter& out) const {
  out.u64(t_);
  out.u64(stations_.size());
  for (std::size_t m = 0; m < stations_.size(); ++m) {
    ckpt::write_rng(out, rngs_[m]);
    out.u32(stations_[m]);
  }
}

void ModelTraceStream::load_cursor(ckpt::ByteReader& in) {
  t_ = static_cast<std::size_t>(in.u64());
  if (in.u64() != stations_.size()) {
    throw ckpt::CorruptPayload("ModelTraceStream: device count mismatch");
  }
  for (std::size_t m = 0; m < stations_.size(); ++m) {
    ckpt::read_rng(in, rngs_[m]);
    const std::uint32_t station = in.u32();
    if (station >= model_.num_stations()) {
      throw ckpt::CorruptPayload("ModelTraceStream: station id out of range");
    }
    stations_[m] = station;
  }
}

std::size_t ModelTraceStream::memory_bytes() const noexcept {
  return rngs_.capacity() * sizeof(common::Rng) +
         stations_.capacity() * sizeof(std::uint32_t);
}

// ---------------------------------------------------------------------------
// ReplayTraceStream

ReplayTraceStream::ReplayTraceStream(const Trace& trace)
    : num_stations_(trace.num_stations()), horizon_(trace.horizon()) {
  const std::size_t devices = trace.num_devices();
  if (devices == 0 || horizon_ == 0) {
    throw std::invalid_argument("ReplayTraceStream: empty trace dimensions");
  }
  // Bucket records per device (counting sort keeps this O(records)).
  std::vector<std::uint32_t> counts(devices, 0);
  for (const auto& r : trace.records()) ++counts[r.device];
  offsets_.assign(devices + 1, 0);
  for (std::size_t m = 0; m < devices; ++m) {
    offsets_[m + 1] = offsets_[m] + counts[m];
  }
  sorted_.resize(trace.records().size());
  {
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const auto& r : trace.records()) sorted_[cursor[r.device]++] = r;
  }
  std::size_t max_duration = 1;
  for (std::size_t m = 0; m < devices; ++m) {
    auto begin = sorted_.begin() + offsets_[m];
    auto end = sorted_.begin() + offsets_[m + 1];
    std::sort(begin, end, [](const TraceRecord& a, const TraceRecord& b) {
      return a.t_start < b.t_start;
    });
    // The partition property TraceReplay enforces, without the dense grid:
    // records must tile [0, horizon) exactly.
    std::uint32_t expected = 0;
    for (auto it = begin; it != end; ++it) {
      if (it->t_start > expected) {
        throw std::invalid_argument(
            "ReplayTraceStream: device " + std::to_string(m) +
            " uncovered at t=" + std::to_string(expected));
      }
      if (it->t_start < expected) {
        throw std::invalid_argument(
            "ReplayTraceStream: overlapping records for device " +
            std::to_string(m) + " at t=" + std::to_string(it->t_start));
      }
      expected = it->t_end;
      max_duration = std::max<std::size_t>(max_duration, it->t_end - it->t_start);
    }
    if (expected != horizon_) {
      throw std::invalid_argument(
          "ReplayTraceStream: device " + std::to_string(m) +
          " uncovered at t=" + std::to_string(expected));
    }
  }
  window_ = max_duration + 1;
  index_.assign(devices, 0);
  stations_.resize(devices);
  for (std::size_t m = 0; m < devices; ++m) {
    stations_[m] = sorted_[offsets_[m]].station;
  }
  rebuild_calendar();
}

void ReplayTraceStream::rebuild_calendar() {
  calendar_.assign(window_, {});
  for (std::uint32_t m = 0; m < stations_.size(); ++m) {
    const std::uint32_t end = sorted_[offsets_[m] + index_[m]].t_end;
    if (end < horizon_) calendar_[end % window_].push_back(m);
  }
}

void ReplayTraceStream::advance(std::vector<std::uint32_t>& moved) {
  moved.clear();
  if (t_ + 1 >= horizon_) {
    throw std::out_of_range("ReplayTraceStream: advance past horizon");
  }
  ++t_;
  auto& due = calendar_[t_ % window_];
  std::sort(due.begin(), due.end());
  for (const std::uint32_t m : due) {
    ++index_[m];
    const TraceRecord& record = sorted_[offsets_[m] + index_[m]];
    if (record.t_end < horizon_) {
      calendar_[record.t_end % window_].push_back(m);
    }
    if (record.station != stations_[m]) {
      stations_[m] = record.station;
      moved.push_back(m);
    }
  }
  due.clear();
}

void ReplayTraceStream::save_cursor(ckpt::ByteWriter& out) const {
  out.u64(t_);
  out.u64(index_.size());
  for (const std::uint32_t idx : index_) out.u32(idx);
}

void ReplayTraceStream::load_cursor(ckpt::ByteReader& in) {
  const std::size_t t = static_cast<std::size_t>(in.u64());
  if (t >= horizon_) {
    throw ckpt::CorruptPayload("ReplayTraceStream: cursor past horizon");
  }
  if (in.u64() != index_.size()) {
    throw ckpt::CorruptPayload("ReplayTraceStream: device count mismatch");
  }
  for (std::uint32_t m = 0; m < index_.size(); ++m) {
    const std::uint32_t idx = in.u32();
    if (idx >= offsets_[m + 1] - offsets_[m]) {
      throw ckpt::CorruptPayload("ReplayTraceStream: record index out of range");
    }
    const TraceRecord& record = sorted_[offsets_[m] + idx];
    if (record.t_start > t || t >= record.t_end) {
      throw ckpt::CorruptPayload(
          "ReplayTraceStream: cursor outside record interval");
    }
    index_[m] = idx;
    stations_[m] = record.station;
  }
  t_ = t;
  rebuild_calendar();
}

std::size_t ReplayTraceStream::memory_bytes() const noexcept {
  std::size_t calendar_bytes = calendar_.capacity() * sizeof(calendar_[0]);
  for (const auto& bucket : calendar_) {
    calendar_bytes += bucket.capacity() * sizeof(std::uint32_t);
  }
  return sorted_.capacity() * sizeof(TraceRecord) +
         (offsets_.capacity() + index_.capacity() + stations_.capacity()) *
             sizeof(std::uint32_t) +
         calendar_bytes;
}

// ---------------------------------------------------------------------------
// GridMobilityStream

GridMobilityStream::GridMobilityStream(const Config& config) : config_(config) {
  if (config_.num_devices == 0 || config_.num_stations == 0) {
    throw std::invalid_argument("GridMobilityStream: empty dimensions");
  }
  if (config_.min_dwell < 1 || config_.max_dwell < config_.min_dwell) {
    throw std::invalid_argument(
        "GridMobilityStream: need 1 <= min_dwell <= max_dwell");
  }
  window_ = static_cast<std::size_t>(config_.max_dwell) + 1;
  stations_.resize(config_.num_devices);
  next_move_.resize(config_.num_devices);
  for (std::uint32_t m = 0; m < config_.num_devices; ++m) {
    stations_[m] = station_at(m, 0);
    next_move_[m] = dwell_at(m, 0);
  }
  rebuild_calendar();
}

std::uint32_t GridMobilityStream::station_at(std::uint32_t device,
                                             std::uint64_t t) const {
  // Pure function of (seed, device, t): no per-device RNG state to store or
  // checkpoint — this is what keeps the cursor at 8 bytes per device.
  const std::uint64_t key = common::split_seed(
      config_.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)), device);
  return static_cast<std::uint32_t>(key % config_.num_stations);
}

std::uint32_t GridMobilityStream::dwell_at(std::uint32_t device,
                                           std::uint64_t t) const {
  const std::uint64_t key = common::split_seed(
      config_.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)), device);
  const std::uint64_t span = config_.max_dwell - config_.min_dwell + 1;
  return config_.min_dwell + static_cast<std::uint32_t>((key >> 32) % span);
}

void GridMobilityStream::rebuild_calendar() {
  calendar_.assign(window_, {});
  for (std::uint32_t m = 0; m < next_move_.size(); ++m) {
    calendar_[next_move_[m] % window_].push_back(m);
  }
}

void GridMobilityStream::advance(std::vector<std::uint32_t>& moved) {
  moved.clear();
  ++t_;
  auto& due = calendar_[t_ % window_];
  // Sorting the due-list (not the whole population) keeps `moved` ascending
  // and makes the processing order identical whether the bucket was filled
  // by live advances or rebuilt from a loaded cursor.
  std::sort(due.begin(), due.end());
  for (const std::uint32_t m : due) {
    const std::uint32_t station = station_at(m, t_);
    const std::uint32_t dwell = dwell_at(m, t_);
    next_move_[m] = static_cast<std::uint32_t>(t_) + dwell;
    // dwell < window_, so the target bucket is never the one being drained.
    calendar_[(t_ + dwell) % window_].push_back(m);
    if (station != stations_[m]) {
      stations_[m] = station;
      moved.push_back(m);
    }
  }
  due.clear();
}

void GridMobilityStream::save_cursor(ckpt::ByteWriter& out) const {
  out.u64(t_);
  out.u64(stations_.size());
  for (const std::uint32_t s : stations_) out.u32(s);
  for (const std::uint32_t n : next_move_) out.u32(n);
}

void GridMobilityStream::load_cursor(ckpt::ByteReader& in) {
  const std::size_t t = static_cast<std::size_t>(in.u64());
  if (in.u64() != stations_.size()) {
    throw ckpt::CorruptPayload("GridMobilityStream: device count mismatch");
  }
  for (auto& s : stations_) {
    s = in.u32();
    if (s >= config_.num_stations) {
      throw ckpt::CorruptPayload("GridMobilityStream: station id out of range");
    }
  }
  for (auto& n : next_move_) {
    n = in.u32();
    if (n <= t || n > t + config_.max_dwell) {
      throw ckpt::CorruptPayload("GridMobilityStream: next-move step outside "
                                 "the dwell window");
    }
  }
  t_ = t;
  rebuild_calendar();
}

std::size_t GridMobilityStream::memory_bytes() const noexcept {
  std::size_t calendar_bytes = calendar_.capacity() * sizeof(calendar_[0]);
  for (const auto& bucket : calendar_) {
    calendar_bytes += bucket.capacity() * sizeof(std::uint32_t);
  }
  return (stations_.capacity() + next_move_.capacity()) *
             sizeof(std::uint32_t) +
         calendar_bytes;
}

// ---------------------------------------------------------------------------

Trace materialise_trace(TraceStream& stream, std::size_t horizon) {
  if (horizon == 0) {
    throw std::invalid_argument("materialise_trace: zero horizon");
  }
  if (stream.t() != 0) {
    throw std::invalid_argument("materialise_trace: stream not at step 0");
  }
  const std::size_t devices = stream.num_devices();
  Trace trace(devices, stream.num_stations(), horizon);
  // Buffer runs per device so records land in device-major order — the exact
  // order generate_trace emits (golden traces depend on it).
  std::vector<std::vector<TraceRecord>> runs(devices);
  std::vector<std::uint32_t> current(stream.stations().begin(),
                                     stream.stations().end());
  std::vector<std::uint32_t> run_start(devices, 0);
  std::vector<std::uint32_t> moved;
  for (std::uint32_t t = 1; t < horizon; ++t) {
    stream.advance(moved);
    for (const std::uint32_t m : moved) {
      runs[m].push_back({m, current[m], run_start[m], t});
      current[m] = stream.stations()[m];
      run_start[m] = t;
    }
  }
  for (std::uint32_t m = 0; m < devices; ++m) {
    runs[m].push_back({m, current[m], run_start[m],
                       static_cast<std::uint32_t>(horizon)});
    for (const auto& record : runs[m]) trace.add_record(record);
  }
  return trace;
}

}  // namespace mach::mobility
