// Standard human-mobility statistics computed over a replayed trace, used to
// characterise synthetic traces against the properties reported for real
// telecom datasets (dwell-time distribution, visit entropy, radius of
// gyration, returner behaviour).
#pragma once

#include <cstddef>
#include <vector>

#include "mobility/geo.h"
#include "mobility/trace.h"

namespace mach::mobility {

struct DeviceMobilityStats {
  /// Number of distinct stations the device visited.
  std::size_t distinct_stations = 0;
  /// Shannon entropy (nats) of the station-visit distribution.
  double visit_entropy = 0.0;
  /// Fraction of steps spent at the most-visited station.
  double top_station_share = 0.0;
  /// Radius of gyration around the visit centroid (needs station positions).
  double radius_of_gyration = 0.0;
  /// Mean dwell: average length of constant-station runs, in steps.
  double mean_dwell = 0.0;
};

struct TraceStatsSummary {
  double mean_distinct_stations = 0.0;
  double mean_visit_entropy = 0.0;
  double mean_top_station_share = 0.0;
  double mean_radius_of_gyration = 0.0;
  double mean_dwell = 0.0;
  double station_churn = 0.0;  // replay.churn_rate()
};

/// Per-device statistics. `stations` supplies positions for the radius of
/// gyration; pass an empty vector to skip the spatial metrics (they stay 0).
std::vector<DeviceMobilityStats> device_mobility_stats(
    const TraceReplay& replay, const std::vector<Point>& stations);

/// Population means of the per-device statistics.
TraceStatsSummary summarize_trace(const TraceReplay& replay,
                                  const std::vector<Point>& stations);

}  // namespace mach::mobility
