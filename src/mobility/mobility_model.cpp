#include "mobility/mobility_model.h"

#include <cmath>
#include <stdexcept>

#include "mobility/stream.h"

namespace mach::mobility {

MarkovMobilityModel::MarkovMobilityModel(std::vector<Point> stations, double stay_prob,
                                         double range)
    : stations_(std::move(stations)), stay_prob_(stay_prob) {
  if (stations_.empty()) throw std::invalid_argument("MarkovMobilityModel: no stations");
  if (stay_prob_ < 0.0 || stay_prob_ >= 1.0) {
    throw std::invalid_argument("MarkovMobilityModel: stay_prob must be in [0, 1)");
  }
  if (range <= 0.0) throw std::invalid_argument("MarkovMobilityModel: bad range");
  kernels_.resize(stations_.size());
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    kernels_[s].assign(stations_.size(), 0.0);
    for (std::size_t d = 0; d < stations_.size(); ++d) {
      if (d == s) continue;  // stay handled separately via stay_prob
      kernels_[s][d] = std::exp(-distance(stations_[s], stations_[d]) / range);
    }
  }
}

std::uint32_t MarkovMobilityModel::initial_station(std::uint32_t /*device*/,
                                                   common::Rng& rng) {
  return static_cast<std::uint32_t>(rng.uniform_index(stations_.size()));
}

std::uint32_t MarkovMobilityModel::next_station(std::uint32_t /*device*/,
                                                std::uint32_t current,
                                                common::Rng& rng) {
  if (rng.uniform() < stay_prob_) return current;
  const std::size_t next = rng.categorical(kernels_[current]);
  // Single-station layouts have an all-zero kernel: stay put.
  return next < stations_.size() ? static_cast<std::uint32_t>(next) : current;
}

HomeBiasedWaypointModel::HomeBiasedWaypointModel(std::vector<Point> stations,
                                                 std::size_t num_devices,
                                                 double home_prob, double trip_prob,
                                                 double range, std::uint64_t seed)
    : stations_(std::move(stations)),
      home_prob_(home_prob),
      trip_prob_(trip_prob),
      range_(range) {
  if (stations_.empty()) throw std::invalid_argument("HomeBiasedWaypointModel: no stations");
  if (range_ <= 0.0) throw std::invalid_argument("HomeBiasedWaypointModel: bad range");
  common::Rng rng(common::split_seed(seed, 0x803e));
  homes_.resize(num_devices);
  for (auto& h : homes_) {
    h = static_cast<std::uint32_t>(rng.uniform_index(stations_.size()));
  }
}

std::uint32_t HomeBiasedWaypointModel::initial_station(std::uint32_t device,
                                                       common::Rng& /*rng*/) {
  return homes_.at(device);
}

std::uint32_t HomeBiasedWaypointModel::next_station(std::uint32_t device,
                                                    std::uint32_t current,
                                                    common::Rng& rng) {
  const std::uint32_t home = homes_.at(device);
  if (current == home) {
    if (rng.uniform() >= trip_prob_) return current;  // stay home
  } else if (rng.uniform() < home_prob_) {
    return home;  // end the trip
  } else if (rng.uniform() >= 0.5) {
    return current;  // linger at the trip destination
  }
  // Pick a trip destination near the current station (distance-decay).
  std::vector<double> weights(stations_.size(), 0.0);
  for (std::size_t d = 0; d < stations_.size(); ++d) {
    if (d == current) continue;
    weights[d] = std::exp(-distance(stations_[current], stations_[d]) / range_);
  }
  const std::size_t next = rng.categorical(weights);
  return next < stations_.size() ? static_cast<std::uint32_t>(next) : current;
}

Trace generate_trace(MobilityModel& model, std::size_t num_devices,
                     std::size_t horizon, std::uint64_t seed) {
  if (horizon == 0) throw std::invalid_argument("generate_trace: zero horizon");
  // Time-major streaming with per-device RNG streams draws the exact same
  // sequence per device as the historical device-major loop did, and
  // materialise_trace buffers runs per device so the record order (and the
  // golden traces hashed from it) is unchanged.
  ModelTraceStream stream(model, num_devices, seed);
  return materialise_trace(stream, horizon);
}

}  // namespace mach::mobility
