#include "mobility/stations.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mach::mobility {

std::vector<Point> generate_stations(const StationLayoutSpec& spec, std::uint64_t seed) {
  if (spec.num_stations == 0 || spec.num_hotspots == 0) {
    throw std::invalid_argument("generate_stations: empty spec");
  }
  common::Rng rng(common::split_seed(seed, 0x57a7));
  std::vector<Point> hotspots(spec.num_hotspots);
  // Keep hotspots away from the border so scatter stays mostly inside.
  const double margin = spec.area_size * 0.15;
  for (auto& h : hotspots) {
    h.x = rng.uniform(margin, spec.area_size - margin);
    h.y = rng.uniform(margin, spec.area_size - margin);
  }
  std::vector<Point> stations;
  stations.reserve(spec.num_stations);
  for (std::size_t i = 0; i < spec.num_stations; ++i) {
    Point p;
    if (rng.uniform() < spec.background_fraction) {
      p.x = rng.uniform(0.0, spec.area_size);
      p.y = rng.uniform(0.0, spec.area_size);
    } else {
      const Point& h = hotspots[rng.uniform_index(hotspots.size())];
      p.x = std::clamp(h.x + rng.normal(0.0, spec.hotspot_stddev), 0.0, spec.area_size);
      p.y = std::clamp(h.y + rng.normal(0.0, spec.hotspot_stddev), 0.0, spec.area_size);
    }
    stations.push_back(p);
  }
  return stations;
}

Clustering cluster_stations(const std::vector<Point>& stations, std::size_t k,
                            std::uint64_t seed, std::size_t max_iters) {
  if (k == 0 || k > stations.size()) {
    throw std::invalid_argument("cluster_stations: bad k");
  }
  common::Rng rng(common::split_seed(seed, 0xc1057e2));

  // k-means++ seeding.
  std::vector<Point> centroids;
  centroids.reserve(k);
  centroids.push_back(stations[rng.uniform_index(stations.size())]);
  std::vector<double> d2(stations.size());
  while (centroids.size() < k) {
    for (std::size_t i = 0; i < stations.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const Point& c : centroids) {
        best = std::min(best, squared_distance(stations[i], c));
      }
      d2[i] = best;
    }
    std::size_t chosen = rng.categorical(d2);
    if (chosen >= stations.size()) chosen = rng.uniform_index(stations.size());
    centroids.push_back(stations[chosen]);
  }

  Clustering result;
  result.assignment.assign(stations.size(), 0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < stations.size(); ++i) {
      const auto nearest = static_cast<std::uint32_t>(nearest_point(centroids, stations[i]));
      if (nearest != result.assignment[i]) {
        result.assignment[i] = nearest;
        changed = true;
      }
    }
    // Recompute centroids; re-seed empty clusters from the farthest station.
    std::vector<Point> sums(k);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < stations.size(); ++i) {
      sums[result.assignment[i]].x += stations[i].x;
      sums[result.assignment[i]].y += stations[i].y;
      ++counts[result.assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Move the empty centroid onto the station farthest from its centroid.
        std::size_t farthest = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < stations.size(); ++i) {
          const double d = squared_distance(stations[i], centroids[result.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            farthest = i;
          }
        }
        centroids[c] = stations[farthest];
        changed = true;
      } else {
        centroids[c].x = sums[c].x / static_cast<double>(counts[c]);
        centroids[c].y = sums[c].y / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }
  // Final assignment against the converged centroids.
  for (std::size_t i = 0; i < stations.size(); ++i) {
    result.assignment[i] = static_cast<std::uint32_t>(nearest_point(centroids, stations[i]));
  }
  result.centroids = std::move(centroids);

  // Guarantee non-empty clusters (k <= stations.size()): give any empty
  // cluster the station whose current cluster is largest.
  std::vector<std::size_t> counts(k, 0);
  for (auto a : result.assignment) ++counts[a];
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] != 0) continue;
    std::size_t donor_cluster =
        static_cast<std::size_t>(std::max_element(counts.begin(), counts.end()) -
                                 counts.begin());
    for (std::size_t i = 0; i < stations.size(); ++i) {
      if (result.assignment[i] == donor_cluster) {
        result.assignment[i] = static_cast<std::uint32_t>(c);
        ++counts[c];
        --counts[donor_cluster];
        break;
      }
    }
  }
  return result;
}

}  // namespace mach::mobility
