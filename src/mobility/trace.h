// Telecom-style access traces and their replay into per-step associations.
//
// A trace is a list of (device, station, t_start, t_end) records — the same
// schema as the Shanghai Telecom dataset the paper replays. Traces are
// produced by a mobility model (see mobility_model.h) or can be constructed
// directly in tests; TraceReplay resolves, for every discrete time step, the
// station each device is accessing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mobility/geo.h"

namespace mach::mobility {

struct TraceRecord {
  std::uint32_t device = 0;
  std::uint32_t station = 0;
  std::uint32_t t_start = 0;  // inclusive
  std::uint32_t t_end = 0;    // exclusive
};

class Trace {
 public:
  Trace(std::size_t num_devices, std::size_t num_stations, std::size_t horizon);

  void add_record(TraceRecord record);

  std::size_t num_devices() const noexcept { return num_devices_; }
  std::size_t num_stations() const noexcept { return num_stations_; }
  /// Number of discrete time steps covered.
  std::size_t horizon() const noexcept { return horizon_; }
  const std::vector<TraceRecord>& records() const noexcept { return records_; }

  /// Average record duration in steps.
  double mean_dwell() const noexcept;

  /// Serialises to a simple CSV (device,station,t_start,t_end).
  bool write_csv(const std::string& path) const;
  /// Parses a CSV produced by write_csv.
  static Trace read_csv(const std::string& path, std::size_t num_devices,
                        std::size_t num_stations, std::size_t horizon);

 private:
  std::size_t num_devices_;
  std::size_t num_stations_;
  std::size_t horizon_;
  std::vector<TraceRecord> records_;
};

/// Dense replay of a trace: station_of(t, device) in O(1).
class TraceReplay {
 public:
  /// Every device must be covered by exactly one record at every step in
  /// [0, horizon); throws otherwise (the paper's B[t][n,m] is a partition).
  explicit TraceReplay(const Trace& trace);

  std::size_t horizon() const noexcept { return horizon_; }
  std::size_t num_devices() const noexcept { return num_devices_; }

  std::uint32_t station_of(std::size_t t, std::size_t device) const {
    return grid_[t * num_devices_ + device];
  }

  /// Fraction of steps (t>0) where a device switched stations, averaged over
  /// devices — the trace's churn rate.
  double churn_rate() const noexcept;

 private:
  std::size_t num_devices_;
  std::size_t horizon_;
  std::vector<std::uint32_t> grid_;
};

}  // namespace mach::mobility
