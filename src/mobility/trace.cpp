#include "mobility/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mach::mobility {

Trace::Trace(std::size_t num_devices, std::size_t num_stations, std::size_t horizon)
    : num_devices_(num_devices), num_stations_(num_stations), horizon_(horizon) {}

void Trace::add_record(TraceRecord record) {
  if (record.device >= num_devices_ || record.station >= num_stations_) {
    throw std::invalid_argument("Trace::add_record: id out of range");
  }
  if (record.t_start >= record.t_end || record.t_end > horizon_) {
    throw std::invalid_argument("Trace::add_record: bad time interval");
  }
  records_.push_back(record);
}

double Trace::mean_dwell() const noexcept {
  if (records_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : records_) total += r.t_end - r.t_start;
  return total / static_cast<double>(records_.size());
}

bool Trace::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "device,station,t_start,t_end\n";
  for (const auto& r : records_) {
    out << r.device << ',' << r.station << ',' << r.t_start << ',' << r.t_end << '\n';
  }
  return static_cast<bool>(out);
}

Trace Trace::read_csv(const std::string& path, std::size_t num_devices,
                      std::size_t num_stations, std::size_t horizon) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Trace::read_csv: cannot open " + path);
  Trace trace(num_devices, num_stations, horizon);
  std::string line;
  std::getline(in, line);  // header
  std::size_t line_no = 1;
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("Trace::read_csv: " + what + " at line " +
                             std::to_string(line_no) + ": " + line);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    TraceRecord r;
    char comma = 0;
    ss >> r.device >> comma >> r.station >> comma >> r.t_start >> comma >> r.t_end;
    if (!ss) fail("malformed record");
    // Validate here (not just in add_record) so a bad file reports the line
    // that broke instead of silently corrupting replay downstream.
    if (r.device >= num_devices) fail("device id out of range");
    if (r.station >= num_stations) fail("station id out of range");
    if (r.t_end <= r.t_start) fail("record has t_end <= t_start");
    if (r.t_end > horizon) fail("record extends past the horizon");
    trace.add_record(r);
  }
  return trace;
}

TraceReplay::TraceReplay(const Trace& trace)
    : num_devices_(trace.num_devices()), horizon_(trace.horizon()) {
  constexpr std::uint32_t kUnset = ~std::uint32_t{0};
  grid_.assign(horizon_ * num_devices_, kUnset);
  for (const auto& r : trace.records()) {
    for (std::uint32_t t = r.t_start; t < r.t_end; ++t) {
      auto& cell = grid_[t * num_devices_ + r.device];
      if (cell != kUnset) {
        throw std::invalid_argument("TraceReplay: overlapping records for device " +
                                    std::to_string(r.device) + " at t=" +
                                    std::to_string(t));
      }
      cell = r.station;
    }
  }
  for (std::size_t t = 0; t < horizon_; ++t) {
    for (std::size_t m = 0; m < num_devices_; ++m) {
      if (grid_[t * num_devices_ + m] == kUnset) {
        throw std::invalid_argument("TraceReplay: device " + std::to_string(m) +
                                    " uncovered at t=" + std::to_string(t));
      }
    }
  }
}

double TraceReplay::churn_rate() const noexcept {
  if (horizon_ < 2 || num_devices_ == 0) return 0.0;
  std::size_t switches = 0;
  for (std::size_t t = 1; t < horizon_; ++t) {
    for (std::size_t m = 0; m < num_devices_; ++m) {
      if (grid_[t * num_devices_ + m] != grid_[(t - 1) * num_devices_ + m]) ++switches;
    }
  }
  return static_cast<double>(switches) /
         static_cast<double>((horizon_ - 1) * num_devices_);
}

}  // namespace mach::mobility
