// First-order Markov mobility prediction (§II-A): when future device
// locations are uncertain, the paper models P^t_{n,m} — the probability that
// device m accesses edge n at step t — with a classical Markov mobility
// model fitted to observed trajectories. This module learns per-device (or
// population-shared) transition matrices over edges from a schedule prefix
// and predicts the next-edge distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/schedule.h"

namespace mach::mobility {

class MarkovPredictor {
 public:
  /// `shared` pools every device's transitions into one matrix (more data,
  /// less personalisation); otherwise one matrix per device with add-one
  /// smoothing toward the pooled matrix.
  MarkovPredictor(std::size_t num_edges, std::size_t num_devices, bool shared);

  /// Accumulates all transitions of `schedule` in steps [from, to).
  void fit(const MobilitySchedule& schedule, std::size_t from, std::size_t to);

  /// Records a single observed transition.
  void observe(std::uint32_t device, std::uint32_t from_edge, std::uint32_t to_edge);

  /// P(next edge | current edge) for a device; rows sum to 1. Unobserved
  /// rows fall back to "stay put" mass 1.
  std::vector<double> next_edge_distribution(std::uint32_t device,
                                             std::uint32_t current_edge) const;

  /// Most likely next edge.
  std::uint32_t predict(std::uint32_t device, std::uint32_t current_edge) const;

  /// Fraction of transitions in [from, to) predicted correctly (one-step-
  /// ahead evaluation over a held-out range of the schedule).
  double evaluate(const MobilitySchedule& schedule, std::size_t from,
                  std::size_t to) const;

  std::size_t num_edges() const noexcept { return num_edges_; }
  bool shared() const noexcept { return shared_; }

 private:
  const std::vector<std::size_t>& counts_for(std::uint32_t device) const;
  std::vector<std::size_t>& counts_for(std::uint32_t device);

  std::size_t num_edges_;
  bool shared_;
  /// Transition counts: pooled matrix plus (if personalised) one per device;
  /// each matrix is num_edges x num_edges row-major.
  std::vector<std::size_t> pooled_;
  std::vector<std::vector<std::size_t>> per_device_;
};

}  // namespace mach::mobility
