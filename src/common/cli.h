// Tiny command-line flag parser shared by examples and bench binaries.
//
// Supports "--name value", "--name=value" and boolean "--name" forms; every
// flag has a default so binaries run with no arguments. Unknown flags are an
// error so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mach::common {

class CliParser {
 public:
  /// `program_help` is printed above the flag list for --help.
  explicit CliParser(std::string program_help);

  void add_flag(const std::string& name, std::string default_value,
                std::string help);
  void add_flag(const std::string& name, std::int64_t default_value,
                std::string help);
  void add_flag(const std::string& name, double default_value, std::string help);
  void add_flag(const std::string& name, bool default_value, std::string help);

  /// Parses argv. Returns false (after printing help or an error) if the
  /// caller should exit; on "--help" the exit is benign.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True when "--help" was seen (parse() returned false without error).
  bool help_requested() const noexcept { return help_requested_; }

 private:
  struct Flag {
    std::string default_value;
    std::string value;
    std::string help;
    bool is_bool = false;
  };

  const Flag* find(const std::string& name) const;

  std::string program_help_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
};

/// Reads an environment variable, returning `fallback` when unset/empty.
std::string env_or(const std::string& name, const std::string& fallback);
/// True when the environment variable is set to a truthy value (1/true/yes/on).
bool env_flag(const std::string& name);

}  // namespace mach::common
