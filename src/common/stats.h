// Streaming statistics helpers used by the metrics recorder and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mach::common {

/// Welford-style running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean.
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sequence (0 when empty).
double mean(std::span<const double> xs) noexcept;
/// Unbiased sample standard deviation (0 when fewer than two samples).
double stddev(std::span<const double> xs) noexcept;
/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);
/// Exponential moving average over a series with smoothing factor in (0, 1].
std::vector<double> ema(std::span<const double> xs, double smoothing);

}  // namespace mach::common
