#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace mach::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;

std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::scoped_lock lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace mach::common
