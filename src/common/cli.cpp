#include "common/cli.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

namespace mach::common {

CliParser::CliParser(std::string program_help) : program_help_(std::move(program_help)) {}

void CliParser::add_flag(const std::string& name, std::string default_value,
                         std::string help) {
  Flag flag;
  flag.default_value = std::move(default_value);
  flag.value = flag.default_value;
  flag.help = std::move(help);
  if (flags_.emplace(name, std::move(flag)).second) order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, std::int64_t default_value,
                         std::string help) {
  add_flag(name, std::to_string(default_value), std::move(help));
}

void CliParser::add_flag(const std::string& name, double default_value, std::string help) {
  add_flag(name, std::to_string(default_value), std::move(help));
}

void CliParser::add_flag(const std::string& name, bool default_value, std::string help) {
  Flag flag;
  flag.default_value = default_value ? "true" : "false";
  flag.value = flag.default_value;
  flag.help = std::move(help);
  flag.is_bool = true;
  if (flags_.emplace(name, std::move(flag)).second) order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::cout << program_help_ << "\n\nFlags:\n";
      for (const auto& name : order_) {
        const Flag& flag = flags_.at(name);
        std::cout << "  --" << name << " (default: " << flag.default_value
                  << ")\n      " << flag.help << '\n';
      }
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected positional argument: " << arg << '\n';
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::cerr << "unknown flag: --" << name << '\n';
      return false;
    }
    if (!has_value) {
      if (it->second.is_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << "flag --" << name << " expects a value\n";
        return false;
      }
    }
    it->second.value = value;
  }
  return true;
}

const CliParser::Flag* CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? nullptr : &it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag* flag = find(name);
  return flag ? flag->value : std::string{};
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const Flag* flag = find(name);
  return flag ? std::strtoll(flag->value.c_str(), nullptr, 10) : 0;
}

double CliParser::get_double(const std::string& name) const {
  const Flag* flag = find(name);
  return flag ? std::strtod(flag->value.c_str(), nullptr) : 0.0;
}

bool CliParser::get_bool(const std::string& name) const {
  const Flag* flag = find(name);
  if (!flag) return false;
  std::string value = flag->value;
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

std::string env_or(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  return (value != nullptr && *value != '\0') ? std::string(value) : fallback;
}

bool env_flag(const std::string& name) {
  std::string value = env_or(name, "");
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

}  // namespace mach::common
