// Deterministic pseudo-random number generation for the whole simulator.
//
// Every stochastic component (mobility, data synthesis, device sampling,
// SGD minibatching) draws from an explicitly-seeded Rng instance so that
// experiments are reproducible bit-for-bit across runs and platforms.
// The generator is xoshiro256++ (Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mach::common {

/// Counter-based seed derivation: expands one 64-bit seed into independent
/// streams (e.g. one per device) without correlation between streams.
std::uint64_t split_seed(std::uint64_t root_seed, std::uint64_t stream_id) noexcept;

/// Complete serialisable state of one Rng: the four xoshiro256++ words plus
/// the Box-Muller cache. A stream restored from this continues bit-for-bit —
/// including returning a pending cached normal() half-draw first — which is
/// what checkpoint/resume needs to replay runs exactly.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// xoshiro256++ PRNG with distribution helpers used across the simulator.
/// Satisfies UniformRandomBitGenerator so it can also feed <random> adaptors.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second draw).
  double normal() noexcept;
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Gamma(shape, scale) via Marsaglia-Tsang. Requires shape > 0.
  double gamma(double shape, double scale) noexcept;

  /// Samples an index according to (unnormalised, non-negative) weights.
  /// Returns weights.size() only if all weights are zero-or-less.
  std::size_t categorical(std::span<const double> weights) noexcept;

  /// Dirichlet(alpha, ..., alpha) over k categories.
  std::vector<double> dirichlet(double alpha, std::size_t k);
  /// Dirichlet with per-category concentration parameters.
  std::vector<double> dirichlet(std::span<const double> alphas);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (reservoir-free, for count<=n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t count);

  /// Snapshot of the full generator state (see RngState).
  RngState state() const noexcept {
    return RngState{state_, cached_normal_, has_cached_normal_};
  }
  /// Restores a snapshot taken with state(). An all-zero word vector is
  /// illegal for xoshiro and is replaced by the default seed word.
  void set_state(const RngState& state) noexcept {
    state_ = state.words;
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
      state_[0] = 0x9e3779b97f4a7c15ULL;
    }
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mach::common
