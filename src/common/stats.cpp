#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mach::common {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return count_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> ema(std::span<const double> xs, double smoothing) {
  std::vector<double> out;
  out.reserve(xs.size());
  double value = 0.0;
  bool first = true;
  for (double x : xs) {
    value = first ? x : smoothing * x + (1.0 - smoothing) * value;
    first = false;
    out.push_back(value);
  }
  return out;
}

}  // namespace mach::common
