#include "common/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace mach::common {

std::string format_double(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& value = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << value << std::string(widths[c] - value.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out << ',';
    out << csv_escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace mach::common
