#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mach::common {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t split_seed(std::uint64_t root_seed, std::uint64_t stream_id) noexcept {
  // Mix the stream id through splitmix64 twice so adjacent ids diverge fully.
  std::uint64_t s = root_seed ^ (0x632be59bd9b4e019ULL * (stream_id + 1));
  std::uint64_t a = splitmix64(s);
  return splitmix64(s) ^ rotl(a, 23);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  if (n == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return uniform() < clamped;
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost to shape+1 and apply the standard power correction.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return weights.size();
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(weights[i], 0.0);
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t k) {
  std::vector<double> alphas(k, alpha);
  return dirichlet(alphas);
}

std::vector<double> Rng::dirichlet(std::span<const double> alphas) {
  std::vector<double> draws(alphas.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    draws[i] = gamma(alphas[i], 1.0);
    total += draws[i];
  }
  if (total <= 0.0) {
    // Degenerate draw (all gammas underflowed): fall back to uniform simplex point.
    const double v = 1.0 / static_cast<double>(std::max<std::size_t>(draws.size(), 1));
    for (auto& d : draws) d = v;
    return draws;
  }
  for (auto& d : draws) d /= total;
  return draws;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t count) {
  count = std::min(count, n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: only the first `count` positions need shuffling.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace mach::common
