// Minimal leveled logger. Benches and examples use it for progress lines;
// tests set the level to Warn to keep ctest output quiet.
//
// The variadic helpers stream their arguments (anything with operator<<):
//   log_info("round ", t, " accuracy=", acc);
#pragma once

#include <sstream>
#include <string_view>

namespace mach::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level (only flipped at startup in practice).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one line "[LEVEL] message" to stderr if `level` passes the filter.
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_at(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream ss;
  (ss << ... << args);
  log_line(level, ss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_at(LogLevel::Debug, std::forward<Args>(args)...);
}

template <typename... Args>
void log_info(Args&&... args) {
  detail::log_at(LogLevel::Info, std::forward<Args>(args)...);
}

template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_at(LogLevel::Warn, std::forward<Args>(args)...);
}

template <typename... Args>
void log_error(Args&&... args) {
  detail::log_at(LogLevel::Error, std::forward<Args>(args)...);
}

}  // namespace mach::common
