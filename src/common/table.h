// Aligned ASCII table rendering plus CSV export, used by the benchmark
// harnesses to print the paper's tables/figure series and persist raw data.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mach::common {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with fixed precision so benchmark output lines up.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::int64_t value);
  Table& cell(std::size_t value);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule and per-column padding.
  void print(std::ostream& os) const;
  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision);

}  // namespace mach::common
