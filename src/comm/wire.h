// Little-endian wire primitives for codec payloads (internal to src/comm/).
//
// Codec payloads are raw byte vectors with an explicit little-endian layout,
// so encoded sizes — the quantity the ByteLedger charges per message — are
// platform-independent and byte-exact. std::bit_cast keeps every float <->
// bits conversion UBSan-clean (no unions, no type-punned pointers).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace mach::comm::wire {

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

inline void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline float get_f32(const std::uint8_t* p) {
  return std::bit_cast<float>(get_u32(p));
}

}  // namespace mach::comm::wire
