#include "comm/codec.h"

#include <cstdio>
#include <stdexcept>

#include "comm/codec_impl.h"

namespace mach::comm {

std::string_view codec_kind_name(CodecKind kind) noexcept {
  switch (kind) {
    case CodecKind::Fp32: return "fp32";
    case CodecKind::Bf16: return "bf16";
    case CodecKind::Int8: return "int8";
    case CodecKind::TopK: return "topk";
  }
  return "?";
}

CodecSpec CodecSpec::parse(std::string_view text) {
  CodecSpec spec;
  std::string_view name = text;
  std::string_view params;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    name = text.substr(0, colon);
    params = text.substr(colon + 1);
  }
  if (name == "fp32") {
    spec.kind = CodecKind::Fp32;
  } else if (name == "bf16") {
    spec.kind = CodecKind::Bf16;
  } else if (name == "int8") {
    spec.kind = CodecKind::Int8;
  } else if (name == "topk") {
    spec.kind = CodecKind::TopK;
  } else {
    throw std::invalid_argument("codec: unknown codec '" + std::string(text) +
                                "' (expected fp32|bf16|int8|topk[:k=...])");
  }
  if (params.empty()) {
    if (!text.empty() && text.find(':') != std::string_view::npos) {
      throw std::invalid_argument("codec: empty parameter list in '" +
                                  std::string(text) + "'");
    }
    return spec;
  }
  if (spec.kind != CodecKind::TopK) {
    throw std::invalid_argument("codec: '" + std::string(name) +
                                "' takes no parameters ('" + std::string(text) +
                                "')");
  }
  if (params.rfind("k=", 0) != 0) {
    throw std::invalid_argument("codec: expected 'topk:k=<density>', got '" +
                                std::string(text) + "'");
  }
  const std::string value(params.substr(2));
  char* end = nullptr;
  const double density = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("codec: bad topk density '" + value + "'");
  }
  if (!(density > 0.0) || density > 1.0) {
    throw std::invalid_argument("codec: topk density must be in (0, 1], got '" +
                                value + "'");
  }
  spec.topk_density = density;
  return spec;
}

std::string CodecSpec::to_string() const {
  if (kind != CodecKind::TopK) return std::string(codec_kind_name(kind));
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "topk:k=%g", topk_density);
  return buffer;
}

std::unique_ptr<Codec> make_codec(const CodecSpec& spec) {
  switch (spec.kind) {
    case CodecKind::Fp32: return detail::make_fp32_codec();
    case CodecKind::Bf16: return detail::make_bf16_codec();
    case CodecKind::Int8: return detail::make_int8_codec();
    case CodecKind::TopK:
      if (!(spec.topk_density > 0.0) || spec.topk_density > 1.0) {
        throw std::invalid_argument("codec: topk density must be in (0, 1]");
      }
      return detail::make_topk_codec(spec.topk_density);
  }
  throw std::invalid_argument("codec: unknown codec kind");
}

}  // namespace mach::comm
