// int8: per-tensor symmetric quantisation. One fp32 scale = max|x| / 127
// heads the payload, followed by one signed byte per parameter:
// q = round(x / scale) clamped to [-127, 127], decoded as q·scale.
//
// Symmetric (no zero point) keeps 0 exactly representable — federated deltas
// and freshly-initialised layers are zero-heavy — and the absolute error is
// at most scale/2 everywhere except the clamp boundary, where it is still
// below scale. An all-zero tensor encodes scale = 0 and decodes exactly. The
// rounding is std::lround (half away from zero): platform-independent for
// the in-range values the scale guarantees.
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "comm/codec_impl.h"
#include "comm/wire.h"

namespace mach::comm::detail {
namespace {

class Int8Codec final : public Codec {
 public:
  CodecKind kind() const noexcept override { return CodecKind::Int8; }
  std::string to_string() const override { return "int8"; }

  std::size_t encoded_bytes(std::size_t count) const noexcept override {
    return 4 + count;
  }

  void encode(std::span<const float> values, std::span<const float> /*reference*/,
              std::span<float> /*residual*/, Encoded& out) const override {
    out.bytes.clear();
    out.bytes.reserve(4 + values.size());
    float max_abs = 0.0f;
    for (const float v : values) {
      const float a = std::fabs(v);
      if (a > max_abs) max_abs = a;
    }
    const float scale = max_abs / 127.0f;
    wire::put_f32(out.bytes, scale);
    if (scale == 0.0f) {
      out.bytes.resize(4 + values.size(), 0);
      return;
    }
    const float inv_scale = 1.0f / scale;
    for (const float v : values) {
      long q = std::lround(v * inv_scale);
      if (q > 127) q = 127;
      if (q < -127) q = -127;
      out.bytes.push_back(static_cast<std::uint8_t>(static_cast<std::int8_t>(q)));
    }
  }

  void decode(const Encoded& in, std::size_t count,
              std::span<const float> /*reference*/,
              std::vector<float>& out) const override {
    if (in.bytes.size() != 4 + count) {
      throw std::runtime_error("int8 codec: payload size mismatch");
    }
    const float scale = wire::get_f32(in.bytes.data());
    out.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto q = static_cast<std::int8_t>(in.bytes[4 + i]);
      out[i] = static_cast<float>(q) * scale;
    }
  }
};

}  // namespace

std::unique_ptr<Codec> make_int8_codec() { return std::make_unique<Int8Codec>(); }

}  // namespace mach::comm::detail
