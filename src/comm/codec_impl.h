// Concrete codec factories (internal to src/comm/; use make_codec()).
#pragma once

#include <memory>

#include "comm/codec.h"

namespace mach::comm::detail {

std::unique_ptr<Codec> make_fp32_codec();
std::unique_ptr<Codec> make_bf16_codec();
std::unique_ptr<Codec> make_int8_codec();
std::unique_ptr<Codec> make_topk_codec(double density);

}  // namespace mach::comm::detail
