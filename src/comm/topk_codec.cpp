// topk: sparsified delta transfer with error-feedback residuals.
//
// The sender forms the correction-augmented delta
//     corrected = (values − reference) + residual
// (reference empty ⇒ zeros; residual empty ⇒ memoryless), transmits the
// k = ceil(density·count) largest-|corrected| entries as (index, value)
// pairs, and banks everything it did not send back into the residual:
//     residual ← corrected,  residual[sent] ← 0.
// The receiver reconstructs  out = reference  with  out[sent] += value.
//
// Because transmitted entries carry exact fp32 values, the error-feedback
// invariant  decoded_delta + new_residual == corrected  holds bitwise: a
// sent coordinate contributes its full corrected value and zero residual, an
// unsent one contributes zero and its full corrected value. Nothing is ever
// silently dropped — only deferred — which is what makes EF sparsification
// converge where plain top-k stalls.
//
// Selection is deterministic: ties in |corrected| break toward the smaller
// index, and the transmitted pairs are ordered by ascending index, so runs
// are bitwise identical at any thread count.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "comm/codec_impl.h"
#include "comm/wire.h"

namespace mach::comm::detail {
namespace {

class TopKCodec final : public Codec {
 public:
  explicit TopKCodec(double density) : density_(density) {}

  CodecKind kind() const noexcept override { return CodecKind::TopK; }
  std::string to_string() const override {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "topk:k=%g", density_);
    return buffer;
  }
  bool is_delta() const noexcept override { return true; }
  bool stateful() const noexcept override { return true; }

  std::size_t k_for(std::size_t count) const noexcept {
    if (count == 0) return 0;
    const auto k = static_cast<std::size_t>(
        std::ceil(density_ * static_cast<double>(count)));
    return std::clamp<std::size_t>(k, 1, count);
  }

  std::size_t encoded_bytes(std::size_t count) const noexcept override {
    return 4 + 8 * k_for(count);
  }

  void encode(std::span<const float> values, std::span<const float> reference,
              std::span<float> residual, Encoded& out) const override {
    const std::size_t count = values.size();
    if (!reference.empty() && reference.size() != count) {
      throw std::runtime_error("topk codec: reference size mismatch");
    }
    if (!residual.empty() && residual.size() != count) {
      throw std::runtime_error("topk codec: residual size mismatch");
    }
    corrected_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      float c = values[i];
      if (!reference.empty()) c -= reference[i];
      if (!residual.empty()) c += residual[i];
      corrected_[i] = c;
    }
    const std::size_t k = k_for(count);
    selected_.resize(count);
    std::iota(selected_.begin(), selected_.end(), std::uint32_t{0});
    std::partial_sort(selected_.begin(), selected_.begin() + static_cast<std::ptrdiff_t>(k),
                      selected_.end(), [&](std::uint32_t a, std::uint32_t b) {
                        const float fa = std::fabs(corrected_[a]);
                        const float fb = std::fabs(corrected_[b]);
                        if (fa != fb) return fa > fb;
                        return a < b;
                      });
    selected_.resize(k);
    std::sort(selected_.begin(), selected_.end());

    out.bytes.clear();
    out.bytes.reserve(4 + 8 * k);
    wire::put_u32(out.bytes, static_cast<std::uint32_t>(k));
    for (const std::uint32_t idx : selected_) wire::put_u32(out.bytes, idx);
    for (const std::uint32_t idx : selected_) {
      wire::put_f32(out.bytes, corrected_[idx]);
    }

    if (!residual.empty()) {
      std::copy(corrected_.begin(), corrected_.end(), residual.begin());
      for (const std::uint32_t idx : selected_) residual[idx] = 0.0f;
    }
  }

  void decode(const Encoded& in, std::size_t count,
              std::span<const float> reference,
              std::vector<float>& out) const override {
    if (in.bytes.size() < 4) {
      throw std::runtime_error("topk codec: truncated payload");
    }
    const std::uint32_t k = wire::get_u32(in.bytes.data());
    if (in.bytes.size() != 4 + 8 * static_cast<std::size_t>(k) || k > count) {
      throw std::runtime_error("topk codec: payload size mismatch");
    }
    if (!reference.empty() && reference.size() != count) {
      throw std::runtime_error("topk codec: reference size mismatch");
    }
    if (reference.empty()) {
      out.assign(count, 0.0f);
    } else {
      out.assign(reference.begin(), reference.end());
    }
    const std::uint8_t* indices = in.bytes.data() + 4;
    const std::uint8_t* payload = indices + 4 * static_cast<std::size_t>(k);
    for (std::uint32_t j = 0; j < k; ++j) {
      const std::uint32_t idx = wire::get_u32(indices + 4 * j);
      if (idx >= count) {
        throw std::runtime_error("topk codec: index out of range");
      }
      out[idx] += wire::get_f32(payload + 4 * j);
    }
  }

 private:
  double density_;
  // Scratch (encode is only ever called from the engine's coordinator
  // thread; codecs are not shared across threads).
  mutable std::vector<float> corrected_;
  mutable std::vector<std::uint32_t> selected_;
};

}  // namespace

std::unique_ptr<Codec> make_topk_codec(double density) {
  return std::make_unique<TopKCodec>(density);
}

}  // namespace mach::comm::detail
