#include "comm/ledger.h"

namespace mach::comm {

std::uint64_t ByteLedger::total_bytes() const noexcept {
  return device_download.bytes + device_upload.bytes + probe_download.bytes +
         edge_upload.bytes + cloud_broadcast.bytes;
}

std::uint64_t ByteLedger::total_messages() const noexcept {
  return device_download.messages + device_upload.messages +
         probe_download.messages + edge_upload.messages +
         cloud_broadcast.messages;
}

std::uint64_t ByteLedger::device_link_bytes() const noexcept {
  return device_download.bytes + device_upload.bytes + probe_download.bytes;
}

bool ByteLedger::empty() const noexcept {
  return total_messages() == 0 && retry_upload.messages == 0;
}

ByteLedger& ByteLedger::operator+=(const ByteLedger& other) noexcept {
  device_download += other.device_download;
  device_upload += other.device_upload;
  retry_upload += other.retry_upload;
  probe_download += other.probe_download;
  edge_upload += other.edge_upload;
  cloud_broadcast += other.cloud_broadcast;
  return *this;
}

}  // namespace mach::comm
