// Per-link codec selection for the hierarchical network (--codec flag).
//
// Spec grammar (comma-separated clauses):
//   <codec>                      one codec for every link
//   <link>=<codec>[,...]         per-link overrides (unnamed links stay fp32)
// where <codec> is CodecSpec grammar (fp32|bf16|int8|topk[:k=<density>]) and
// <link> is one of:
//   up         device -> edge model uploads
//   down       edge -> device model downloads
//   probe      oracle probe downloads (MACH-P)
//   edge_up    edge -> cloud uploads
//   cloud_down cloud -> edge broadcasts
// Examples:
//   --codec int8
//   --codec topk:k=0.05
//   --codec up=topk:k=0.01,down=bf16
//   --codec up=int8,edge_up=int8,cloud_down=bf16
#pragma once

#include <string>
#include <string_view>

#include "comm/codec.h"

namespace mach::comm {

struct CommConfig {
  CodecSpec device_up;    // device -> edge uploads
  CodecSpec device_down;  // edge -> device downloads
  CodecSpec probe;        // oracle probe downloads
  CodecSpec edge_up;      // edge -> cloud uploads
  CodecSpec cloud_down;   // cloud -> edge broadcasts

  /// True when every link is the lossless fp32 identity (the default): the
  /// engine takes the exact pre-codec model path and only the byte ledger
  /// (integer arithmetic) runs.
  bool all_fp32() const noexcept;

  /// Parses the --codec spec grammar (see file comment); throws
  /// std::invalid_argument naming the offending clause.
  static CommConfig parse(std::string_view spec);

  /// Canonical spec string: the single codec name when all links agree,
  /// otherwise the full per-link list. parse(to_string()) round-trips, and
  /// this string is what run fingerprints and traces record.
  std::string to_string() const;

  friend bool operator==(const CommConfig&, const CommConfig&) = default;
};

}  // namespace mach::comm
