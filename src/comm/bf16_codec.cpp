// bf16: truncation to bfloat16 — keep the sign, the full 8-bit exponent and
// the top 7 mantissa bits; drop the low 16 bits of the fp32 pattern. This is
// the classic bitfield-union idiom (a union over {float; struct {unsigned
// truncated_mantissa:16; mantissa:7; exponent:8; sign:1;}}) expressed with
// bit_cast shifts so it is endianness-explicit and UBSan-clean.
//
// Truncation (round toward zero on the mantissa) rather than
// round-to-nearest: the decoded value is always the fp32 input with its low
// mantissa bits cleared, so re-encoding a decoded tensor is exact
// (idempotent) and the error bound is one-sided. For normal values
// |x - decode(encode(x))| < 2^-7 · |x|; subnormals truncate toward zero with
// absolute error below the smallest normal (~1.2e-38).
#include <bit>
#include <cstdint>
#include <stdexcept>

#include "comm/codec_impl.h"
#include "comm/wire.h"

namespace mach::comm::detail {
namespace {

class Bf16Codec final : public Codec {
 public:
  CodecKind kind() const noexcept override { return CodecKind::Bf16; }
  std::string to_string() const override { return "bf16"; }

  std::size_t encoded_bytes(std::size_t count) const noexcept override {
    return count * 2;
  }

  void encode(std::span<const float> values, std::span<const float> /*reference*/,
              std::span<float> /*residual*/, Encoded& out) const override {
    out.bytes.clear();
    out.bytes.reserve(values.size() * 2);
    for (const float v : values) {
      const auto bits = std::bit_cast<std::uint32_t>(v);
      wire::put_u16(out.bytes, static_cast<std::uint16_t>(bits >> 16));
    }
  }

  void decode(const Encoded& in, std::size_t count,
              std::span<const float> /*reference*/,
              std::vector<float>& out) const override {
    if (in.bytes.size() != count * 2) {
      throw std::runtime_error("bf16 codec: payload size mismatch");
    }
    out.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t hi = wire::get_u16(in.bytes.data() + i * 2);
      out[i] = std::bit_cast<float>(hi << 16);
    }
  }
};

}  // namespace

std::unique_ptr<Codec> make_bf16_codec() { return std::make_unique<Bf16Codec>(); }

}  // namespace mach::comm::detail
