#include "comm/config.h"

#include <stdexcept>
#include <vector>

namespace mach::comm {

namespace {

/// A clause is a per-link override when its first '=' precedes any ':' —
/// "up=topk:k=0.05" is link form, "topk:k=0.05" is a bare codec.
bool is_link_clause(std::string_view clause) {
  const auto eq = clause.find('=');
  if (eq == std::string_view::npos) return false;
  const auto colon = clause.find(':');
  return colon == std::string_view::npos || eq < colon;
}

}  // namespace

bool CommConfig::all_fp32() const noexcept {
  return device_up.kind == CodecKind::Fp32 &&
         device_down.kind == CodecKind::Fp32 &&
         probe.kind == CodecKind::Fp32 && edge_up.kind == CodecKind::Fp32 &&
         cloud_down.kind == CodecKind::Fp32;
}

CommConfig CommConfig::parse(std::string_view spec) {
  CommConfig config;
  if (spec.empty()) {
    throw std::invalid_argument("codec: empty spec");
  }
  std::vector<std::string_view> clauses;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const auto end = comma == std::string_view::npos ? spec.size() : comma;
    clauses.push_back(spec.substr(start, end - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  const bool per_link = is_link_clause(clauses.front());
  if (!per_link) {
    if (clauses.size() != 1) {
      throw std::invalid_argument(
          "codec: a uniform spec takes a single codec; use link=codec clauses "
          "to mix ('" + std::string(spec) + "')");
    }
    const CodecSpec codec = CodecSpec::parse(clauses.front());
    config.device_up = codec;
    config.device_down = codec;
    config.probe = codec;
    config.edge_up = codec;
    config.cloud_down = codec;
    return config;
  }
  bool seen[5] = {};
  for (const std::string_view clause : clauses) {
    if (!is_link_clause(clause)) {
      throw std::invalid_argument("codec: expected link=codec, got '" +
                                  std::string(clause) + "'");
    }
    const auto eq = clause.find('=');
    const std::string_view link = clause.substr(0, eq);
    const std::string_view codec_text = clause.substr(eq + 1);
    const CodecSpec codec = CodecSpec::parse(codec_text);
    std::size_t slot;
    if (link == "up") {
      config.device_up = codec;
      slot = 0;
    } else if (link == "down") {
      config.device_down = codec;
      slot = 1;
    } else if (link == "probe") {
      config.probe = codec;
      slot = 2;
    } else if (link == "edge_up") {
      config.edge_up = codec;
      slot = 3;
    } else if (link == "cloud_down") {
      config.cloud_down = codec;
      slot = 4;
    } else {
      throw std::invalid_argument(
          "codec: unknown link '" + std::string(link) +
          "' (expected up|down|probe|edge_up|cloud_down)");
    }
    if (seen[slot]) {
      throw std::invalid_argument("codec: duplicate link '" +
                                  std::string(link) + "'");
    }
    seen[slot] = true;
  }
  return config;
}

std::string CommConfig::to_string() const {
  if (device_up == device_down && device_up == probe && device_up == edge_up &&
      device_up == cloud_down) {
    return device_up.to_string();
  }
  std::string out;
  const CodecSpec fp32;
  const auto append = [&](const char* link, const CodecSpec& codec) {
    if (codec == fp32) return;  // unnamed links default to fp32 on parse
    if (!out.empty()) out += ',';
    out += link;
    out += '=';
    out += codec.to_string();
  };
  append("up", device_up);
  append("down", device_down);
  append("probe", probe);
  append("edge_up", edge_up);
  append("cloud_down", cloud_down);
  return out.empty() ? "fp32" : out;
}

}  // namespace mach::comm
