// Encoded-byte ledger: what the simulated network actually moved, per link.
//
// CommunicationCost's message counters say how many model messages crossed
// each link; the ledger says how many *bytes* those messages were after the
// link's codec ran — the quantity the paper's channel-budget framing (Eq.
// 3–4) actually constrains. The engine charges every message at the codec's
// encoded size, including messages whose payload never arrived (dropped
// uploads consumed no bytes because the device vanished before transmitting,
// but straggler retransmissions pay the full encoded payload per attempt).
//
// Codec wire sizes are value-independent (Codec::encoded_bytes), so the
// ledger is pure integer arithmetic: maintaining it never touches the model
// path, which is what keeps the all-fp32 default bitwise identical to a run
// without the comm layer.
#pragma once

#include <cstdint>

namespace mach::comm {

/// Message/byte counters of one directed link class.
struct LinkTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  /// Charges `count` messages of `bytes_per_message` encoded bytes each.
  void add(std::uint64_t count, std::uint64_t bytes_per_message) noexcept {
    messages += count;
    bytes += count * bytes_per_message;
  }

  LinkTraffic& operator+=(const LinkTraffic& other) noexcept {
    messages += other.messages;
    bytes += other.bytes;
    return *this;
  }

  friend bool operator==(const LinkTraffic&, const LinkTraffic&) = default;
};

struct ByteLedger {
  LinkTraffic device_download;   // edge model -> device (Eq. 4's start)
  LinkTraffic device_upload;     // trained model -> edge (incl. retries)
  /// Straggler retransmissions (fault layer). These bytes are already part
  /// of device_upload — this tracks the redundant share, mirroring
  /// CommunicationCost::retry_uploads.
  LinkTraffic retry_upload;
  LinkTraffic probe_download;    // oracle probes (MACH-P)
  LinkTraffic edge_upload;       // edge model -> cloud
  LinkTraffic cloud_broadcast;   // global model -> edge

  /// Total unique bytes moved (retry_upload excluded: already counted in
  /// device_upload).
  std::uint64_t total_bytes() const noexcept;
  std::uint64_t total_messages() const noexcept;
  /// Device<->edge bytes only (the per-edge channel-budget view).
  std::uint64_t device_link_bytes() const noexcept;
  /// True when no traffic has been recorded (e.g. a hand-built
  /// CommunicationCost that never went through the engine).
  bool empty() const noexcept;

  ByteLedger& operator+=(const ByteLedger& other) noexcept;

  friend bool operator==(const ByteLedger&, const ByteLedger&) = default;
};

}  // namespace mach::comm
