// fp32: identity serialisation. The wire carries each parameter's exact IEEE
// bit pattern (little-endian), so decode(encode(x)) == x bitwise — including
// -0.0, denormals and NaN payloads — which is what keeps an all-fp32 run
// bitwise identical to a run without the comm layer.
#include <stdexcept>

#include "comm/codec_impl.h"
#include "comm/wire.h"

namespace mach::comm::detail {
namespace {

class Fp32Codec final : public Codec {
 public:
  CodecKind kind() const noexcept override { return CodecKind::Fp32; }
  std::string to_string() const override { return "fp32"; }
  bool lossless() const noexcept override { return true; }

  std::size_t encoded_bytes(std::size_t count) const noexcept override {
    return count * 4;
  }

  void encode(std::span<const float> values, std::span<const float> /*reference*/,
              std::span<float> /*residual*/, Encoded& out) const override {
    out.bytes.clear();
    out.bytes.reserve(values.size() * 4);
    for (const float v : values) wire::put_f32(out.bytes, v);
  }

  void decode(const Encoded& in, std::size_t count,
              std::span<const float> /*reference*/,
              std::vector<float>& out) const override {
    if (in.bytes.size() != count * 4) {
      throw std::runtime_error("fp32 codec: payload size mismatch");
    }
    out.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = wire::get_f32(in.bytes.data() + i * 4);
    }
  }
};

}  // namespace

std::unique_ptr<Codec> make_fp32_codec() { return std::make_unique<Fp32Codec>(); }

}  // namespace mach::comm::detail
