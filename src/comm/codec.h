// Pluggable transfer codecs for model messages on the hierarchical network.
//
// The paper frames device sampling as minimising convergence error under
// per-edge channel budgets (Eq. 3–4); what actually crosses those channels is
// a model per message. A Codec defines how a flat float32 parameter vector is
// serialised onto the wire and reconstructed on the other side, so the
// simulator can (a) charge the ByteLedger the *encoded* size instead of
// assuming 4 bytes per parameter, and (b) feed the receiver the *decoded*
// (lossy) tensor so accuracy-vs-bytes tradeoffs are real, not estimated.
//
// Four implementations:
//   * fp32 — identity serialisation. Lossless and bit-exact: a run whose
//     links are all fp32 is bitwise identical to a run without the comm
//     layer.
//   * bf16 — truncation to bfloat16 (keep sign, exponent and the top 7
//     mantissa bits; the classic bitfield-union idiom, done with bit_cast).
//     Relative error ≤ 2^-7 for normal values; 2 bytes/parameter.
//   * int8 — per-tensor symmetric quantisation: scale = max|x| / 127,
//     q = round(x/scale) clamped to [-127, 127]. Absolute error ≤ scale/2;
//     4 + 1·count bytes.
//   * topk — sparsified *delta* transfer with error-feedback residuals:
//     encodes the k = ceil(density·count) largest-magnitude entries of
//     (value − reference) + residual, banks what it did not send back into
//     the residual, and the receiver applies the sparse delta on top of the
//     shared reference. 4 + 8·k bytes. With a null residual the codec is
//     memoryless (plain top-k); with an empty reference it sparsifies the
//     raw values (magnitude compression — the download/broadcast semantic).
//
// Codec objects are immutable and shareable; all mutable state (the
// error-feedback residual) is caller-owned, which is what lets the engine
// checkpoint it per device.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mach::comm {

enum class CodecKind : std::uint8_t { Fp32, Bf16, Int8, TopK };

/// Parsed codec selector: a kind plus its parameters. Spec grammar:
///   "fp32" | "bf16" | "int8" | "topk" | "topk:k=<density in (0,1]>"
struct CodecSpec {
  CodecKind kind = CodecKind::Fp32;
  /// TopK only: fraction of entries transmitted per message.
  double topk_density = 0.01;

  /// Parses one codec spec clause; throws std::invalid_argument with the
  /// offending text on errors.
  static CodecSpec parse(std::string_view text);
  /// Canonical spec string (parse(to_string()) round-trips).
  std::string to_string() const;

  friend bool operator==(const CodecSpec&, const CodecSpec&) = default;
};

/// One encoded message payload (reused across calls to avoid allocation).
struct Encoded {
  std::vector<std::uint8_t> bytes;
};

class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecKind kind() const noexcept = 0;
  /// Canonical spec string of this instance (e.g. "topk:k=0.05").
  virtual std::string to_string() const = 0;
  /// decode(encode(x)) == x bitwise for every finite x.
  virtual bool lossless() const noexcept { return false; }
  /// Encodes a delta against a shared reference tensor (TopK); the engine
  /// must hand both endpoints the same reference.
  virtual bool is_delta() const noexcept { return false; }
  /// Carries per-sender error-feedback state between messages (TopK); the
  /// engine owns, threads through, and checkpoints the residual vector.
  virtual bool stateful() const noexcept { return false; }

  /// Exact wire size in bytes of one encoded message of `count` parameters.
  /// Size-deterministic: depends only on `count`, never on the values (this
  /// is what lets the ledger charge lost/retried messages it never encoded).
  virtual std::size_t encoded_bytes(std::size_t count) const noexcept = 0;

  /// Serialises `values` into `out.bytes` (cleared first; exactly
  /// encoded_bytes(values.size()) bytes afterwards).
  ///   * `reference`: shared reference tensor for delta codecs — empty means
  ///     all-zeros (non-delta codecs ignore it entirely).
  ///   * `residual`: error-feedback state for stateful codecs — a caller-
  ///     owned span of exactly values.size() floats (zero-filled before the
  ///     first use), updated in place. Caller ownership is what lets the
  ///     engine pack per-device residuals into one contiguous pooled slab
  ///     (hfl::ResidualPool) instead of a vector per device. Stateless
  ///     codecs ignore it; pass an empty span for memoryless encoding.
  virtual void encode(std::span<const float> values,
                      std::span<const float> reference,
                      std::span<float> residual, Encoded& out) const = 0;

  /// Reconstructs `count` parameters from a payload into `out` (resized).
  /// `reference` must match the encoder's. Throws std::runtime_error on a
  /// malformed payload.
  virtual void decode(const Encoded& in, std::size_t count,
                      std::span<const float> reference,
                      std::vector<float>& out) const = 0;
};

/// Builds the codec for a spec; throws std::invalid_argument on out-of-range
/// parameters (e.g. topk density outside (0, 1]).
std::unique_ptr<Codec> make_codec(const CodecSpec& spec);

/// Human-readable kind name ("fp32", "bf16", "int8", "topk").
std::string_view codec_kind_name(CodecKind kind) noexcept;

}  // namespace mach::comm
