// Append-only, crash-safe sweep journal — the orchestrator's source of
// truth for "which configs already ran, and how did each attempt end".
//
// On disk: an 8-byte magic header ("MACHSWJ\x01") followed by CRC-framed
// records, each `u32 payload_len | u32 crc32(payload) | payload`, payload
// being a ckpt::ByteWriter blob. Every append is a single write(2) followed
// by fsync, so a record is either fully durable or part of a torn tail; on
// open, replay stops at the first frame that is short, CRC-corrupt or
// undecodable, and the valid prefix is rewritten through the standard
// temp + fsync + rename dance (the same discipline as checkpoint files) so
// the next append lands on a clean end-of-file.
//
// Replay folds records into one PointState per config fingerprint. Records
// also carry the full canonical config string, so a restarted sweep can
// detect the (astronomically unlikely, but silent-corruption-grade) case of
// two different configs sharing a fingerprint.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mach::sweep {

enum class RecordKind : std::uint8_t {
  AttemptFailed = 1,  // one attempt ended without completing the run
  Done = 2,           // the config ran to completion (exactly once, forever)
  Quarantined = 3,    // gave up after max_attempts failures
};

/// One journal record. Attempt fields are meaningful for AttemptFailed and
/// are written as zeros for Done/Quarantined.
struct JournalRecord {
  RecordKind kind = RecordKind::AttemptFailed;
  std::string fingerprint;
  std::string canonical;
  std::uint32_t attempt = 0;    // 1-based attempt number that failed
  std::int32_t exit_code = -1;  // -1 when the attempt died from a signal
  std::int32_t term_signal = 0; // 0 when the attempt exited normally
  std::string reason;           // human-readable classification
};

struct FailureEvent {
  std::uint32_t attempt = 0;
  std::int32_t exit_code = -1;
  std::int32_t term_signal = 0;
  std::string reason;
};

/// Folded per-config state after replay.
struct PointState {
  std::string canonical;
  bool done = false;
  bool quarantined = false;
  std::vector<FailureEvent> failures;
};

class SweepJournal {
 public:
  /// Opens (creating if absent) the journal at `path`, replays it, repairs
  /// a torn tail if one is found, and leaves the file open for appends.
  /// Throws std::runtime_error for I/O failures or a foreign/bad-magic file.
  explicit SweepJournal(std::string path);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Appends one record and fsyncs. The in-memory state folds it in too.
  void append(const JournalRecord& record);

  const std::map<std::string, PointState>& states() const noexcept {
    return states_;
  }
  const std::vector<JournalRecord>& records() const noexcept {
    return records_;
  }
  /// Bytes dropped from a torn tail during open (0 for a clean file).
  std::size_t repaired_bytes() const noexcept { return repaired_bytes_; }
  const std::string& path() const noexcept { return path_; }

 private:
  void fold(const JournalRecord& record);

  std::string path_;
  int fd_ = -1;
  std::size_t repaired_bytes_ = 0;
  std::vector<JournalRecord> records_;
  std::map<std::string, PointState> states_;
};

}  // namespace mach::sweep
