#include "sweep/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "ckpt/bytes.h"
#include "ckpt/crc32.h"
#include "common/log.h"

namespace mach::sweep {

namespace {

constexpr std::uint8_t kMagic[8] = {'M', 'A', 'C', 'H', 'S', 'W', 'J', 0x01};
constexpr std::size_t kFrameHeader = 4 + 4;  // payload length + CRC
// A journal record is a few hundred bytes; anything claiming more is a
// corrupt length field, not a record.
constexpr std::uint32_t kMaxPayload = 1u << 20;

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  const int err = errno;
  throw std::runtime_error(what + " " + path + ": " + std::strerror(err));
}

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("sweep journal: cannot write", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_dir_of(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort, matching ckpt/file.cpp
  ::fsync(fd);
  ::close(fd);
}

std::vector<std::uint8_t> encode(const JournalRecord& record) {
  ckpt::ByteWriter payload;
  payload.u8(static_cast<std::uint8_t>(record.kind));
  payload.str(record.fingerprint);
  payload.str(record.canonical);
  payload.u32(record.attempt);
  payload.u32(static_cast<std::uint32_t>(record.exit_code));
  payload.u32(static_cast<std::uint32_t>(record.term_signal));
  payload.str(record.reason);
  return payload.data();
}

/// Decodes one payload; throws ckpt::CorruptPayload on structural damage.
JournalRecord decode(std::span<const std::uint8_t> payload) {
  ckpt::ByteReader reader(payload);
  JournalRecord record;
  const std::uint8_t kind = reader.u8();
  if (kind < 1 || kind > 3) {
    throw ckpt::CorruptPayload("sweep journal: unknown record kind");
  }
  record.kind = static_cast<RecordKind>(kind);
  record.fingerprint = reader.str();
  record.canonical = reader.str();
  record.attempt = reader.u32();
  record.exit_code = static_cast<std::int32_t>(reader.u32());
  record.term_signal = static_cast<std::int32_t>(reader.u32());
  record.reason = reader.str();
  if (!reader.at_end()) {
    throw ckpt::CorruptPayload("sweep journal: trailing bytes in record");
  }
  return record;
}

}  // namespace

SweepJournal::SweepJournal(std::string path) : path_(std::move(path)) {
  std::vector<std::uint8_t> raw;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      raw.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    }
  }

  std::size_t valid = 0;
  if (raw.empty()) {
    // Fresh journal (or debris of a crash before the header write landed):
    // start over with just the magic.
  } else if (raw.size() < sizeof(kMagic) ||
             std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    if (raw.size() >= sizeof(kMagic)) {
      throw std::runtime_error("sweep journal: " + path_ +
                               " exists but is not a mach sweep journal "
                               "(bad magic) — refusing to overwrite it");
    }
    // A torn header is crash debris, not a foreign file.
  } else {
    valid = sizeof(kMagic);
    while (valid + kFrameHeader <= raw.size()) {
      std::uint32_t length = 0;
      std::uint32_t crc = 0;
      for (int i = 0; i < 4; ++i) {
        length |= static_cast<std::uint32_t>(raw[valid + i]) << (8 * i);
        crc |= static_cast<std::uint32_t>(raw[valid + 4 + i]) << (8 * i);
      }
      if (length > kMaxPayload) break;
      if (valid + kFrameHeader + length > raw.size()) break;
      const std::span<const std::uint8_t> payload(
          raw.data() + valid + kFrameHeader, length);
      if (ckpt::crc32(payload) != crc) break;
      try {
        JournalRecord record = decode(payload);
        fold(record);
        records_.push_back(std::move(record));
      } catch (const ckpt::CorruptPayload&) {
        break;
      }
      valid += kFrameHeader + length;
    }
  }

  if (valid != raw.size() || raw.empty()) {
    // Torn tail (or empty/headerless file): rewrite the valid prefix
    // atomically so the append fd starts at a clean record boundary.
    repaired_bytes_ = raw.size() - valid;
    if (repaired_bytes_ > 0 && valid > 0) {
      common::log_warn("sweep journal: dropping ", repaired_bytes_,
                       " torn tail byte(s) from ", path_);
    }
    const std::string tmp = path_ + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw_errno("sweep journal: cannot create", tmp);
    try {
      if (valid == 0) {
        write_all(fd, kMagic, sizeof(kMagic), tmp);
      } else {
        write_all(fd, raw.data(), valid, tmp);
      }
      if (::fsync(fd) != 0) throw_errno("sweep journal: fsync failed for", tmp);
    } catch (...) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      ::unlink(tmp.c_str());
      throw_errno("sweep journal: rename failed for", path_);
    }
    fsync_dir_of(path_);
  }

  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) throw_errno("sweep journal: cannot open for append", path_);
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SweepJournal::append(const JournalRecord& record) {
  const std::vector<std::uint8_t> payload = encode(record);
  ckpt::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(ckpt::crc32(payload));
  std::vector<std::uint8_t> bytes = frame.data();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  // One write, one fsync: either the whole frame is durable or replay drops
  // it as a torn tail — never a half-applied state transition.
  write_all(fd_, bytes.data(), bytes.size(), path_);
  if (::fsync(fd_) != 0) throw_errno("sweep journal: fsync failed for", path_);
  fold(record);
  records_.push_back(record);
}

void SweepJournal::fold(const JournalRecord& record) {
  PointState& state = states_[record.fingerprint];
  if (state.canonical.empty()) state.canonical = record.canonical;
  switch (record.kind) {
    case RecordKind::AttemptFailed:
      state.failures.push_back({record.attempt, record.exit_code,
                                record.term_signal, record.reason});
      break;
    case RecordKind::Done:
      state.done = true;
      break;
    case RecordKind::Quarantined:
      state.quarantined = true;
      break;
  }
}

}  // namespace mach::sweep
