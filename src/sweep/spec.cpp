#include "sweep/spec.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace mach::sweep {

namespace {

// Flags the orchestrator injects itself; a spec must not fight over them.
constexpr const char* kReservedKeys[] = {
    "status", "trace", "csv", "profile", "checkpoint_dir",
    "checkpoint_every", "checkpoint_keep", "resume", "help",
};

// Expansion ceilings: `max_points` defaults low enough that a fat-fingered
// grid fails fast, and even an explicit override cannot exceed the hard cap
// (a 100k-process sweep is a typo, not a plan).
constexpr std::size_t kDefaultMaxPoints = 4096;
constexpr std::size_t kHardCapPoints = 100000;

bool valid_key(std::string_view key) {
  if (key.empty() || key.size() > 64) return false;
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return (key[0] < '0' || key[0] > '9');
}

void check_key(const std::string& key, const char* where) {
  if (!valid_key(key)) {
    throw SpecError(std::string(where) + ": invalid flag name \"" + key +
                    "\" (want [A-Za-z_][A-Za-z0-9_]*)");
  }
  for (const char* reserved : kReservedKeys) {
    if (key == reserved) {
      throw SpecError(std::string(where) + ": \"" + key +
                      "\" is reserved — the orchestrator sets it per run");
    }
  }
}

/// Renders a scalar JSON value the way it must appear in `--key=value`.
/// Integer-valued numbers print without a fraction so `"seed": 3` and the
/// runner's echo of it fingerprint identically.
std::string render_scalar(const obs::JsonValue& value, const std::string& key,
                          const char* where) {
  switch (value.kind()) {
    case obs::JsonValue::Kind::String: {
      const std::string& s = value.as_string();
      for (const char c : s) {
        if (c == '\n' || c == '\0') {
          throw SpecError(std::string(where) + ": value for \"" + key +
                          "\" contains a control character");
        }
      }
      return s;
    }
    case obs::JsonValue::Kind::Bool:
      return value.as_bool() ? "true" : "false";
    case obs::JsonValue::Kind::Number: {
      const double d = value.as_number();
      if (std::nearbyint(d) == d && std::fabs(d) < 9.0e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%lld",
                      static_cast<long long>(d));
        return buffer;
      }
      return obs::json_number(d);
    }
    default:
      throw SpecError(std::string(where) + ": value for \"" + key +
                      "\" must be a string, number or bool");
  }
}

const obs::JsonValue::Object& require_object(const obs::JsonValue& value,
                                             const char* where) {
  if (!value.is_object()) {
    throw SpecError(std::string(where) + ": expected a JSON object");
  }
  return value.as_object();
}

}  // namespace

std::string canonical_config(const ConfigMap& config) {
  std::string out;
  for (const auto& [key, value] : config) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

std::string fingerprint_config(std::string_view canonical) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : canonical) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

SweepSpec SweepSpec::parse(std::string_view json) {
  std::string error;
  obs::JsonParseOptions options;
  options.reject_duplicate_keys = true;
  const auto doc = obs::parse_json(json, &error, options);
  if (!doc) throw SpecError("sweep spec: " + error);
  const auto& root = require_object(*doc, "sweep spec");

  SweepSpec spec;
  std::size_t max_points = kDefaultMaxPoints;
  for (const auto& [key, value] : root) {
    if (key == "name") {
      if (!value.is_string() || value.as_string().empty()) {
        throw SpecError("sweep spec: \"name\" must be a non-empty string");
      }
      spec.name = value.as_string();
    } else if (key == "max_points") {
      if (!value.is_number() || value.as_number() < 1.0 ||
          std::nearbyint(value.as_number()) != value.as_number()) {
        throw SpecError("sweep spec: \"max_points\" must be a positive integer");
      }
      max_points = static_cast<std::size_t>(value.as_number());
      if (max_points > kHardCapPoints) {
        throw SpecError("sweep spec: \"max_points\" exceeds the hard cap of " +
                        std::to_string(kHardCapPoints));
      }
    } else if (key != "defaults" && key != "grid" && key != "points") {
      throw SpecError("sweep spec: unknown top-level key \"" + key + "\"");
    }
  }

  ConfigMap defaults;
  if (root.count("defaults") != 0) {
    for (const auto& [key, value] :
         require_object(root.at("defaults"), "defaults")) {
      check_key(key, "defaults");
      defaults[key] = render_scalar(value, key, "defaults");
    }
  }

  // Grid axes in sorted key order (JsonValue::Object is a std::map), each
  // axis pre-rendered; expansion is an odometer with the last axis fastest.
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
  std::size_t product = 1;
  if (root.count("grid") != 0) {
    for (const auto& [key, value] : require_object(root.at("grid"), "grid")) {
      check_key(key, "grid");
      if (!value.is_array()) {
        throw SpecError("grid: axis \"" + key + "\" must be an array");
      }
      std::vector<std::string> rendered;
      for (const auto& entry : value.as_array()) {
        rendered.push_back(render_scalar(entry, key, "grid"));
      }
      if (rendered.empty()) {
        throw SpecError("grid: axis \"" + key +
                        "\" is empty — it would erase the whole sweep");
      }
      if (product > max_points / rendered.size()) {
        throw SpecError("grid: cartesian product exceeds max_points=" +
                        std::to_string(max_points) +
                        " (raise \"max_points\" if the size is intentional)");
      }
      product *= rendered.size();
      axes.emplace_back(key, std::move(rendered));
    }
  }

  std::vector<ConfigMap> expanded;
  if (!axes.empty()) {
    std::vector<std::size_t> odometer(axes.size(), 0);
    while (true) {
      ConfigMap config = defaults;
      for (std::size_t i = 0; i < axes.size(); ++i) {
        config[axes[i].first] = axes[i].second[odometer[i]];
      }
      expanded.push_back(std::move(config));
      bool wrapped = false;
      std::size_t axis = axes.size();
      while (axis > 0) {
        --axis;
        if (++odometer[axis] < axes[axis].second.size()) break;
        odometer[axis] = 0;
        wrapped = (axis == 0);  // carried past the slowest axis: done
      }
      if (wrapped) break;
    }
  }

  if (root.count("points") != 0) {
    const auto& points = root.at("points");
    if (!points.is_array()) {
      throw SpecError("sweep spec: \"points\" must be an array of objects");
    }
    for (const auto& entry : points.as_array()) {
      ConfigMap config = defaults;
      for (const auto& [key, value] : require_object(entry, "points")) {
        check_key(key, "points");
        config[key] = render_scalar(value, key, "points");
      }
      expanded.push_back(std::move(config));
      if (expanded.size() > max_points) {
        throw SpecError("sweep spec: more than max_points=" +
                        std::to_string(max_points) + " points");
      }
    }
  }

  if (expanded.empty()) {
    throw SpecError("sweep spec: no points — provide \"grid\" and/or \"points\"");
  }

  // Dedupe by fingerprint, first occurrence wins, order preserved: a grid
  // axis overridden by an explicit point may collapse configs, and running
  // the same argv twice would break the exactly-once report contract.
  std::map<std::string, std::size_t> seen;
  for (auto& config : expanded) {
    SweepPoint point;
    point.canonical = canonical_config(config);
    point.fingerprint = fingerprint_config(point.canonical);
    point.config = std::move(config);
    if (seen.emplace(point.fingerprint, spec.points.size()).second) {
      spec.points.push_back(std::move(point));
    } else {
      ++spec.duplicates_dropped;
    }
  }
  return spec;
}

SweepSpec SweepSpec::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError("sweep spec: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace mach::sweep
