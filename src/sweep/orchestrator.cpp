#include "sweep/orchestrator.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/log.h"
#include "obs/heartbeat.h"
#include "obs/json.h"
#include "sweep/backoff.h"

namespace mach::sweep {

namespace fs = std::filesystem;

namespace {

// experiment_runner's exit-code contract (see its file comment).
constexpr int kRunnerOk = 0;
constexpr int kRunnerConfigError = 2;
constexpr int kRunnerDrained = 75;

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  const int err = errno;
  throw std::runtime_error(what + " " + path + ": " + std::strerror(err));
}

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("sweep: cannot create", tmp);
  std::size_t done = 0;
  while (done < content.size()) {
    const ssize_t n = ::write(fd, content.data() + done, content.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_errno("sweep: cannot write", tmp);
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("sweep: fsync/close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("sweep: rename failed for", path);
  }
  const std::string dir = fs::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

/// Accuracy metrics recovered from a completed run's curve.csv (header:
/// t,test_accuracy,test_loss,train_loss,participants,...).
struct CurveMetrics {
  bool valid = false;
  std::uint64_t last_step = 0;
  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
};

CurveMetrics read_curve(const std::string& csv_path) {
  CurveMetrics metrics;
  std::ifstream in(csv_path);
  if (!in) return metrics;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    const std::size_t first_comma = line.find(',');
    if (first_comma == std::string::npos) continue;
    const std::size_t second_comma = line.find(',', first_comma + 1);
    const std::string t_text = line.substr(0, first_comma);
    const std::string acc_text =
        line.substr(first_comma + 1, second_comma == std::string::npos
                                         ? std::string::npos
                                         : second_comma - first_comma - 1);
    char* end = nullptr;
    const double accuracy = std::strtod(acc_text.c_str(), &end);
    if (end == acc_text.c_str()) continue;
    metrics.last_step =
        static_cast<std::uint64_t>(std::strtoull(t_text.c_str(), nullptr, 10));
    metrics.final_accuracy = accuracy;
    if (!metrics.valid || accuracy > metrics.best_accuracy) {
      metrics.best_accuracy = accuracy;
    }
    metrics.valid = true;
  }
  return metrics;
}

struct RunPaths {
  std::string dir;
  std::string status;
  std::string csv;
  std::string trace;
  std::string snaps;
  std::string log;
};

RunPaths run_paths(const std::string& runs_dir, const std::string& fingerprint) {
  RunPaths paths;
  paths.dir = (fs::path(runs_dir) / fingerprint).string();
  paths.status = (fs::path(paths.dir) / "status.json").string();
  paths.csv = (fs::path(paths.dir) / "curve.csv").string();
  paths.trace = (fs::path(paths.dir) / "trace.jsonl").string();
  paths.snaps = (fs::path(paths.dir) / "snaps").string();
  paths.log = (fs::path(paths.dir) / "log.txt").string();
  return paths;
}

/// One queued attempt; `ready_at` implements backoff without ever blocking
/// the supervision loop.
struct PendingRun {
  std::size_t index = 0;
  double ready_at = 0.0;
};

struct RunningChild {
  pid_t pid = -1;
  std::size_t index = 0;
  std::uint32_t attempt = 1;
  obs::HeartbeatMonitor monitor{0.0};
  bool watchdog_killed = false;
  bool term_sent = false;
};

class Supervisor {
 public:
  Supervisor(const SweepSpec& spec, const OrchestratorOptions& options)
      : spec_(spec),
        options_(options),
        runs_dir_((fs::path(options.out_dir) / "runs").string()),
        journal_((fs::path(options.out_dir) / "journal.machswj").string()) {
    // Degenerate knobs would wedge the supervision loop, not fail it.
    if (options_.parallel == 0) options_.parallel = 1;
    if (options_.max_attempts == 0) options_.max_attempts = 1;
    if (options_.poll_seconds < 0.001) options_.poll_seconds = 0.001;
  }

  SweepResult run();

 private:
  void reconcile_journal();
  void spawn(std::size_t index, std::uint32_t attempt);
  void reap_and_classify();
  void run_watchdog(double now);
  void handle_exit(const RunningChild& child, int status);
  void record_failure(const RunningChild& child, int exit_code, int signal,
                      std::string reason);
  void record_done(const SweepPoint& point);
  std::uint32_t failures_of(const std::string& fingerprint) const;

  const SweepSpec& spec_;
  OrchestratorOptions options_;  // by value: ctor sanitises the knobs
  std::string runs_dir_;
  SweepJournal journal_;
  std::deque<PendingRun> queue_;
  std::vector<RunningChild> running_;
  bool draining_ = false;
  std::size_t ran_here_ = 0;
  std::size_t done_appends_ = 0;
};

std::uint32_t Supervisor::failures_of(const std::string& fingerprint) const {
  const auto it = journal_.states().find(fingerprint);
  return it == journal_.states().end()
             ? 0
             : static_cast<std::uint32_t>(it->second.failures.size());
}

void Supervisor::reconcile_journal() {
  if (journal_.repaired_bytes() > 0) {
    common::log_warn("sweep: journal tail repaired (",
                     journal_.repaired_bytes(), " byte(s) dropped)");
  }
  std::size_t resumed = 0;
  for (std::size_t i = 0; i < spec_.points.size(); ++i) {
    const SweepPoint& point = spec_.points[i];
    const auto it = journal_.states().find(point.fingerprint);
    if (it == journal_.states().end()) {
      queue_.push_back({i, 0.0});
      continue;
    }
    const PointState& state = it->second;
    if (state.canonical != point.canonical) {
      throw std::runtime_error(
          "sweep: fingerprint collision for " + point.fingerprint +
          " — journal has a different config under the same hash; use a "
          "fresh --out directory");
    }
    if (state.done || state.quarantined) continue;
    if (state.failures.size() >= options_.max_attempts) {
      // Crashed between the final AttemptFailed append and its Quarantined
      // record; finish the transition instead of granting bonus attempts.
      journal_.append({RecordKind::Quarantined, point.fingerprint,
                       point.canonical, 0, 0, 0, ""});
      continue;
    }
    ++resumed;
    queue_.push_back({i, 0.0});
  }
  if (resumed > 0) {
    common::log_info("sweep: resuming ", resumed,
                     " interrupted point(s) from the journal");
  }
}

void Supervisor::spawn(std::size_t index, std::uint32_t attempt) {
  const SweepPoint& point = spec_.points[index];
  const RunPaths paths = run_paths(runs_dir_, point.fingerprint);
  std::error_code ec;
  fs::create_directories(paths.snaps, ec);
  if (ec) {
    throw std::runtime_error("sweep: cannot create " + paths.snaps + ": " +
                             ec.message());
  }

  std::vector<std::string> argv_store;
  argv_store.push_back(options_.runner_binary);
  for (const auto& [key, value] : point.config) {
    argv_store.push_back("--" + key + "=" + value);
  }
  argv_store.push_back("--status=" + paths.status);
  argv_store.push_back("--csv=" + paths.csv);
  argv_store.push_back("--trace=" + paths.trace);
  argv_store.push_back("--checkpoint_dir=" + paths.snaps);
  argv_store.push_back("--checkpoint_every=" +
                       std::to_string(options_.checkpoint_every));
  argv_store.push_back("--checkpoint_keep=" +
                       std::to_string(options_.checkpoint_keep));
  // Always --resume: on attempt 1 the snaps dir is empty and this is a
  // no-op; on a retry it is exactly the self-healing property — continue
  // from the newest durable snapshot instead of redoing the run.
  argv_store.push_back("--resume");
  std::vector<char*> argv;
  for (auto& arg : argv_store) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const int log_fd =
      ::open(paths.log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  const pid_t parent = ::getpid();
  const double now = steady_seconds();
  const pid_t pid = ::fork();
  if (pid < 0) {
    if (log_fd >= 0) ::close(log_fd);
    RunningChild phantom;
    phantom.index = index;
    phantom.attempt = attempt;
    record_failure(phantom, -1, 0,
                   std::string("fork failed: ") + std::strerror(errno));
    return;
  }
  if (pid == 0) {
    // Child. Die with the orchestrator: a SIGKILLed supervisor must not
    // leave orphans mutating run directories that a restarted sweep then
    // races against.
#ifdef __linux__
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() != parent) _exit(125);  // parent died before prctl took
#else
    (void)parent;
#endif
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed; the parent classifies 127 as a failure
  }
  if (log_fd >= 0) ::close(log_fd);

  RunningChild child;
  child.pid = pid;
  child.index = index;
  child.attempt = attempt;
  child.monitor = obs::HeartbeatMonitor(now);
  running_.push_back(child);
  common::log_info("sweep: [", point.fingerprint, "] attempt ", attempt,
                   " started (pid ", static_cast<std::int64_t>(pid), ")");
}

void Supervisor::record_done(const SweepPoint& point) {
  journal_.append(
      {RecordKind::Done, point.fingerprint, point.canonical, 0, 0, 0, ""});
  ++ran_here_;
  ++done_appends_;
  common::log_info("sweep: [", point.fingerprint, "] done");
  if (options_.kill_after_points > 0 &&
      done_appends_ >= options_.kill_after_points) {
    // Crash harness: the Done record above is already durable, so a rerun
    // must treat this point as finished. SIGKILL skips every destructor —
    // exactly the failure the journal is designed to survive.
    common::log_warn("sweep: harness SIGKILL after ", done_appends_,
                     " completed point(s)");
    ::raise(SIGKILL);
  }
}

void Supervisor::record_failure(const RunningChild& child, int exit_code,
                                int signal, std::string reason) {
  const SweepPoint& point = spec_.points[child.index];
  journal_.append({RecordKind::AttemptFailed, point.fingerprint,
                   point.canonical, child.attempt,
                   static_cast<std::int32_t>(exit_code),
                   static_cast<std::int32_t>(signal), reason});
  const std::uint32_t failures = failures_of(point.fingerprint);
  const bool non_retryable = exit_code == kRunnerConfigError;
  common::log_warn("sweep: [", point.fingerprint, "] attempt ", child.attempt,
                   " failed — ", reason);
  if (non_retryable || failures >= options_.max_attempts) {
    journal_.append({RecordKind::Quarantined, point.fingerprint,
                     point.canonical, 0, 0, 0, ""});
    common::log_warn("sweep: [", point.fingerprint, "] quarantined after ",
                     failures, " failure(s)");
    return;
  }
  if (draining_) {
    // The retry belongs to the next invocation; the journal already has
    // everything it needs.
    return;
  }
  const double delay = backoff_delay_seconds(
      options_.backoff_base_seconds, options_.backoff_cap_seconds, failures,
      point.fingerprint);
  queue_.push_back({child.index, steady_seconds() + delay});
}

void Supervisor::handle_exit(const RunningChild& child, int status) {
  const SweepPoint& point = spec_.points[child.index];
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kRunnerOk) {
      record_done(point);
      return;
    }
    if (code == kRunnerDrained) {
      if (draining_) {
        // The child checkpointed and bowed out on our SIGTERM; the point
        // stays pending for the next invocation. Not a failure.
        common::log_info("sweep: [", point.fingerprint,
                         "] drained with a resumable snapshot");
        return;
      }
      record_failure(child, code, 0, "drained by an external signal");
      return;
    }
    if (code == kRunnerConfigError) {
      record_failure(child, code, 0, "non-retryable configuration error");
      return;
    }
    record_failure(child, code, 0, "exit code " + std::to_string(code));
    return;
  }
  const int signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
  if (child.watchdog_killed) {
    record_failure(child, -1, signal, "watchdog: heartbeat made no progress");
    return;
  }
  record_failure(child, -1, signal,
                 "killed by signal " + std::to_string(signal));
}

void Supervisor::reap_and_classify() {
  for (auto it = running_.begin(); it != running_.end();) {
    int status = 0;
    const pid_t reaped = ::waitpid(it->pid, &status, WNOHANG);
    if (reaped == it->pid) {
      const RunningChild child = *it;
      it = running_.erase(it);
      handle_exit(child, status);
    } else {
      ++it;
    }
  }
}

void Supervisor::run_watchdog(double now) {
  for (auto& child : running_) {
    if (child.watchdog_killed) continue;
    const RunPaths paths =
        run_paths(runs_dir_, spec_.points[child.index].fingerprint);
    const auto heartbeat = obs::read_heartbeat(paths.status);
    const double stale = child.monitor.observe(heartbeat, now);
    if (stale >= options_.watchdog_seconds) {
      common::log_warn("sweep: [", spec_.points[child.index].fingerprint,
                       "] watchdog: no heartbeat progress, killing pid ",
                       static_cast<std::int64_t>(child.pid));
      ::kill(child.pid, SIGKILL);
      child.watchdog_killed = true;
    }
  }
}

SweepResult Supervisor::run() {
  reconcile_journal();

  while (!queue_.empty() || !running_.empty()) {
    if (!draining_ && options_.drain_flag != nullptr &&
        *options_.drain_flag != 0) {
      draining_ = true;
      common::log_warn("sweep: drain requested — no new launches, asking ",
                       running_.size(), " child(ren) to checkpoint and exit");
      for (auto& child : running_) {
        if (!child.term_sent) {
          ::kill(child.pid, SIGTERM);
          child.term_sent = true;
        }
      }
    }

    if (draining_ && running_.empty()) break;

    const double now = steady_seconds();
    while (!draining_ && running_.size() < options_.parallel) {
      auto ready = queue_.end();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->ready_at <= now) {
          ready = it;
          break;
        }
      }
      if (ready == queue_.end()) break;
      const std::size_t index = ready->index;
      queue_.erase(ready);
      spawn(index, failures_of(spec_.points[index].fingerprint) + 1);
    }

    reap_and_classify();
    run_watchdog(steady_seconds());

    if (!queue_.empty() || !running_.empty()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.poll_seconds));
    }
  }

  SweepResult result;
  result.total = spec_.points.size();
  result.ran_here = ran_here_;
  result.drained = draining_;
  for (const SweepPoint& point : spec_.points) {
    const auto it = journal_.states().find(point.fingerprint);
    if (it != journal_.states().end() && it->second.done) {
      ++result.done;
    } else if (it != journal_.states().end() && it->second.quarantined) {
      ++result.quarantined;
    } else {
      ++result.pending;
    }
  }

  if (result.pending == 0) {
    const std::string report = render_report(spec_, journal_, runs_dir_);
    result.report_path = (fs::path(options_.out_dir) / "report.json").string();
    write_file_atomic(result.report_path, report);
  }
  return result;
}

}  // namespace

std::string render_report(const SweepSpec& spec, const SweepJournal& journal,
                          const std::string& runs_dir) {
  std::string results = "[";
  bool first = true;
  std::size_t done = 0;
  std::size_t quarantined = 0;
  for (const SweepPoint& point : spec.points) {
    const auto it = journal.states().find(point.fingerprint);
    if (it == journal.states().end()) continue;  // unresolved: not reported
    const PointState& state = it->second;
    if (!state.done && !state.quarantined) continue;

    obs::JsonObjectWriter entry;
    entry.begin();
    entry.field("fingerprint", point.fingerprint);
    obs::JsonObjectWriter config;
    config.begin();
    for (const auto& [key, value] : point.config) config.field(key, value);
    entry.raw_field("config", config.end());
    if (state.done) {
      ++done;
      entry.field("outcome", "done");
      const CurveMetrics metrics =
          read_curve(run_paths(runs_dir, point.fingerprint).csv);
      if (metrics.valid) {
        entry.field("last_step", metrics.last_step);
        entry.field("final_accuracy", metrics.final_accuracy);
        entry.field("best_accuracy", metrics.best_accuracy);
      }
    } else {
      ++quarantined;
      entry.field("outcome", "quarantined");
      std::string failures = "[";
      bool first_failure = true;
      for (const FailureEvent& failure : state.failures) {
        obs::JsonObjectWriter event;
        event.begin();
        event.field("attempt", static_cast<std::uint64_t>(failure.attempt));
        event.field("exit_code", static_cast<std::int64_t>(failure.exit_code));
        event.field("signal", static_cast<std::int64_t>(failure.term_signal));
        event.field("reason", failure.reason);
        if (!first_failure) failures += ",";
        first_failure = false;
        failures += event.end();
      }
      entry.raw_field("failures", failures + "]");
    }
    if (!first) results += ",";
    first = false;
    results += entry.end();
  }
  results += "]";

  obs::JsonObjectWriter root;
  root.begin();
  root.field("kind", "mach_sweep_report");
  root.field("schema", static_cast<std::uint64_t>(1));
  root.field("name", spec.name);
  root.field("points", static_cast<std::uint64_t>(spec.points.size()));
  root.field("done", static_cast<std::uint64_t>(done));
  root.field("quarantined", static_cast<std::uint64_t>(quarantined));
  root.raw_field("results", results);
  return root.end() + "\n";
}

SweepResult run_sweep(const SweepSpec& spec, const OrchestratorOptions& options) {
  if (options.runner_binary.empty()) {
    throw std::runtime_error("sweep: runner_binary is required");
  }
  if (options.out_dir.empty()) {
    throw std::runtime_error("sweep: out_dir is required");
  }
  std::error_code ec;
  fs::create_directories(fs::path(options.out_dir) / "runs", ec);
  if (ec) {
    throw std::runtime_error("sweep: cannot create " + options.out_dir + ": " +
                             ec.message());
  }
  Supervisor supervisor(spec, options);
  return supervisor.run();
}

}  // namespace mach::sweep
