// Sweep specification: a small JSON format describing a family of
// experiment_runner invocations, expanded eagerly into concrete points.
//
//   {
//     "name": "fig3_grid",
//     "defaults": {"task": "mnist", "steps": 40},
//     "grid": {"sampler": ["mach", "random"], "seed": [1, 2, 3]},
//     "points": [{"sampler": "oort", "seed": 9}],
//     "max_points": 512
//   }
//
// Expansion is deterministic: grid axes are iterated in sorted key order
// with the last axis fastest (an odometer), then explicit `points` follow in
// file order; every point is `defaults` overlaid with its own pairs. Each
// expanded point gets a canonical string ("k=v" lines, keys sorted) and a
// 64-bit FNV-1a fingerprint of it — the identity the journal, run
// directories and report are keyed by, so a re-run of the same spec dedupes
// against completed work even after editing cosmetic fields like `name`.
//
// The parser is strict on purpose (it feeds a fork/exec loop): duplicate
// JSON keys, unknown top-level fields, non-scalar values, reserved flags the
// orchestrator owns (--status, --csv, --checkpoint_dir, ...), empty grid
// axes and cartesian products beyond `max_points` are all hard errors.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mach::sweep {

/// Thrown for any structural problem with a sweep spec. The message names
/// the offending field; sweep_runner maps it to its usage exit code.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

/// One fully-expanded configuration: flag name -> rendered value (the
/// orchestrator passes each pair as `--name=value`).
using ConfigMap = std::map<std::string, std::string>;

/// Canonical form of a config: one `key=value` per line, keys sorted,
/// terminated by '\n'. Values may contain '=', ',' or ';' (scenario and
/// fault specs do); keys are identifier-shaped, so the first '=' of a line
/// always delimits unambiguously.
std::string canonical_config(const ConfigMap& config);

/// 64-bit FNV-1a of the canonical string, rendered as 16 lowercase hex
/// digits. Stable across platforms and runs.
std::string fingerprint_config(std::string_view canonical);

struct SweepPoint {
  ConfigMap config;
  std::string canonical;
  std::string fingerprint;
};

struct SweepSpec {
  std::string name = "sweep";
  std::vector<SweepPoint> points;  // expansion order; fingerprint-deduped
  std::size_t duplicates_dropped = 0;

  /// Parses and expands a spec document. Throws SpecError on any problem.
  static SweepSpec parse(std::string_view json);
  /// Reads `path` and delegates to parse(); unreadable file -> SpecError.
  static SweepSpec parse_file(const std::string& path);
};

}  // namespace mach::sweep
