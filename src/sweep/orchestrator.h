// Self-healing sweep orchestrator: runs every point of a SweepSpec as a
// supervised experiment_runner child process and drives each one through
// the state machine
//
//   pending -> running -> done
//                      -> retry (exponential backoff + deterministic jitter)
//                      -> quarantined (after max_attempts failures, or one
//                         non-retryable configuration error)
//
// Supervision is heartbeat-based: each child rewrites a status.json and the
// watchdog SIGKILLs it when the heartbeat shows no progress (skew-immune;
// see obs/heartbeat.h) for `watchdog_seconds`. Retries always pass
// --resume, so a killed child continues from its newest durable snapshot
// rather than step 0. Every state transition is an fsynced record in the
// crash-safe journal (sweep/journal.h) keyed by config fingerprint:
// SIGKILL the orchestrator at any instant, rerun the same spec, and
// completed points are skipped, interrupted ones resume, and the final
// report comes out byte-identical to an uninterrupted sweep's.
//
// SIGTERM/SIGINT drain gracefully via `drain_flag`: stop launching, forward
// SIGTERM so in-flight children checkpoint and exit (code 75), and return
// with `drained=true` and a journal a rerun picks up.
#pragma once

#include <csignal>
#include <cstdint>
#include <string>

#include "sweep/journal.h"
#include "sweep/spec.h"

namespace mach::sweep {

struct OrchestratorOptions {
  std::string runner_binary;       // experiment_runner path (required)
  std::string out_dir;             // sweep root: journal, runs/, report.json
  std::size_t parallel = 1;        // concurrent children
  std::uint32_t max_attempts = 3;  // failures before quarantine
  double watchdog_seconds = 30.0;  // heartbeat staleness before SIGKILL
  double poll_seconds = 0.05;      // supervision loop period
  double backoff_base_seconds = 0.25;
  double backoff_cap_seconds = 5.0;
  std::int64_t checkpoint_every = 5;  // --checkpoint_every for every child
  std::int64_t checkpoint_keep = 2;
  /// Crash-test harness: raise(SIGKILL) on ourselves right after the Nth
  /// Done record of this process becomes durable (0 = off). Children die
  /// with us via PR_SET_PDEATHSIG, exactly like a real orchestrator crash.
  std::size_t kill_after_points = 0;
  /// Cooperative drain flag (typically set by a signal handler).
  const volatile std::sig_atomic_t* drain_flag = nullptr;
};

struct SweepResult {
  std::size_t total = 0;        // spec points after dedupe
  std::size_t done = 0;         // completed, including prior runs' work
  std::size_t ran_here = 0;     // completed by this invocation
  std::size_t quarantined = 0;  // given up, with failure history journaled
  std::size_t pending = 0;      // unresolved (nonzero only after a drain)
  bool drained = false;
  std::string report_path;  // written only when every point is resolved
};

/// Runs the sweep to resolution (or drain). Throws std::runtime_error for
/// orchestrator-level failures: unusable out_dir, journal I/O errors, or a
/// fingerprint collision between the spec and the journal.
SweepResult run_sweep(const SweepSpec& spec, const OrchestratorOptions& options);

/// Renders the deterministic aggregated report for a fully-resolved sweep:
/// one JSON document, points in expansion order, per-point metrics parsed
/// from each run's curve.csv and failure histories for quarantined points.
/// Contains no timestamps, durations or attempt counts for completed points,
/// which is what makes interrupted-and-resumed sweeps byte-identical.
std::string render_report(const SweepSpec& spec, const SweepJournal& journal,
                          const std::string& runs_dir);

}  // namespace mach::sweep
