// Retry delay policy: exponential backoff with deterministic jitter.
//
// Jitter matters (a sweep retrying many configs at once must not stampede
// the machine in lockstep), but wall-clock or PRNG-seeded jitter would make
// supervision traces unreproducible. So the jitter is a pure function of
// (fingerprint, attempt): hash both through splitmix64 and scale the delay
// into [0.75, 1.25) of its nominal value. Same sweep, same retry schedule,
// every run.
#pragma once

#include <cstdint>
#include <string_view>

namespace mach::sweep {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Delay before retry number `attempt` (1-based: the wait after the first
/// failure uses attempt=1). `base * 2^(attempt-1)`, capped at `cap`, then
/// jittered deterministically by the config fingerprint.
inline double backoff_delay_seconds(double base_seconds, double cap_seconds,
                                    std::uint32_t attempt,
                                    std::string_view fingerprint) {
  if (base_seconds <= 0.0) return 0.0;
  double delay = base_seconds;
  for (std::uint32_t i = 1; i < attempt && delay < cap_seconds; ++i) {
    delay *= 2.0;
  }
  if (delay > cap_seconds) delay = cap_seconds;

  std::uint64_t salt = attempt;
  for (const char c : fingerprint) {
    salt = salt * 131 + static_cast<std::uint8_t>(c);
  }
  const std::uint64_t hashed = splitmix64(salt);
  const double unit =
      static_cast<double>(hashed >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return delay * (0.75 + 0.5 * unit);
}

}  // namespace mach::sweep
