#include "core/ucb.h"

#include <algorithm>
#include <cmath>

namespace mach::core {

UcbEstimator::UcbEstimator(std::size_t num_devices, UcbOptions options)
    : options_(options),
      buffers_(num_devices),
      max_round_avg_(num_devices, 0.0),
      has_estimate_(num_devices, false),
      counts_(num_devices, 0) {}

void UcbEstimator::record(std::uint32_t device,
                          const std::vector<double>& grad_sq_norms) {
  auto& buffer = buffers_.at(device);
  buffer.insert(buffer.end(), grad_sq_norms.begin(), grad_sq_norms.end());
  ++counts_[device];
}

void UcbEstimator::on_cloud_round(std::size_t t) {
  last_cloud_t_ = t;
  for (std::size_t m = 0; m < buffers_.size(); ++m) {
    auto& buffer = buffers_[m];
    if (!buffer.empty()) {
      double mean = 0.0;
      for (double g : buffer) mean += g;
      mean /= static_cast<double>(buffer.size());
      if (!has_estimate_[m] || mean > max_round_avg_[m]) max_round_avg_[m] = mean;
      has_estimate_[m] = true;
      population_max_ = std::max(population_max_, max_round_avg_[m]);
    }
    if (options_.clear_buffer_on_cloud_round) buffer.clear();
  }
}

double UcbEstimator::exploitation(std::uint32_t device) const {
  if (has_estimate_.at(device)) return max_round_avg_[device];
  // Optimistic prior: an unexplored device is assumed at least as
  // informative as the best seen so far.
  return options_.optimistic_init ? population_max_ : 0.0;
}

double UcbEstimator::exploration(std::uint32_t device) const {
  if (!options_.use_exploration) return 0.0;
  const double count =
      static_cast<double>(std::max<std::size_t>(counts_.at(device), 1));
  const double numerator =
      std::log(static_cast<double>(std::max<std::size_t>(last_cloud_t_, 2)));
  return options_.exploration_weight * std::sqrt(numerator / count);
}

double UcbEstimator::estimate(std::uint32_t device) const {
  return exploitation(device) + exploration(device);
}

}  // namespace mach::core
