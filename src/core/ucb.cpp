#include "core/ucb.h"

#include <algorithm>
#include <cmath>

#include "ckpt/bytes.h"

namespace mach::core {

UcbEstimator::UcbEstimator(std::size_t num_devices, UcbOptions options)
    : options_(options),
      buffer_sum_(num_devices, 0.0),
      buffer_count_(num_devices, 0),
      max_round_avg_(num_devices, 0.0),
      flags_(num_devices, 0),
      counts_(num_devices, 0) {}

void UcbEstimator::record(std::uint32_t device,
                          const std::vector<double>& grad_sq_norms) {
  double& sum = buffer_sum_.at(device);
  // Left-to-right fold in arrival order: the same additions, in the same
  // order, the buffered representation performed at refresh time.
  for (const double g : grad_sq_norms) sum += g;
  ++counts_[device];
  if (!grad_sq_norms.empty()) {
    buffer_count_[device] += static_cast<std::uint32_t>(grad_sq_norms.size());
    if ((flags_[device] & kInActiveList) == 0) {
      flags_[device] |= kInActiveList;
      active_.push_back(device);
    }
  }
}

void UcbEstimator::on_cloud_round(std::size_t t) {
  last_cloud_t_ = t;
  // Ascending device order — the same visit order as a full O(M) sweep over
  // the devices with non-empty buffers, so the fold is bitwise unchanged.
  std::sort(active_.begin(), active_.end());
  for (const std::uint32_t m : active_) {
    const double mean =
        buffer_sum_[m] / static_cast<double>(buffer_count_[m]);
    if ((flags_[m] & kHasEstimate) == 0 || mean > max_round_avg_[m]) {
      max_round_avg_[m] = mean;
    }
    flags_[m] |= kHasEstimate;
    population_max_ = std::max(population_max_, max_round_avg_[m]);
    if (options_.clear_buffer_on_cloud_round) {
      buffer_sum_[m] = 0.0;
      buffer_count_[m] = 0;
      flags_[m] &= static_cast<std::uint8_t>(~kInActiveList);
    }
  }
  if (options_.clear_buffer_on_cloud_round) active_.clear();
}

double UcbEstimator::exploitation(std::uint32_t device) const {
  if ((flags_.at(device) & kHasEstimate) != 0) return max_round_avg_[device];
  // Optimistic prior: an unexplored device is assumed at least as
  // informative as the best seen so far.
  return options_.optimistic_init ? population_max_ : 0.0;
}

double UcbEstimator::exploration(std::uint32_t device) const {
  if (!options_.use_exploration) return 0.0;
  const double count =
      static_cast<double>(std::max<std::uint32_t>(counts_.at(device), 1));
  const double numerator =
      std::log(static_cast<double>(std::max<std::size_t>(last_cloud_t_, 2)));
  return options_.exploration_weight * std::sqrt(numerator / count);
}

double UcbEstimator::estimate(std::uint32_t device) const {
  return exploitation(device) + exploration(device);
}

void UcbEstimator::save_state(ckpt::ByteWriter& out) const {
  out.u64(buffer_sum_.size());
  for (std::size_t m = 0; m < buffer_sum_.size(); ++m) {
    out.f64(buffer_sum_[m]);
    out.u64(buffer_count_[m]);
  }
  out.vec_f64(max_round_avg_);
  for (std::size_t m = 0; m < flags_.size(); ++m) {
    out.boolean((flags_[m] & kHasEstimate) != 0);
  }
  out.u64(counts_.size());
  for (const std::uint32_t c : counts_) out.u64(c);
  out.f64(population_max_);
  out.u64(last_cloud_t_);
}

void UcbEstimator::load_state(ckpt::ByteReader& in) {
  const std::uint64_t devices = in.u64();
  if (devices != buffer_sum_.size()) {
    throw ckpt::CorruptPayload("UcbEstimator: snapshot device count mismatch");
  }
  for (std::size_t m = 0; m < buffer_sum_.size(); ++m) {
    buffer_sum_[m] = in.f64();
    buffer_count_[m] = static_cast<std::uint32_t>(in.u64());
  }
  max_round_avg_ = in.vec_f64();
  if (max_round_avg_.size() != buffer_sum_.size()) {
    throw ckpt::CorruptPayload("UcbEstimator: snapshot size mismatch");
  }
  for (std::size_t m = 0; m < flags_.size(); ++m) {
    flags_[m] = in.boolean() ? kHasEstimate : 0;
  }
  if (in.u64() != counts_.size()) {
    throw ckpt::CorruptPayload("UcbEstimator: snapshot count-vector mismatch");
  }
  for (auto& c : counts_) c = static_cast<std::uint32_t>(in.u64());
  population_max_ = in.f64();
  last_cloud_t_ = static_cast<std::size_t>(in.u64());
  // Rebuild the active list from the restored buffer occupancy.
  active_.clear();
  for (std::size_t m = 0; m < buffer_count_.size(); ++m) {
    if (buffer_count_[m] > 0) {
      flags_[m] |= kInActiveList;
      active_.push_back(static_cast<std::uint32_t>(m));
    }
  }
}

}  // namespace mach::core
