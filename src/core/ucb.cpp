#include "core/ucb.h"

#include <algorithm>
#include <cmath>

#include "ckpt/bytes.h"

namespace mach::core {

UcbEstimator::UcbEstimator(std::size_t num_devices, UcbOptions options)
    : options_(options),
      buffers_(num_devices),
      max_round_avg_(num_devices, 0.0),
      has_estimate_(num_devices, false),
      counts_(num_devices, 0) {}

void UcbEstimator::record(std::uint32_t device,
                          const std::vector<double>& grad_sq_norms) {
  auto& buffer = buffers_.at(device);
  buffer.insert(buffer.end(), grad_sq_norms.begin(), grad_sq_norms.end());
  ++counts_[device];
}

void UcbEstimator::on_cloud_round(std::size_t t) {
  last_cloud_t_ = t;
  for (std::size_t m = 0; m < buffers_.size(); ++m) {
    auto& buffer = buffers_[m];
    if (!buffer.empty()) {
      double mean = 0.0;
      for (double g : buffer) mean += g;
      mean /= static_cast<double>(buffer.size());
      if (!has_estimate_[m] || mean > max_round_avg_[m]) max_round_avg_[m] = mean;
      has_estimate_[m] = true;
      population_max_ = std::max(population_max_, max_round_avg_[m]);
    }
    if (options_.clear_buffer_on_cloud_round) buffer.clear();
  }
}

double UcbEstimator::exploitation(std::uint32_t device) const {
  if (has_estimate_.at(device)) return max_round_avg_[device];
  // Optimistic prior: an unexplored device is assumed at least as
  // informative as the best seen so far.
  return options_.optimistic_init ? population_max_ : 0.0;
}

double UcbEstimator::exploration(std::uint32_t device) const {
  if (!options_.use_exploration) return 0.0;
  const double count =
      static_cast<double>(std::max<std::size_t>(counts_.at(device), 1));
  const double numerator =
      std::log(static_cast<double>(std::max<std::size_t>(last_cloud_t_, 2)));
  return options_.exploration_weight * std::sqrt(numerator / count);
}

double UcbEstimator::estimate(std::uint32_t device) const {
  return exploitation(device) + exploration(device);
}

void UcbEstimator::save_state(ckpt::ByteWriter& out) const {
  out.u64(buffers_.size());
  for (const auto& buffer : buffers_) out.vec_f64(buffer);
  out.vec_f64(max_round_avg_);
  for (std::size_t m = 0; m < has_estimate_.size(); ++m) {
    out.boolean(has_estimate_[m]);
  }
  out.u64(counts_.size());
  for (const std::size_t c : counts_) out.u64(c);
  out.f64(population_max_);
  out.u64(last_cloud_t_);
}

void UcbEstimator::load_state(ckpt::ByteReader& in) {
  const std::uint64_t devices = in.u64();
  if (devices != buffers_.size()) {
    throw ckpt::CorruptPayload("UcbEstimator: snapshot device count mismatch");
  }
  for (auto& buffer : buffers_) buffer = in.vec_f64();
  max_round_avg_ = in.vec_f64();
  if (max_round_avg_.size() != buffers_.size()) {
    throw ckpt::CorruptPayload("UcbEstimator: snapshot size mismatch");
  }
  for (std::size_t m = 0; m < has_estimate_.size(); ++m) {
    has_estimate_[m] = in.boolean();
  }
  if (in.u64() != counts_.size()) {
    throw ckpt::CorruptPayload("UcbEstimator: snapshot count-vector mismatch");
  }
  for (auto& c : counts_) c = static_cast<std::size_t>(in.u64());
  population_max_ = in.f64();
  last_cloud_t_ = static_cast<std::size_t>(in.u64());
}

}  // namespace mach::core
