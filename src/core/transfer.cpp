#include "core/transfer.h"

#include <algorithm>
#include <cmath>

namespace mach::core {

TransferFunction::TransferFunction(TransferOptions options) : options_(options) {}

double TransferFunction::effective_alpha() const {
  if (options_.warmup_rounds == 0) return options_.alpha;
  const double frac = std::min(
      1.0, static_cast<double>(rounds_) / static_cast<double>(options_.warmup_rounds));
  return options_.alpha * frac;
}

double TransferFunction::effective_beta() const {
  if (options_.warmup_rounds == 0) return options_.beta;
  const double frac = std::min(
      1.0, static_cast<double>(rounds_) / static_cast<double>(options_.warmup_rounds));
  return options_.beta * frac;
}

double TransferFunction::operator()(double virtual_probability) const {
  const double alpha = effective_alpha();
  const double beta = effective_beta();
  const double sigmoid = 1.0 / (1.0 + std::exp(-beta * virtual_probability));
  return 1.0 + alpha * (sigmoid - 0.5);
}

void TransferFunction::advance_round() { ++rounds_; }

}  // namespace mach::core
