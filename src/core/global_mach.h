// Ablation of Remark 2's per-edge independence: a single *global* sampling
// strategy computed over all devices (as a flat, non-hierarchical FL system
// would), then served to every edge as the slice covering its devices.
//
// The paper argues each edge should derive its strategy from the devices
// currently inside it; this sampler deliberately ignores edge membership
// when normalising (Eq. 16's denominator runs over all of M, and the budget
// is the federation-wide sum of K_n), so edges whose devices happen to hold
// small gradient norms under-spend their channel capacity and vice versa.
#pragma once

#include <optional>

#include "core/mach.h"

namespace mach::core {

class GlobalMachSampler final : public hfl::Sampler {
 public:
  explicit GlobalMachSampler(MachOptions options = {});

  std::string name() const override { return "mach_global"; }
  void bind(const hfl::FederationInfo& info) override;
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;
  void observe_training(const hfl::TrainingObservation& obs) override;
  void on_cloud_round(std::size_t t) override;
  bool introspect(obs::SamplerIntrospection& out) const override;
  void save_state(ckpt::ByteWriter& out) const override;
  void load_state(ckpt::ByteReader& in) override;

 private:
  /// Recomputes the federation-wide strategy for time step `t`.
  void refresh_global_strategy(std::size_t t, double edge_capacity);

  MachOptions options_;
  std::optional<UcbEstimator> estimator_;
  TransferFunction transfer_;
  std::size_t num_edges_ = 1;
  std::vector<double> global_q_;     // per-device probabilities
  std::optional<std::size_t> cached_t_;
};

}  // namespace mach::core
