#include "core/scale_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ckpt/rng_codec.h"

namespace mach::core {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

/// Top 53 bits of a hash as a uniform double in [0, 1).
double hash_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

const ScaleConfig& validated(const ScaleConfig& config) {
  if (config.num_devices == 0) {
    throw std::invalid_argument("ScaleSimulator: num_devices must be > 0");
  }
  if (config.num_edges == 0) {
    throw std::invalid_argument("ScaleSimulator: num_edges must be > 0");
  }
  if (!(config.participation > 0.0) || config.participation > 1.0) {
    throw std::invalid_argument(
        "ScaleSimulator: participation must be in (0, 1]");
  }
  if (config.cloud_every == 0) {
    throw std::invalid_argument("ScaleSimulator: cloud_every must be > 0");
  }
  if (!(config.rebuild_drift > 0.0)) {
    throw std::invalid_argument("ScaleSimulator: rebuild_drift must be > 0");
  }
  if (config.exploration_weight < 0.0) {
    throw std::invalid_argument(
        "ScaleSimulator: exploration_weight must be >= 0");
  }
  return config;
}

mobility::GridMobilityStream::Config grid_config(const ScaleConfig& config) {
  return {.num_devices = config.num_devices,
          .num_stations = config.num_edges,
          .seed = common::split_seed(config.seed, 0x6e0bULL),
          .min_dwell = config.min_dwell,
          .max_dwell = config.max_dwell};
}

}  // namespace

ScaleSimulator::ScaleSimulator(const ScaleConfig& config)
    : config_(validated(config)),
      transfer_(config_.transfer),
      edges_(config_.num_edges),
      stream_(grid_config(config_)),
      draw_rng_(common::split_seed(config_.seed, 0xd4a3ULL)) {
  devices_.reset(config_.num_devices);
  in_active_.assign(config_.num_devices, 0);
  const auto stations = stream_.stations();
  for (std::uint32_t m = 0; m < config_.num_devices; ++m) {
    insert_device(m, stations[m]);
  }
}

double ScaleSimulator::synth_grad_sq(std::uint32_t device,
                                     std::size_t t) const {
  // Per-device heterogeneity level in [0.5, 2), fixed for the run, times a
  // per-step noise factor in [0.75, 1.25) — both pure hashes, so nothing is
  // stored and a resumed run observes the same values.
  const std::uint64_t hd = common::split_seed(config_.seed, 0xa11ceULL + device);
  const std::uint64_t hn = common::split_seed(hd, t + 1);
  const double base = 0.5 + 1.5 * hash_unit(hd);
  const double noise = 0.75 + 0.5 * hash_unit(hn);
  return base * noise;
}

double ScaleSimulator::exploration(std::uint32_t device) const {
  const double t = static_cast<double>(std::max<std::size_t>(last_cloud_t_, 2));
  const double count =
      static_cast<double>(std::max<std::uint32_t>(devices_.participations[device], 1));
  return config_.exploration_weight * std::sqrt(std::log(t) / count);
}

double ScaleSimulator::estimate(std::uint32_t device) const {
  // Eq. 15 with an optimistic prior: a never-sampled device is credited the
  // best exploitation value seen anywhere, so exploration reaches it.
  const double exploitation = (devices_.flags[device] & DeviceStateArrays::kHasEstimate)
                                  ? devices_.max_round_avg[device]
                                  : population_max_;
  return exploitation + exploration(device);
}

double ScaleSimulator::smoothed_weight(double g2_estimate,
                                       const EdgeState& edge) const {
  double qhat = 0.0;
  if (edge.ref_total > 0.0 && !edge.members.empty()) {
    const double budget = std::max(
        1.0, std::round(config_.participation *
                        static_cast<double>(edge.members.size())));
    qhat = budget * g2_estimate / edge.ref_total;  // Eq. 16
  }
  return transfer_(qhat);  // Eq. 17: in [1, 1 + alpha/2)
}

void ScaleSimulator::insert_device(std::uint32_t device, std::uint32_t edge) {
  EdgeState& e = edges_[edge];
  devices_.edge[device] = edge;
  devices_.slot[device] = static_cast<std::uint32_t>(e.members.size());
  e.members.push_back(device);
  if (e.weights.size() < e.members.size()) {
    // Doubling growth: FenwickTree::resize is an O(n) rebuild, so growing
    // slot-by-slot on every arrival would be quadratic under churn.
    e.weights.resize(std::max<std::size_t>(e.members.size() * 2, 8));
  }
  const double est = estimate(device);
  devices_.weight_basis[device] = est;
  e.g2_total += est;
  e.weights.set(devices_.slot[device], smoothed_weight(est, e));
  e.alias_dirty = true;
}

void ScaleSimulator::remove_device(std::uint32_t device) {
  EdgeState& e = edges_[devices_.edge[device]];
  const std::uint32_t slot = devices_.slot[device];
  const std::uint32_t last = static_cast<std::uint32_t>(e.members.size() - 1);
  e.g2_total -= devices_.weight_basis[device];
  if (slot != last) {
    const std::uint32_t moved = e.members[last];
    e.members[slot] = moved;
    devices_.slot[moved] = slot;
    e.weights.set(slot, e.weights.get(last));
  }
  e.members.pop_back();
  e.weights.set(last, 0.0);
  e.alias_dirty = true;
}

void ScaleSimulator::refresh_weight(std::uint32_t device) {
  EdgeState& e = edges_[devices_.edge[device]];
  const double est = estimate(device);
  e.g2_total += est - devices_.weight_basis[device];
  devices_.weight_basis[device] = est;
  e.weights.set(devices_.slot[device], smoothed_weight(est, e));
  e.alias_dirty = true;
}

void ScaleSimulator::rebuild_edge(std::size_t n) {
  EdgeState& e = edges_[n];
  // Recompute the incremental total exactly (ascending slot order — the same
  // fold a resumed run performs) so float drift from += deltas cannot
  // accumulate across rebuild epochs.
  double exact = 0.0;
  for (const std::uint32_t device : e.members) {
    exact += devices_.weight_basis[device];
  }
  e.g2_total = exact;
  e.ref_total = exact;
  scratch_.assign(e.weights.size(), 0.0);
  for (std::size_t slot = 0; slot < e.members.size(); ++slot) {
    scratch_[slot] =
        smoothed_weight(devices_.weight_basis[e.members[slot]], e);
  }
  e.weights.assign(scratch_);
  e.alias_dirty = true;
}

void ScaleSimulator::cloud_refresh() {
  // Fold buffered experience in ascending device order — the order a
  // resumed run reconstructs — so every float accumulation is reproducible.
  std::sort(active_.begin(), active_.end());
  transfer_.advance_round();
  for (const std::uint32_t device : active_) {
    const double avg = devices_.buffer_sum[device] /
                       static_cast<double>(devices_.buffer_count[device]);
    if (!(devices_.flags[device] & DeviceStateArrays::kHasEstimate) ||
        avg > devices_.max_round_avg[device]) {
      devices_.max_round_avg[device] = avg;  // Eq. 15: max over round averages
    }
    devices_.flags[device] |= DeviceStateArrays::kHasEstimate;
    devices_.buffer_sum[device] = 0.0;
    devices_.buffer_count[device] = 0;
    population_max_ = std::max(population_max_, devices_.max_round_avg[device]);
    in_active_[device] = 0;
  }
  last_cloud_t_ = t_ + 1;
  for (const std::uint32_t device : active_) refresh_weight(device);
  active_.clear();
}

ScaleRoundStats ScaleSimulator::step() {
  ScaleRoundStats stats;
  stats.t = t_;
  stats.sample_digest = kFnvOffset;

  // 1. Mobility: the round samples under the step-t_ association. Movers are
  //    re-homed with swap-remove membership updates — O(movers log M).
  if (t_ > 0) {
    stream_.advance(moved_);
    const auto stations = stream_.stations();
    for (const std::uint32_t device : moved_) {
      remove_device(device);
      insert_device(device, stations[device]);
    }
    stats.movers = moved_.size();
  }

  // 2. Sample every edge.
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    EdgeState& e = edges_[n];
    if (e.members.empty()) continue;

    const bool due = t_ + 1 >= e.next_rebuild_t;
    const bool drifted =
        e.ref_total > 0.0 &&
        std::abs(e.g2_total - e.ref_total) > config_.rebuild_drift * e.ref_total;
    if (due || drifted) {
      rebuild_edge(n);
      e.next_rebuild_t = 2 * (t_ + 1);
      ++stats.weight_rebuilds;
    }

    std::size_t k = static_cast<std::size_t>(std::llround(
        config_.participation * static_cast<double>(e.members.size())));
    k = std::min(std::max<std::size_t>(k, 1), e.members.size());

    sampled_.clear();
    if (config_.use_alias_draws) {
      if (e.alias_dirty) {
        scratch_.assign(e.members.size(), 0.0);
        for (std::size_t slot = 0; slot < e.members.size(); ++slot) {
          scratch_[slot] = e.weights.get(slot);
        }
        e.alias.build(scratch_);
        e.alias_dirty = false;
      }
      // Poisson-like batch mode: k with-replacement O(1) draws, duplicates
      // dropped, so a round may include fewer than k devices.
      for (std::size_t d = 0; d < k; ++d) {
        const std::size_t slot = e.alias.draw(draw_rng_);
        if (slot < e.members.size()) {
          sampled_.push_back(static_cast<std::uint32_t>(slot));
        }
      }
      std::sort(sampled_.begin(), sampled_.end());
      sampled_.erase(std::unique(sampled_.begin(), sampled_.end()),
                     sampled_.end());
    } else {
      e.weights.sample_without_replacement(k, draw_rng_, sampled_);
    }

    for (const std::uint32_t slot : sampled_) {
      const std::uint32_t device = e.members[slot];
      const double g2 = synth_grad_sq(device, t_);
      devices_.buffer_sum[device] += g2;
      devices_.buffer_count[device] += 1;
      devices_.participations[device] += 1;
      if (!in_active_[device]) {
        in_active_[device] = 1;
        active_.push_back(device);
      }
      stats.sample_digest = fnv1a_u64(stats.sample_digest, n);
      stats.sample_digest = fnv1a_u64(stats.sample_digest, device);
      ++stats.participants;
    }
    // Participation shrinks the confidence radius immediately (Eq. 15), so
    // refresh the drawn devices' weights now rather than at the next cloud
    // round — O(K log² M).
    for (const std::uint32_t slot : sampled_) {
      refresh_weight(e.members[slot]);
    }
  }

  // 3. Cloud aggregation every cloud_every rounds.
  if ((t_ + 1) % config_.cloud_every == 0) cloud_refresh();

  ++t_;
  return stats;
}

std::size_t ScaleSimulator::memory_bytes() const noexcept {
  std::size_t bytes = devices_.memory_bytes() + stream_.memory_bytes();
  for (const EdgeState& e : edges_) bytes += e.memory_bytes();
  bytes += edges_.capacity() * sizeof(EdgeState);
  bytes += active_.capacity() * sizeof(std::uint32_t);
  bytes += in_active_.capacity() * sizeof(std::uint8_t);
  bytes += moved_.capacity() * sizeof(std::uint32_t);
  bytes += sampled_.capacity() * sizeof(std::uint32_t);
  bytes += scratch_.capacity() * sizeof(double);
  return bytes;
}

void ScaleSimulator::save_state(ckpt::ByteWriter& out) const {
  out.str("scale-sim");
  out.u32(1);  // blob version
  // Config fingerprint: a snapshot only resumes under the run it came from.
  out.u64(config_.num_devices);
  out.u64(config_.num_edges);
  out.u64(config_.seed);
  out.f64(config_.participation);
  out.u64(config_.cloud_every);
  out.u32(config_.min_dwell);
  out.u32(config_.max_dwell);
  out.f64(config_.transfer.alpha);
  out.f64(config_.transfer.beta);
  out.u64(config_.transfer.warmup_rounds);
  out.f64(config_.exploration_weight);
  out.f64(config_.rebuild_drift);
  out.boolean(config_.use_alias_draws);

  out.u64(t_);
  out.u64(last_cloud_t_);
  out.f64(population_max_);
  out.u64(transfer_.rounds_seen());
  ckpt::write_rng(out, draw_rng_);
  stream_.save_cursor(out);
  devices_.save(out);

  out.u64(edges_.size());
  for (const EdgeState& e : edges_) {
    out.u64(e.members.size());
    for (const std::uint32_t device : e.members) out.u32(device);
    out.f64(e.g2_total);
    out.f64(e.ref_total);
    out.u64(e.next_rebuild_t);
    out.u64(e.weights.size());
    for (std::size_t slot = 0; slot < e.weights.size(); ++slot) {
      out.f64(e.weights.get(slot));
    }
  }
}

void ScaleSimulator::load_state(ckpt::ByteReader& in) {
  if (in.str() != "scale-sim") {
    throw ckpt::CorruptPayload("ScaleSimulator: bad magic");
  }
  if (in.u32() != 1) {
    throw ckpt::CorruptPayload("ScaleSimulator: unsupported blob version");
  }
  const bool config_matches =
      in.u64() == config_.num_devices && in.u64() == config_.num_edges &&
      in.u64() == config_.seed && in.f64() == config_.participation &&
      in.u64() == config_.cloud_every && in.u32() == config_.min_dwell &&
      in.u32() == config_.max_dwell && in.f64() == config_.transfer.alpha &&
      in.f64() == config_.transfer.beta &&
      in.u64() == config_.transfer.warmup_rounds &&
      in.f64() == config_.exploration_weight &&
      in.f64() == config_.rebuild_drift &&
      in.boolean() == config_.use_alias_draws;
  if (!config_matches) {
    throw ckpt::CorruptPayload(
        "ScaleSimulator: snapshot was taken under a different config");
  }

  t_ = in.u64();
  last_cloud_t_ = in.u64();
  population_max_ = in.f64();
  transfer_.set_rounds_seen(in.u64());
  ckpt::read_rng(in, draw_rng_);
  stream_.load_cursor(in);
  devices_.load(in);

  if (in.u64() != edges_.size()) {
    throw ckpt::CorruptPayload("ScaleSimulator: edge count mismatch");
  }
  std::size_t total_members = 0;
  for (EdgeState& e : edges_) {
    const std::size_t member_count = in.u64();
    if (member_count > config_.num_devices) {
      throw ckpt::CorruptPayload("ScaleSimulator: member count out of range");
    }
    e.members.resize(member_count);
    for (auto& device : e.members) {
      device = in.u32();
      if (device >= config_.num_devices) {
        throw ckpt::CorruptPayload("ScaleSimulator: member id out of range");
      }
    }
    total_members += member_count;
    e.g2_total = in.f64();
    e.ref_total = in.f64();
    e.next_rebuild_t = in.u64();
    const std::size_t weight_count = in.u64();
    if (weight_count < member_count) {
      throw ckpt::CorruptPayload("ScaleSimulator: weight table too small");
    }
    scratch_.resize(weight_count);
    for (auto& w : scratch_) w = in.f64();
    e.weights.assign(scratch_);
    // Alias tables rebuild deterministically from the restored weights the
    // next time their edge samples in batch mode.
    e.alias = sampling::AliasTable();
    e.alias_dirty = true;
  }
  if (total_members != config_.num_devices) {
    throw ckpt::CorruptPayload("ScaleSimulator: members do not partition devices");
  }
  // Check (and trust thereafter) the dense reverse index.
  for (std::uint32_t n = 0; n < edges_.size(); ++n) {
    const EdgeState& e = edges_[n];
    for (std::uint32_t slot = 0; slot < e.members.size(); ++slot) {
      const std::uint32_t device = e.members[slot];
      if (devices_.edge[device] != n || devices_.slot[device] != slot) {
        throw ckpt::CorruptPayload("ScaleSimulator: reverse index mismatch");
      }
    }
  }
  // active_ is recoverable: a device is pending-fold iff it has buffered
  // observations. Ascending order matches the sorted fold in cloud_refresh.
  active_.clear();
  in_active_.assign(config_.num_devices, 0);
  for (std::uint32_t m = 0; m < config_.num_devices; ++m) {
    if (devices_.buffer_count[m] > 0) {
      active_.push_back(m);
      in_active_[m] = 1;
    }
  }
}

}  // namespace mach::core
