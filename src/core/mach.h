// MACH — the paper's Mobility-Aware deviCe sampling algorithm in HFL
// (Algorithm 1), composed of experience updating (UCB, Algorithm 2) and
// edge sampling (Algorithm 3).
//
// Each edge independently builds its strategy from the devices currently
// inside it (Remark 2):
//   1. virtual probability  q^_m = K_n G~^2_m / sum_{m'} G~^2_{m'}   (Eq. 16)
//   2. transfer smoothing   S(q^_m)                                  (Eq. 17)
//   3. budget renormalise   q_m = K_n S(q^_m) / sum_{m'} S(q^_{m'})  (Eq. 18)
//
// MachOracleSampler is the paper's MACH-P upper bound: identical edge
// sampling, but G^2 comes from an oracle probe of the true current gradient
// norms instead of the online UCB estimate.
#pragma once

#include <optional>

#include "core/transfer.h"
#include "core/ucb.h"
#include "hfl/sampler.h"

namespace mach::core {

struct MachOptions {
  UcbOptions ucb;
  TransferOptions transfer;
  /// Ablation: skip the transfer smoothing and use the raw virtual
  /// probabilities (clipped into [0,1] by water-filling) directly.
  bool use_transfer = true;
};

/// Shared Eq. 16→18 edge-sampling pipeline given per-device G^2 scores.
std::vector<double> edge_sampling_probabilities(std::span<const double> g_squared,
                                                double capacity,
                                                const TransferFunction* transfer);

/// Exports Algorithm 2's state (G~^2, buffer occupancy, participations) for
/// run telemetry; shared by the MACH and global-MACH samplers.
void fill_ucb_introspection(const UcbEstimator& estimator,
                            obs::SamplerIntrospection& out);

class MachSampler final : public hfl::Sampler {
 public:
  explicit MachSampler(MachOptions options = {});

  std::string name() const override { return "mach"; }
  void bind(const hfl::FederationInfo& info) override;
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;
  void observe_training(const hfl::TrainingObservation& obs) override;
  void on_cloud_round(std::size_t t) override;
  bool introspect(obs::SamplerIntrospection& out) const override;
  void save_state(ckpt::ByteWriter& out) const override;
  void load_state(ckpt::ByteReader& in) override;

  /// Introspection for tests and the quickstart example.
  const UcbEstimator& estimator() const { return *estimator_; }
  const TransferFunction& transfer() const { return transfer_; }

 private:
  MachOptions options_;
  std::optional<UcbEstimator> estimator_;  // sized at bind()
  TransferFunction transfer_;
  std::vector<double> g2_scratch_;  // reused per-edge estimate gather
};

class MachOracleSampler final : public hfl::Sampler {
 public:
  explicit MachOracleSampler(MachOptions options = {});

  std::string name() const override { return "mach_p"; }
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;
  void on_cloud_round(std::size_t t) override;
  bool needs_oracle() const override { return true; }
  void save_state(ckpt::ByteWriter& out) const override;
  void load_state(ckpt::ByteReader& in) override;

 private:
  MachOptions options_;
  TransferFunction transfer_;
};

}  // namespace mach::core
