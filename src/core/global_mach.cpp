#include "core/global_mach.h"

#include <stdexcept>

#include "ckpt/bytes.h"

namespace mach::core {

GlobalMachSampler::GlobalMachSampler(MachOptions options)
    : options_(options), transfer_(options.transfer) {}

void GlobalMachSampler::bind(const hfl::FederationInfo& info) {
  estimator_.emplace(info.num_devices, options_.ucb);
  transfer_ = TransferFunction(options_.transfer);
  num_edges_ = std::max<std::size_t>(info.num_edges, 1);
  global_q_.assign(info.num_devices, 0.0);
  cached_t_.reset();
}

void GlobalMachSampler::refresh_global_strategy(std::size_t t, double edge_capacity) {
  std::vector<double> g_squared(global_q_.size());
  for (std::size_t m = 0; m < g_squared.size(); ++m) {
    g_squared[m] = estimator_->estimate(static_cast<std::uint32_t>(m));
  }
  // Federation-wide budget: every edge contributes its channel capacity.
  const double total_capacity = edge_capacity * static_cast<double>(num_edges_);
  global_q_ = edge_sampling_probabilities(
      g_squared, total_capacity, options_.use_transfer ? &transfer_ : nullptr);
  cached_t_ = t;
}

std::vector<double> GlobalMachSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  if (!estimator_) throw std::logic_error("GlobalMachSampler: bind() not called");
  if (!cached_t_ || *cached_t_ != ctx.t) {
    refresh_global_strategy(ctx.t, ctx.capacity);
  }
  std::vector<double> q(ctx.devices.size());
  for (std::size_t i = 0; i < ctx.devices.size(); ++i) {
    q[i] = global_q_.at(ctx.devices[i]);
  }
  return q;
}

void GlobalMachSampler::observe_training(const hfl::TrainingObservation& obs) {
  if (estimator_) estimator_->record(obs.device, obs.local_grad_sq_norms);
}

void GlobalMachSampler::on_cloud_round(std::size_t t) {
  if (estimator_) estimator_->on_cloud_round(t);
  transfer_.advance_round();
  cached_t_.reset();
}

bool GlobalMachSampler::introspect(obs::SamplerIntrospection& out) const {
  if (!estimator_) return false;
  fill_ucb_introspection(*estimator_, out);
  return true;
}

void GlobalMachSampler::save_state(ckpt::ByteWriter& out) const {
  out.u8(2);  // blob version (v2: SoA estimator accumulators)
  out.u64(transfer_.rounds_seen());
  out.boolean(estimator_.has_value());
  if (estimator_) estimator_->save_state(out);
  // global_q_/cached_t_ are a within-step cache, recomputed deterministically
  // from the estimator on the next edge_probabilities() call — not state.
}

void GlobalMachSampler::load_state(ckpt::ByteReader& in) {
  if (in.u8() != 2) {
    throw ckpt::CorruptPayload("GlobalMachSampler: unknown state version");
  }
  transfer_.set_rounds_seen(static_cast<std::size_t>(in.u64()));
  const bool had_estimator = in.boolean();
  if (had_estimator != estimator_.has_value()) {
    throw ckpt::CorruptPayload("GlobalMachSampler: estimator presence mismatch");
  }
  if (estimator_) estimator_->load_state(in);
  cached_t_.reset();
}

}  // namespace mach::core
