// Structure-of-arrays device state for the million-device scale engine.
//
// One growable object per device (experience buffers, per-device vectors)
// is what caps the paper-scale simulator at ~1e4 devices. Here every
// per-device quantity lives in a parallel contiguous array with a *fixed*
// byte cost, so the total footprint is an arithmetic fact rather than an
// allocator outcome: kBytesPerDevice x M plus O(edges) overhead. The scale
// engine asserts this bound in its tests and the bench/scale RSS gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ckpt/bytes.h"

namespace mach::core {

struct DeviceStateArrays {
  // UCB-lite experience (Eq. 14/15), the running-(sum,count) form of
  // UcbEstimator: identical folds, fixed footprint.
  std::vector<double> buffer_sum;           // Σ ||g||² since last refresh
  std::vector<std::uint32_t> buffer_count;  // observations since last refresh
  std::vector<double> max_round_avg;        // max_t' Avg(G_m^{t'})
  std::vector<std::uint8_t> flags;          // kHasEstimate
  std::vector<std::uint32_t> participations;
  // Edge membership (dense reverse index into the per-edge member lists).
  std::vector<std::uint32_t> edge;
  std::vector<std::uint32_t> slot;
  // The G~² value each device's stored sampling weight was computed from —
  // lets weight updates adjust the edge's Eq. 16 denominator incrementally.
  std::vector<double> weight_basis;

  static constexpr std::uint8_t kHasEstimate = 1;

  /// Fixed bytes per device across these arrays:
  /// 8 + 4 + 8 + 1 + 4 + 4 + 4 + 8.
  static constexpr std::size_t bytes_per_device() noexcept { return 41; }

  std::size_t size() const noexcept { return buffer_sum.size(); }

  void reset(std::size_t num_devices) {
    buffer_sum.assign(num_devices, 0.0);
    buffer_count.assign(num_devices, 0);
    max_round_avg.assign(num_devices, 0.0);
    flags.assign(num_devices, 0);
    participations.assign(num_devices, 0);
    edge.assign(num_devices, 0);
    slot.assign(num_devices, 0);
    weight_basis.assign(num_devices, 0.0);
  }

  /// Actual bytes held (capacities, for the RSS accounting).
  std::size_t memory_bytes() const noexcept {
    return buffer_sum.capacity() * sizeof(double) +
           buffer_count.capacity() * sizeof(std::uint32_t) +
           max_round_avg.capacity() * sizeof(double) +
           flags.capacity() * sizeof(std::uint8_t) +
           participations.capacity() * sizeof(std::uint32_t) +
           edge.capacity() * sizeof(std::uint32_t) +
           slot.capacity() * sizeof(std::uint32_t) +
           weight_basis.capacity() * sizeof(double);
  }

  void save(ckpt::ByteWriter& out) const {
    out.u64(size());
    for (std::size_t m = 0; m < size(); ++m) {
      out.f64(buffer_sum[m]);
      out.u32(buffer_count[m]);
      out.f64(max_round_avg[m]);
      out.u8(flags[m]);
      out.u32(participations[m]);
      out.u32(edge[m]);
      out.u32(slot[m]);
      out.f64(weight_basis[m]);
    }
  }

  void load(ckpt::ByteReader& in) {
    if (in.u64() != size()) {
      throw ckpt::CorruptPayload("DeviceStateArrays: device count mismatch");
    }
    for (std::size_t m = 0; m < size(); ++m) {
      buffer_sum[m] = in.f64();
      buffer_count[m] = in.u32();
      max_round_avg[m] = in.f64();
      flags[m] = in.u8();
      participations[m] = in.u32();
      edge[m] = in.u32();
      slot[m] = in.u32();
      weight_basis[m] = in.f64();
    }
  }
};

}  // namespace mach::core
