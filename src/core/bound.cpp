#include "core/bound.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mach::core {

double convergence_bound_term(std::span<const double> g_squared,
                              std::span<const double> probabilities) {
  if (g_squared.size() != probabilities.size()) {
    throw std::invalid_argument("convergence_bound_term: size mismatch");
  }
  double total = 0.0;
  for (std::size_t m = 0; m < g_squared.size(); ++m) {
    const double g2 = std::max(g_squared[m], 0.0);
    if (g2 == 0.0) continue;
    if (probabilities[m] <= 0.0) return std::numeric_limits<double>::infinity();
    total += g2 / probabilities[m];
  }
  return total;
}

std::vector<double> optimal_probabilities_eq13(std::span<const double> g_squared,
                                               double capacity) {
  std::vector<double> q(g_squared.size(), 0.0);
  if (g_squared.empty()) return q;
  double total = 0.0;
  for (double g2 : g_squared) total += std::max(g2, 0.0);
  if (total <= 0.0) {
    const double uniform = capacity / static_cast<double>(g_squared.size());
    for (auto& p : q) p = uniform;
    return q;
  }
  for (std::size_t m = 0; m < g_squared.size(); ++m) {
    q[m] = capacity * std::max(g_squared[m], 0.0) / total;
  }
  return q;
}

std::vector<double> optimal_probabilities_sqrt(std::span<const double> g_squared,
                                               double capacity) {
  std::vector<double> q(g_squared.size(), 0.0);
  if (g_squared.empty()) return q;
  double total = 0.0;
  for (double g2 : g_squared) total += std::sqrt(std::max(g2, 0.0));
  if (total <= 0.0) {
    const double uniform = capacity / static_cast<double>(g_squared.size());
    for (auto& p : q) p = uniform;
    return q;
  }
  for (std::size_t m = 0; m < g_squared.size(); ++m) {
    q[m] = capacity * std::sqrt(std::max(g_squared[m], 0.0)) / total;
  }
  return q;
}

double theorem1_bound(const BoundParams& params, double mean_bound_term,
                      std::size_t steps) {
  if (steps == 0 || params.gamma <= 0.0 || params.local_epochs == 0 ||
      params.num_devices == 0) {
    throw std::invalid_argument("theorem1_bound: invalid parameters");
  }
  const double gamma = params.gamma;
  const double big_l = params.lipschitz;
  const auto i = static_cast<double>(params.local_epochs);
  const auto tg = static_cast<double>(params.cloud_interval);
  const auto m = static_cast<double>(params.num_devices);
  const auto t = static_cast<double>(steps);

  // First term of Eq. (9): 2(f0 - f*) / (gamma I T).
  const double optimality_term = 2.0 * params.f0_minus_fstar / (gamma * i * t);
  // Second term: the per-step coefficient multiplying sum G^2/q, averaged.
  const double coefficient =
      (gamma * big_l * i * (2.0 + gamma * big_l * i) +
       4.0 * (1.0 + m) * tg * tg * big_l * big_l * gamma * gamma) /
      (2.0 * m);
  return optimality_term + coefficient * mean_bound_term;
}

}  // namespace mach::core
