// Edge-sampling transfer function S(.) of Eq. (17).
//
// S squashes the virtual probability q^ = K_n G~^2 / sum G~^2 (Eq. 16) into a
// narrow band around 1 so that the renormalised probabilities (Eq. 18) never
// become extreme while the UCB estimates are still noisy. We implement
//     S(q^) = 1 + alpha * (1 / (1 + exp(-beta * q^)) - 1/2),
// i.e. the paper's form with the sign convention that makes S increasing in
// q^ (the printed e^{beta q} would *invert* the ranking for beta > 0, which
// contradicts Remark 2; equivalently the paper's beta is negative). With
// alpha, beta >= 0, S maps [0, inf) into [1, 1 + alpha/2) and S(0) = 1.
//
// The paper notes alpha and beta "should be small" early in training; the
// optional warmup linearly ramps both from 0 over the first `warmup_rounds`
// cloud rounds.
#pragma once

#include <cstddef>

namespace mach::core {

struct TransferOptions {
  double alpha = 1.0;
  double beta = 3.0;
  /// Cloud rounds over which alpha/beta ramp linearly from 0 to their
  /// configured values (0 disables warmup).
  std::size_t warmup_rounds = 2;
};

class TransferFunction {
 public:
  explicit TransferFunction(TransferOptions options = {});

  /// S(q^) at the current warmup level.
  double operator()(double virtual_probability) const;

  /// Advances the warmup schedule (call once per cloud round).
  void advance_round();

  /// Effective (warmed-up) coefficients.
  double effective_alpha() const;
  double effective_beta() const;
  std::size_t rounds_seen() const noexcept { return rounds_; }
  /// Checkpoint restore: jumps the warmup schedule to `rounds` advances.
  void set_rounds_seen(std::size_t rounds) noexcept { rounds_ = rounds; }

 private:
  TransferOptions options_;
  std::size_t rounds_ = 0;
};

}  // namespace mach::core
