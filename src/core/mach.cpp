#include "core/mach.h"

#include <algorithm>
#include <stdexcept>

#include "ckpt/bytes.h"
#include "obs/span_profiler.h"
#include "sampling/budget.h"

namespace mach::core {

std::vector<double> edge_sampling_probabilities(std::span<const double> g_squared,
                                                double capacity,
                                                const TransferFunction* transfer) {
  const std::size_t n = g_squared.size();
  if (n == 0) return {};
  const double budget = std::clamp(capacity, 0.0, static_cast<double>(n));

  double total = 0.0;
  for (double g : g_squared) total += std::max(g, 0.0);

  if (transfer == nullptr) {
    // Ablation path: raw Eq. 16 scores through budget water-filling.
    std::vector<double> weights(g_squared.begin(), g_squared.end());
    return sampling::budgeted_probabilities(weights, budget);
  }

  // Eq. 16: virtual probabilities (may exceed 1, that is fine — the transfer
  // function squashes them).
  std::vector<double> smoothed(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double virtual_q =
        total > 0.0 ? budget * std::max(g_squared[i], 0.0) / total
                    : budget / static_cast<double>(n);
    // Eq. 17.
    smoothed[i] = (*transfer)(virtual_q);
  }
  // Eq. 18: renormalise the smoothed scores onto the budget. S(.) >= 1 keeps
  // every ratio near uniform, so the per-device cap of 1 rarely binds; the
  // water-filling handles the corner cases (budget close to |M_n^t|).
  return sampling::budgeted_probabilities(smoothed, budget);
}

void fill_ucb_introspection(const UcbEstimator& estimator,
                            obs::SamplerIntrospection& out) {
  const std::size_t devices = estimator.num_devices();
  out.g_squared.resize(devices);
  out.buffer_sizes.resize(devices);
  out.participations.resize(devices);
  for (std::size_t m = 0; m < devices; ++m) {
    const auto device = static_cast<std::uint32_t>(m);
    out.g_squared[m] = estimator.estimate(device);
    out.buffer_sizes[m] = estimator.buffer_size(device);
    out.participations[m] = estimator.participations(device);
  }
}

MachSampler::MachSampler(MachOptions options)
    : options_(options), transfer_(options.transfer) {}

void MachSampler::bind(const hfl::FederationInfo& info) {
  estimator_.emplace(info.num_devices, options_.ucb);
  transfer_ = TransferFunction(options_.transfer);
}

std::vector<double> MachSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  if (!estimator_) throw std::logic_error("MachSampler: bind() not called");
  const obs::SpanGuard span("mach_weights", static_cast<std::int64_t>(ctx.t),
                            static_cast<std::int64_t>(ctx.edge));
  // Reused scratch: the per-round estimate gather allocates nothing in
  // steady state (the returned probability vector is the caller's).
  g2_scratch_.resize(ctx.devices.size());
  for (std::size_t i = 0; i < ctx.devices.size(); ++i) {
    g2_scratch_[i] = estimator_->estimate(ctx.devices[i]);
  }
  return edge_sampling_probabilities(g2_scratch_, ctx.capacity,
                                     options_.use_transfer ? &transfer_ : nullptr);
}

void MachSampler::observe_training(const hfl::TrainingObservation& obs) {
  if (!estimator_) return;
  estimator_->record(obs.device, obs.local_grad_sq_norms);
}

void MachSampler::on_cloud_round(std::size_t t) {
  const obs::SpanGuard span("mach_ucb_refresh", static_cast<std::int64_t>(t));
  if (estimator_) estimator_->on_cloud_round(t);
  transfer_.advance_round();
}

bool MachSampler::introspect(obs::SamplerIntrospection& out) const {
  if (!estimator_) return false;
  fill_ucb_introspection(*estimator_, out);
  return true;
}

void MachSampler::save_state(ckpt::ByteWriter& out) const {
  out.u8(2);  // blob version (v2: SoA estimator accumulators)
  out.u64(transfer_.rounds_seen());
  out.boolean(estimator_.has_value());
  if (estimator_) estimator_->save_state(out);
}

void MachSampler::load_state(ckpt::ByteReader& in) {
  if (in.u8() != 2) {
    throw ckpt::CorruptPayload("MachSampler: unknown state version");
  }
  transfer_.set_rounds_seen(static_cast<std::size_t>(in.u64()));
  const bool had_estimator = in.boolean();
  if (had_estimator != estimator_.has_value()) {
    throw ckpt::CorruptPayload("MachSampler: estimator presence mismatch");
  }
  if (estimator_) estimator_->load_state(in);
}

MachOracleSampler::MachOracleSampler(MachOptions options)
    : options_(options), transfer_(options.transfer) {}

std::vector<double> MachOracleSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  if (ctx.oracle_grad_sq_norms.size() != ctx.devices.size()) {
    throw std::logic_error("MachOracleSampler: oracle norms missing");
  }
  return edge_sampling_probabilities(ctx.oracle_grad_sq_norms, ctx.capacity,
                                     options_.use_transfer ? &transfer_ : nullptr);
}

void MachOracleSampler::on_cloud_round(std::size_t /*t*/) {
  transfer_.advance_round();
}

void MachOracleSampler::save_state(ckpt::ByteWriter& out) const {
  out.u8(1);  // blob version
  // The oracle probes gradient norms fresh every step; the warmup position
  // of the transfer function is the only state that carries across steps.
  out.u64(transfer_.rounds_seen());
}

void MachOracleSampler::load_state(ckpt::ByteReader& in) {
  if (in.u8() != 1) {
    throw ckpt::CorruptPayload("MachOracleSampler: unknown state version");
  }
  transfer_.set_rounds_seen(static_cast<std::size_t>(in.u64()));
}

}  // namespace mach::core
