// The sampler registry: the single mapping CLI name -> factory shared by
// experiment_runner, the benches (fig*/zoo) and the tests, so a sampler's
// spelling exists in exactly one place. Every entry's canonical name equals
// its Sampler::name() (asserted by tests/core/test_registry.cpp), which is
// what checkpoint fingerprints and trace run_begin lines record.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/mach.h"
#include "hfl/sampler.h"

namespace mach::core {

/// One registered sampling algorithm.
struct SamplerInfo {
  /// Canonical CLI name; equals the constructed Sampler::name().
  const char* name;
  /// Paper/figure display label ("MACH", "US", "FedEMD", ...).
  const char* display;
  /// One-line description for --help listings.
  const char* summary;
  /// True for algorithms the bench/zoo comparison sweeps by default
  /// (everything except the tests-only full-participation sampler).
  bool in_zoo;
  /// True when the sampler promises sum(q) <= K_n per edge (Eq. 11/12).
  /// False for samplers with a different budget contract: MACH-G spreads one
  /// federation-wide budget (per-edge sums fluctuate around K_n while the
  /// global sum stays bounded), and the full-participation ablation has no
  /// budget at all. The conformance suite checks the matching invariant.
  bool edge_budgeted;
  hfl::SamplerPtr (*factory)(const MachOptions&);
};

/// Every registered sampler, in presentation order (paper algorithms first,
/// then the extended and cross-paper zoo entries).
std::span<const SamplerInfo> sampler_registry();

/// Registry names in order, e.g. for exhaustive test instantiation.
const std::vector<std::string>& registered_samplers();

/// The registry names with in_zoo set — bench/zoo's default algorithm list.
const std::vector<std::string>& zoo_algorithms();

/// "mach|mach_p|..." for CLI flag help strings.
std::string sampler_flag_help();

/// Creates a sampler by its canonical name via the registry. Throws
/// std::invalid_argument listing the valid names for unknown ones.
hfl::SamplerPtr make_sampler(const std::string& name,
                             const MachOptions& mach_options = {});

/// The five algorithms compared throughout the paper's evaluation, in the
/// order the figures/tables list them.
const std::vector<std::string>& paper_algorithms();

/// Registry display label ("MACH", "MACH-P", "US", "CS", "SS", ...); echoes
/// unknown names back unchanged.
std::string display_name(const std::string& sampler_name);

}  // namespace mach::core
