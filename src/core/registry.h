// Name-based sampler construction shared by benches, examples and tests.
#pragma once

#include <string>
#include <vector>

#include "core/mach.h"
#include "hfl/sampler.h"

namespace mach::core {

/// Creates a sampler by its canonical name:
///   "uniform" | "class_balance" | "statistical" | "mach" | "mach_p" | "full".
/// Throws std::invalid_argument for unknown names.
hfl::SamplerPtr make_sampler(const std::string& name,
                             const MachOptions& mach_options = {});

/// The five algorithms compared throughout the paper's evaluation, in the
/// order the figures/tables list them.
const std::vector<std::string>& paper_algorithms();

/// Paper display label ("MACH", "MACH-P", "US", "CS", "SS").
std::string display_name(const std::string& sampler_name);

}  // namespace mach::core
