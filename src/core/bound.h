// Theorem 1's convergence-bound machinery in executable form.
//
// The sampling-dependent part of the bound (Eq. 9) is, per edge and step,
//     B(q) = sum_m G_m^2 / q_m,
// minimised subject to sum_m q_m <= K_n (Eq. 11) by the closed-form optimum
// of Remark 2 / Eq. (13):  q*_m = K_n G_m^2 / sum_{m'} G_{m'}^2.
// These helpers let tests and examples evaluate strategies against the
// theory directly.
#pragma once

#include <span>
#include <vector>

namespace mach::core {

/// The bound term sum_m G_m^2 / q_m. Probabilities must be positive where
/// the corresponding G_m^2 is positive; violating entries contribute +inf.
double convergence_bound_term(std::span<const double> g_squared,
                              std::span<const double> probabilities);

/// Eq. (13) as printed: q_m = K G_m^2 / sum G^2. May exceed 1 (the paper
/// handles that with the transfer function); all-zero G^2 degenerates to a
/// uniform split of the budget.
///
/// Reproduction note: plugging Eq. (13) into the bound term gives
/// G_m^2/q_m = sum G^2 / K for every m — it *equalises* the per-device
/// contributions and attains exactly the same bound value as uniform
/// sampling. The exact Lagrangian minimiser of sum G^2/q s.t. sum q = K is
/// q proportional to G (the square root), provided by
/// optimal_probabilities_sqrt below. MACH follows Eq. (13) as published.
std::vector<double> optimal_probabilities_eq13(std::span<const double> g_squared,
                                               double capacity);

/// The exact minimiser of sum_m G_m^2 / q_m subject to sum q = capacity
/// (ignoring the [0,1] caps): q_m = capacity * G_m / sum G.
std::vector<double> optimal_probabilities_sqrt(std::span<const double> g_squared,
                                               double capacity);

/// Full Theorem 1 right-hand side for a constant per-step bound term.
/// Useful for examples that want to show the bound's shape in T.
struct BoundParams {
  double f0_minus_fstar = 1.0;  // f(w^0) - f*
  double gamma = 0.01;          // learning rate
  double lipschitz = 1.0;       // L
  std::size_t local_epochs = 10;    // I
  std::size_t cloud_interval = 5;   // T_g
  std::size_t num_devices = 100;    // |M|
};

double theorem1_bound(const BoundParams& params, double mean_bound_term,
                      std::size_t steps);

}  // namespace mach::core
