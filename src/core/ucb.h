// Experience updating (Algorithm 2): online UCB estimation of each device's
// maximum expected squared gradient norm G_m^2.
//
// Every device keeps a gradient-experience buffer of the ||g||^2 values it
// produced between consecutive edge-to-cloud communications. At each cloud
// round the estimate is refreshed as
//     G~^2_m = max_{t'} 1_m^{t'} Avg(G_m^{t'})  +  sqrt(log t / sum_t' 1_m^{t'})
// (Eq. 15: exploitation term A = best per-round mean seen so far,
// exploration term B = confidence radius shrinking with participations),
// and the buffer is cleared (Alg. 2 line 4).
#pragma once

#include <cstdint>
#include <vector>

namespace mach::ckpt {
class ByteWriter;
class ByteReader;
}  // namespace mach::ckpt

namespace mach::core {

struct UcbOptions {
  /// Scale on the exploration term (1.0 = paper's Eq. 15).
  double exploration_weight = 1.0;
  /// Ablation: drop term B entirely (pure greedy exploitation).
  bool use_exploration = true;
  /// Ablation: keep the buffer across cloud rounds instead of clearing it.
  bool clear_buffer_on_cloud_round = true;
  /// Optimistic prior for devices that have never participated: their
  /// exploitation term borrows the current population maximum.
  bool optimistic_init = true;
};

class UcbEstimator {
 public:
  UcbEstimator(std::size_t num_devices, UcbOptions options = {});

  /// Records one participation of `device`: the ||g||^2 values of its I
  /// local steps are appended to its experience buffer (Eq. 14).
  void record(std::uint32_t device, const std::vector<double>& grad_sq_norms);

  /// Cloud-round bookkeeping: folds buffers into the per-round maxima and
  /// (by default) clears them. `t` is the current global time step used in
  /// the log t exploration numerator.
  void on_cloud_round(std::size_t t);

  /// Current estimate G~^2_m (Eq. 15). Never-participated devices return an
  /// optimistic value so they keep being explored.
  double estimate(std::uint32_t device) const;

  /// Exploitation term A only (tests / ablation introspection).
  double exploitation(std::uint32_t device) const;
  /// Exploration term B only.
  double exploration(std::uint32_t device) const;

  std::size_t participations(std::uint32_t device) const {
    return counts_.at(device);
  }
  /// Experiences buffered for `device` since the last cloud round (the
  /// |G_m^t| of Alg. 2 line 4; telemetry/introspection).
  std::size_t buffer_size(std::uint32_t device) const {
    return buffers_.at(device).size();
  }
  std::size_t num_devices() const noexcept { return counts_.size(); }

  /// Checkpointing: serialises all of Algorithm 2's accumulated state —
  /// experience buffers, per-round maxima, participation counts, the
  /// population maximum and the last cloud-round time.
  void save_state(ckpt::ByteWriter& out) const;
  /// Restores a save_state blob into this estimator. Throws
  /// ckpt::CorruptPayload when the blob's device count disagrees with the
  /// estimator's (snapshot from a different topology).
  void load_state(ckpt::ByteReader& in);

 private:
  UcbOptions options_;
  std::vector<std::vector<double>> buffers_;  // G_m^t: current-round experiences
  std::vector<double> max_round_avg_;         // max_{t'} Avg(G_m^{t'})
  std::vector<bool> has_estimate_;
  std::vector<std::size_t> counts_;           // sum_t' 1_m^{t'}
  double population_max_ = 0.0;
  std::size_t last_cloud_t_ = 0;
};

}  // namespace mach::core
