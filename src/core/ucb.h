// Experience updating (Algorithm 2): online UCB estimation of each device's
// maximum expected squared gradient norm G_m^2.
//
// Every device keeps a gradient-experience buffer of the ||g||^2 values it
// produced between consecutive edge-to-cloud communications. At each cloud
// round the estimate is refreshed as
//     G~^2_m = max_{t'} 1_m^{t'} Avg(G_m^{t'})  +  sqrt(log t / sum_t' 1_m^{t'})
// (Eq. 15: exploitation term A = best per-round mean seen so far,
// exploration term B = confidence radius shrinking with participations),
// and the buffer is cleared (Alg. 2 line 4).
//
// Storage is structure-of-arrays with a fixed per-device byte budget: the
// per-device experience buffer is held as a running (sum, count) pair — the
// round mean Avg(G_m^t) is the same left-to-right fold either way, so the
// estimates are bitwise identical to the buffered representation while the
// state shrinks from an unbounded vector per device to 29 bytes per device.
// Cloud-round refreshes walk only the devices that actually buffered
// experience since the last refresh (O(participants), not O(M)).
#pragma once

#include <cstdint>
#include <vector>

namespace mach::ckpt {
class ByteWriter;
class ByteReader;
}  // namespace mach::ckpt

namespace mach::core {

struct UcbOptions {
  /// Scale on the exploration term (1.0 = paper's Eq. 15).
  double exploration_weight = 1.0;
  /// Ablation: drop term B entirely (pure greedy exploitation).
  bool use_exploration = true;
  /// Ablation: keep the buffer across cloud rounds instead of clearing it.
  bool clear_buffer_on_cloud_round = true;
  /// Optimistic prior for devices that have never participated: their
  /// exploitation term borrows the current population maximum.
  bool optimistic_init = true;
};

class UcbEstimator {
 public:
  UcbEstimator(std::size_t num_devices, UcbOptions options = {});

  /// Records one participation of `device`: the ||g||^2 values of its I
  /// local steps are folded into its experience accumulator (Eq. 14).
  void record(std::uint32_t device, const std::vector<double>& grad_sq_norms);

  /// Cloud-round bookkeeping: folds buffered experience into the per-round
  /// maxima and (by default) clears it. Only devices that buffered since the
  /// last refresh are visited. `t` is the current global time step used in
  /// the log t exploration numerator.
  void on_cloud_round(std::size_t t);

  /// Current estimate G~^2_m (Eq. 15). Never-participated devices return an
  /// optimistic value so they keep being explored.
  double estimate(std::uint32_t device) const;

  /// Exploitation term A only (tests / ablation introspection).
  double exploitation(std::uint32_t device) const;
  /// Exploration term B only.
  double exploration(std::uint32_t device) const;

  std::size_t participations(std::uint32_t device) const {
    return counts_.at(device);
  }
  /// Experiences buffered for `device` since the last cloud round (the
  /// |G_m^t| of Alg. 2 line 4; telemetry/introspection).
  std::size_t buffer_size(std::uint32_t device) const {
    return buffer_count_.at(device);
  }
  std::size_t num_devices() const noexcept { return counts_.size(); }

  /// Fixed per-device state: sum(8) + count(4) + max_avg(8) + flags(1) +
  /// participations(4) + active-list slot(4).
  static constexpr std::size_t bytes_per_device() noexcept { return 29; }

  /// Checkpointing: serialises all of Algorithm 2's accumulated state —
  /// experience accumulators, per-round maxima, participation counts, the
  /// population maximum and the last cloud-round time.
  void save_state(ckpt::ByteWriter& out) const;
  /// Restores a save_state blob into this estimator. Throws
  /// ckpt::CorruptPayload when the blob's device count disagrees with the
  /// estimator's (snapshot from a different topology).
  void load_state(ckpt::ByteReader& in);

 private:
  static constexpr std::uint8_t kHasEstimate = 1;
  static constexpr std::uint8_t kInActiveList = 2;

  UcbOptions options_;
  // SoA per-device state (parallel arrays).
  std::vector<double> buffer_sum_;          // Σ G_m^t since last refresh
  std::vector<std::uint32_t> buffer_count_; // |G_m^t|
  std::vector<double> max_round_avg_;       // max_{t'} Avg(G_m^{t'})
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint32_t> counts_;       // sum_t' 1_m^{t'}
  // Devices with a non-empty buffer — the only ones a refresh must visit.
  std::vector<std::uint32_t> active_;
  double population_max_ = 0.0;
  std::size_t last_cloud_t_ = 0;
};

}  // namespace mach::core
