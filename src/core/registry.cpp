#include "core/registry.h"

#include <memory>
#include <stdexcept>

#include "core/global_mach.h"
#include "sampling/baselines.h"
#include "sampling/extended.h"

namespace mach::core {

hfl::SamplerPtr make_sampler(const std::string& name, const MachOptions& mach_options) {
  if (name == "uniform") return std::make_unique<sampling::UniformSampler>();
  if (name == "class_balance") return std::make_unique<sampling::ClassBalanceSampler>();
  if (name == "statistical") return std::make_unique<sampling::StatisticalSampler>();
  if (name == "mach") return std::make_unique<MachSampler>(mach_options);
  if (name == "mach_p") return std::make_unique<MachOracleSampler>(mach_options);
  if (name == "mach_global") return std::make_unique<GlobalMachSampler>(mach_options);
  if (name == "full") return std::make_unique<sampling::FullParticipationSampler>();
  if (name == "power_of_choice") {
    return std::make_unique<sampling::PowerOfChoiceSampler>();
  }
  if (name == "oort") return std::make_unique<sampling::OortSampler>();
  throw std::invalid_argument("make_sampler: unknown sampler '" + name + "'");
}

const std::vector<std::string>& paper_algorithms() {
  static const std::vector<std::string> algorithms = {
      "mach", "mach_p", "uniform", "class_balance", "statistical"};
  return algorithms;
}

std::string display_name(const std::string& sampler_name) {
  if (sampler_name == "mach") return "MACH";
  if (sampler_name == "mach_p") return "MACH-P";
  if (sampler_name == "uniform") return "US";
  if (sampler_name == "class_balance") return "CS";
  if (sampler_name == "statistical") return "SS";
  if (sampler_name == "full") return "FULL";
  if (sampler_name == "mach_global") return "MACH-G";
  if (sampler_name == "power_of_choice") return "PoC";
  if (sampler_name == "oort") return "Oort";
  return sampler_name;
}

}  // namespace mach::core
