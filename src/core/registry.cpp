#include "core/registry.h"

#include <memory>
#include <stdexcept>

#include "core/global_mach.h"
#include "sampling/baselines.h"
#include "sampling/extended.h"
#include "sampling/zoo.h"

namespace mach::core {

namespace {

constexpr SamplerInfo kRegistry[] = {
    {"mach", "MACH", "the paper's mobility-aware UCB sampler (Alg. 1-3)", true, true,
     [](const MachOptions& options) -> hfl::SamplerPtr {
       return std::make_unique<MachSampler>(options);
     }},
    {"mach_p", "MACH-P", "MACH with oracle gradient probes (upper bound)", true, true,
     [](const MachOptions& options) -> hfl::SamplerPtr {
       return std::make_unique<MachOracleSampler>(options);
     }},
    {"mach_global", "MACH-G", "MACH with one federation-wide UCB table", true, false,
     [](const MachOptions& options) -> hfl::SamplerPtr {
       return std::make_unique<GlobalMachSampler>(options);
     }},
    {"uniform", "US", "uniform random sampling", true, true,
     [](const MachOptions&) -> hfl::SamplerPtr {
       return std::make_unique<sampling::UniformSampler>();
     }},
    {"class_balance", "CS", "class-balance sampling (rare-class holders up)",
     true, true,
     [](const MachOptions&) -> hfl::SamplerPtr {
       return std::make_unique<sampling::ClassBalanceSampler>();
     }},
    {"statistical", "SS", "statistical-utility sampling (online loss EMA)",
     true, true,
     [](const MachOptions&) -> hfl::SamplerPtr {
       return std::make_unique<sampling::StatisticalSampler>();
     }},
    {"power_of_choice", "PoC", "power-of-choice candidate-set selection", true, true,
     [](const MachOptions&) -> hfl::SamplerPtr {
       return std::make_unique<sampling::PowerOfChoiceSampler>();
     }},
    {"oort", "Oort", "Oort utility + staleness exploration bonus", true, true,
     [](const MachOptions&) -> hfl::SamplerPtr {
       return std::make_unique<sampling::OortSampler>();
     }},
    {"mobility_cluster", "ClusterFL",
     "cluster-then-sample per edge (arXiv 2108.09103)", true, true,
     [](const MachOptions&) -> hfl::SamplerPtr {
       return std::make_unique<sampling::MobilityClusterSampler>();
     }},
    {"emd", "FedEMD", "label-distribution EMD-to-global scoring (arXiv 2310.00198)",
     true, true,
     [](const MachOptions&) -> hfl::SamplerPtr {
       return std::make_unique<sampling::EmdGuidedSampler>();
     }},
    {"churn_aware", "Churn", "newcomer/staleness priority for high mobility",
     true, true,
     [](const MachOptions&) -> hfl::SamplerPtr {
       return std::make_unique<sampling::ChurnAwareSampler>();
     }},
    {"full", "FULL", "full participation, q = 1 (tests/ablations only)", false, false,
     [](const MachOptions&) -> hfl::SamplerPtr {
       return std::make_unique<sampling::FullParticipationSampler>();
     }},
};

}  // namespace

std::span<const SamplerInfo> sampler_registry() { return kRegistry; }

const std::vector<std::string>& registered_samplers() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const SamplerInfo& info : kRegistry) out.emplace_back(info.name);
    return out;
  }();
  return names;
}

const std::vector<std::string>& zoo_algorithms() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const SamplerInfo& info : kRegistry) {
      if (info.in_zoo) out.emplace_back(info.name);
    }
    return out;
  }();
  return names;
}

std::string sampler_flag_help() {
  std::string help;
  for (const SamplerInfo& info : kRegistry) {
    if (!help.empty()) help += '|';
    help += info.name;
  }
  return help;
}

hfl::SamplerPtr make_sampler(const std::string& name, const MachOptions& mach_options) {
  for (const SamplerInfo& info : kRegistry) {
    if (name == info.name) return info.factory(mach_options);
  }
  throw std::invalid_argument("make_sampler: unknown sampler '" + name +
                              "' (valid: " + sampler_flag_help() + ")");
}

const std::vector<std::string>& paper_algorithms() {
  static const std::vector<std::string> algorithms = {
      "mach", "mach_p", "uniform", "class_balance", "statistical"};
  return algorithms;
}

std::string display_name(const std::string& sampler_name) {
  for (const SamplerInfo& info : kRegistry) {
    if (sampler_name == info.name) return info.display;
  }
  return sampler_name;
}

}  // namespace mach::core
