// ScaleSimulator: the million-device / thousand-edge sampling engine.
//
// The paper-scale HflSimulator carries real models, codecs and datasets and
// keeps every output bitwise stable — but its per-round cost is O(M) in the
// population. ScaleSimulator is the other end of the trade: no neural
// training (device gradients are synthesised from pure hash functions), and
// every per-round pass is sublinear in M so a 1M-device round completes in
// well under a second inside a fixed memory envelope:
//
//   * device state is structure-of-arrays with a fixed per-device byte
//     budget (DeviceStateArrays, kBytesPerDevice documented below);
//   * mobility is a GridMobilityStream — O(movers) per step, no
//     materialised trace, 8-byte-per-device seekable cursor;
//   * Eq. 16–18 sampling runs over per-edge Fenwick trees (incremental
//     weight updates, O(K log M) without-replacement draws) or per-edge
//     alias tables (O(1) batch draws, rebuilt when weights refresh).
//
// Fidelity contract. At scale the engine keeps the paper's *structure* —
// UCB experience updating (Eq. 15, exact), transfer smoothing S(q̂)
// (Eq. 17, exact), weighted sampling ∝ smoothed scores — but makes two
// documented approximations to reach sublinear rounds:
//   1. Eq. 16's denominator Σ G~² is maintained incrementally and the
//      stored weights are renormalised lazily: an edge's weights are fully
//      rebuilt when the incremental total drifts >`rebuild_drift` from the
//      one they were computed against, and on a geometric schedule (t
//      doubling) that also refreshes the slowly-moving log-t exploration
//      term. Amortised cost: O(members · log T / T) per round.
//   2. Eq. 18's independent-Bernoulli inclusion (O(M) uniforms per round)
//      becomes exactly-K without-replacement draws proportional to the same
//      smoothed weights (its fixed-size conditional analogue); the cap-at-1
//      corner cannot bind because S(.) maps into [1, 1+α/2).
// Everything is deterministic: same config + seed ⇒ identical round digests,
// and save_state/load_state resume bit-for-bit from any round (verified by
// tests/scale/).
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/bytes.h"
#include "common/rng.h"
#include "core/device_soa.h"
#include "core/transfer.h"
#include "mobility/stream.h"
#include "sampling/alias.h"
#include "sampling/fenwick.h"

namespace mach::core {

struct ScaleConfig {
  std::size_t num_devices = 0;
  std::size_t num_edges = 0;
  std::uint64_t seed = 1;
  /// Expected fraction of each edge's members sampled per round (per-edge
  /// budget K_n = max(1, round(participation * |M_n|))).
  double participation = 0.001;
  /// Rounds between cloud aggregations (UCB refresh cadence, Alg. 2).
  std::size_t cloud_every = 5;
  /// Device dwell time at an edge, uniform in [min_dwell, max_dwell] steps.
  std::uint32_t min_dwell = 4;
  std::uint32_t max_dwell = 16;
  /// Eq. 17 smoothing.
  TransferOptions transfer;
  /// Exploration weight of the Eq. 15 confidence radius.
  double exploration_weight = 1.0;
  /// Rebuild an edge's stored weights when its incremental Σ G~² drifts
  /// this fraction from the denominator they were renormalised against.
  double rebuild_drift = 0.25;
  /// false: exact without-replacement Fenwick draws (default).
  /// true: alias-table batch draws (duplicates dropped — the O(1)-per-draw
  /// Poisson-like mode; tables rebuild only when weights change).
  bool use_alias_draws = false;
};

/// Per-round outcome digest: everything the determinism and scaling tests
/// need without the engine ever materialising an O(M) report.
struct ScaleRoundStats {
  std::size_t t = 0;
  std::size_t movers = 0;        // devices that switched edges this round
  std::size_t participants = 0;  // devices sampled across all edges
  std::size_t weight_rebuilds = 0;  // edges whose weights were renormalised
  /// FNV-1a over (edge, device) pairs in draw order — two runs agree on
  /// every sampled set iff the digests agree every round.
  std::uint64_t sample_digest = 0;
};

class ScaleSimulator {
 public:
  explicit ScaleSimulator(const ScaleConfig& config);

  /// One global round: advance mobility, sample every edge, record
  /// synthetic gradient experience, refresh UCB state on cloud rounds.
  ScaleRoundStats step();

  std::size_t t() const noexcept { return t_; }
  std::size_t num_devices() const noexcept { return config_.num_devices; }
  std::size_t num_edges() const noexcept { return config_.num_edges; }

  /// Current G~² estimate of one device (Eq. 15; tests/introspection).
  double estimate(std::uint32_t device) const;
  std::size_t participations(std::uint32_t device) const {
    return devices_.participations.at(device);
  }
  /// Members of one edge (tests; O(|M_n|)).
  const std::vector<std::uint32_t>& edge_members(std::size_t edge) const {
    return edges_.at(edge).members;
  }

  /// Documented fixed per-device budget: DeviceStateArrays (41) + mobility
  /// cursor (8) + edge member entry (4) + Fenwick tree+values (16) + alias
  /// table prob+alias (12) + growth headroom. memory_bytes() must stay
  /// below bytes_per_device() * M + O(num_edges) — asserted by the tests
  /// and the bench/scale RSS gate.
  static constexpr std::size_t bytes_per_device() noexcept { return 128; }

  /// Actual bytes held by all per-device and per-edge structures.
  std::size_t memory_bytes() const noexcept;

  /// Full engine snapshot; load_state resumes bit-for-bit (same future
  /// round digests as the uninterrupted run). Non-mutating.
  void save_state(ckpt::ByteWriter& out) const;
  void load_state(ckpt::ByteReader& in);

 private:
  struct EdgeState {
    std::vector<std::uint32_t> members;  // device id per slot
    sampling::FenwickTree weights;       // smoothed weight per slot
    sampling::AliasTable alias;          // batch-draw mode table
    bool alias_dirty = true;
    double g2_total = 0.0;    // incremental Σ G~² over members
    double ref_total = 0.0;   // denominator the stored weights used
    std::size_t next_rebuild_t = 1;  // geometric renormalisation schedule

    std::size_t memory_bytes() const noexcept {
      return members.capacity() * sizeof(std::uint32_t) +
             weights.memory_bytes() + alias.memory_bytes();
    }
  };

  /// Synthetic ||g||² observation for a participation — a pure function of
  /// (seed, device, t): heterogeneous across devices, noisy across time,
  /// nothing to store or checkpoint.
  double synth_grad_sq(std::uint32_t device, std::size_t t) const;

  double exploration(std::uint32_t device) const;
  /// Eq. 17 smoothing of the Eq. 16 virtual probability under the edge's
  /// current reference denominator.
  double smoothed_weight(double g2_estimate, const EdgeState& edge) const;

  void insert_device(std::uint32_t device, std::uint32_t edge);
  void remove_device(std::uint32_t device);
  /// Re-derives a device's stored weight after its estimate changed,
  /// keeping the edge's incremental Σ G~² exact.
  void refresh_weight(std::uint32_t device);
  /// O(members) renormalisation of one edge against its current total.
  void rebuild_edge(std::size_t n);
  void cloud_refresh();

  ScaleConfig config_;
  TransferFunction transfer_;
  DeviceStateArrays devices_;
  std::vector<EdgeState> edges_;
  mobility::GridMobilityStream stream_;
  common::Rng draw_rng_;
  // Devices with buffered experience since the last cloud refresh.
  std::vector<std::uint32_t> active_;
  std::vector<std::uint8_t> in_active_;  // membership flag for active_
  double population_max_ = 0.0;
  std::size_t last_cloud_t_ = 0;
  std::size_t t_ = 0;
  // Reused per-round scratch (no steady-state allocation).
  std::vector<std::uint32_t> moved_;
  std::vector<std::uint32_t> sampled_;
  std::vector<double> scratch_;  // weight staging for rebuilds/alias/load
};

}  // namespace mach::core
