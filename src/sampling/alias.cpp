#include "sampling/alias.h"

#include <algorithm>
#include <cmath>

namespace mach::sampling {

void AliasTable::build(std::span<const double> weights) {
  const std::size_t n = weights.size();
  prob_.clear();
  alias_.clear();
  total_ = 0.0;
  for (const double w : weights) total_ += std::max(w, 0.0);
  if (n == 0 || total_ <= 0.0) {
    total_ = 0.0;
    return;
  }

  // Scale to mean 1: scaled_i = w_i * n / total.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = std::max(weights[i], 0.0) * static_cast<double>(n) / total_;
  }

  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alias_[i] = static_cast<std::uint32_t>(i);

  // Vose pairing with deterministic worklists: filled ascending, popped LIFO.
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers (either list) carry probability 1 up to rounding: make them
  // self-aliasing certainties so no draw can escape the simplex.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::draw(common::Rng& rng) const {
  const std::size_t n = prob_.size();
  if (n == 0) return 0;
  const double x = rng.uniform() * static_cast<double>(n);
  std::size_t bucket = static_cast<std::size_t>(x);
  if (bucket >= n) bucket = n - 1;  // guard u ≈ 1 rounding
  const double frac = x - static_cast<double>(bucket);
  return frac < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasTable::implied_probability(std::size_t i) const {
  const std::size_t n = prob_.size();
  if (i >= n) return 0.0;
  double mass = prob_[i];
  for (std::size_t j = 0; j < n; ++j) {
    if (j != i && alias_[j] == static_cast<std::uint32_t>(i)) {
      mass += 1.0 - prob_[j];
    }
  }
  // A self-aliasing bucket's failure branch also lands on i.
  if (alias_[i] == static_cast<std::uint32_t>(i)) mass += 1.0 - prob_[i];
  return mass / static_cast<double>(n);
}

}  // namespace mach::sampling
