#include "sampling/zoo.h"

#include <algorithm>
#include <cmath>

#include "ckpt/bytes.h"
#include "sampling/baselines.h"
#include "sampling/budget.h"

namespace mach::sampling {

// ---------------------------------------------------------------------------
// MobilityClusterSampler

void MobilityClusterSampler::bind(const hfl::FederationInfo& info) {
  directions_.assign(info.num_devices, {});
  for (std::size_t m = 0; m < info.class_histograms.size(); ++m) {
    const auto& histogram = info.class_histograms[m];
    std::vector<double> direction(histogram.size(), 0.0);
    double norm_sq = 0.0;
    for (std::size_t c = 0; c < histogram.size(); ++c) {
      direction[c] = static_cast<double>(histogram[c]);
      norm_sq += direction[c] * direction[c];
    }
    if (norm_sq > 0.0) {
      const double inv_norm = 1.0 / std::sqrt(norm_sq);
      for (double& v : direction) v *= inv_norm;
    }
    directions_[m] = std::move(direction);
  }
}

std::vector<std::uint32_t> MobilityClusterSampler::cluster_devices(
    std::span<const std::uint32_t> devices) const {
  // Greedy leader clustering: walk devices in edge order; join the first
  // cluster whose leader is similar enough, else found a new one. Leaders
  // are fixed once created, so the assignment is deterministic and does not
  // depend on any RNG or iteration subtleties.
  std::vector<std::uint32_t> assignment(devices.size(), 0);
  std::vector<std::uint32_t> leaders;  // device index into `devices`
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const std::uint32_t device = devices[i];
    const bool known =
        device < directions_.size() && !directions_[device].empty();
    std::uint32_t cluster = kNoCluster;
    if (known) {
      const auto& direction = directions_[device];
      for (std::size_t c = 0; c < leaders.size(); ++c) {
        const auto& leader = directions_[devices[leaders[c]]];
        if (leader.size() != direction.size()) continue;
        double cosine = 0.0;
        for (std::size_t k = 0; k < direction.size(); ++k) {
          cosine += direction[k] * leader[k];
        }
        if (cosine >= similarity_threshold_) {
          cluster = static_cast<std::uint32_t>(c);
          break;
        }
      }
    } else if (!leaders.empty()) {
      // Unbound device histograms: everyone shares one cluster (uniform).
      cluster = 0;
    }
    if (cluster == kNoCluster) {
      cluster = static_cast<std::uint32_t>(leaders.size());
      leaders.push_back(static_cast<std::uint32_t>(i));
    }
    assignment[i] = cluster;
  }
  return assignment;
}

std::vector<double> MobilityClusterSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  const std::size_t n = ctx.devices.size();
  if (n == 0) return {};
  const std::vector<std::uint32_t> assignment = cluster_devices(ctx.devices);
  std::size_t num_clusters = 0;
  for (const std::uint32_t c : assignment) {
    num_clusters = std::max<std::size_t>(num_clusters, c + 1);
  }
  std::vector<double> cluster_size(num_clusters, 0.0);
  for (const std::uint32_t c : assignment) cluster_size[c] += 1.0;
  // Budget split evenly across clusters, uniformly within each cluster:
  // weight ∝ 1 / (num_clusters * |cluster|). Water-filling renormalises to
  // the edge budget and redistributes where the per-device cap of 1 binds
  // (e.g. a singleton cluster whose even share exceeds one device).
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / (static_cast<double>(num_clusters) * cluster_size[assignment[i]]);
  }
  return budgeted_probabilities(weights, ctx.capacity);
}

// ---------------------------------------------------------------------------
// EmdGuidedSampler

void EmdGuidedSampler::bind(const hfl::FederationInfo& info) {
  emd_.assign(info.num_devices, 0.0);
  if (info.num_classes == 0 || info.class_histograms.empty()) return;

  // Global label marginal = sum of per-device histograms.
  std::vector<double> global(info.num_classes, 0.0);
  double global_total = 0.0;
  for (const auto& histogram : info.class_histograms) {
    for (std::size_t c = 0; c < histogram.size() && c < info.num_classes; ++c) {
      global[c] += static_cast<double>(histogram[c]);
      global_total += static_cast<double>(histogram[c]);
    }
  }
  if (global_total <= 0.0) return;
  for (double& v : global) v /= global_total;

  // W1 on the class index: EMD(p, g) = sum_c |CDF_p(c) - CDF_g(c)|, the
  // standard discrete transport distance FedEMD scores label skew with.
  for (std::size_t m = 0; m < info.class_histograms.size(); ++m) {
    const auto& histogram = info.class_histograms[m];
    double device_total = 0.0;
    for (const auto count : histogram) device_total += static_cast<double>(count);
    if (device_total <= 0.0) continue;
    double device_cdf = 0.0, global_cdf = 0.0, distance = 0.0;
    for (std::size_t c = 0; c < info.num_classes; ++c) {
      device_cdf +=
          (c < histogram.size() ? static_cast<double>(histogram[c]) : 0.0) /
          device_total;
      global_cdf += global[c];
      distance += std::abs(device_cdf - global_cdf);
    }
    emd_[m] = distance;
  }
}

double EmdGuidedSampler::emd(std::uint32_t device) const {
  return device < emd_.size() ? emd_[device] : 0.0;
}

std::vector<double> EmdGuidedSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  const std::size_t n = ctx.devices.size();
  std::vector<double> weights(n, 1.0);
  constexpr double kEpsilon = 0.05;  // keeps perfectly-global devices finite
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t device = ctx.devices[i];
    if (device >= emd_.size()) continue;  // unbound: uniform fallback
    weights[i] = 1.0 / std::pow(kEpsilon + emd_[device], sharpness_);
  }
  clip_weight_spread(weights, max_weight_ratio_);
  return budgeted_probabilities(weights, ctx.capacity);
}

// ---------------------------------------------------------------------------
// ChurnAwareSampler

ChurnAwareSampler::ChurnAwareSampler() : ChurnAwareSampler(Options{}) {}

ChurnAwareSampler::ChurnAwareSampler(Options options) : options_(options) {}

void ChurnAwareSampler::bind(const hfl::FederationInfo& info) {
  last_edge_.assign(info.num_devices, kNoEdge);
  last_observed_.assign(info.num_devices, 0);
  ever_observed_.assign(info.num_devices, false);
}

double ChurnAwareSampler::priority(std::uint32_t device, std::size_t t,
                                   std::size_t edge) const {
  double weight = 1.0;
  if (device < last_edge_.size() && last_edge_[device] != kNoEdge &&
      last_edge_[device] != static_cast<std::uint32_t>(edge)) {
    // The device shuffled edges since its previous appearance: its data is
    // new to this edge's model, exactly the updates fast churn delivers.
    weight += options_.churn_bonus;
  }
  // Saturating staleness bonus: never-sampled devices count as stale since
  // the start of the run.
  double staleness;
  if (device < ever_observed_.size() && ever_observed_[device]) {
    staleness = static_cast<double>(
        t - std::min<std::uint64_t>(t, last_observed_[device]));
  } else {
    staleness = static_cast<double>(t) + options_.staleness_half_life;
  }
  weight += options_.staleness_weight * staleness /
            (staleness + options_.staleness_half_life);
  return weight;
}

std::vector<double> ChurnAwareSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  const std::size_t n = ctx.devices.size();
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = priority(ctx.devices[i], ctx.t, ctx.edge);
  }
  clip_weight_spread(weights, options_.max_weight_ratio);
  // A device appears in exactly one edge per step, and the engine walks
  // edges on the coordinator in index order, so recording the sighting here
  // is deterministic at any thread count.
  for (const std::uint32_t device : ctx.devices) {
    if (device < last_edge_.size()) {
      last_edge_[device] = static_cast<std::uint32_t>(ctx.edge);
    }
  }
  return budgeted_probabilities(weights, ctx.capacity);
}

void ChurnAwareSampler::observe_training(const hfl::TrainingObservation& obs) {
  if (obs.device >= last_observed_.size()) return;
  last_observed_[obs.device] = obs.t;
  ever_observed_[obs.device] = true;
}

void ChurnAwareSampler::save_state(ckpt::ByteWriter& out) const {
  out.u8(1);  // blob version
  out.u64(last_edge_.size());
  for (const std::uint32_t edge : last_edge_) out.u32(edge);
  out.vec_u64(last_observed_);
  for (std::size_t m = 0; m < ever_observed_.size(); ++m) {
    out.boolean(ever_observed_[m]);
  }
}

void ChurnAwareSampler::load_state(ckpt::ByteReader& in) {
  if (in.u8() != 1) {
    throw ckpt::CorruptPayload("ChurnAwareSampler: unknown state version");
  }
  if (in.u64() != last_edge_.size()) {
    throw ckpt::CorruptPayload("ChurnAwareSampler: snapshot device mismatch");
  }
  for (auto& edge : last_edge_) edge = in.u32();
  std::vector<std::uint64_t> observed_at = in.vec_u64();
  if (observed_at.size() != last_observed_.size()) {
    throw ckpt::CorruptPayload("ChurnAwareSampler: snapshot last-observed mismatch");
  }
  last_observed_ = std::move(observed_at);
  for (std::size_t m = 0; m < ever_observed_.size(); ++m) {
    ever_observed_[m] = in.boolean();
  }
}

}  // namespace mach::sampling
