#include "sampling/extended.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ckpt/rng_codec.h"
#include "sampling/baselines.h"
#include "sampling/budget.h"

namespace mach::sampling {

PowerOfChoiceSampler::PowerOfChoiceSampler(double candidate_fraction,
                                           std::uint64_t seed)
    : candidate_fraction_(std::clamp(candidate_fraction, 0.0, 1.0)), rng_(seed) {}

void PowerOfChoiceSampler::bind(const hfl::FederationInfo& info) {
  last_loss_.assign(info.num_devices, 0.0);
  observed_.assign(info.num_devices, false);
}

void PowerOfChoiceSampler::observe_training(const hfl::TrainingObservation& obs) {
  if (obs.device >= last_loss_.size()) return;
  last_loss_[obs.device] = obs.mean_loss;
  observed_[obs.device] = true;
}

std::vector<double> PowerOfChoiceSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  const std::size_t n = ctx.devices.size();
  // Candidate set: at least ceil(capacity) devices, at most all of them.
  const auto min_candidates = static_cast<std::size_t>(std::ceil(ctx.capacity));
  std::size_t d = std::max<std::size_t>(
      min_candidates,
      static_cast<std::size_t>(std::ceil(candidate_fraction_ * static_cast<double>(n))));
  d = std::min(d, n);
  const auto chosen = rng_.sample_without_replacement(n, d);

  // Within the candidate set, weight by last observed loss (unseen devices
  // rank as if they had the maximum loss, encouraging first contact).
  double max_loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (observed_[ctx.devices[i]]) {
      max_loss = std::max(max_loss, last_loss_[ctx.devices[i]]);
    }
  }
  if (max_loss <= 0.0) max_loss = 1.0;
  std::vector<double> weights(n, 0.0);
  for (std::size_t idx : chosen) {
    const std::uint32_t device = ctx.devices[idx];
    weights[idx] = observed_[device] ? std::max(last_loss_[device], 1e-6) : max_loss;
  }
  return budgeted_probabilities(weights, ctx.capacity);
}

void PowerOfChoiceSampler::save_state(ckpt::ByteWriter& out) const {
  out.u8(1);  // blob version
  // The candidate-set RNG is consumed once per edge_probabilities() call, so
  // its stream position is run state just like the engine's Bernoulli RNG.
  ckpt::write_rng(out, rng_);
  out.vec_f64(last_loss_);
  for (std::size_t m = 0; m < observed_.size(); ++m) out.boolean(observed_[m]);
}

void PowerOfChoiceSampler::load_state(ckpt::ByteReader& in) {
  if (in.u8() != 1) {
    throw ckpt::CorruptPayload("PowerOfChoiceSampler: unknown state version");
  }
  ckpt::read_rng(in, rng_);
  std::vector<double> losses = in.vec_f64();
  if (losses.size() != last_loss_.size()) {
    throw ckpt::CorruptPayload("PowerOfChoiceSampler: snapshot device mismatch");
  }
  last_loss_ = std::move(losses);
  for (std::size_t m = 0; m < observed_.size(); ++m) observed_[m] = in.boolean();
}

OortSampler::OortSampler() : OortSampler(Options{}) {}

OortSampler::OortSampler(Options options) : options_(options) {}

void OortSampler::bind(const hfl::FederationInfo& info) {
  utility_ema_.assign(info.num_devices, 0.0);
  last_seen_.assign(info.num_devices, 0);
  observed_.assign(info.num_devices, false);
}

void OortSampler::observe_training(const hfl::TrainingObservation& obs) {
  if (obs.device >= utility_ema_.size()) return;
  // Oort's statistical utility: |B| sqrt(1/|B| sum loss^2). Our observation
  // carries the mean loss over I local steps; the per-step losses are close
  // enough within a round that mean_loss is the right plug-in.
  const double utility = std::abs(obs.mean_loss);
  if (observed_[obs.device]) {
    utility_ema_[obs.device] = options_.smoothing * utility +
                               (1.0 - options_.smoothing) * utility_ema_[obs.device];
  } else {
    utility_ema_[obs.device] = utility;
    observed_[obs.device] = true;
  }
  last_seen_[obs.device] = obs.t;
}

double OortSampler::utility(std::uint32_t device, std::size_t now) const {
  if (device >= utility_ema_.size()) return 0.0;
  // Median of observed utilities for the clipping threshold.
  std::vector<double> seen;
  for (std::size_t m = 0; m < utility_ema_.size(); ++m) {
    if (observed_[m]) seen.push_back(utility_ema_[m]);
  }
  double base;
  if (observed_[device]) {
    base = utility_ema_[device];
  } else if (!seen.empty()) {
    base = *std::max_element(seen.begin(), seen.end());  // optimistic first contact
  } else {
    base = 1.0;
  }
  if (!seen.empty()) {
    std::nth_element(seen.begin(), seen.begin() + static_cast<std::ptrdiff_t>(seen.size() / 2),
                     seen.end());
    const double median = seen[seen.size() / 2];
    if (median > 0.0) base = std::min(base, options_.clip_multiple * median);
  }
  // Temporal staleness bonus: devices unseen for long regain priority.
  const double staleness =
      static_cast<double>(now - std::min(now, last_seen_[device]));
  return base + options_.exploration_weight * std::sqrt(staleness /
                                                        (staleness + 16.0));
}

std::vector<double> OortSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  std::vector<double> weights(ctx.devices.size());
  for (std::size_t i = 0; i < ctx.devices.size(); ++i) {
    weights[i] = std::max(utility(ctx.devices[i], ctx.t), 1e-6);
  }
  clip_weight_spread(weights, 3.5);
  return budgeted_probabilities(weights, ctx.capacity);
}

void OortSampler::save_state(ckpt::ByteWriter& out) const {
  out.u8(1);  // blob version
  out.vec_f64(utility_ema_);
  out.u64(last_seen_.size());
  for (const std::size_t t : last_seen_) out.u64(t);
  for (std::size_t m = 0; m < observed_.size(); ++m) out.boolean(observed_[m]);
}

void OortSampler::load_state(ckpt::ByteReader& in) {
  if (in.u8() != 1) {
    throw ckpt::CorruptPayload("OortSampler: unknown state version");
  }
  std::vector<double> ema = in.vec_f64();
  if (ema.size() != utility_ema_.size()) {
    throw ckpt::CorruptPayload("OortSampler: snapshot device mismatch");
  }
  utility_ema_ = std::move(ema);
  if (in.u64() != last_seen_.size()) {
    throw ckpt::CorruptPayload("OortSampler: snapshot last-seen mismatch");
  }
  for (auto& t : last_seen_) t = static_cast<std::size_t>(in.u64());
  for (std::size_t m = 0; m < observed_.size(); ++m) observed_[m] = in.boolean();
}

}  // namespace mach::sampling
