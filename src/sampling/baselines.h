// The paper's baseline device-sampling strategies (§IV-A.3):
//   * UniformSampler       — "US", uniform random sampling (Li et al.);
//   * ClassBalanceSampler  — "CS", class-balance sampling (Fed-CBS style):
//     devices holding globally rare classes are sampled more, pushing every
//     sampled cohort toward class balance;
//   * StatisticalSampler   — "SS", statistical-utility sampling (Oort /
//     power-of-choice style): sampling probability follows each device's
//     observed training loss, estimated online from its own participation;
//   * FullParticipationSampler — q = 1 everywhere (tests/ablations only).
#pragma once

#include <vector>

#include "hfl/sampler.h"

namespace mach::sampling {

class UniformSampler final : public hfl::Sampler {
 public:
  std::string name() const override { return "uniform"; }
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;
};

/// Caps a weight vector's spread at `ratio` (w_i >= max(w)/ratio), the
/// standard utility-clipping used by practical selection systems (e.g. Oort
/// clips outlier utilities) so that inverse-probability weights stay sane.
void clip_weight_spread(std::vector<double>& weights, double ratio);

class ClassBalanceSampler final : public hfl::Sampler {
 public:
  /// `max_weight_ratio` bounds the per-device weight spread (see
  /// clip_weight_spread); <= 1 disables clipping.
  explicit ClassBalanceSampler(double max_weight_ratio = 3.5)
      : max_weight_ratio_(max_weight_ratio) {}

  std::string name() const override { return "class_balance"; }
  void bind(const hfl::FederationInfo& info) override;
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;

  /// The static balance weight assigned to a device (exposed for tests).
  double device_weight(std::uint32_t device) const { return weights_.at(device); }

 private:
  double max_weight_ratio_;
  std::vector<double> weights_;
};

class StatisticalSampler final : public hfl::Sampler {
 public:
  /// `smoothing` is the EMA factor for per-device loss estimates;
  /// `max_weight_ratio` bounds the utility spread (Oort-style clipping).
  explicit StatisticalSampler(double smoothing = 0.3, double max_weight_ratio = 3.5)
      : smoothing_(smoothing), max_weight_ratio_(max_weight_ratio) {}

  std::string name() const override { return "statistical"; }
  void bind(const hfl::FederationInfo& info) override;
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;
  void observe_training(const hfl::TrainingObservation& obs) override;
  void save_state(ckpt::ByteWriter& out) const override;
  void load_state(ckpt::ByteReader& in) override;

  double loss_estimate(std::uint32_t device) const;

 private:
  double smoothing_;
  double max_weight_ratio_;
  std::vector<double> loss_ema_;
  std::vector<bool> observed_;
  double running_mean_ = 0.0;  // fallback utility for never-observed devices
  std::size_t observations_ = 0;
};

class FullParticipationSampler final : public hfl::Sampler {
 public:
  std::string name() const override { return "full"; }
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override {
    return std::vector<double>(ctx.devices.size(), 1.0);
  }
};

}  // namespace mach::sampling
