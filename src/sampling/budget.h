// Shared helper for turning per-device weights into inclusion probabilities
// that respect an edge's expected-participation budget (Eq. 3/11/12).
#pragma once

#include <span>
#include <vector>

namespace mach::sampling {

/// Water-filling allocation: returns q with q[i] in [0, 1],
/// sum(q) == min(capacity, n), and q proportional to weights[i] except where
/// the per-device cap of 1 binds (the excess is redistributed to the rest).
/// Non-positive weights are treated as 0; if all weights are 0, the budget is
/// split uniformly.
std::vector<double> budgeted_probabilities(std::span<const double> weights,
                                           double capacity);

}  // namespace mach::sampling
