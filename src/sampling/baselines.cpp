#include "sampling/baselines.h"

#include <algorithm>
#include <cmath>

#include "ckpt/bytes.h"
#include "sampling/budget.h"

namespace mach::sampling {

void clip_weight_spread(std::vector<double>& weights, double ratio) {
  if (ratio <= 1.0 || weights.empty()) return;
  double max_weight = 0.0;
  for (double w : weights) max_weight = std::max(max_weight, w);
  if (max_weight <= 0.0) return;
  const double floor = max_weight / ratio;
  for (auto& w : weights) w = std::max(w, floor);
}

std::vector<double> UniformSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  const std::vector<double> weights(ctx.devices.size(), 1.0);
  return budgeted_probabilities(weights, ctx.capacity);
}

void ClassBalanceSampler::bind(const hfl::FederationInfo& info) {
  // Global class frequencies across all devices.
  std::vector<double> class_totals(info.num_classes, 0.0);
  double total = 0.0;
  for (const auto& histogram : info.class_histograms) {
    for (std::size_t c = 0; c < info.num_classes; ++c) {
      class_totals[c] += static_cast<double>(histogram[c]);
      total += static_cast<double>(histogram[c]);
    }
  }
  // Inverse-frequency score: a device scores high when its data mass sits in
  // globally under-represented classes, so sampled cohorts skew balanced.
  weights_.assign(info.num_devices, 0.0);
  for (std::size_t m = 0; m < info.num_devices; ++m) {
    const auto& histogram = info.class_histograms[m];
    double device_total = 0.0;
    for (std::size_t c = 0; c < info.num_classes; ++c) {
      device_total += static_cast<double>(histogram[c]);
    }
    if (device_total <= 0.0 || total <= 0.0) {
      weights_[m] = 1.0;
      continue;
    }
    double score = 0.0;
    for (std::size_t c = 0; c < info.num_classes; ++c) {
      if (class_totals[c] <= 0.0) continue;
      const double device_share = static_cast<double>(histogram[c]) / device_total;
      const double global_share = class_totals[c] / total;
      score += device_share / global_share;
    }
    weights_[m] = score;
  }
}

std::vector<double> ClassBalanceSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  std::vector<double> weights(ctx.devices.size(), 1.0);
  if (!weights_.empty()) {
    for (std::size_t i = 0; i < ctx.devices.size(); ++i) {
      weights[i] = weights_[ctx.devices[i]];
    }
  }
  clip_weight_spread(weights, max_weight_ratio_);
  return budgeted_probabilities(weights, ctx.capacity);
}

void StatisticalSampler::bind(const hfl::FederationInfo& info) {
  loss_ema_.assign(info.num_devices, 0.0);
  observed_.assign(info.num_devices, false);
  running_mean_ = 0.0;
  observations_ = 0;
}

void StatisticalSampler::observe_training(const hfl::TrainingObservation& obs) {
  if (obs.device >= loss_ema_.size()) return;
  if (observed_[obs.device]) {
    loss_ema_[obs.device] =
        smoothing_ * obs.mean_loss + (1.0 - smoothing_) * loss_ema_[obs.device];
  } else {
    loss_ema_[obs.device] = obs.mean_loss;
    observed_[obs.device] = true;
  }
  ++observations_;
  running_mean_ += (obs.mean_loss - running_mean_) / static_cast<double>(observations_);
}

double StatisticalSampler::loss_estimate(std::uint32_t device) const {
  if (device < observed_.size() && observed_[device]) return loss_ema_[device];
  // Unobserved devices inherit the population mean (mildly optimistic: they
  // compete equally until first sampled).
  return observations_ > 0 ? running_mean_ : 1.0;
}

std::vector<double> StatisticalSampler::edge_probabilities(
    const hfl::EdgeSamplingContext& ctx) {
  std::vector<double> weights(ctx.devices.size(), 1.0);
  for (std::size_t i = 0; i < ctx.devices.size(); ++i) {
    weights[i] = std::max(loss_estimate(ctx.devices[i]), 1e-6);
  }
  clip_weight_spread(weights, max_weight_ratio_);
  return budgeted_probabilities(weights, ctx.capacity);
}

void StatisticalSampler::save_state(ckpt::ByteWriter& out) const {
  out.u8(1);  // blob version
  out.vec_f64(loss_ema_);
  for (std::size_t m = 0; m < observed_.size(); ++m) out.boolean(observed_[m]);
  out.f64(running_mean_);
  out.u64(observations_);
}

void StatisticalSampler::load_state(ckpt::ByteReader& in) {
  if (in.u8() != 1) {
    throw ckpt::CorruptPayload("StatisticalSampler: unknown state version");
  }
  std::vector<double> ema = in.vec_f64();
  if (ema.size() != loss_ema_.size()) {
    throw ckpt::CorruptPayload("StatisticalSampler: snapshot device mismatch");
  }
  loss_ema_ = std::move(ema);
  for (std::size_t m = 0; m < observed_.size(); ++m) observed_[m] = in.boolean();
  running_mean_ = in.f64();
  observations_ = static_cast<std::size_t>(in.u64());
}

}  // namespace mach::sampling
