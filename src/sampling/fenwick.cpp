#include "sampling/fenwick.h"

#include <algorithm>

namespace mach::sampling {

namespace {

inline std::size_t lowest_bit(std::size_t j) { return j & (~j + 1); }

}  // namespace

void FenwickTree::recompute_node(std::size_t j) {
  // tree_[j] covers values (j - lsb(j), j]; its children are the nodes
  // j - 1, j - 2, j - 4, ... down to (but excluding) step lsb(j).
  double sum = values_[j - 1];
  for (std::size_t step = 1; step < lowest_bit(j); step <<= 1) {
    sum += tree_[j - step];
  }
  tree_[j] = sum;
}

void FenwickTree::assign(std::span<const double> weights) {
  const std::size_t n = weights.size();
  values_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    values_[i] = std::max(weights[i], 0.0);
  }
  tree_.assign(n + 1, 0.0);
  for (std::size_t j = 1; j <= n; ++j) recompute_node(j);
}

void FenwickTree::resize(std::size_t n) {
  if (n == values_.size()) return;
  std::vector<double> weights(values_);
  weights.resize(n, 0.0);
  assign(weights);
}

void FenwickTree::set(std::size_t i, double w) {
  values_[i] = std::max(w, 0.0);
  for (std::size_t j = i + 1; j <= values_.size(); j += lowest_bit(j)) {
    recompute_node(j);
  }
}

double FenwickTree::prefix_sum(std::size_t i) const {
  double sum = 0.0;
  for (std::size_t j = std::min(i, values_.size()); j > 0; j -= lowest_bit(j)) {
    sum += tree_[j];
  }
  return sum;
}

std::size_t FenwickTree::find(double target) const {
  const std::size_t n = values_.size();
  std::size_t top = 1;
  while (top < n) top <<= 1;
  std::size_t pos = 0;
  double remaining = target;
  for (std::size_t step = top; step > 0; step >>= 1) {
    const std::size_t next = pos + step;
    // remaining >= block sum ⇒ the draw lands past this block; moving on a
    // tie is what makes zero-weight slots unreachable.
    if (next <= n && remaining >= tree_[next]) {
      pos = next;
      remaining -= tree_[next];
    }
  }
  return pos;  // pos == n when target >= total() (empty / all-zero tree)
}

std::size_t FenwickTree::draw(common::Rng& rng) const {
  return find(rng.uniform() * total());
}

void FenwickTree::sample_without_replacement(std::size_t k, common::Rng& rng,
                                             std::vector<std::uint32_t>& out) {
  struct Drawn {
    std::size_t index;
    double weight;
  };
  std::vector<Drawn> drawn;
  drawn.reserve(std::min(k, values_.size()));
  for (std::size_t d = 0; d < k; ++d) {
    const std::size_t i = draw(rng);
    if (i >= values_.size()) break;  // remaining mass exhausted
    out.push_back(static_cast<std::uint32_t>(i));
    drawn.push_back({i, values_[i]});
    set(i, 0.0);
  }
  // Bitwise restoration: set() rebuilds each affected node from children,
  // so reinstating the original values reproduces the original tree exactly.
  for (const Drawn& d : drawn) set(d.index, d.weight);
}

}  // namespace mach::sampling
