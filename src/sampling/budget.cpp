#include "sampling/budget.h"

#include <algorithm>
#include <cmath>

#include "obs/span_profiler.h"

namespace mach::sampling {

std::vector<double> budgeted_probabilities(std::span<const double> weights,
                                           double capacity) {
  const obs::SpanGuard span("waterfill");
  const std::size_t n = weights.size();
  std::vector<double> q(n, 0.0);
  if (n == 0) return q;
  double budget = std::clamp(capacity, 0.0, static_cast<double>(n));

  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = std::max(weights[i], 0.0);

  std::vector<bool> pinned(n, false);
  // Each round either pins at least one probability at 1 (shrinking the
  // problem) or finalises the proportional split, so <= n rounds suffice.
  for (std::size_t round = 0; round < n; ++round) {
    double free_weight = 0.0;
    std::size_t free_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!pinned[i]) {
        free_weight += w[i];
        ++free_count;
      }
    }
    if (free_count == 0 || budget <= 0.0) break;
    if (free_weight <= 0.0) {
      // Remaining weights are all zero: split the leftover budget uniformly.
      const double uniform = std::min(budget / static_cast<double>(free_count), 1.0);
      for (std::size_t i = 0; i < n; ++i) {
        if (!pinned[i]) q[i] = uniform;
      }
      break;
    }
    // Candidates computed against a frozen (budget, free_weight) snapshot.
    bool newly_pinned = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (pinned[i]) continue;
      if (budget * w[i] / free_weight >= 1.0) {
        q[i] = 1.0;
        pinned[i] = true;
        newly_pinned = true;
      }
    }
    if (newly_pinned) {
      budget = std::clamp(capacity, 0.0, static_cast<double>(n));
      for (std::size_t i = 0; i < n; ++i) {
        if (pinned[i]) budget -= 1.0;
      }
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!pinned[i]) q[i] = budget * w[i] / free_weight;
    }
    break;
  }
  return q;
}

}  // namespace mach::sampling
