// Additional client-selection baselines from the literature the paper cites,
// for extension experiments beyond the paper's three basic baselines:
//
//  * PowerOfChoiceSampler — Cho, Wang & Joshi (AISTATS'22): sample a
//    candidate set of d devices uniformly, then concentrate the budget on
//    the ones with the highest current loss (biased selection, no HT
//    correction in the original; here the probabilities are still consumed
//    by the HT engine, so the bias appears as a skewed q).
//  * OortSampler — Lai et al. (OSDI'21): statistical utility
//    |B| * sqrt(mean of squared losses) with an exploration bonus for
//    stale/unseen devices and utility clipping at a percentile.
#pragma once

#include <vector>

#include "common/rng.h"
#include "hfl/sampler.h"

namespace mach::sampling {

class PowerOfChoiceSampler final : public hfl::Sampler {
 public:
  /// `candidate_fraction` is d/|M_n^t|: the fraction of the edge's devices
  /// entering the candidate set each step (clamped to at least the budget).
  explicit PowerOfChoiceSampler(double candidate_fraction = 0.75,
                                std::uint64_t seed = 0x9c0e);

  std::string name() const override { return "power_of_choice"; }
  void bind(const hfl::FederationInfo& info) override;
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;
  void observe_training(const hfl::TrainingObservation& obs) override;
  void save_state(ckpt::ByteWriter& out) const override;
  void load_state(ckpt::ByteReader& in) override;

 private:
  double candidate_fraction_;
  common::Rng rng_;
  std::vector<double> last_loss_;
  std::vector<bool> observed_;
};

class OortSampler final : public hfl::Sampler {
 public:
  struct Options {
    /// Weight of the temporal-staleness exploration bonus.
    double exploration_weight = 0.5;
    /// Utility values above this multiple of the median are clipped
    /// (Oort clips outliers to bound over-commitment).
    double clip_multiple = 3.0;
    /// EMA factor for the per-device utility estimate.
    double smoothing = 0.5;
  };

  OortSampler();
  explicit OortSampler(Options options);

  std::string name() const override { return "oort"; }
  void bind(const hfl::FederationInfo& info) override;
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;
  void observe_training(const hfl::TrainingObservation& obs) override;
  void save_state(ckpt::ByteWriter& out) const override;
  void load_state(ckpt::ByteReader& in) override;

  /// Current clipped utility of a device (tests).
  double utility(std::uint32_t device, std::size_t now) const;

 private:
  Options options_;
  std::vector<double> utility_ema_;
  std::vector<std::size_t> last_seen_;
  std::vector<bool> observed_;
};

}  // namespace mach::sampling
