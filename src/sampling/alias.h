// Walker/Vose alias table: O(n) construction, O(1) weighted draws — the
// batch-draw half of the sublinear Eq. 16–18 sampling path.
//
// Where the Fenwick tree absorbs incremental weight churn, the alias table
// is the cheapest possible *reader*: once built over a frozen weight vector
// (e.g. per cloud round, when the UCB estimates refresh anyway), each draw
// costs one uniform and two array reads regardless of population size. The
// construction is fully deterministic — worklists are filled in ascending
// index order and processed LIFO — so two tables built from the same weights
// produce identical draw sequences from identical RNG streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace mach::sampling {

class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> weights) { build(weights); }

  /// Builds the table over `weights` (negatives clamped to 0). An empty or
  /// all-zero weight vector yields an empty table (draw() returns size()).
  void build(std::span<const double> weights);

  std::size_t size() const noexcept { return prob_.size(); }
  bool empty() const noexcept { return prob_.empty(); }
  double total() const noexcept { return total_; }

  /// One weighted draw ∝ the build-time weights. Consumes exactly one
  /// uniform: the integer part picks the bucket, the fractional part plays
  /// the bucket's coin. Returns size() on an empty table.
  std::size_t draw(common::Rng& rng) const;

  /// Probability the table actually assigns to index i, reconstructed from
  /// the buckets: (prob[i] + Σ_j alias[j]==i (1 − prob[j])) / n. Used by the
  /// property tests to check the implied pmf equals weight[i] / total. O(n).
  double implied_probability(std::size_t i) const;

  std::size_t memory_bytes() const noexcept {
    return prob_.capacity() * sizeof(double) +
           alias_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::vector<double> prob_;           // bucket threshold in [0, 1]
  std::vector<std::uint32_t> alias_;   // partner index per bucket
  double total_ = 0.0;
};

}  // namespace mach::sampling
