// Cross-paper algorithm zoo: device samplers from the mobility-FL literature
// beyond the paper's own baselines, for the bench/zoo comparison sweeps.
//
//  * MobilityClusterSampler — cluster-then-sample per edge (mobility-aware
//    cluster FL, arXiv 2108.09103): the devices currently inside an edge are
//    grouped into label-distribution clusters and the participation budget
//    is split evenly across clusters, so every sampled cohort spans the
//    data-heterogeneity spectrum the edge currently sees regardless of how
//    mobility skews the headcount per cluster.
//  * EmdGuidedSampler — heterogeneity-guided client sampling à la FedEMD
//    (arXiv 2310.00198): each device is scored by the Earth Mover's Distance
//    between its label distribution and the global one; devices closer to
//    the global distribution are upweighted, pulling the sampled mixture
//    towards the global marginal.
//  * ChurnAwareSampler — high-mobility vehicular regime (arXiv 2401.09656:
//    fast edge churn accelerates convergence): devices that just moved into
//    an edge carry data its model has not aggregated recently, so newcomers
//    and long-unsampled devices get a priority bonus. The faster devices
//    shuffle between edges, the more the strategy differs from uniform.
//
// All three run behind the ordinary hfl::Sampler interface and respect the
// expected-participation budget via water-filling (sum q == min(K_n, |M|)).
#pragma once

#include <vector>

#include "hfl/sampler.h"

namespace mach::sampling {

class MobilityClusterSampler final : public hfl::Sampler {
 public:
  /// `similarity_threshold`: minimum cosine similarity between a device's
  /// label distribution and a cluster leader's for the device to join that
  /// cluster (greedy leader clustering — deterministic, order-stable).
  explicit MobilityClusterSampler(double similarity_threshold = 0.9)
      : similarity_threshold_(similarity_threshold) {}

  std::string name() const override { return "mobility_cluster"; }
  void bind(const hfl::FederationInfo& info) override;
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;

  /// Cluster id per device of `devices` (same order), exposed for tests.
  std::vector<std::uint32_t> cluster_devices(
      std::span<const std::uint32_t> devices) const;

 private:
  double similarity_threshold_;
  /// Per-device L2-normalised label distribution (num_devices x num_classes).
  std::vector<std::vector<double>> directions_;

  static constexpr std::uint32_t kNoCluster = 0xffffffffu;
};

class EmdGuidedSampler final : public hfl::Sampler {
 public:
  /// `sharpness` scales how strongly low-EMD (global-like) devices are
  /// preferred: weight = 1 / (epsilon + EMD)^sharpness. `max_weight_ratio`
  /// bounds the spread (see clip_weight_spread); <= 1 disables clipping.
  explicit EmdGuidedSampler(double sharpness = 1.0, double max_weight_ratio = 3.5)
      : sharpness_(sharpness), max_weight_ratio_(max_weight_ratio) {}

  std::string name() const override { return "emd"; }
  void bind(const hfl::FederationInfo& info) override;
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;

  /// EMD between a device's label distribution and the global one (W1 on the
  /// class index; exposed for tests). Devices outside bind() return 0.
  double emd(std::uint32_t device) const;

 private:
  double sharpness_;
  double max_weight_ratio_;
  std::vector<double> emd_;  // per-device distance to the global marginal
};

class ChurnAwareSampler final : public hfl::Sampler {
 public:
  struct Options {
    /// Additive priority for a device whose current edge differs from the
    /// edge it was seen at on its previous appearance (it moved).
    double churn_bonus = 2.0;
    /// Weight of the saturating staleness bonus for long-unsampled devices.
    double staleness_weight = 1.0;
    /// Steps at which the staleness bonus reaches half its maximum.
    double staleness_half_life = 8.0;
    /// Utility-spread clip ratio (<= 1 disables).
    double max_weight_ratio = 4.0;
  };

  ChurnAwareSampler();
  explicit ChurnAwareSampler(Options options);

  std::string name() const override { return "churn_aware"; }
  void bind(const hfl::FederationInfo& info) override;
  std::vector<double> edge_probabilities(const hfl::EdgeSamplingContext& ctx) override;
  void observe_training(const hfl::TrainingObservation& obs) override;
  void save_state(ckpt::ByteWriter& out) const override;
  void load_state(ckpt::ByteReader& in) override;

  /// The raw priority a device would get at (t, edge) right now (tests).
  double priority(std::uint32_t device, std::size_t t, std::size_t edge) const;

 private:
  Options options_;
  /// Edge each device was seen at on its last appearance; kNoEdge = never.
  std::vector<std::uint32_t> last_edge_;
  /// Step of each device's last *arrived* training observation.
  std::vector<std::uint64_t> last_observed_;
  std::vector<bool> ever_observed_;

  static constexpr std::uint32_t kNoEdge = 0xffffffffu;
};

}  // namespace mach::sampling
