// Fenwick (binary-indexed) tree over non-negative device weights: the
// incremental-update half of the sublinear Eq. 16–18 sampling path.
//
// A naive weighted draw over an edge's member set costs O(M) per round
// (renormalise, scan the cumulative sum). The Fenwick tree keeps grouped
// partial sums so a point assignment costs O(log² M), a cumulative search
// costs O(log M), and a without-replacement batch of K draws costs
// O(K log² M) — independent of the population size beyond the logarithm.
//
// Two properties the scale engine's determinism contract rests on:
//   * `set` recomputes every affected node from its children in a fixed
//     order instead of adding a float delta, so set(i, w); set(i, old)
//     restores the tree *bitwise* — draw-zero-restore sampling leaves no
//     floating-point residue behind.
//   * `find(target)` walks the same grouped sums every time, so a given
//     (weights, target) pair always selects the same index; with integer-
//     valued weights the selection is provably identical to a naive
//     left-to-right cumulative scan (see tests/sampling/test_fenwick_alias).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace mach::sampling {

class FenwickTree {
 public:
  FenwickTree() = default;
  /// n zero-weight slots.
  explicit FenwickTree(std::size_t n) { resize(n); }
  /// Builds over an initial weight vector in O(n).
  explicit FenwickTree(std::span<const double> weights) { assign(weights); }

  /// Rebuilds over `weights` (negatives are clamped to 0).
  void assign(std::span<const double> weights);

  /// Grows (or shrinks) to n slots; new slots have weight 0. Growing is
  /// O(n) worst case (rebuild) but amortises to O(1) per slot under the
  /// usual doubling pattern.
  void resize(std::size_t n);

  std::size_t size() const noexcept { return values_.size(); }

  /// Point assignment (not a delta): slot i now weighs w. O(log² n).
  void set(std::size_t i, double w);

  /// Current weight of slot i.
  double get(std::size_t i) const { return values_[i]; }

  /// Sum of weights in [0, i). O(log n).
  double prefix_sum(std::size_t i) const;

  /// Sum of all weights. O(log n).
  double total() const { return prefix_sum(values_.size()); }

  /// Smallest index i with prefix_sum(i+1) > target — the slot a cumulative
  /// draw at `target` lands in, skipping zero-weight slots. `target` must be
  /// in [0, total()); with an empty or all-zero tree returns size().
  std::size_t find(double target) const;

  /// One weighted draw: find(uniform() * total()). Consumes exactly one
  /// uniform from `rng`. Returns size() when the tree is empty/all-zero.
  std::size_t draw(common::Rng& rng) const;

  /// K distinct weighted draws without replacement, appended to `out`:
  /// draw, zero, repeat, then restore the drawn weights bitwise. Stops
  /// early when the remaining total hits zero. Consumes one uniform per
  /// successful draw, in draw order.
  void sample_without_replacement(std::size_t k, common::Rng& rng,
                                  std::vector<std::uint32_t>& out);

  /// Bytes held by the tree (capacity, both arrays) — scale accounting.
  std::size_t memory_bytes() const noexcept {
    return (tree_.capacity() + values_.capacity()) * sizeof(double);
  }

 private:
  /// Recomputes 1-based node j from its value and child nodes, in fixed
  /// ascending-child order (the same order assign() uses — bitwise
  /// reproducible).
  void recompute_node(std::size_t j);

  std::vector<double> tree_;    // 1-based grouped sums; tree_[0] unused
  std::vector<double> values_;  // current per-slot weights
};

}  // namespace mach::sampling
