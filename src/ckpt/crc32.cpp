#include "ckpt/crc32.h"

#include <array>

namespace mach::ckpt {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : bytes) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace mach::ckpt
