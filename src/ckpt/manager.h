// Checkpoint directory management: numbered snapshots, keep-last-K garbage
// collection, and corrupt-fallback loading.
//
// Snapshots are named `ckpt_<step, zero-padded>.mach` so lexicographic
// order equals step order. save() writes atomically (see file.h) and then
// deletes all but the newest K snapshots; load_latest() walks newest to
// oldest, returning the first snapshot that validates (magic, length, CRC)
// and logging a warning for every corrupt file it skips — a torn latest
// checkpoint after SIGKILL degrades to "resume one interval earlier", never
// to a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mach::ckpt {

struct LoadedCheckpoint {
  std::uint64_t step = 0;      // next_t recorded in the filename
  std::uint32_t version = 0;   // payload format version
  std::vector<std::uint8_t> payload;
  std::string path;
};

class CheckpointManager {
 public:
  /// Creates `dir` (and parents) if missing. `keep` >= 1 snapshots are
  /// retained after every save.
  explicit CheckpointManager(std::string dir, std::size_t keep = 2);

  /// Writes the snapshot for `step` and garbage-collects older files beyond
  /// the keep budget. Returns the written path.
  std::string save(std::uint64_t step, std::uint32_t version,
                   std::span<const std::uint8_t> payload) const;

  /// Newest snapshot that passes validation, or nullopt when none does.
  std::optional<LoadedCheckpoint> load_latest() const;

  /// Snapshot paths sorted by ascending step.
  std::vector<std::string> list() const;

  const std::string& dir() const noexcept { return dir_; }
  std::size_t keep() const noexcept { return keep_; }

 private:
  std::string dir_;
  std::size_t keep_;
};

}  // namespace mach::ckpt
