// Flat binary codec for checkpoint payloads.
//
// ByteWriter appends fixed-width little-endian primitives to a growable
// buffer; ByteReader walks it back with bounds-checked reads that throw
// instead of reading past the end — a truncated or bit-flipped payload
// surfaces as a recoverable error, never as undefined behaviour. Floating
// point values round-trip through their IEEE-754 bit patterns (bit_cast),
// so restored doubles are bit-identical to what was saved — the property
// the resume-equals-uninterrupted guarantee rests on.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mach::ckpt {

/// Thrown by ByteReader on any structural problem with a payload (overrun,
/// bad tag, impossible length). Callers treat it as "this snapshot is
/// unusable", not as a crash.
class CorruptPayload : public std::runtime_error {
 public:
  explicit CorruptPayload(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void boolean(bool v) { u8(v ? 1 : 0); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u64(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  void blob(std::span<const std::uint8_t> bytes) {
    u64(bytes.size());
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  void vec_f32(std::span<const float> values) {
    u64(values.size());
    for (const float v : values) f32(v);
  }

  void vec_f64(std::span<const double> values) {
    u64(values.size());
    for (const double v : values) f64(v);
  }

  void vec_u64(std::span<const std::uint64_t> values) {
    u64(values.size());
    for (const std::uint64_t v : values) u64(v);
  }

  const std::vector<std::uint8_t>& data() const noexcept { return buffer_; }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    require(1);
    return bytes_[pos_++];
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << shift;
    }
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << shift;
    }
    return v;
  }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw CorruptPayload("ByteReader: invalid boolean tag");
    return v == 1;
  }

  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = length(1);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::vector<std::uint8_t> blob() {
    const std::uint64_t n = length(1);
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return out;
  }

  std::vector<float> vec_f32() {
    const std::uint64_t n = length(4);
    std::vector<float> out(static_cast<std::size_t>(n));
    for (auto& v : out) v = f32();
    return out;
  }

  std::vector<double> vec_f64() {
    const std::uint64_t n = length(8);
    std::vector<double> out(static_cast<std::size_t>(n));
    for (auto& v : out) v = f64();
    return out;
  }

  std::vector<std::uint64_t> vec_u64() {
    const std::uint64_t n = length(8);
    std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
    for (auto& v : out) v = u64();
    return out;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == bytes_.size(); }

 private:
  void require(std::size_t n) const {
    if (bytes_.size() - pos_ < n) {
      throw CorruptPayload("ByteReader: read past end of payload");
    }
  }

  /// Reads an element count and validates that `count * element_size`
  /// elements actually fit in the remaining bytes (rejects hostile lengths
  /// before any allocation).
  std::uint64_t length(std::size_t element_size) {
    const std::uint64_t n = u64();
    if (n > (bytes_.size() - pos_) / element_size) {
      throw CorruptPayload("ByteReader: element count exceeds payload");
    }
    return n;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace mach::ckpt
