// Crash-safe checkpoint file I/O.
//
// On-disk layout (little-endian):
//   offset 0   8 bytes  magic "MACHCKP\x01"
//   offset 8   u32      payload format version (caller-defined)
//   offset 12  u64      payload size in bytes
//   offset 20  u32      CRC-32 of the payload
//   offset 24  ...      payload
//
// Writes go to a `<path>.tmp.<pid>` sibling, are fsync'd, then atomically
// renamed over `path`, and the containing directory is fsync'd — a reader
// (including a resumed process after SIGKILL) only ever sees either the
// complete previous file or the complete new one. Reads validate magic,
// declared length against the real file size, and the CRC; any mismatch is
// reported as a reason string, never thrown — torn files are an expected
// input after a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mach::ckpt {

struct CheckpointBlob {
  std::uint32_t version = 0;
  std::vector<std::uint8_t> payload;
};

/// Atomically (re)writes `path`. Throws std::runtime_error with errno
/// context when the filesystem refuses (unwritable directory, disk full).
void write_checkpoint_file(const std::string& path, std::uint32_t version,
                           std::span<const std::uint8_t> payload);

/// Reads and validates `path`. Returns nullopt and fills `error` (when
/// non-null) with the reason on any validation failure — missing file, short
/// header, bad magic, truncated payload, CRC mismatch.
std::optional<CheckpointBlob> read_checkpoint_file(const std::string& path,
                                                   std::string* error = nullptr);

}  // namespace mach::ckpt
