#include "ckpt/file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "ckpt/bytes.h"
#include "ckpt/crc32.h"

namespace mach::ckpt {

namespace {

constexpr std::uint8_t kMagic[8] = {'M', 'A', 'C', 'H', 'C', 'K', 'P', 0x01};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  const int err = errno;
  throw std::runtime_error(what + " " + path + ": " + std::strerror(err));
}

/// POSIX write loop (handles short writes / EINTR).
void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("checkpoint: cannot write", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort: some filesystems refuse O_RDONLY on dirs
  ::fsync(fd);
  ::close(fd);
}

bool fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return false;
}

}  // namespace

void write_checkpoint_file(const std::string& path, std::uint32_t version,
                           std::span<const std::uint8_t> payload) {
  ByteWriter header;
  for (const std::uint8_t b : kMagic) header.u8(b);
  header.u32(version);
  header.u64(payload.size());
  header.u32(crc32(payload));

  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("checkpoint: cannot create", tmp);
  try {
    write_all(fd, header.data().data(), header.size(), tmp);
    write_all(fd, payload.data(), payload.size(), tmp);
    if (::fsync(fd) != 0) throw_errno("checkpoint: fsync failed for", tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("checkpoint: close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("checkpoint: rename failed for", path);
  }
  // Persist the rename itself: fsync the containing directory so the new
  // entry survives a power cut, not just a process kill.
  fsync_path(std::filesystem::path(path).parent_path().string());
}

std::optional<CheckpointBlob> read_checkpoint_file(const std::string& path,
                                                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, "cannot open " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  std::vector<std::uint8_t> raw((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  // Zero-length and truncated-header files are the normal debris of a crash
  // between open and the first write of a non-atomic writer (or of a full
  // disk); both are corrupt snapshots, named distinctly for the fallback log.
  if (raw.empty()) {
    fail(error, path + ": empty snapshot file (zero bytes)");
    return std::nullopt;
  }
  if (raw.size() < kHeaderSize) {
    fail(error, path + ": truncated header (" + std::to_string(raw.size()) +
                    " of " + std::to_string(kHeaderSize) + " header bytes)");
    return std::nullopt;
  }
  ByteReader reader(raw);
  for (const std::uint8_t expected : kMagic) {
    if (reader.u8() != expected) {
      fail(error, path + ": bad magic");
      return std::nullopt;
    }
  }
  CheckpointBlob blob;
  blob.version = reader.u32();
  const std::uint64_t declared = reader.u64();
  const std::uint32_t stored_crc = reader.u32();
  if (declared != raw.size() - kHeaderSize) {
    fail(error, path + ": truncated payload (declared " + std::to_string(declared) +
                    " bytes, found " + std::to_string(raw.size() - kHeaderSize) + ")");
    return std::nullopt;
  }
  blob.payload.assign(raw.begin() + kHeaderSize, raw.end());
  const std::uint32_t actual_crc = crc32(blob.payload);
  if (actual_crc != stored_crc) {
    fail(error, path + ": CRC mismatch (corrupt payload)");
    return std::nullopt;
  }
  return blob;
}

}  // namespace mach::ckpt
