// Shared layout of the run-state snapshot's leading section.
//
// The HFL engine owns the full payload encoding (it knows every member it
// must freeze), but the header below is deliberately factored out and
// placed first in the payload so CLIs can recover the resume coordinates —
// which step to continue from and where to truncate the JSONL trace —
// without decoding model parameters or sampler blobs. The fingerprint pins
// the snapshot to the run configuration that produced it; everything that
// changes the deterministic event sequence feeds the hash, and thread count
// deliberately does not (runs are bitwise identical at any `--threads`, so
// resuming at a different worker count is legal and tested).
#pragma once

#include <cstdint>
#include <string_view>

#include "ckpt/bytes.h"

namespace mach::ckpt {

/// Payload format version written by HflSimulator (bump on layout changes).
/// v2: CommunicationCost gained the encoded-byte ledger + mixed-size flag,
/// and lossy-codec runs append error-feedback residuals and the last cloud
/// broadcast (src/comm/). v1 snapshots cannot resume a v2 engine.
inline constexpr std::uint32_t kRunStateVersion = 2;

struct RunStateHeader {
  std::uint64_t fingerprint = 0;      // run-configuration hash (see above)
  std::uint64_t next_t = 0;           // first time step still to execute
  std::uint64_t total_steps = 0;      // the run's requested horizon
  std::uint64_t cloud_rounds = 0;     // completed cloud rounds
  double window_train_loss = 0.0;     // eval-window accumulators
  std::uint64_t window_participants = 0;
  bool has_trace_cursor = false;      // trace offsets valid (run was traced)
  std::uint64_t trace_bytes = 0;      // truncate the JSONL trace to this size
  std::uint64_t trace_lines = 0;      // lines written up to the snapshot

  void encode(ByteWriter& out) const;
  /// Throws CorruptPayload on a malformed or foreign header.
  static RunStateHeader decode(ByteReader& in);
};

/// FNV-1a-style 64-bit hash chain for building run fingerprints.
std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) noexcept;
std::uint64_t hash_f64(std::uint64_t h, double v) noexcept;
std::uint64_t hash_str(std::uint64_t h, std::string_view s) noexcept;
inline constexpr std::uint64_t kHashSeed = 0xcbf29ce484222325ULL;

}  // namespace mach::ckpt
