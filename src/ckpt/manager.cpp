#include "ckpt/manager.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "ckpt/file.h"
#include "common/log.h"

namespace mach::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr char kPrefix[] = "ckpt_";
constexpr char kSuffix[] = ".mach";
constexpr int kStepDigits = 12;

std::string snapshot_name(std::uint64_t step) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s%0*llu%s", kPrefix, kStepDigits,
                static_cast<unsigned long long>(step), kSuffix);
  return buffer;
}

/// Parses `ckpt_<digits>.mach` back to its step; nullopt for foreign files.
std::optional<std::uint64_t> parse_step(const std::string& name) {
  const std::size_t prefix_len = sizeof(kPrefix) - 1;
  const std::size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t step = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    step = step * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return step;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(std::max<std::size_t>(keep, 1)) {
  if (dir_.empty()) {
    throw std::invalid_argument("CheckpointManager: empty directory");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("CheckpointManager: cannot create " + dir_ + ": " +
                             ec.message());
  }
}

std::string CheckpointManager::save(std::uint64_t step, std::uint32_t version,
                                    std::span<const std::uint8_t> payload) const {
  const std::string path = (fs::path(dir_) / snapshot_name(step)).string();
  write_checkpoint_file(path, version, payload);

  // Keep the newest `keep_` snapshots; everything older is garbage. Deleting
  // after the rename means a crash mid-GC leaves extra files, never fewer.
  std::vector<std::string> snapshots = list();
  while (snapshots.size() > keep_) {
    std::error_code ec;
    fs::remove(snapshots.front(), ec);
    snapshots.erase(snapshots.begin());
  }
  return path;
}

std::vector<std::string> CheckpointManager::list() const {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (const auto step = parse_step(name)) {
      found.emplace_back(*step, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [step, path] : found) paths.push_back(std::move(path));
  return paths;
}

std::optional<LoadedCheckpoint> CheckpointManager::load_latest() const {
  std::vector<std::string> snapshots = list();
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    std::string error;
    if (auto blob = read_checkpoint_file(*it, &error)) {
      LoadedCheckpoint loaded;
      loaded.step = parse_step(fs::path(*it).filename().string()).value_or(0);
      loaded.version = blob->version;
      loaded.payload = std::move(blob->payload);
      loaded.path = *it;
      // Name what was actually restored: after a corrupt-latest fallback the
      // "resumed from" step differs from the newest filename, and a silent
      // substitution is exactly what an operator debugging lost work needs
      // surfaced.
      common::log_info("checkpoint: loaded ", loaded.path, " (step ",
                       loaded.step, ")");
      return loaded;
    }
    common::log_warn("checkpoint: skipping invalid snapshot — ", error,
                     " (falling back to previous snapshot)");
  }
  return std::nullopt;
}

}  // namespace mach::ckpt
