// Serialisation of common::Rng streams into checkpoint payloads: the four
// xoshiro256++ words plus the cached Box-Muller half-draw, so a restored
// stream continues bit-for-bit (including an odd number of normal() calls).
#pragma once

#include "ckpt/bytes.h"
#include "common/rng.h"

namespace mach::ckpt {

inline void write_rng(ByteWriter& out, const common::Rng& rng) {
  const common::RngState state = rng.state();
  for (const std::uint64_t word : state.words) out.u64(word);
  out.f64(state.cached_normal);
  out.boolean(state.has_cached_normal);
}

inline void read_rng(ByteReader& in, common::Rng& rng) {
  common::RngState state;
  for (auto& word : state.words) word = in.u64();
  state.cached_normal = in.f64();
  state.has_cached_normal = in.boolean();
  rng.set_state(state);
}

}  // namespace mach::ckpt
