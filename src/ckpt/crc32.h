// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over checkpoint
// payloads. Detects torn writes and bit rot before a snapshot is trusted;
// a mismatch makes the loader fall back to the previous snapshot.
#pragma once

#include <cstdint>
#include <span>

namespace mach::ckpt {

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace mach::ckpt
