// Checkpoint/resume knobs threaded from the CLIs into the HFL engine.
#pragma once

#include <cstddef>
#include <string>

namespace mach::ckpt {

struct CheckpointOptions {
  /// Snapshot directory; required whenever `every` > 0 or `resume` is set.
  std::string dir;
  /// Snapshot after every N completed time steps (0 = checkpointing off).
  std::size_t every = 0;
  /// Snapshots retained per run (older ones are garbage-collected).
  std::size_t keep = 2;
  /// Continue from the newest valid snapshot in `dir` instead of starting
  /// over. With no usable snapshot the run starts from step 0 (logged).
  bool resume = false;
  /// Test/CI harness: hard-kill the process (SIGKILL — no destructors, no
  /// flushes) immediately after the snapshot for this step is durable.
  /// Simulates preemption at a deterministic point; 0 = off.
  std::size_t kill_at = 0;

  bool enabled() const noexcept { return every > 0 || resume; }
};

}  // namespace mach::ckpt
