#include "ckpt/run_state.h"

#include <bit>

namespace mach::ckpt {

namespace {
/// Leading tag so a reader pointed at a foreign payload fails fast.
constexpr std::uint32_t kHeaderTag = 0x52554e31;  // "RUN1"
}  // namespace

void RunStateHeader::encode(ByteWriter& out) const {
  out.u32(kHeaderTag);
  out.u64(fingerprint);
  out.u64(next_t);
  out.u64(total_steps);
  out.u64(cloud_rounds);
  out.f64(window_train_loss);
  out.u64(window_participants);
  out.boolean(has_trace_cursor);
  out.u64(trace_bytes);
  out.u64(trace_lines);
}

RunStateHeader RunStateHeader::decode(ByteReader& in) {
  if (in.u32() != kHeaderTag) {
    throw CorruptPayload("RunStateHeader: bad leading tag");
  }
  RunStateHeader header;
  header.fingerprint = in.u64();
  header.next_t = in.u64();
  header.total_steps = in.u64();
  header.cloud_rounds = in.u64();
  header.window_train_loss = in.f64();
  header.window_participants = in.u64();
  header.has_trace_cursor = in.boolean();
  header.trace_bytes = in.u64();
  header.trace_lines = in.u64();
  return header;
}

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xFFu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_f64(std::uint64_t h, double v) noexcept {
  return hash_u64(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t hash_str(std::uint64_t h, std::string_view s) noexcept {
  h = hash_u64(h, s.size());
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace mach::ckpt
