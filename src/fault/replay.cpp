#include "fault/replay.h"

#include <fstream>
#include <stdexcept>

#include "obs/json.h"

namespace mach::fault {

namespace {

[[noreturn]] void fail(std::size_t line_number, const std::string& message) {
  throw std::runtime_error("parse_fault_log: line " + std::to_string(line_number) +
                           ": " + message);
}

std::uint64_t read_count(std::size_t line_number, const obs::JsonValue& object,
                         std::string_view key) {
  const obs::JsonValue& value = object[key];
  if (value.is_null()) return 0;
  if (!value.is_number()) fail(line_number, "'" + std::string(key) + "' not a number");
  return static_cast<std::uint64_t>(value.as_number());
}

std::vector<std::uint64_t> read_id_array(std::size_t line_number,
                                         const obs::JsonValue& object,
                                         std::string_view key) {
  std::vector<std::uint64_t> out;
  const obs::JsonValue& value = object[key];
  if (value.is_null()) return out;
  if (!value.is_array()) fail(line_number, "'" + std::string(key) + "' not an array");
  for (const obs::JsonValue& item : value.as_array()) {
    if (!item.is_number()) {
      fail(line_number, "'" + std::string(key) + "' holds a non-numeric id");
    }
    out.push_back(static_cast<std::uint64_t>(item.as_number()));
  }
  return out;
}

}  // namespace

FaultReplayLog::Totals FaultReplayLog::totals() const {
  Totals totals;
  for (const EdgeFaultRecord& record : edges) {
    totals.dropped += record.dropped;
    totals.straggler_arrivals += record.straggler_arrivals;
    totals.straggler_timeouts += record.straggler_timeouts;
    totals.retries += record.retries;
    if (record.outage) ++totals.outage_rounds;
    totals.updates_lost += record.lost.size();
  }
  for (const CloudFaultRecord& record : clouds) {
    totals.cloud_uploads_lost += record.lost_edges.size();
  }
  return totals;
}

FaultReplayLog parse_fault_log(std::istream& trace) {
  FaultReplayLog log;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(trace, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string error;
    const auto parsed = obs::parse_json(line, &error);
    if (!parsed) fail(line_number, error);
    const obs::JsonValue& event = *parsed;
    const std::string kind = event.string_or("event", "");
    if (kind == "run_begin") {
      const obs::JsonValue& spec = event["faults"];
      if (spec.is_string()) log.specs.push_back(spec.as_string());
      continue;
    }
    if (kind == "edge_agg") {
      const obs::JsonValue& faults = event["faults"];
      if (faults.is_null()) continue;
      if (!faults.is_object()) fail(line_number, "'faults' not an object");
      EdgeFaultRecord record;
      record.t = static_cast<std::size_t>(event.number_or("t", 0.0));
      record.edge = static_cast<std::size_t>(event.number_or("edge", 0.0));
      const obs::JsonValue& outage = faults["outage"];
      record.outage = outage.is_bool() && outage.as_bool();
      record.survivors = read_id_array(line_number, faults, "survivors");
      record.lost = read_id_array(line_number, faults, "lost");
      record.dropped = read_count(line_number, faults, "dropped");
      record.straggler_arrivals = read_count(line_number, faults, "straggler_arrivals");
      record.straggler_timeouts = read_count(line_number, faults, "straggler_timeouts");
      record.retries = read_count(line_number, faults, "retries");
      log.edges.push_back(std::move(record));
      continue;
    }
    if (kind == "cloud_round") {
      const obs::JsonValue& lost = event["uploads_lost"];
      if (lost.is_null()) continue;  // fault layer inactive for this run
      CloudFaultRecord record;
      record.t = static_cast<std::size_t>(event.number_or("t", 0.0));
      record.lost_edges = read_id_array(line_number, event, "uploads_lost");
      log.clouds.push_back(std::move(record));
    }
  }
  return log;
}

FaultReplayLog parse_fault_log_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_fault_log: cannot open " + path);
  return parse_fault_log(in);
}

}  // namespace mach::fault
