#include "fault/injector.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "obs/span_profiler.h"

namespace mach::fault {

namespace {
// Domain tags keeping the device-fate and cloud-loss hash streams disjoint.
constexpr std::uint64_t kDeviceDomain = 0xFA01;
constexpr std::uint64_t kCloudDomain = 0xFA02;
// Stream id mixed with the run seed when the schedule has no pinned seed.
constexpr std::uint64_t kScheduleStream = 0xFA17;
}  // namespace

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t run_seed)
    : schedule_(std::move(schedule)),
      seed_(schedule_.seed != 0 ? schedule_.seed
                                : common::split_seed(run_seed, kScheduleStream)),
      enabled_(!schedule_.empty()) {}

std::uint64_t FaultInjector::event_seed(std::uint64_t domain, std::uint64_t a,
                                        std::uint64_t b,
                                        std::uint64_t c) const noexcept {
  return common::split_seed(
      common::split_seed(common::split_seed(common::split_seed(seed_, domain), a), b),
      c);
}

double FaultInjector::edge_timeout(std::size_t edge) const noexcept {
  for (const EdgeTimeout& entry : schedule_.edge_timeouts) {
    if (entry.edge == edge) return entry.timeout;
  }
  return schedule_.straggler.timeout;
}

bool FaultInjector::edge_out(std::size_t t, std::size_t edge) const noexcept {
  for (const EdgeOutage& outage : schedule_.outages) {
    if (outage.edge == edge && t >= outage.from_step && t < outage.to_step) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::dropout_targets(std::uint32_t device) const noexcept {
  if (schedule_.dropout.devices.empty()) return true;
  return std::binary_search(schedule_.dropout.devices.begin(),
                            schedule_.dropout.devices.end(), device);
}

DeviceFaultDecision FaultInjector::device_fate(std::size_t t, std::size_t edge,
                                               std::uint32_t device) const {
  const obs::SpanGuard span("fault_fate", static_cast<std::int64_t>(t), device);
  DeviceFaultDecision decision;
  common::Rng rng(event_seed(kDeviceDomain, t, edge, device));
  // Fixed draw order (dropout gate, straggler gate, initial delay) within
  // this event's private stream; arrival_probability mirrors it.
  if (schedule_.dropout.probability > 0.0 && dropout_targets(device) &&
      rng.bernoulli(schedule_.dropout.probability)) {
    decision.fate = DeviceFate::Dropped;
    decision.arrived = false;
    return decision;
  }
  const StragglerRule& straggler = schedule_.straggler;
  if (straggler.probability > 0.0 && rng.bernoulli(straggler.probability)) {
    const double initial = rng.exponential(1.0 / straggler.delay_mean);
    const double timeout = edge_timeout(edge);
    double attempt = initial;
    for (std::size_t k = 0; k <= straggler.max_retries; ++k) {
      decision.virtual_seconds += attempt;
      decision.delay_seconds = attempt;
      decision.retries = k;
      if (attempt <= timeout) {
        decision.fate = DeviceFate::StragglerArrived;
        return decision;
      }
      attempt *= straggler.backoff;
    }
    decision.fate = DeviceFate::StragglerTimedOut;
    decision.arrived = false;
    decision.retries = straggler.max_retries;
    return decision;
  }
  return decision;
}

bool FaultInjector::cloud_upload_lost(std::size_t t, std::size_t edge) const {
  if (schedule_.cloud_loss.probability <= 0.0) return false;
  common::Rng rng(event_seed(kCloudDomain, t, edge, 0));
  return rng.bernoulli(schedule_.cloud_loss.probability);
}

double FaultInjector::arrival_probability(std::size_t edge,
                                          std::uint32_t device) const {
  double survive_dropout = 1.0;
  if (schedule_.dropout.probability > 0.0 && dropout_targets(device)) {
    survive_dropout = 1.0 - schedule_.dropout.probability;
  }
  const StragglerRule& straggler = schedule_.straggler;
  double survive_straggle = 1.0;
  if (straggler.probability > 0.0) {
    // An attempt arrives iff initial_delay * backoff^k <= timeout for some
    // k <= R; the smallest attempted delay is initial * min(1, backoff^R).
    const double shrink = std::min(
        1.0, std::pow(straggler.backoff, static_cast<double>(straggler.max_retries)));
    const double threshold = edge_timeout(edge) / shrink;
    // expm1 for accuracy when the arrival rate is tiny (matches validate()).
    const double p_make_it = -std::expm1(-threshold / straggler.delay_mean);
    survive_straggle = 1.0 - straggler.probability + straggler.probability * p_make_it;
  }
  return survive_dropout * survive_straggle;
}

}  // namespace mach::fault
