#include "fault/schedule.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mach::fault {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("FaultSchedule: " + message);
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

double parse_double(std::string_view clause, std::string_view key,
                    std::string_view value) {
  double out = 0.0;
  const auto result = std::from_chars(value.data(), value.data() + value.size(), out);
  if (result.ec != std::errc{} || result.ptr != value.data() + value.size()) {
    fail(std::string(clause) + ": '" + std::string(key) +
         "' expects a number, got '" + std::string(value) + "'");
  }
  return out;
}

std::uint64_t parse_uint(std::string_view clause, std::string_view key,
                         std::string_view value) {
  std::uint64_t out = 0;
  const auto result = std::from_chars(value.data(), value.data() + value.size(), out);
  if (result.ec != std::errc{} || result.ptr != value.data() + value.size()) {
    fail(std::string(clause) + ": '" + std::string(key) +
         "' expects a non-negative integer, got '" + std::string(value) + "'");
  }
  return out;
}

double parse_probability(std::string_view clause, std::string_view key,
                         std::string_view value) {
  const double p = parse_double(clause, key, value);
  if (!(p >= 0.0 && p <= 1.0)) {
    fail(std::string(clause) + ": probability must be in [0, 1], got '" +
         std::string(value) + "'");
  }
  return p;
}

/// Device list grammar: '/'-separated ids or inclusive 'a-b' ranges,
/// e.g. "0/3/8-11".
std::vector<std::uint32_t> parse_device_list(std::string_view value) {
  std::vector<std::uint32_t> devices;
  for (const std::string_view raw : split(value, '/')) {
    const std::string_view item = trim(raw);
    if (item.empty()) fail("dropout: empty entry in device list");
    const std::size_t dash = item.find('-');
    const auto parse_id = [&](std::string_view text) -> std::uint32_t {
      std::uint32_t id = 0;
      const auto result = std::from_chars(text.data(), text.data() + text.size(), id);
      if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
        fail("dropout: bad device id '" + std::string(text) + "'");
      }
      return id;
    };
    if (dash == std::string_view::npos) {
      devices.push_back(parse_id(item));
      continue;
    }
    const std::uint32_t lo = parse_id(trim(item.substr(0, dash)));
    const std::uint32_t hi = parse_id(trim(item.substr(dash + 1)));
    if (lo > hi) {
      fail("dropout: reversed device range '" + std::string(item) + "'");
    }
    for (std::uint32_t id = lo; id <= hi; ++id) devices.push_back(id);
  }
  std::sort(devices.begin(), devices.end());
  devices.erase(std::unique(devices.begin(), devices.end()), devices.end());
  return devices;
}

/// Key/value pairs of one clause body ("p=0.1,devices=0/2").
std::vector<std::pair<std::string_view, std::string_view>> parse_kv(
    std::string_view clause, std::string_view body) {
  std::vector<std::pair<std::string_view, std::string_view>> out;
  for (const std::string_view raw : split(body, ',')) {
    const std::string_view item = trim(raw);
    if (item.empty()) fail(std::string(clause) + ": empty key=value entry");
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      fail(std::string(clause) + ": expected key=value, got '" + std::string(item) +
           "'");
    }
    out.emplace_back(trim(item.substr(0, eq)), trim(item.substr(eq + 1)));
  }
  return out;
}

/// Largest initial straggler delay that still arrives within `timeout` after
/// all retransmissions: the smallest attempted delay is d * min(1, b^R).
double arrival_threshold(const StragglerRule& rule, double timeout) {
  const double shrink =
      std::min(1.0, std::pow(rule.backoff, static_cast<double>(rule.max_retries)));
  return timeout / shrink;
}

std::string format_number(double value) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

constexpr double kMinArrivalProbability = 1e-6;
constexpr std::size_t kMaxRetries = 16;

}  // namespace

bool FaultSchedule::empty() const noexcept {
  return dropout.probability == 0.0 && straggler.probability == 0.0 &&
         outages.empty() && cloud_loss.probability == 0.0;
}

void FaultSchedule::validate() const {
  if (!(dropout.probability >= 0.0 && dropout.probability <= 1.0)) {
    fail("dropout: probability must be in [0, 1]");
  }
  if (!(straggler.probability >= 0.0 && straggler.probability <= 1.0)) {
    fail("straggler: probability must be in [0, 1]");
  }
  if (!(cloud_loss.probability >= 0.0 && cloud_loss.probability <= 1.0)) {
    fail("cloud_loss: probability must be in [0, 1]");
  }
  if (straggler.probability > 0.0) {
    if (!(straggler.delay_mean > 0.0)) fail("straggler: delay must be > 0");
    if (!(straggler.timeout > 0.0)) fail("straggler: timeout must be > 0");
    if (!(straggler.backoff > 0.0)) fail("straggler: backoff must be > 0");
    if (straggler.max_retries > kMaxRetries) {
      fail("straggler: retries must be <= " + std::to_string(kMaxRetries));
    }
  }
  std::vector<std::size_t> timeout_edges;
  for (const EdgeTimeout& entry : edge_timeouts) {
    if (!(entry.timeout > 0.0)) {
      fail("edge_timeout: timeout must be > 0 (edge " + std::to_string(entry.edge) +
           ")");
    }
    timeout_edges.push_back(entry.edge);
  }
  std::sort(timeout_edges.begin(), timeout_edges.end());
  if (std::adjacent_find(timeout_edges.begin(), timeout_edges.end()) !=
      timeout_edges.end()) {
    fail("edge_timeout: duplicate override for one edge");
  }
  std::vector<EdgeOutage> sorted = outages;
  std::sort(sorted.begin(), sorted.end(), [](const EdgeOutage& a, const EdgeOutage& b) {
    return a.edge != b.edge ? a.edge < b.edge : a.from_step < b.from_step;
  });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].from_step >= sorted[i].to_step) {
      fail("edge_outage: window must satisfy from < to (edge " +
           std::to_string(sorted[i].edge) + ")");
    }
    if (i > 0 && sorted[i].edge == sorted[i - 1].edge &&
        sorted[i].from_step < sorted[i - 1].to_step) {
      fail("edge_outage: overlapping windows on edge " +
           std::to_string(sorted[i].edge) + " ([" +
           std::to_string(sorted[i - 1].from_step) + "," +
           std::to_string(sorted[i - 1].to_step) + ") and [" +
           std::to_string(sorted[i].from_step) + "," +
           std::to_string(sorted[i].to_step) + "))");
    }
  }
  // Horvitz-Thompson weights divide by the arrival probability; a schedule
  // that makes survival nearly impossible would make them explode.
  if (dropout.probability > 0.0 || straggler.probability > 0.0) {
    double worst_straggler_arrival = 1.0;
    if (straggler.probability > 0.0) {
      double min_timeout = straggler.timeout;
      for (const EdgeTimeout& entry : edge_timeouts) {
        min_timeout = std::min(min_timeout, entry.timeout);
      }
      const double threshold = arrival_threshold(straggler, min_timeout);
      // expm1 keeps tiny arrival rates from underflowing to exactly 0, which
      // would sneak a near-impossible-but-not-impossible schedule past the
      // floor below.
      const double p_make_it = -std::expm1(-threshold / straggler.delay_mean);
      worst_straggler_arrival =
          1.0 - straggler.probability + straggler.probability * p_make_it;
    }
    const double arrival = (1.0 - dropout.probability) * worst_straggler_arrival;
    // Exactly zero is fine: a deterministically-dead device (dropout p=1)
    // never arrives, so its inverse weight is never computed. The dangerous
    // band is (0, floor): arrivals are possible but absurdly over-weighted.
    if (arrival > 0.0 && arrival < kMinArrivalProbability) {
      fail("arrival probability " + format_number(arrival) +
           " is below " + format_number(kMinArrivalProbability) +
           "; inverse-probability weights would explode (raise the timeout or "
           "lower the dropout/straggler rates)");
    }
  }
}

void FaultSchedule::validate_topology(std::size_t num_devices,
                                      std::size_t num_edges) const {
  for (const std::uint32_t id : dropout.devices) {
    if (id >= num_devices) {
      fail("dropout: device id " + std::to_string(id) + " out of range (" +
           std::to_string(num_devices) + " devices)");
    }
  }
  for (const EdgeTimeout& entry : edge_timeouts) {
    if (entry.edge >= num_edges) {
      fail("edge_timeout: edge " + std::to_string(entry.edge) + " out of range (" +
           std::to_string(num_edges) + " edges)");
    }
  }
  for (const EdgeOutage& outage : outages) {
    if (outage.edge >= num_edges) {
      fail("edge_outage: edge " + std::to_string(outage.edge) + " out of range (" +
           std::to_string(num_edges) + " edges)");
    }
  }
}

FaultSchedule FaultSchedule::parse(std::string_view spec) {
  FaultSchedule schedule;
  bool seen_dropout = false, seen_straggler = false, seen_cloud = false,
       seen_seed = false;
  for (const std::string_view raw_clause : split(spec, ';')) {
    const std::string_view clause = trim(raw_clause);
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    if (colon == std::string_view::npos) {
      // Bare clause: only "seed=N".
      const std::size_t eq = clause.find('=');
      if (eq != std::string_view::npos && trim(clause.substr(0, eq)) == "seed") {
        if (seen_seed) fail("duplicate seed clause");
        seen_seed = true;
        schedule.seed = parse_uint("seed", "seed", trim(clause.substr(eq + 1)));
        continue;
      }
      fail("unknown clause '" + std::string(clause) +
           "' (expected dropout:/straggler:/edge_timeout:/edge_outage:/"
           "cloud_loss:/seed=)");
    }
    const std::string_view head = trim(clause.substr(0, colon));
    const auto kv = parse_kv(head, clause.substr(colon + 1));
    if (head == "dropout") {
      if (seen_dropout) fail("duplicate dropout clause");
      seen_dropout = true;
      for (const auto& [key, value] : kv) {
        if (key == "p") {
          schedule.dropout.probability = parse_probability(head, key, value);
        } else if (key == "devices") {
          schedule.dropout.devices = parse_device_list(value);
        } else {
          fail("dropout: unknown key '" + std::string(key) + "'");
        }
      }
    } else if (head == "straggler") {
      if (seen_straggler) fail("duplicate straggler clause");
      seen_straggler = true;
      for (const auto& [key, value] : kv) {
        if (key == "p") {
          schedule.straggler.probability = parse_probability(head, key, value);
        } else if (key == "delay") {
          schedule.straggler.delay_mean = parse_double(head, key, value);
        } else if (key == "timeout") {
          schedule.straggler.timeout = parse_double(head, key, value);
        } else if (key == "backoff") {
          schedule.straggler.backoff = parse_double(head, key, value);
        } else if (key == "retries") {
          schedule.straggler.max_retries =
              static_cast<std::size_t>(parse_uint(head, key, value));
        } else {
          fail("straggler: unknown key '" + std::string(key) + "'");
        }
      }
    } else if (head == "edge_timeout") {
      EdgeTimeout entry;
      bool has_edge = false, has_timeout = false;
      for (const auto& [key, value] : kv) {
        if (key == "edge") {
          entry.edge = static_cast<std::size_t>(parse_uint(head, key, value));
          has_edge = true;
        } else if (key == "timeout") {
          entry.timeout = parse_double(head, key, value);
          has_timeout = true;
        } else {
          fail("edge_timeout: unknown key '" + std::string(key) + "'");
        }
      }
      if (!has_edge || !has_timeout) fail("edge_timeout: needs edge= and timeout=");
      schedule.edge_timeouts.push_back(entry);
    } else if (head == "edge_outage") {
      EdgeOutage outage;
      bool has_edge = false, has_from = false, has_to = false;
      for (const auto& [key, value] : kv) {
        if (key == "edge") {
          outage.edge = static_cast<std::size_t>(parse_uint(head, key, value));
          has_edge = true;
        } else if (key == "from") {
          outage.from_step = static_cast<std::size_t>(parse_uint(head, key, value));
          has_from = true;
        } else if (key == "to") {
          outage.to_step = static_cast<std::size_t>(parse_uint(head, key, value));
          has_to = true;
        } else {
          fail("edge_outage: unknown key '" + std::string(key) + "'");
        }
      }
      if (!has_edge || !has_from || !has_to) {
        fail("edge_outage: needs edge=, from= and to=");
      }
      schedule.outages.push_back(outage);
    } else if (head == "cloud_loss") {
      if (seen_cloud) fail("duplicate cloud_loss clause");
      seen_cloud = true;
      for (const auto& [key, value] : kv) {
        if (key == "p") {
          schedule.cloud_loss.probability = parse_probability(head, key, value);
        } else {
          fail("cloud_loss: unknown key '" + std::string(key) + "'");
        }
      }
    } else {
      fail("unknown clause '" + std::string(head) + "'");
    }
  }
  schedule.validate();
  return schedule;
}

std::string FaultSchedule::to_string() const {
  std::string out;
  const auto clause = [&out](const std::string& text) {
    if (!out.empty()) out += ';';
    out += text;
  };
  if (dropout.probability > 0.0 || !dropout.devices.empty()) {
    std::string text = "dropout:p=" + format_number(dropout.probability);
    if (!dropout.devices.empty()) {
      text += ",devices=";
      for (std::size_t i = 0; i < dropout.devices.size(); ++i) {
        if (i != 0) text += '/';
        text += std::to_string(dropout.devices[i]);
      }
    }
    clause(text);
  }
  if (straggler.probability > 0.0) {
    clause("straggler:p=" + format_number(straggler.probability) +
           ",delay=" + format_number(straggler.delay_mean) +
           ",timeout=" + format_number(straggler.timeout) +
           ",backoff=" + format_number(straggler.backoff) +
           ",retries=" + std::to_string(straggler.max_retries));
  }
  for (const EdgeTimeout& entry : edge_timeouts) {
    clause("edge_timeout:edge=" + std::to_string(entry.edge) +
           ",timeout=" + format_number(entry.timeout));
  }
  for (const EdgeOutage& outage : outages) {
    clause("edge_outage:edge=" + std::to_string(outage.edge) +
           ",from=" + std::to_string(outage.from_step) +
           ",to=" + std::to_string(outage.to_step));
  }
  if (cloud_loss.probability > 0.0) {
    clause("cloud_loss:p=" + format_number(cloud_loss.probability));
  }
  if (seed != 0) clause("seed=" + std::to_string(seed));
  return out;
}

}  // namespace mach::fault
