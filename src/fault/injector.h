// Deterministic fault realisation.
//
// FaultInjector turns a declarative FaultSchedule into concrete per-event
// decisions. Every decision is a pure function of (schedule seed, event
// coordinates): each query hashes its coordinates into a private
// counter-based RNG stream (common::split_seed chains), so
//   * the answer never depends on query order or thread count,
//   * re-running the same schedule + seed replays the exact fault history
//     (the failure-replay harness in tests/fault/ relies on this), and
//   * the engine's sampling RNG stream is never touched — an all-zero
//     schedule leaves runs bitwise identical.
//
// The injector also exposes the analytic arrival probability implied by the
// schedule. The engine divides Horvitz-Thompson weights by it (Eq. 5 over
// the surviving set): device survival is an independent thinning with known
// probability, so 1/(|M_n| q_m a_m) keeps the edge aggregate unbiased —
// the property tests/hfl/test_ht_unbiased.cpp checks by Monte Carlo.
#pragma once

#include <cstdint>

#include "fault/schedule.h"

namespace mach::fault {

enum class DeviceFate {
  /// Trained and reported on time (no fault fired).
  Completed,
  /// Dropped mid-round: the update never arrives.
  Dropped,
  /// Straggled but an attempt fit the timeout budget (possibly a retry).
  StragglerArrived,
  /// Straggled and every attempt exceeded the budget: update lost.
  StragglerTimedOut,
};

struct DeviceFaultDecision {
  DeviceFate fate = DeviceFate::Completed;
  /// True when the device's update reaches the edge in time.
  bool arrived = true;
  /// Retransmissions consumed (stragglers; arrived or exhausted).
  std::size_t retries = 0;
  /// Virtual delay of the final (accepted or last) attempt, seconds.
  double delay_seconds = 0.0;
  /// Total virtual time spent across every attempt, seconds.
  double virtual_seconds = 0.0;
};

class FaultInjector {
 public:
  /// Disabled injector: enabled() is false and no query may assume faults.
  FaultInjector() = default;

  /// `run_seed` feeds the derived fault stream when the schedule does not
  /// pin its own seed. The schedule must already be validated.
  FaultInjector(FaultSchedule schedule, std::uint64_t run_seed);

  bool enabled() const noexcept { return enabled_; }
  const FaultSchedule& schedule() const noexcept { return schedule_; }

  /// Arrival budget for `edge` (per-edge override or the straggler default).
  double edge_timeout(std::size_t edge) const noexcept;

  /// True when `edge` is inside an outage window at step `t`.
  bool edge_out(std::size_t t, std::size_t edge) const noexcept;

  /// Fate of one sampled device at (t, edge). Pure: same inputs, same answer.
  DeviceFaultDecision device_fate(std::size_t t, std::size_t edge,
                                  std::uint32_t device) const;

  /// True when `edge`'s model upload is lost at the cloud round of step `t`.
  bool cloud_upload_lost(std::size_t t, std::size_t edge) const;

  /// P(update arrives | sampled) for a device on `edge` under the schedule:
  /// (1 - p_drop) * (1 - p_straggle * P(every attempt misses the budget)).
  /// Matches the sampling procedure of device_fate exactly.
  double arrival_probability(std::size_t edge, std::uint32_t device) const;

 private:
  bool dropout_targets(std::uint32_t device) const noexcept;
  std::uint64_t event_seed(std::uint64_t domain, std::uint64_t a, std::uint64_t b,
                           std::uint64_t c) const noexcept;

  FaultSchedule schedule_;
  std::uint64_t seed_ = 0;
  bool enabled_ = false;
};

}  // namespace mach::fault
