// Failure-replay support: reconstructs the realised fault history of a run
// from its JSONL telemetry trace (obs::JsonlTraceWriter output).
//
// The engine reports per-round survivor/lost sets, outages and cloud upload
// losses inside its trace events whenever the fault layer is active. This
// module parses a trace back into a structured FaultReplayLog so a harness
// can (a) compare two runs' fault histories for exact equality — the
// determinism contract says the same schedule + seed replays identically at
// any thread count — and (b) cross-check the aggregate fault counters the
// engine reported at run_end.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace mach::fault {

/// One edge round's realised faults (from an "edge_agg" trace line).
struct EdgeFaultRecord {
  std::size_t t = 0;
  std::size_t edge = 0;
  bool outage = false;
  std::vector<std::uint64_t> survivors;  // sampled devices whose updates arrived
  std::vector<std::uint64_t> lost;       // sampled devices whose updates never did
  std::uint64_t dropped = 0;
  std::uint64_t straggler_arrivals = 0;
  std::uint64_t straggler_timeouts = 0;
  std::uint64_t retries = 0;

  bool operator==(const EdgeFaultRecord&) const = default;
};

/// One cloud round's upload losses (from a "cloud_round" trace line).
struct CloudFaultRecord {
  std::size_t t = 0;
  std::vector<std::uint64_t> lost_edges;

  bool operator==(const CloudFaultRecord&) const = default;
};

struct FaultReplayLog {
  /// Fault specs of the runs in the trace (one per run_begin carrying one).
  std::vector<std::string> specs;
  std::vector<EdgeFaultRecord> edges;
  std::vector<CloudFaultRecord> clouds;

  struct Totals {
    std::uint64_t dropped = 0;
    std::uint64_t straggler_arrivals = 0;
    std::uint64_t straggler_timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t outage_rounds = 0;
    std::uint64_t updates_lost = 0;       // dropped + straggler timeouts
    std::uint64_t cloud_uploads_lost = 0;

    bool operator==(const Totals&) const = default;
  };
  Totals totals() const;

  bool empty() const noexcept {
    return edges.empty() && clouds.empty() && specs.empty();
  }

  bool operator==(const FaultReplayLog&) const = default;
};

/// Parses a JSONL trace stream. Lines without fault payloads contribute
/// nothing; cloud_round lines with an empty loss list are kept (they pin the
/// cloud-loss draw history). Throws std::runtime_error naming the line
/// number on malformed JSON or mistyped fault fields.
FaultReplayLog parse_fault_log(std::istream& trace);

/// Convenience: opens and parses a trace file. Throws std::runtime_error
/// when the file cannot be read.
FaultReplayLog parse_fault_log_file(const std::string& path);

}  // namespace mach::fault
