// Declarative fault schedules for the HFL engine.
//
// A FaultSchedule describes *which* failures a run should experience —
// device dropout mid-round, straggler delay against a per-edge timeout
// budget, transient edge outages and cloud-round upload loss — without
// saying anything about *when* each individual failure fires. The
// realisation is produced by FaultInjector (injector.h) from the schedule
// plus a seed, deterministically per (step, edge, device), so the same
// schedule replays bit-for-bit at any thread count.
//
// Schedules are built in code or parsed from the compact spec strings the
// CLI/bench `--faults` flag accepts:
//
//   dropout:p=0.1,devices=0/3/8-11;straggler:p=0.2,delay=2.0,timeout=1.5,
//   backoff=0.5,retries=2;edge_timeout:edge=1,timeout=0.25;
//   edge_outage:edge=0,from=10,to=20;cloud_loss:p=0.05;seed=7
//
// Clauses are ';'-separated, keys within a clause ','-separated. Every
// clause is optional; an empty spec is the all-zero schedule (no fault path
// is ever taken — runs are bitwise identical to a fault-free build).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mach::fault {

/// Mid-round device dropout: a sampled device vanishes before its update
/// reaches the edge (it downloaded the model and may have trained, but the
/// upload never arrives).
struct DropoutRule {
  /// Per sampled device per round probability of dropping.
  double probability = 0.0;
  /// Sorted, deduplicated target device ids; empty = every device.
  std::vector<std::uint32_t> devices;

  bool operator==(const DropoutRule&) const = default;
};

/// Straggling: a sampled device's upload is delayed by a virtual
/// Exp(delay_mean) time. The edge waits up to its timeout budget; late
/// uploads are retransmitted with multiplicative backoff until they fit the
/// budget or `max_retries` is exhausted (then the update counts as lost).
struct StragglerRule {
  /// Per sampled device per round probability of straggling.
  double probability = 0.0;
  /// Mean of the exponential initial-delay draw (virtual seconds).
  double delay_mean = 1.0;
  /// Default per-edge arrival budget (virtual seconds); see EdgeTimeout.
  double timeout = 1.0;
  /// Delay multiplier per retransmission (<1 models decongestion).
  double backoff = 0.5;
  /// Retransmissions attempted after the first late arrival.
  std::size_t max_retries = 2;

  bool operator==(const StragglerRule&) const = default;
};

/// Per-edge override of StragglerRule::timeout.
struct EdgeTimeout {
  std::size_t edge = 0;
  double timeout = 1.0;

  bool operator==(const EdgeTimeout&) const = default;
};

/// Transient edge outage over the step window [from_step, to_step): the edge
/// runs no round at all (no sampling, no training, model carried over).
struct EdgeOutage {
  std::size_t edge = 0;
  std::size_t from_step = 0;
  std::size_t to_step = 0;

  bool operator==(const EdgeOutage&) const = default;
};

/// Cloud-round message loss: an edge's model upload fails to reach the
/// cloud (Eq. 6 folds over the surviving edges; the broadcast downlink is
/// assumed reliable).
struct CloudLossRule {
  /// Per (cloud round, edge) probability of losing the upload.
  double probability = 0.0;

  bool operator==(const CloudLossRule&) const = default;
};

struct FaultSchedule {
  /// Dedicated fault-randomness seed; 0 derives one from the run seed.
  /// Fault draws never touch the engine's sampling RNG stream, so enabling
  /// faults does not perturb which devices the Bernoulli trials select.
  std::uint64_t seed = 0;
  DropoutRule dropout;
  StragglerRule straggler;
  std::vector<EdgeTimeout> edge_timeouts;
  std::vector<EdgeOutage> outages;
  CloudLossRule cloud_loss;

  /// True when no clause can ever fire — the engine takes the exact
  /// fault-free code path (bitwise-identical outputs to a build without the
  /// fault layer).
  bool empty() const noexcept;

  /// Semantic validation (probabilities, windows, arrival-probability
  /// floor). Throws std::invalid_argument with a message naming the bad
  /// clause. parse() always validates; call this after building in code.
  void validate() const;

  /// Checks every referenced device/edge id against the federation size.
  /// Throws std::invalid_argument on out-of-range ids.
  void validate_topology(std::size_t num_devices, std::size_t num_edges) const;

  /// Parses the `--faults` spec grammar (see file comment) and validates.
  /// Throws std::invalid_argument with a clear message on malformed input.
  static FaultSchedule parse(std::string_view spec);

  /// Canonical spec round-trip: parse(to_string()) == *this for any schedule
  /// whose non-default knobs sit in active clauses (inactive clauses — e.g.
  /// straggler knobs with p=0 — are not emitted). Empty string for the
  /// all-zero schedule.
  std::string to_string() const;

  bool operator==(const FaultSchedule&) const = default;
};

}  // namespace mach::fault
