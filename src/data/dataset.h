// In-memory labelled dataset plus batch gathering.
//
// A Dataset owns the full example tensor (images in NCHW or flat feature
// rows) and integer class labels. Devices hold index lists into a shared
// Dataset, so partitioning never copies example storage.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mach::data {

/// A gathered minibatch: examples stacked along dim 0 plus labels.
struct Batch {
  tensor::Tensor features;
  std::vector<int> labels;

  std::size_t size() const noexcept { return labels.size(); }
};

class Dataset {
 public:
  Dataset() = default;
  /// `features` dim 0 must equal labels.size(); labels in [0, num_classes).
  Dataset(tensor::Tensor features, std::vector<int> labels, std::size_t num_classes);

  std::size_t size() const noexcept { return labels_.size(); }
  std::size_t num_classes() const noexcept { return num_classes_; }
  /// Per-example shape (the dataset shape minus the leading dim).
  std::vector<std::size_t> example_shape() const;
  /// Scalars per example.
  std::size_t example_numel() const noexcept;

  const tensor::Tensor& features() const noexcept { return features_; }
  std::span<const int> labels() const noexcept { return labels_; }
  int label(std::size_t i) const { return labels_.at(i); }

  /// Stacks the referenced examples into a contiguous batch.
  Batch gather(std::span<const std::size_t> indices) const;

  /// Uniformly samples `batch_size` of the given indices with replacement —
  /// the random local-data draw xi in Eq. (4).
  Batch sample_batch(std::span<const std::size_t> indices, std::size_t batch_size,
                     common::Rng& rng) const;

  /// Histogram of labels restricted to `indices` (size == num_classes()).
  std::vector<std::size_t> class_histogram(std::span<const std::size_t> indices) const;

 private:
  tensor::Tensor features_;
  std::vector<int> labels_;
  std::size_t num_classes_ = 0;
};

}  // namespace mach::data
