#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mach::data {

std::vector<double> long_tailed_weights(std::size_t classes, double ratio) {
  if (ratio <= 0.0 || ratio > 1.0) {
    throw std::invalid_argument("long_tailed_weights: ratio must be in (0, 1]");
  }
  std::vector<double> weights(classes);
  double w = 1.0;
  for (std::size_t k = 0; k < classes; ++k) {
    weights[k] = w;
    w *= ratio;
  }
  return weights;
}

namespace {

/// Indices of the dataset grouped by label; order inside a pool randomised.
std::vector<std::vector<std::size_t>> class_pools(const Dataset& dataset,
                                                  common::Rng& rng) {
  std::vector<std::vector<std::size_t>> pools(dataset.num_classes());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    pools[static_cast<std::size_t>(dataset.label(i))].push_back(i);
  }
  for (auto& pool : pools) rng.shuffle(pool);
  return pools;
}

std::size_t fullest_pool(const std::vector<std::vector<std::size_t>>& pools) {
  std::size_t best = pools.size();
  std::size_t best_size = 0;
  for (std::size_t c = 0; c < pools.size(); ++c) {
    if (pools[c].size() > best_size) {
      best_size = pools[c].size();
      best = c;
    }
  }
  return best;
}

/// Draws one example of (preferably) class `wanted` from the pools, falling
/// back to the fullest pool when that class is exhausted. Returns the index
/// or dataset.size() when all pools are empty.
std::size_t draw_from_pools(std::vector<std::vector<std::size_t>>& pools,
                            std::size_t wanted) {
  std::size_t cls = wanted;
  if (cls >= pools.size() || pools[cls].empty()) cls = fullest_pool(pools);
  if (cls >= pools.size()) return static_cast<std::size_t>(-1);
  const std::size_t idx = pools[cls].back();
  pools[cls].pop_back();
  return idx;
}

}  // namespace

Partition partition_long_tailed(const Dataset& dataset, std::size_t num_devices,
                                double ratio, common::Rng& rng) {
  if (num_devices == 0) throw std::invalid_argument("partition: zero devices");
  if (dataset.size() < num_devices) {
    throw std::invalid_argument("partition: fewer examples than devices");
  }
  auto pools = class_pools(dataset, rng);
  const std::size_t classes = dataset.num_classes();
  const std::vector<double> tail = long_tailed_weights(classes, ratio);

  // Per-device preference ordering: a random rotation of the class ids, so
  // the dominant class differs across devices while each device keeps the
  // same long-tail *shape* over its own ranking.
  std::vector<std::vector<double>> device_weights(num_devices,
                                                  std::vector<double>(classes));
  for (std::size_t m = 0; m < num_devices; ++m) {
    const std::size_t rotation = rng.uniform_index(classes);
    for (std::size_t rank = 0; rank < classes; ++rank) {
      device_weights[m][(rotation + rank) % classes] = tail[rank];
    }
  }

  Partition partition(num_devices);
  const std::size_t base = dataset.size() / num_devices;
  std::size_t remainder = dataset.size() % num_devices;
  for (std::size_t m = 0; m < num_devices; ++m) {
    std::size_t quota = base + (m < remainder ? 1 : 0);
    partition[m].reserve(quota);
    while (quota-- > 0) {
      const std::size_t wanted = rng.categorical(device_weights[m]);
      const std::size_t idx = draw_from_pools(pools, wanted);
      if (idx == static_cast<std::size_t>(-1)) break;
      partition[m].push_back(idx);
    }
  }
  return partition;
}

Partition partition_dirichlet(const Dataset& dataset, std::size_t num_devices,
                              double alpha, common::Rng& rng) {
  if (num_devices == 0) throw std::invalid_argument("partition: zero devices");
  auto pools = class_pools(dataset, rng);
  const std::size_t classes = dataset.num_classes();

  // For each class, split its pool across devices by a Dirichlet draw.
  Partition partition(num_devices);
  for (std::size_t c = 0; c < classes; ++c) {
    auto& pool = pools[c];
    if (pool.empty()) continue;
    const std::vector<double> shares = rng.dirichlet(alpha, num_devices);
    // Largest-remainder apportionment of pool.size() across devices.
    std::vector<std::size_t> counts(num_devices, 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::size_t assigned = 0;
    for (std::size_t m = 0; m < num_devices; ++m) {
      const double exact = shares[m] * static_cast<double>(pool.size());
      counts[m] = static_cast<std::size_t>(exact);
      assigned += counts[m];
      remainders.emplace_back(exact - std::floor(exact), m);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (std::size_t i = 0; assigned < pool.size(); ++i, ++assigned) {
      ++counts[remainders[i % num_devices].second];
    }
    std::size_t cursor = 0;
    for (std::size_t m = 0; m < num_devices; ++m) {
      for (std::size_t k = 0; k < counts[m]; ++k) {
        partition[m].push_back(pool[cursor++]);
      }
    }
  }

  // Guarantee non-empty devices: steal one example from the largest part.
  for (std::size_t m = 0; m < num_devices; ++m) {
    if (!partition[m].empty()) continue;
    auto largest = std::max_element(
        partition.begin(), partition.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    if (largest->size() > 1) {
      partition[m].push_back(largest->back());
      largest->pop_back();
    }
  }
  return partition;
}

Partition partition_shards(const Dataset& dataset, std::size_t num_devices,
                           std::size_t shards_per_device, common::Rng& rng) {
  if (num_devices == 0 || shards_per_device == 0) {
    throw std::invalid_argument("partition_shards: zero devices/shards");
  }
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dataset.label(a) < dataset.label(b);
  });
  const std::size_t total_shards = num_devices * shards_per_device;
  std::vector<std::size_t> shard_ids(total_shards);
  std::iota(shard_ids.begin(), shard_ids.end(), 0);
  rng.shuffle(shard_ids);

  Partition partition(num_devices);
  const std::size_t shard_size = dataset.size() / total_shards;
  for (std::size_t s = 0; s < total_shards; ++s) {
    const std::size_t device = s / shards_per_device;
    const std::size_t shard = shard_ids[s];
    const std::size_t begin = shard * shard_size;
    // Last shard absorbs the remainder.
    const std::size_t end =
        (shard == total_shards - 1) ? dataset.size() : begin + shard_size;
    for (std::size_t i = begin; i < end; ++i) partition[device].push_back(order[i]);
  }
  return partition;
}

Partition partition_iid(const Dataset& dataset, std::size_t num_devices,
                        common::Rng& rng) {
  if (num_devices == 0) throw std::invalid_argument("partition: zero devices");
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Partition partition(num_devices);
  for (std::size_t i = 0; i < order.size(); ++i) {
    partition[i % num_devices].push_back(order[i]);
  }
  return partition;
}

void apply_redundancy(Partition& partition, double fraction, double keep,
                      common::Rng& rng) {
  if (keep <= 0.0 || keep > 1.0) {
    throw std::invalid_argument("apply_redundancy: keep must be in (0, 1]");
  }
  for (auto& shard : partition) {
    if (shard.empty() || !rng.bernoulli(fraction)) continue;
    const auto unique = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(keep * static_cast<double>(shard.size()))));
    for (std::size_t i = unique; i < shard.size(); ++i) {
      shard[i] = shard[i % unique];
    }
  }
}

bool is_exact_partition(const Partition& partition, std::size_t dataset_size) {
  std::vector<bool> seen(dataset_size, false);
  std::size_t total = 0;
  for (const auto& part : partition) {
    if (part.empty()) return false;
    for (std::size_t idx : part) {
      if (idx >= dataset_size || seen[idx]) return false;
      seen[idx] = true;
      ++total;
    }
  }
  return total == dataset_size;
}

}  // namespace mach::data
