// Procedural stand-ins for the paper's MNIST / FMNIST / CIFAR10 tasks.
//
// The real datasets are not available offline, so each task tier is a
// 10-class generative model over images: every class owns a small set of
// smooth random-field prototypes, and an example is a prototype blended with
// a distractor prototype from another class plus pixel noise. The three
// tiers differ in resolution, channels, intra-class modes, distractor mix
// and noise, reproducing the paper's difficulty ordering
// (mnist-like easiest, fmnist-like medium, cifar-like hardest) while
// exercising exactly the same training/sampling code paths.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace mach::data {

enum class TaskKind { MnistLike, FmnistLike, CifarLike };

std::string task_name(TaskKind kind);

struct SyntheticSpec {
  TaskKind kind = TaskKind::MnistLike;
  std::size_t classes = 10;
  std::size_t channels = 1;
  std::size_t height = 12;
  std::size_t width = 12;
  /// Number of prototype modes per class (intra-class variation).
  std::size_t modes_per_class = 1;
  /// Weight of a random other-class prototype blended into each example.
  double distractor_mix = 0.15;
  /// Per-pixel Gaussian noise standard deviation.
  double noise_stddev = 0.35;
  /// Box-blur passes applied to the raw prototype noise field (smoothness).
  std::size_t smoothing_passes = 2;

  /// Paper-tier presets. Image sizes are reduced from 28/32 px to fit the
  /// single-core CPU budget; the CNN stacks keep the paper's depths.
  static SyntheticSpec mnist_like();
  static SyntheticSpec fmnist_like();
  static SyntheticSpec cifar_like();
  static SyntheticSpec preset(TaskKind kind);
};

/// Deterministic generator: the class prototypes are fixed by (spec, seed),
/// so train/test splits generated from the same generator share the same
/// underlying concept (as with a real dataset).
class SyntheticGenerator {
 public:
  SyntheticGenerator(SyntheticSpec spec, std::uint64_t seed);

  const SyntheticSpec& spec() const noexcept { return spec_; }

  /// Generates `count` examples with labels drawn from `label_weights`
  /// (unnormalised, size == classes). Pass a long-tailed weight vector to
  /// reproduce the paper's global label skew.
  Dataset generate(std::size_t count, std::span<const double> label_weights,
                   common::Rng& rng) const;

  /// Uniform-label test split.
  Dataset generate_uniform(std::size_t count, common::Rng& rng) const;

  /// Renders one example of class `label` (used by tests/examples).
  tensor::Tensor render_example(int label, common::Rng& rng) const;

 private:
  SyntheticSpec spec_;
  /// prototypes_[class * modes + mode] is one flat prototype image.
  std::vector<std::vector<float>> prototypes_;
};

}  // namespace mach::data
