#include "data/synthetic.h"

#include <cmath>
#include <stdexcept>

namespace mach::data {

std::string task_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::MnistLike: return "mnist";
    case TaskKind::FmnistLike: return "fmnist";
    case TaskKind::CifarLike: return "cifar10";
  }
  return "unknown";
}

SyntheticSpec SyntheticSpec::mnist_like() {
  SyntheticSpec spec;
  spec.kind = TaskKind::MnistLike;
  spec.channels = 1;
  spec.height = 12;
  spec.width = 12;
  spec.modes_per_class = 2;
  spec.distractor_mix = 0.15;
  spec.noise_stddev = 0.35;
  spec.smoothing_passes = 2;
  return spec;
}

SyntheticSpec SyntheticSpec::fmnist_like() {
  SyntheticSpec spec;
  spec.kind = TaskKind::FmnistLike;
  spec.channels = 1;
  spec.height = 12;
  spec.width = 12;
  spec.modes_per_class = 3;
  spec.distractor_mix = 0.35;
  spec.noise_stddev = 0.55;
  spec.smoothing_passes = 2;
  return spec;
}

SyntheticSpec SyntheticSpec::cifar_like() {
  SyntheticSpec spec;
  spec.kind = TaskKind::CifarLike;
  spec.channels = 3;
  spec.height = 16;
  spec.width = 16;
  spec.modes_per_class = 4;
  spec.distractor_mix = 0.45;
  spec.noise_stddev = 0.9;
  spec.smoothing_passes = 1;
  return spec;
}

SyntheticSpec SyntheticSpec::preset(TaskKind kind) {
  switch (kind) {
    case TaskKind::MnistLike: return mnist_like();
    case TaskKind::FmnistLike: return fmnist_like();
    case TaskKind::CifarLike: return cifar_like();
  }
  throw std::invalid_argument("SyntheticSpec::preset: unknown kind");
}

namespace {

/// One in-place 3x3 box-blur pass per channel (reflecting borders).
void box_blur(std::vector<float>& image, std::size_t channels, std::size_t h,
              std::size_t w) {
  std::vector<float> source = image;
  auto reflect = [](std::ptrdiff_t i, std::ptrdiff_t n) {
    if (i < 0) return static_cast<std::size_t>(-i - 1);
    if (i >= n) return static_cast<std::size_t>(2 * n - i - 1);
    return static_cast<std::size_t>(i);
  };
  for (std::size_t c = 0; c < channels; ++c) {
    const float* src = source.data() + c * h * w;
    float* dst = image.data() + c * h * w;
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        float acc = 0.0f;
        for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
          for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
            const std::size_t yy = reflect(static_cast<std::ptrdiff_t>(y) + dy,
                                           static_cast<std::ptrdiff_t>(h));
            const std::size_t xx = reflect(static_cast<std::ptrdiff_t>(x) + dx,
                                           static_cast<std::ptrdiff_t>(w));
            acc += src[yy * w + xx];
          }
        }
        dst[y * w + x] = acc / 9.0f;
      }
    }
  }
}

/// Standardises to zero mean / unit variance so tiers only differ through
/// the spec's mix and noise knobs.
void standardize(std::vector<float>& image) {
  double mean = 0.0;
  for (float v : image) mean += v;
  mean /= static_cast<double>(image.size());
  double var = 0.0;
  for (float v : image) var += (v - mean) * (v - mean);
  var /= static_cast<double>(image.size());
  const double inv = 1.0 / std::sqrt(std::max(var, 1e-12));
  for (auto& v : image) v = static_cast<float>((v - mean) * inv);
}

}  // namespace

SyntheticGenerator::SyntheticGenerator(SyntheticSpec spec, std::uint64_t seed)
    : spec_(spec) {
  if (spec_.classes == 0 || spec_.modes_per_class == 0) {
    throw std::invalid_argument("SyntheticGenerator: empty class/mode config");
  }
  common::Rng proto_rng(common::split_seed(seed, 0xda7a));
  const std::size_t pixels = spec_.channels * spec_.height * spec_.width;
  prototypes_.reserve(spec_.classes * spec_.modes_per_class);
  for (std::size_t c = 0; c < spec_.classes; ++c) {
    for (std::size_t mode = 0; mode < spec_.modes_per_class; ++mode) {
      std::vector<float> image(pixels);
      for (auto& v : image) v = static_cast<float>(proto_rng.normal());
      for (std::size_t pass = 0; pass < spec_.smoothing_passes; ++pass) {
        box_blur(image, spec_.channels, spec_.height, spec_.width);
      }
      standardize(image);
      prototypes_.push_back(std::move(image));
    }
  }
}

tensor::Tensor SyntheticGenerator::render_example(int label, common::Rng& rng) const {
  if (label < 0 || static_cast<std::size_t>(label) >= spec_.classes) {
    throw std::out_of_range("render_example: bad label");
  }
  const std::size_t pixels = spec_.channels * spec_.height * spec_.width;
  const std::size_t mode = rng.uniform_index(spec_.modes_per_class);
  const auto& proto =
      prototypes_[static_cast<std::size_t>(label) * spec_.modes_per_class + mode];

  // Distractor: a prototype from a different class, blended in with the
  // spec's mix weight — this is what makes harder tiers harder.
  std::size_t other_class = rng.uniform_index(spec_.classes - 1);
  if (other_class >= static_cast<std::size_t>(label)) ++other_class;
  const std::size_t other_mode = rng.uniform_index(spec_.modes_per_class);
  const auto& distractor =
      prototypes_[other_class * spec_.modes_per_class + other_mode];

  const auto mix = static_cast<float>(spec_.distractor_mix);
  const auto noise = static_cast<float>(spec_.noise_stddev);
  tensor::Tensor out({1, spec_.channels, spec_.height, spec_.width});
  float* dst = out.data();
  for (std::size_t i = 0; i < pixels; ++i) {
    dst[i] = (1.0f - mix) * proto[i] + mix * distractor[i] +
             noise * static_cast<float>(rng.normal());
  }
  return out;
}

Dataset SyntheticGenerator::generate(std::size_t count,
                                     std::span<const double> label_weights,
                                     common::Rng& rng) const {
  if (label_weights.size() != spec_.classes) {
    throw std::invalid_argument("generate: label_weights size mismatch");
  }
  const std::size_t pixels = spec_.channels * spec_.height * spec_.width;
  tensor::Tensor features({count, spec_.channels, spec_.height, spec_.width});
  std::vector<int> labels(count);
  float* dst = features.data();
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t label = rng.categorical(label_weights);
    if (label >= spec_.classes) label = 0;  // all-zero weights: degenerate fallback
    labels[i] = static_cast<int>(label);
    const tensor::Tensor image = render_example(labels[i], rng);
    std::copy(image.flat().begin(), image.flat().end(), dst + i * pixels);
  }
  return Dataset(std::move(features), std::move(labels), spec_.classes);
}

Dataset SyntheticGenerator::generate_uniform(std::size_t count, common::Rng& rng) const {
  const std::vector<double> weights(spec_.classes, 1.0);
  return generate(count, weights, rng);
}

}  // namespace mach::data
