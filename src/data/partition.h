// Non-IID partitioning of a dataset across devices.
//
// The paper sets both the global label marginal and every device's label
// marginal to long-tailed distributions, with random (unassumed) initial
// placement. `partition_long_tailed` reproduces that; Dirichlet, shard and
// IID partitioners are provided for ablations and tests.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace mach::data {

/// Unnormalised long-tailed class weights: weight of the k-th ranked class
/// is ratio^k. ratio in (0, 1]; ratio == 1 gives a uniform distribution.
std::vector<double> long_tailed_weights(std::size_t classes, double ratio);

/// device → list of example indices into the source dataset.
using Partition = std::vector<std::vector<std::size_t>>;

/// Every device receives a long-tailed label marginal whose class ranking is
/// a random rotation (each device has a random dominant class). Examples are
/// drawn from per-class pools; when a device's preferred pool is exhausted it
/// falls back to the fullest remaining pool, so all examples are assigned
/// exactly once and devices end up with (almost) equal |D_m|.
Partition partition_long_tailed(const Dataset& dataset, std::size_t num_devices,
                                double ratio, common::Rng& rng);

/// Classic Dirichlet(alpha) label-skew partition (Hsu et al.).
Partition partition_dirichlet(const Dataset& dataset, std::size_t num_devices,
                              double alpha, common::Rng& rng);

/// Sorted-shard partition (McMahan et al.): examples sorted by label, split
/// into num_devices * shards_per_device shards, each device gets
/// shards_per_device random shards.
Partition partition_shards(const Dataset& dataset, std::size_t num_devices,
                           std::size_t shards_per_device, common::Rng& rng);

/// IID: a random equal split.
Partition partition_iid(const Dataset& dataset, std::size_t num_devices,
                        common::Rng& rng);

/// Sanity helper for tests: true iff the partition covers every example
/// exactly once and has `num_devices` non-empty parts.
bool is_exact_partition(const Partition& partition, std::size_t dataset_size);

/// Sample-diversity heterogeneity: each device becomes "redundant" with
/// probability `fraction`, collapsing its shard to the first
/// ceil(keep * |shard|) unique examples repeated cyclically. Redundant
/// devices model users whose local data is large but low-information (near-
/// duplicate samples); their gradients vanish once the model fits the few
/// unique examples, giving the persistent per-device gradient-norm
/// heterogeneity (Assumption 3's G_m^2 spread) that statistical device
/// sampling exploits. `keep` in (0, 1].
void apply_redundancy(Partition& partition, double fraction, double keep,
                      common::Rng& rng);

}  // namespace mach::data
