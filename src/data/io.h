// Dataset persistence: a small self-describing binary container for the
// synthetic datasets (so expensive generations can be cached and examples
// can ship fixed inputs), plus a CSV label export for external analysis.
#pragma once

#include <string>

#include "data/dataset.h"

namespace mach::data {

/// Writes the dataset (shape, labels, float32 features) to `path`.
/// Returns false on I/O failure.
bool save_dataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by save_dataset. Throws std::runtime_error on
/// missing or corrupt files.
Dataset load_dataset(const std::string& path);

/// Writes "index,label" rows for every example (header included).
bool export_labels_csv(const Dataset& dataset, const std::string& path);

}  // namespace mach::data
