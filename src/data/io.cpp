#include "data/io.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace mach::data {

namespace {
constexpr std::uint32_t kMagic = 0x44415441;  // "DATA"
constexpr std::uint32_t kVersion = 1;
}  // namespace

bool save_dataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const auto& shape = dataset.features().shape();
  const auto rank = static_cast<std::uint32_t>(shape.size());
  const auto classes = static_cast<std::uint32_t>(dataset.num_classes());
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&classes), sizeof(classes));
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (std::size_t d : shape) {
    const auto dim = static_cast<std::uint64_t>(d);
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  for (int label : dataset.labels()) {
    const auto value = static_cast<std::int32_t>(label);
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }
  out.write(reinterpret_cast<const char*>(dataset.features().data()),
            static_cast<std::streamsize>(dataset.features().numel() * sizeof(float)));
  return static_cast<bool>(out);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_dataset: cannot open " + path);
  std::uint32_t magic = 0, version = 0, classes = 0, rank = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&classes), sizeof(classes));
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_dataset: bad magic in " + path);
  }
  if (version != kVersion) {
    throw std::runtime_error("load_dataset: unsupported version");
  }
  if (rank == 0 || rank > 8) {
    throw std::runtime_error("load_dataset: implausible rank");
  }
  std::vector<std::size_t> shape(rank);
  for (auto& d : shape) {
    std::uint64_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    d = static_cast<std::size_t>(dim);
  }
  if (!in) throw std::runtime_error("load_dataset: truncated header");
  const std::size_t count = shape.front();
  std::vector<int> labels(count);
  for (auto& label : labels) {
    std::int32_t value = 0;
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    label = value;
  }
  tensor::Tensor features(shape);
  in.read(reinterpret_cast<char*>(features.data()),
          static_cast<std::streamsize>(features.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("load_dataset: truncated payload in " + path);
  return Dataset(std::move(features), std::move(labels), classes);
}

bool export_labels_csv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "index,label\n";
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out << i << ',' << dataset.label(i) << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace mach::data
