#include "data/dataset.h"

#include <stdexcept>

namespace mach::data {

Dataset::Dataset(tensor::Tensor features, std::vector<int> labels,
                 std::size_t num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  if (features_.rank() < 2) {
    throw std::invalid_argument("Dataset: features must have rank >= 2");
  }
  if (features_.dim(0) != labels_.size()) {
    throw std::invalid_argument("Dataset: feature/label count mismatch");
  }
  for (int label : labels_) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes_) {
      throw std::invalid_argument("Dataset: label out of range");
    }
  }
}

std::vector<std::size_t> Dataset::example_shape() const {
  const auto& shape = features_.shape();
  return {shape.begin() + 1, shape.end()};
}

std::size_t Dataset::example_numel() const noexcept {
  return size() == 0 ? 0 : features_.numel() / size();
}

Batch Dataset::gather(std::span<const std::size_t> indices) const {
  const std::size_t stride = example_numel();
  std::vector<std::size_t> shape = features_.shape();
  shape[0] = indices.size();
  Batch batch;
  batch.features = tensor::Tensor(shape);
  batch.labels.reserve(indices.size());
  float* dst = batch.features.data();
  const float* src = features_.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    if (idx >= size()) throw std::out_of_range("Dataset::gather: index out of range");
    std::copy(src + idx * stride, src + (idx + 1) * stride, dst + i * stride);
    batch.labels.push_back(labels_[idx]);
  }
  return batch;
}

Batch Dataset::sample_batch(std::span<const std::size_t> indices,
                            std::size_t batch_size, common::Rng& rng) const {
  if (indices.empty()) throw std::invalid_argument("sample_batch: empty index set");
  std::vector<std::size_t> chosen(batch_size);
  for (auto& c : chosen) c = indices[rng.uniform_index(indices.size())];
  return gather(chosen);
}

std::vector<std::size_t> Dataset::class_histogram(
    std::span<const std::size_t> indices) const {
  std::vector<std::size_t> histogram(num_classes_, 0);
  for (std::size_t idx : indices) {
    ++histogram[static_cast<std::size_t>(labels_.at(idx))];
  }
  return histogram;
}

}  // namespace mach::data
