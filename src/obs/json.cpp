#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mach::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest round-trip representation; integers print without exponent.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

void JsonObjectWriter::key_prefix(std::string_view key) {
  if (!first_) buffer_ += ',';
  first_ = false;
  buffer_ += '"';
  buffer_ += json_escape(key);
  buffer_ += "\":";
}

void JsonObjectWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  buffer_ += '"';
  buffer_ += json_escape(value);
  buffer_ += '"';
}

void JsonObjectWriter::field(std::string_view key, double value) {
  key_prefix(key);
  buffer_ += json_number(value);
}

void JsonObjectWriter::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  buffer_ += std::to_string(value);
}

void JsonObjectWriter::field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  buffer_ += std::to_string(value);
}

void JsonObjectWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  buffer_ += value ? "true" : "false";
}

void JsonObjectWriter::raw_field(std::string_view key, std::string_view json) {
  key_prefix(key);
  buffer_ += json;
}

void JsonObjectWriter::field(std::string_view key,
                             const std::vector<double>& values) {
  key_prefix(key);
  buffer_ += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) buffer_ += ',';
    buffer_ += json_number(values[i]);
  }
  buffer_ += ']';
}

void JsonObjectWriter::field(std::string_view key,
                             const std::vector<std::uint64_t>& values) {
  key_prefix(key);
  buffer_ += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) buffer_ += ',';
    buffer_ += std::to_string(values[i]);
  }
  buffer_ += ']';
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) throw std::logic_error("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) throw std::logic_error("JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::Array) throw std::logic_error("JsonValue: not an array");
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::Object) throw std::logic_error("JsonValue: not an object");
  return *object_;
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  static const JsonValue null_value;
  if (kind_ != Kind::Object) return null_value;
  const auto it = object_->find(key);
  return it == object_->end() ? null_value : it->second;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue& value = (*this)[key];
  return value.is_number() ? value.as_number() : fallback;
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue& value = (*this)[key];
  return value.is_string() ? value.as_string() : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  std::optional<JsonValue> parse(std::string* error) {
    auto value = parse_value();
    if (value) {
      skip_whitespace();
      if (pos_ != text_.size()) {
        fail("trailing characters after JSON value");
        value.reset();
      }
    }
    if (!value && error != nullptr) *error = error_;
    return value;
  }

 private:
  void fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char head = text_[pos_];
    if (head == '{') return parse_object();
    if (head == '[') return parse_array();
    if (head == '"') {
      auto text = parse_string();
      if (!text) return std::nullopt;
      return JsonValue(std::move(*text));
    }
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue();
    return parse_number();
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (any && pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any) {
      fail("invalid number");
      return std::nullopt;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc{}) {
      fail("unparsable number");
      return std::nullopt;
    }
    return JsonValue(value);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          const auto hex =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (hex.ec != std::errc{} || hex.ptr != text_.data() + pos_ + 4) {
            fail("invalid \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          // Traces only emit control-character escapes; encode as UTF-8 for
          // the BMP without surrogate-pair handling (sufficient here).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  /// Recursive-descent guard: parsing depth is capped so adversarially deep
  /// documents fail with a clear error instead of exhausting the stack.
  bool enter() {
    if (depth_ >= kMaxDepth) {
      fail("nesting deeper than " + std::to_string(kMaxDepth) + " levels");
      return false;
    }
    ++depth_;
    return true;
  }

  std::optional<JsonValue> parse_array() {
    if (!enter()) return std::nullopt;
    auto result = parse_array_body();
    --depth_;
    return result;
  }

  std::optional<JsonValue> parse_object() {
    if (!enter()) return std::nullopt;
    auto result = parse_object_body();
    --depth_;
    return result;
  }

  std::optional<JsonValue> parse_array_body() {
    consume('[');
    JsonValue::Array items;
    skip_whitespace();
    if (consume(']')) return JsonValue(std::move(items));
    while (true) {
      auto item = parse_value();
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      skip_whitespace();
      if (consume(']')) return JsonValue(std::move(items));
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parse_object_body() {
    consume('{');
    JsonValue::Object members;
    skip_whitespace();
    if (consume('}')) return JsonValue(std::move(members));
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      auto value = parse_value();
      if (!value) return std::nullopt;
      if (options_.reject_duplicate_keys && members.count(*key) != 0) {
        fail("duplicate object key \"" + *key + "\"");
        return std::nullopt;
      }
      members.insert_or_assign(std::move(*key), std::move(*value));
      skip_whitespace();
      if (consume('}')) return JsonValue(std::move(members));
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  static constexpr std::size_t kMaxDepth = 128;

  std::string_view text_;
  JsonParseOptions options_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text, JsonParseOptions{}).parse(error);
}

std::optional<JsonValue> parse_json(std::string_view text, std::string* error,
                                    const JsonParseOptions& options) {
  return Parser(text, options).parse(error);
}

}  // namespace mach::obs
