// Reader side of the status.json heartbeat (see obs/status_writer.h) plus
// the staleness primitives a supervisor needs to decide "this run is hung".
//
// Two distinct clocks are involved, deliberately:
//   * `updated_unix` is the writer's wall clock — human-friendly, but a
//     supervisor must not kill on it (NTP steps and container clock skew
//     make wall-clock age lie in both directions);
//   * `pid` + `sequence` + `uptime_ms` are skew-immune progress evidence:
//     the pid identifies which process wrote the document (a fresh attempt
//     vs a dead predecessor's leftover file), and sequence/uptime_ms only
//     ever advance on the writer's monotonic clock.
//
// HeartbeatMonitor folds that evidence into one number: seconds (on the
// *observer's* monotonic clock) since the heartbeat last showed progress.
// The sweep orchestrator's watchdog kills a child when that number crosses
// its threshold.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mach::obs {

/// One parsed status.json document. Fields absent from older documents
/// (pid/uptime_ms predate nothing in-tree, but torn or foreign files may
/// lack them) parse as their zero defaults.
struct Heartbeat {
  std::uint64_t sequence = 0;
  double updated_unix = 0.0;
  std::int64_t pid = 0;
  std::uint64_t uptime_ms = 0;
  std::uint64_t step = 0;
  std::uint64_t total_steps = 0;
  bool finished = false;
  bool aborted = false;
  std::string sampler;
};

/// Parses the status.json at `path`. Returns nullopt (and the reason in
/// `error` when non-null) for a missing file, malformed JSON, or a document
/// that is not a mach_status heartbeat. A torn read cannot happen for
/// writer-side atomic renames, but a foreign file at the path is an
/// expected input for a supervisor and must not throw.
std::optional<Heartbeat> read_heartbeat(const std::string& path,
                                        std::string* error = nullptr);

/// Wall-clock age of the heartbeat: `now_unix - updated_unix`, clamped at 0
/// from below. Display/diagnostics only — see the header comment for why
/// kill decisions must not use it.
double heartbeat_age_seconds(const Heartbeat& heartbeat, double now_unix);

/// Skew-immune staleness tracker for one supervised process. Feed it every
/// poll (`now` on the observer's own monotonic clock, seconds); it returns
/// how long the heartbeat has shown no progress, where progress is any
/// change in (pid, sequence, uptime_ms, step) — including the very first
/// readable document. A missing/unreadable heartbeat never counts as
/// progress, so a child that dies before its first write times out from
/// `started`.
class HeartbeatMonitor {
 public:
  /// `started` is the observer-monotonic time the supervised process was
  /// spawned — the baseline until the first heartbeat lands.
  explicit HeartbeatMonitor(double started) noexcept
      : last_progress_(started) {}

  /// Records an observation and returns seconds since last progress.
  double observe(const std::optional<Heartbeat>& heartbeat, double now) noexcept;

  /// True once any readable heartbeat was observed.
  bool ever_seen() const noexcept { return seen_; }

 private:
  bool seen_ = false;
  std::int64_t last_pid_ = 0;
  std::uint64_t last_sequence_ = 0;
  std::uint64_t last_uptime_ms_ = 0;
  std::uint64_t last_step_ = 0;
  double last_progress_;
};

}  // namespace mach::obs
