// Run-telemetry hook interface for the HFL engine.
//
// HflSimulator::set_observer attaches one RunObserver whose callbacks fire
// at the phase boundaries of Algorithm 1: per time step, per trained device,
// per edge aggregation, per cloud round and per evaluation. Observers are
// strictly passive — the engine computes event payloads only when an
// observer is attached, and none of the callbacks can influence sampling,
// training or aggregation (observer disabled ⇒ bit-identical runs).
//
// The bundled JsonlTraceWriter (jsonl_writer.h) streams these events as one
// JSON object per line; tools/trace_summary turns a trace back into
// phase-time and sampling-health tables.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/ledger.h"
#include "obs/registry.h"
#include "obs/timer.h"

namespace mach::obs {

/// Distribution summary of one edge's clamped sampling vector q (Eq. 3).
struct QSummary {
  std::size_t count = 0;          // |M_n^t|
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double sum = 0.0;               // expected participants; feasible when <= K_n
  std::size_t clamped_to_floor = 0;  // entries raised to HflOptions::min_probability
  std::size_t clamped_to_one = 0;    // entries lowered to 1

  /// Builds the summary from the engine's already-clamped q vector.
  static QSummary from(const std::vector<double>& q, double floor);
};

/// Sampler internals exported for telemetry (see hfl::Sampler::introspect).
/// For MACH this is Algorithm 2's state: the UCB experience G~^2_m (Eq. 15),
/// the per-device gradient-experience buffer occupancy, and the
/// participation counts the exploration term divides by. All vectors are
/// indexed by device id and share one size (or are empty when unsupported).
struct SamplerIntrospection {
  std::vector<double> g_squared;            // G~^2_m estimates
  std::vector<std::uint64_t> buffer_sizes;  // experiences buffered this round
  std::vector<std::uint64_t> participations;

  bool empty() const noexcept { return g_squared.empty(); }
};

/// Realised faults of one edge round (fault-injection layer, src/fault/).
/// `active` is false — and nothing is emitted to traces — unless the run has
/// a non-empty FaultSchedule, so fault-free traces keep their exact bytes.
struct FaultSummary {
  bool active = false;
  /// The edge skipped this round entirely (transient outage window).
  bool edge_outage = false;
  std::size_t num_dropped = 0;
  std::size_t num_straggler_arrivals = 0;   // late but inside the budget
  std::size_t num_straggler_timeouts = 0;   // every attempt missed the budget
  std::size_t num_retries = 0;              // retransmissions across devices
  /// Sampled devices whose updates arrived (the Eq. 5 surviving set).
  std::vector<std::uint64_t> survivors;
  /// Sampled devices whose updates never arrived.
  std::vector<std::uint64_t> lost;
};

struct RunBeginEvent {
  std::string sampler;
  std::uint64_t seed = 0;
  std::size_t steps = 0;
  std::size_t num_devices = 0;
  std::size_t num_edges = 0;
  std::size_t cloud_interval = 0;  // T_g
  /// Canonical fault spec (FaultSchedule::to_string); empty = faults off.
  std::string fault_spec;
  /// Canonical codec spec (comm::CommConfig::to_string); empty = every link
  /// runs the fp32 identity codec (nothing is emitted, preserving the exact
  /// trace bytes of pre-codec runs).
  std::string codec_spec;
};

struct StepBeginEvent {
  std::size_t t = 0;
  std::size_t active_edges = 0;      // edges with at least one device present
  std::size_t devices_present = 0;   // sum of |M_n^t|
};

struct DeviceTrainedEvent {
  std::size_t t = 0;
  std::uint32_t device = 0;
  std::size_t edge = 0;
  double q = 0.0;               // inclusion probability it was drawn with
  double mean_loss = 0.0;       // mean local loss over the I steps
  double last_grad_sq_norm = 0.0;
  double seconds = 0.0;         // wall time of the local-update phase
};

struct EdgeAggregatedEvent {
  std::size_t t = 0;
  std::size_t edge = 0;
  double capacity = 0.0;        // K_n
  std::size_t num_devices = 0;  // |M_n^t|
  std::size_t num_sampled = 0;  // realised Bernoulli draws
  QSummary q;
  /// Horvitz-Thompson composition diagnostics over the sampled devices:
  /// sum of 1/(|M_n^t| q_m) (1 in expectation under Eq. 5) and the
  /// population variance of those weights (the instability channel §III-B.2
  /// describes).
  double ht_weight_sum = 0.0;
  double ht_weight_variance = 0.0;
  double sampler_seconds = 0.0;    // decision time (incl. oracle probes)
  double train_seconds = 0.0;      // sum over this edge's sampled devices
  double aggregate_seconds = 0.0;  // HT accumulation + fold
  /// Fault-injection outcome of this round (inactive when faults are off).
  /// When active, ht_weight_* and the aggregation cover only `survivors`.
  FaultSummary faults;
};

struct CloudRoundEvent {
  std::size_t t = 0;
  std::size_t round = 0;        // 1-based cloud-round index within the run
  std::size_t num_edges = 0;
  double seconds = 0.0;         // cloud fold + broadcast wall time
  /// Sampler internals captured right after Sampler::on_cloud_round (i.e.
  /// the refreshed Eq. 15 estimates MACH will sample with next). Empty when
  /// the active sampler does not support introspection.
  SamplerIntrospection sampler;
  /// Fault-injection layer state: set when a FaultSchedule is active, in
  /// which case `lost_edges` lists the edges whose uploads the cloud fold
  /// never received this round (possibly none).
  bool faults_active = false;
  std::vector<std::uint64_t> lost_edges;
};

struct EvalEvent {
  std::size_t t = 0;
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  double train_loss = 0.0;      // windowed train loss (0 for the baseline eval)
  std::size_t participants = 0;
  double global_grad_sq_norm = 0.0;
  double seconds = 0.0;
};

/// Emitted right before the engine freezes a run-state snapshot: `t` steps
/// are complete and the snapshot will resume at step `t`. The marker lands
/// in the trace *before* the trace cursor is captured, so an uninterrupted
/// checkpointed run and a crash-resumed one carry identical marker lines —
/// and tools can detect resumed traces by markers followed by regressing t.
struct CheckpointEvent {
  std::size_t t = 0;      // next_t: first step the snapshot will re-execute
  std::size_t steps = 0;  // the run's horizon
};

/// Byte/line position of a trace sink at snapshot time. On resume the trace
/// file is truncated to `byte_offset` and appended, which removes any events
/// the crashed process emitted after its last durable snapshot.
struct TraceCursor {
  std::uint64_t byte_offset = 0;
  std::uint64_t lines = 0;
};

struct RunEndEvent {
  std::size_t steps = 0;
  std::size_t cloud_rounds = 0;
  /// Phase wall-clock breakdown of the whole run.
  const PhaseTimerSet* phases = nullptr;
  /// The engine's counter/gauge/histogram registry at end of run.
  const MetricsRegistry* registry = nullptr;
  /// Encoded-byte ledger (messages + bytes per link, src/comm/); always set
  /// by the engine — fp32 links charge exactly 4 bytes per parameter.
  const comm::ByteLedger* ledger = nullptr;
  /// What the same message counts would cost at uncompressed fp32 (the
  /// pre-codec reporting convention, for compression-ratio readouts).
  std::uint64_t assumed_fp32_bytes = 0;
  /// Sticky CommunicationCost accumulation-error flag (mixed model sizes).
  bool mixed_model_sizes = false;
};

class RunObserver {
 public:
  virtual ~RunObserver() = default;

  virtual void on_run_begin(const RunBeginEvent& /*event*/) {}
  virtual void on_step_begin(const StepBeginEvent& /*event*/) {}
  virtual void on_device_trained(const DeviceTrainedEvent& /*event*/) {}
  virtual void on_edge_aggregated(const EdgeAggregatedEvent& /*event*/) {}
  virtual void on_cloud_round(const CloudRoundEvent& /*event*/) {}
  virtual void on_eval(const EvalEvent& /*event*/) {}
  virtual void on_run_end(const RunEndEvent& /*event*/) {}
  virtual void on_checkpoint(const CheckpointEvent& /*event*/) {}

  /// Current flushed position of this observer's persistent sink, recorded
  /// into snapshots so a resumed run can truncate-and-append seamlessly.
  /// Observers without a recoverable sink (stringstreams, stdout, pure
  /// aggregators) return nullopt. Called immediately after on_checkpoint.
  virtual std::optional<TraceCursor> checkpoint_cursor() { return std::nullopt; }
};

}  // namespace mach::obs
