#include "obs/heartbeat.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace mach::obs {

std::optional<Heartbeat> read_heartbeat(const std::string& path,
                                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::string parse_error;
  const auto doc = parse_json(buffer.str(), &parse_error);
  if (!doc || !doc->is_object()) {
    if (error != nullptr) {
      *error = path + ": " +
               (parse_error.empty() ? "not a JSON object" : parse_error);
    }
    return std::nullopt;
  }
  if (doc->string_or("kind", "") != "mach_status") {
    if (error != nullptr) *error = path + ": not a mach_status heartbeat";
    return std::nullopt;
  }

  Heartbeat heartbeat;
  heartbeat.sequence =
      static_cast<std::uint64_t>(doc->number_or("sequence", 0));
  heartbeat.updated_unix = doc->number_or("updated_unix", 0);
  heartbeat.pid = static_cast<std::int64_t>(doc->number_or("pid", 0));
  heartbeat.uptime_ms =
      static_cast<std::uint64_t>(doc->number_or("uptime_ms", 0));
  heartbeat.step = static_cast<std::uint64_t>(doc->number_or("step", 0));
  heartbeat.total_steps =
      static_cast<std::uint64_t>(doc->number_or("total_steps", 0));
  const JsonValue& finished = (*doc)["finished"];
  heartbeat.finished = finished.is_bool() && finished.as_bool();
  const JsonValue& aborted = (*doc)["aborted"];
  heartbeat.aborted = aborted.is_bool() && aborted.as_bool();
  heartbeat.sampler = doc->string_or("sampler", "");
  return heartbeat;
}

double heartbeat_age_seconds(const Heartbeat& heartbeat, double now_unix) {
  return std::max(0.0, now_unix - heartbeat.updated_unix);
}

double HeartbeatMonitor::observe(const std::optional<Heartbeat>& heartbeat,
                                 double now) noexcept {
  if (heartbeat.has_value()) {
    const bool progressed = !seen_ || heartbeat->pid != last_pid_ ||
                            heartbeat->sequence != last_sequence_ ||
                            heartbeat->uptime_ms != last_uptime_ms_ ||
                            heartbeat->step != last_step_;
    if (progressed) {
      seen_ = true;
      last_pid_ = heartbeat->pid;
      last_sequence_ = heartbeat->sequence;
      last_uptime_ms_ = heartbeat->uptime_ms;
      last_step_ = heartbeat->step;
      last_progress_ = now;
    }
  }
  return std::max(0.0, now - last_progress_);
}

}  // namespace mach::obs
