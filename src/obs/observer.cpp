#include "obs/observer.h"

#include <algorithm>

namespace mach::obs {

QSummary QSummary::from(const std::vector<double>& q, double floor) {
  QSummary summary;
  summary.count = q.size();
  if (q.empty()) return summary;
  summary.min = q.front();
  summary.max = q.front();
  for (const double value : q) {
    summary.min = std::min(summary.min, value);
    summary.max = std::max(summary.max, value);
    summary.sum += value;
    if (value <= floor) ++summary.clamped_to_floor;
    if (value >= 1.0) ++summary.clamped_to_one;
  }
  summary.mean = summary.sum / static_cast<double>(q.size());
  return summary;
}

}  // namespace mach::obs
