// JSONL trace export: a RunObserver that streams one JSON object per event
// to a file (or any ostream). Each line carries an "event" discriminator:
//   run_begin, step, device, edge_agg, cloud_round, eval, run_end.
// Multiple runs may share one writer (benches append every seed's run to the
// same trace); run_begin/run_end lines delimit them. tools/trace_summary
// reads the format back.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/observer.h"

namespace mach::obs {

struct JsonlTraceOptions {
  /// Emit per-device "device" lines (the chattiest event class — one line
  /// per sampled device per step). Disable for long paper-scale runs where
  /// only edge/cloud/eval granularity is wanted.
  bool device_events = true;
  /// Emit per-time-step "step" lines.
  bool step_events = true;
  /// Include the full per-device arrays (G~^2, buffer occupancy,
  /// participations) in cloud_round lines rather than just their summary.
  bool sampler_arrays = true;
  /// Flush the stream after every line (crash-robust traces; slightly
  /// slower). Final flush always happens in the destructor regardless.
  bool flush_every_event = false;
};

class JsonlTraceWriter final : public RunObserver {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error when
  /// the file cannot be opened.
  explicit JsonlTraceWriter(const std::string& path, JsonlTraceOptions options = {});
  /// Streams to an externally owned ostream (tests, stringstreams).
  explicit JsonlTraceWriter(std::ostream& out, JsonlTraceOptions options = {});
  /// Resume constructor: truncates the existing trace at `path` to the
  /// cursor recorded in a checkpoint (discarding events the crashed process
  /// wrote after its last durable snapshot) and appends from there. Throws
  /// std::runtime_error when the file is missing or shorter than the cursor
  /// (the trace does not match the snapshot).
  JsonlTraceWriter(const std::string& path, const TraceCursor& resume_from,
                   JsonlTraceOptions options = {});
  ~JsonlTraceWriter() override;

  void on_run_begin(const RunBeginEvent& event) override;
  void on_step_begin(const StepBeginEvent& event) override;
  void on_device_trained(const DeviceTrainedEvent& event) override;
  void on_edge_aggregated(const EdgeAggregatedEvent& event) override;
  void on_cloud_round(const CloudRoundEvent& event) override;
  void on_eval(const EvalEvent& event) override;
  void on_run_end(const RunEndEvent& event) override;
  /// Emits a {"event":"checkpoint","t":...} marker line.
  void on_checkpoint(const CheckpointEvent& event) override;
  /// Flushes and reports the current byte/line position. nullopt for
  /// ostream-backed writers whose position cannot be queried.
  std::optional<TraceCursor> checkpoint_cursor() override;

  std::size_t lines_written() const noexcept { return lines_; }

 private:
  void write_line(std::string line);

  JsonlTraceOptions options_;
  std::unique_ptr<std::ofstream> owned_;  // set when constructed from a path
  std::ostream* out_;
  std::size_t lines_ = 0;
};

}  // namespace mach::obs
