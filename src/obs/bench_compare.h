// Comparison engine for BENCH_*.json files (the library behind
// tools/bench_diff and the CI perf gate). Two documents produced by the same
// bench are matched case-by-case on their identity fields, per-metric deltas
// are computed with a direction convention inferred from the metric name
// (gflops/speedup/*_per_second are higher-is-better, *_ms/*_seconds are
// lower-is-better), and the worst regression is surfaced so a single
// threshold can gate CI.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"

namespace mach::obs {

enum class MetricDirection {
  HigherIsBetter,
  LowerIsBetter,
  Informational,  // numeric outcome that should not gate (e.g. counts)
  Identity,       // part of the case key (dims, flags, labels)
};

/// Classifies a results[] field by name. The convention matches every
/// emitter in bench/: throughput metrics contain "per_second"/"gflops"/
/// "speedup", latencies end in "_ms"/"_seconds", counts contain "trained"/
/// "count", and everything else identifies the case.
MetricDirection metric_direction(std::string_view name);

struct MetricDelta {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  /// Signed percentage, positive = improvement regardless of direction
  /// (a lower-is-better metric that shrinks reports a positive change).
  double change_pct = 0.0;
  MetricDirection direction = MetricDirection::Informational;
};

struct CaseDelta {
  std::string key;  // identity fields joined as "name=value ..."
  std::vector<MetricDelta> metrics;
};

struct BenchComparison {
  std::string bench;            // from the baseline document
  bool bench_mismatch = false;  // documents came from different benches
  std::vector<CaseDelta> cases;
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;
  /// Largest gated regression across all cases (0 when nothing regressed).
  double worst_regression_pct = 0.0;
  std::string worst_case;
  std::string worst_metric;

  bool regression_beyond(double threshold_pct) const noexcept {
    return worst_regression_pct > threshold_pct;
  }
};

/// Compares two parsed BENCH_*.json documents. Cases present in only one
/// document are listed, not gated; a "bench" field mismatch sets
/// bench_mismatch (callers should treat that as an error).
BenchComparison compare_benchmarks(const JsonValue& baseline,
                                   const JsonValue& current);

/// Reads and parses one BENCH_*.json file; nullopt with a message in
/// `error` on I/O or parse failure.
std::optional<JsonValue> load_bench_file(const std::string& path,
                                         std::string* error);

/// Human-readable report (one line per metric, aligned-ish columns), used
/// verbatim by tools/bench_diff and the CI gate log.
std::string format_comparison(const BenchComparison& comparison,
                              double threshold_pct);

}  // namespace mach::obs
