// Hierarchical span profiler for deep per-round introspection.
//
// A SpanGuard marks one timed scope (round → edge aggregate → device train →
// kernel group). Guards write into per-track fixed-capacity ring buffers —
// one track for the coordinator thread plus one per runtime worker slot — so
// the hot path costs two steady_clock reads and zero heap allocations.
// Threads are bound to tracks with a ThreadScope (RAII over a thread_local
// binding); an unbound thread's guards are no-ops, which is what makes
// span call sites safe to leave permanently compiled into deep layers
// (sampling water-filling, fault fates, kernels) — they only ever record
// when the engine has bound the thread to an active profiler.
//
// Rings overflow by dropping the oldest span and counting it (spans_dropped);
// the engine merges rings into a master list at round barriers (no worker is
// running then, so the merge needs no locks and is deterministic: track
// order, then completion order within a track). export via
// write_chrome_trace() produces Chrome trace-event JSON loadable in Perfetto
// or chrome://tracing.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mach::obs {

class ResourceSampler;

/// Profiling knobs carried in HflOptions. Everything is off by default, and
/// the spans-off run is bitwise identical to a build without the profiler.
struct ProfileOptions {
  /// Chrome trace-event JSON output path ("" = span recording off).
  std::string trace_path;
  /// Live status.json heartbeat path ("" = off). Independent of spans.
  std::string status_path;
  /// Ring capacity (spans) per track. Overflow drops oldest, counted.
  std::size_t ring_capacity = 16384;
  /// Minimum seconds between status.json heartbeat writes.
  double status_interval_seconds = 0.5;
  /// Minimum seconds between resource-usage samples (RSS/CPU counters).
  double resource_interval_seconds = 0.25;

  bool spans_enabled() const noexcept { return !trace_path.empty(); }
  bool any_enabled() const noexcept {
    return spans_enabled() || !status_path.empty();
  }
};

/// One completed timed scope. `name` must point at a string literal (or any
/// storage outliving the profiler) — spans never copy it.
struct Span {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  // since the profiler's construction
  std::uint64_t end_ns = 0;
  std::int64_t t = -1;         // simulation step, -1 when not applicable
  std::int64_t id = -1;        // device/edge id, -1 when not applicable
  std::uint32_t track = 0;
  std::uint16_t depth = 0;     // nesting level within the track

  double duration_seconds() const noexcept {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

class SpanProfiler {
 public:
  /// `tracks` >= 1 (track 0 = coordinator, 1..N = worker slots). Every ring
  /// is allocated up front; recording never allocates.
  SpanProfiler(std::size_t tracks, std::size_t ring_capacity);

  /// Binds the calling thread to (profiler, track) for the scope's lifetime,
  /// restoring the previous binding on destruction. Exactly one thread may
  /// be bound to a given track at a time (the engine guarantees this: the
  /// coordinator owns track 0 outside parallel sections, and slice k of a
  /// section owns track k+1).
  class ThreadScope {
   public:
    ThreadScope(SpanProfiler* profiler, std::uint32_t track) noexcept;
    ~ThreadScope();
    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    SpanProfiler* previous_profiler_;
    std::uint32_t previous_track_;
  };

  std::size_t num_tracks() const noexcept { return tracks_.size(); }
  std::size_t ring_capacity() const noexcept { return ring_capacity_; }

  /// Nanoseconds since profiler construction (the span time base).
  std::uint64_t now_ns() const noexcept;

  /// Drains every track's ring into the master span list. Call only at a
  /// barrier (no bound thread mid-span-write, e.g. the simulator's cloud
  /// round). Deterministic: tracks in index order, completion order within.
  void merge_thread_rings();

  /// merge_thread_rings() + returns the master list sorted by
  /// (start_ns, track, depth) and clears it. Spans still open stay unrecorded.
  std::vector<Span> drain();

  /// Spans lost to ring overflow so far (across merges and drains).
  std::uint64_t spans_dropped() const noexcept;

  /// Merges, drains and writes Chrome trace-event JSON ("X" duration events,
  /// one tid per track, plus optional "C" counter events from `resources`
  /// and a spans_dropped record in otherData). Returns false when the file
  /// cannot be written. Loadable in Perfetto / chrome://tracing.
  bool write_chrome_trace(const std::string& path,
                          const ResourceSampler* resources = nullptr);

  // -- internals used by SpanGuard (public for the guard, not for callers) --
  std::uint16_t begin_span(std::uint32_t track) noexcept;  // returns depth
  void end_span(std::uint32_t track, const Span& span) noexcept;

 private:
  struct Track {
    std::vector<Span> ring;      // fixed capacity, pre-allocated
    std::size_t start = 0;       // index of the oldest span
    std::size_t size = 0;
    std::uint64_t dropped = 0;
    std::uint16_t open_depth = 0;
  };

  std::chrono::steady_clock::time_point epoch_;
  std::size_t ring_capacity_;
  std::vector<Track> tracks_;
  std::vector<Span> merged_;
  std::uint64_t dropped_merged_ = 0;
};

/// RAII timed scope. Reads the calling thread's binding once; an unbound
/// thread gets a complete no-op (one thread_local read and a branch).
class SpanGuard {
 public:
  explicit SpanGuard(const char* name, std::int64_t t = -1,
                     std::int64_t id = -1) noexcept;
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  SpanProfiler* profiler_;  // nullptr = disabled, destructor does nothing
  Span span_;
};

}  // namespace mach::obs
