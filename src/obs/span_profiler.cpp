#include "obs/span_profiler.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.h"
#include "obs/resource.h"

namespace mach::obs {

namespace {

// Thread → (profiler, track) binding. Plain thread_locals: each is written
// only by its own thread (via ThreadScope) and read only by that thread (via
// SpanGuard), so there is no sharing to synchronise.
thread_local SpanProfiler* tls_profiler = nullptr;
thread_local std::uint32_t tls_track = 0;

void append_u64(std::string& out, std::uint64_t value) {
  char digits[20];
  int count = 0;
  do {
    digits[count++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  while (count > 0) out.push_back(digits[--count]);
}

// Nanoseconds rendered as microseconds with three decimals ("1234.567") —
// exact, and far cheaper than snprintf("%.3f").
void append_us(std::string& out, std::uint64_t ns) {
  append_u64(out, ns / 1000);
  const auto frac = static_cast<unsigned>(ns % 1000);
  out.push_back('.');
  out.push_back(static_cast<char>('0' + frac / 100));
  out.push_back(static_cast<char>('0' + (frac / 10) % 10));
  out.push_back(static_cast<char>('0' + frac % 10));
}

}  // namespace

SpanProfiler::SpanProfiler(std::size_t tracks, std::size_t ring_capacity)
    : epoch_(std::chrono::steady_clock::now()),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      tracks_(tracks == 0 ? 1 : tracks) {
  for (Track& track : tracks_) track.ring.resize(ring_capacity_);
}

SpanProfiler::ThreadScope::ThreadScope(SpanProfiler* profiler,
                                       std::uint32_t track) noexcept
    : previous_profiler_(tls_profiler), previous_track_(tls_track) {
  tls_profiler = profiler;
  tls_track = track;
}

SpanProfiler::ThreadScope::~ThreadScope() {
  tls_profiler = previous_profiler_;
  tls_track = previous_track_;
}

std::uint64_t SpanProfiler::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint16_t SpanProfiler::begin_span(std::uint32_t track) noexcept {
  return tracks_[track].open_depth++;
}

void SpanProfiler::end_span(std::uint32_t track, const Span& span) noexcept {
  Track& ring = tracks_[track];
  --ring.open_depth;
  if (ring.size < ring_capacity_) {
    ring.ring[(ring.start + ring.size) % ring_capacity_] = span;
    ++ring.size;
  } else {
    // Full: the new span overwrites the oldest slot (drop-oldest), counted.
    ring.ring[ring.start] = span;
    ring.start = (ring.start + 1) % ring_capacity_;
    ++ring.dropped;
  }
}

void SpanProfiler::merge_thread_rings() {
  for (Track& track : tracks_) {
    for (std::size_t i = 0; i < track.size; ++i) {
      merged_.push_back(track.ring[(track.start + i) % ring_capacity_]);
    }
    track.start = 0;
    track.size = 0;
    dropped_merged_ += track.dropped;
    track.dropped = 0;
  }
}

std::vector<Span> SpanProfiler::drain() {
  merge_thread_rings();
  std::stable_sort(merged_.begin(), merged_.end(),
                   [](const Span& a, const Span& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     if (a.track != b.track) return a.track < b.track;
                     return a.depth < b.depth;
                   });
  std::vector<Span> out = std::move(merged_);
  merged_.clear();
  return out;
}

std::uint64_t SpanProfiler::spans_dropped() const noexcept {
  std::uint64_t total = dropped_merged_;
  for (const Track& track : tracks_) total += track.dropped;
  return total;
}

bool SpanProfiler::write_chrome_trace(const std::string& path,
                                      const ResourceSampler* resources) {
  const std::vector<Span> spans = drain();
  const std::uint64_t dropped = spans_dropped();

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&]() -> std::ofstream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };

  // Thread-name metadata: tid == track index, coordinator first.
  for (std::size_t track = 0; track < tracks_.size(); ++track) {
    JsonObjectWriter event;
    event.begin();
    event.field("ph", "M");
    event.field("pid", std::uint64_t{1});
    event.field("tid", static_cast<std::uint64_t>(track));
    event.field("name", "thread_name");
    const std::string label =
        track == 0 ? std::string("coordinator")
                   : "worker_slot_" + std::to_string(track - 1);
    event.raw_field("args", "{\"name\":\"" + json_escape(label) + "\"}");
    sep() << event.end();
  }

  // Duration events, timestamps in microseconds as Chrome expects. This
  // array dominates export cost (tens of thousands of events), so it skips
  // JsonObjectWriter's per-field string building entirely: events are
  // appended into one batched buffer with integer formatting (the ns→µs
  // conversion is rendered exactly as "<µs>.<3 digits>"). Span names are
  // engine-internal literals with no characters needing escape.
  std::string buffer;
  constexpr std::size_t kFlushAt = (1u << 20) - 512;
  buffer.reserve(1u << 20);
  for (const Span& span : spans) {
    if (!first) buffer += ",\n";
    first = false;
    buffer += R"({"ph":"X","pid":1,"tid":)";
    append_u64(buffer, span.track);
    buffer += R"(,"name":")";
    buffer += span.name != nullptr ? span.name : "span";
    buffer += R"(","ts":)";
    append_us(buffer, span.start_ns);
    buffer += R"(,"dur":)";
    append_us(buffer, span.end_ns - span.start_ns);
    buffer += R"(,"args":{)";
    if (span.id >= 0) {
      buffer += R"("id":)";
      append_u64(buffer, static_cast<std::uint64_t>(span.id));
    }
    if (span.t >= 0) {
      if (span.id >= 0) buffer += ',';
      buffer += R"("t":)";
      append_u64(buffer, static_cast<std::uint64_t>(span.t));
    }
    buffer += "}}";
    if (buffer.size() > kFlushAt) {
      out << buffer;
      buffer.clear();
    }
  }
  out << buffer;

  // Resource counters as Chrome counter events on the coordinator track.
  if (resources != nullptr) {
    for (const ResourceSample& sample : resources->samples()) {
      JsonObjectWriter event;
      event.begin();
      event.field("ph", "C");
      event.field("pid", std::uint64_t{1});
      event.field("tid", std::uint64_t{0});
      event.field("name", "rss_mb");
      event.field("ts", sample.elapsed_seconds * 1e6);
      JsonObjectWriter args;
      args.begin();
      args.field("value",
                 static_cast<double>(sample.usage.current_rss_kb) / 1024.0);
      event.raw_field("args", args.end());
      sep() << event.end();
    }
  }

  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  out << "\"spans_dropped\":" << dropped;
  out << ",\"tracks\":" << tracks_.size();
  out << ",\"ring_capacity\":" << ring_capacity_;
  out << "}}";
  out << '\n';
  out.flush();
  return static_cast<bool>(out);
}

SpanGuard::SpanGuard(const char* name, std::int64_t t,
                     std::int64_t id) noexcept
    : profiler_(tls_profiler) {
  if (profiler_ == nullptr) return;
  span_.name = name;
  span_.t = t;
  span_.id = id;
  span_.track = tls_track;
  span_.depth = profiler_->begin_span(span_.track);
  span_.start_ns = profiler_->now_ns();
}

SpanGuard::~SpanGuard() {
  if (profiler_ == nullptr) return;
  span_.end_ns = profiler_->now_ns();
  profiler_->end_span(span_.track, span_);
}

}  // namespace mach::obs
