#include "obs/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace mach::obs {

namespace {

bool contains(std::string_view name, std::string_view needle) {
  return name.find(needle) != std::string_view::npos;
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string format_value(const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::String:
      return value.as_string();
    case JsonValue::Kind::Number: {
      const double d = value.as_number();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        return std::to_string(static_cast<long long>(d));
      }
      return json_number(d);
    }
    case JsonValue::Kind::Bool:
      return value.as_bool() ? "true" : "false";
    default:
      return "?";
  }
}

/// Identity fields joined in object-key order (JsonValue objects are sorted
/// maps, so the key is deterministic regardless of emission order).
std::string case_key(const JsonValue::Object& entry) {
  std::string key;
  for (const auto& [name, value] : entry) {
    if (metric_direction(name) != MetricDirection::Identity) continue;
    if (!key.empty()) key += ' ';
    key += name;
    key += '=';
    key += format_value(value);
  }
  return key.empty() ? "(unkeyed)" : key;
}

}  // namespace

MetricDirection metric_direction(std::string_view name) {
  if (contains(name, "per_second") || contains(name, "gflops") ||
      contains(name, "speedup")) {
    return MetricDirection::HigherIsBetter;
  }
  if (ends_with(name, "_ms") || ends_with(name, "_seconds") ||
      name == "seconds") {
    return MetricDirection::LowerIsBetter;
  }
  // Communication volume (BENCH_comm.json and the byte ledger): shipping
  // more encoded bytes for the same case is a regression.
  if (ends_with(name, "_bytes") || name == "bytes_per_round") {
    return MetricDirection::LowerIsBetter;
  }
  // Memory envelope (BENCH_scale.json): a fatter resident set or KiB-scale
  // footprint for the same case is a regression.
  if (contains(name, "rss") || ends_with(name, "_kb")) {
    return MetricDirection::LowerIsBetter;
  }
  // Model quality (BENCH_comm.json accuracy-vs-bytes cases, BENCH_zoo.json
  // sampler-x-scenario cases).
  if (contains(name, "accuracy") || contains(name, "reach_rate")) {
    return MetricDirection::HigherIsBetter;
  }
  // Convergence speed (BENCH_zoo.json): more steps to the accuracy target
  // for the same (sampler, scenario) case is a regression.
  if (contains(name, "steps_to")) {
    return MetricDirection::LowerIsBetter;
  }
  if (contains(name, "trained") || contains(name, "count")) {
    return MetricDirection::Informational;
  }
  return MetricDirection::Identity;
}

BenchComparison compare_benchmarks(const JsonValue& baseline,
                                   const JsonValue& current) {
  BenchComparison out;
  out.bench = baseline.string_or("bench", "");
  out.bench_mismatch = out.bench != current.string_or("bench", "");

  // Index both results arrays by case key.
  const auto index = [](const JsonValue& doc) {
    std::vector<std::pair<std::string, const JsonValue::Object*>> cases;
    const JsonValue& results = doc["results"];
    if (!results.is_array()) return cases;
    for (const JsonValue& entry : results.as_array()) {
      if (!entry.is_object()) continue;
      cases.emplace_back(case_key(entry.as_object()), &entry.as_object());
    }
    return cases;
  };
  const auto baseline_cases = index(baseline);
  const auto current_cases = index(current);

  const auto find_case = [](const auto& cases, const std::string& key)
      -> const JsonValue::Object* {
    for (const auto& [k, obj] : cases) {
      if (k == key) return obj;
    }
    return nullptr;
  };

  for (const auto& [key, baseline_entry] : baseline_cases) {
    const JsonValue::Object* current_entry = find_case(current_cases, key);
    if (current_entry == nullptr) {
      out.only_in_baseline.push_back(key);
      continue;
    }
    CaseDelta delta;
    delta.key = key;
    for (const auto& [name, baseline_value] : *baseline_entry) {
      const MetricDirection direction = metric_direction(name);
      if (direction == MetricDirection::Identity) continue;
      if (!baseline_value.is_number()) continue;
      const auto it = current_entry->find(name);
      if (it == current_entry->end() || !it->second.is_number()) continue;

      MetricDelta metric;
      metric.metric = name;
      metric.direction = direction;
      metric.baseline = baseline_value.as_number();
      metric.current = it->second.as_number();
      if (metric.baseline != 0.0) {
        const double raw =
            (metric.current - metric.baseline) / std::abs(metric.baseline);
        metric.change_pct =
            100.0 *
            (direction == MetricDirection::LowerIsBetter ? -raw : raw);
      }
      if (direction != MetricDirection::Informational &&
          -metric.change_pct > out.worst_regression_pct) {
        out.worst_regression_pct = -metric.change_pct;
        out.worst_case = key;
        out.worst_metric = name;
      }
      delta.metrics.push_back(std::move(metric));
    }
    out.cases.push_back(std::move(delta));
  }

  for (const auto& [key, entry] : current_cases) {
    (void)entry;
    if (find_case(baseline_cases, key) == nullptr) {
      out.only_in_current.push_back(key);
    }
  }
  return out;
}

std::optional<JsonValue> load_bench_file(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string parse_error;
  auto doc = parse_json(text.str(), &parse_error);
  if (!doc) {
    if (error != nullptr) *error = path + ": " + parse_error;
    return std::nullopt;
  }
  return doc;
}

std::string format_comparison(const BenchComparison& comparison,
                              double threshold_pct) {
  std::ostringstream out;
  out << "bench: " << (comparison.bench.empty() ? "?" : comparison.bench);
  if (comparison.bench_mismatch) out << "  [BENCH NAME MISMATCH]";
  out << "\n";
  char line[256];
  for (const CaseDelta& case_delta : comparison.cases) {
    out << "  " << case_delta.key << "\n";
    for (const MetricDelta& m : case_delta.metrics) {
      const bool gated = m.direction != MetricDirection::Informational;
      const char* flag = !gated                              ? "  (info)"
                         : -m.change_pct > threshold_pct     ? "  REGRESSION"
                         : m.change_pct > threshold_pct      ? "  improved"
                                                             : "";
      std::snprintf(line, sizeof(line), "    %-28s %14.4f -> %14.4f  %+7.2f%%%s\n",
                    m.metric.c_str(), m.baseline, m.current, m.change_pct,
                    flag);
      out << line;
    }
  }
  for (const std::string& key : comparison.only_in_baseline) {
    out << "  missing from current: " << key << "\n";
  }
  for (const std::string& key : comparison.only_in_current) {
    out << "  new in current:       " << key << "\n";
  }
  if (comparison.regression_beyond(threshold_pct)) {
    std::snprintf(line, sizeof(line),
                  "worst regression: %.2f%% (%s: %s), threshold %.2f%%\n",
                  comparison.worst_regression_pct,
                  comparison.worst_case.c_str(),
                  comparison.worst_metric.c_str(), threshold_pct);
    out << line;
  } else {
    std::snprintf(line, sizeof(line),
                  "no regression beyond %.2f%% (worst %.2f%%)\n",
                  threshold_pct, comparison.worst_regression_pct);
    out << line;
  }
  return out.str();
}

}  // namespace mach::obs
