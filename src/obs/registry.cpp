#include "obs/registry.h"

#include <algorithm>
#include <stdexcept>

namespace mach::obs {

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)), buckets_(bounds_.size() + 1, 0) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no bucket bounds");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void Histogram::restore(const std::vector<std::uint64_t>& buckets,
                        std::uint64_t count, double sum) {
  if (buckets.size() != buckets_.size()) {
    throw std::invalid_argument("Histogram::restore: bucket count mismatch");
  }
  buckets_ = buckets;
  count_ = count;
  sum_ = sum;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  Counter& created = counters_.emplace_back();
  counter_index_.emplace(name, &created);
  return created;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *it->second;
  Gauge& created = gauges_.emplace_back();
  gauge_index_.emplace(name, &created);
  return created;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bucket_bounds) {
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return *it->second;
  Histogram& created = histograms_.emplace_back(std::move(bucket_bounds));
  histogram_index_.emplace(name, &created);
  return created;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counter_index_.size());
  for (const auto& [name, counter] : counter_index_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauge_index_.size());
  for (const auto& [name, gauge] : gauge_index_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histogram_index_.size());
  for (const auto& [name, histogram] : histogram_index_) {
    snap.histograms.push_back({name, histogram->bounds(), histogram->buckets(),
                               histogram->count(), histogram->sum()});
  }
  return snap;
}

void MetricsRegistry::restore(const MetricsSnapshot& snap) {
  for (const auto& entry : snap.counters) counter(entry.name).set(entry.value);
  for (const auto& entry : snap.gauges) gauge(entry.name).set(entry.value);
  for (const auto& entry : snap.histograms) {
    histogram(entry.name, entry.bounds)
        .restore(entry.buckets, entry.count, entry.sum);
  }
}

void MetricsRegistry::reset() {
  for (auto& [name, counter] : counter_index_) counter->reset();
  for (auto& [name, gauge] : gauge_index_) *gauge = Gauge{};
  for (auto& [name, histogram] : histogram_index_) {
    *histogram = Histogram(histogram->bounds());
  }
}

}  // namespace mach::obs
