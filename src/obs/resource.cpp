#include "obs/resource.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define MACH_HAVE_GETRUSAGE 1
#else
#define MACH_HAVE_GETRUSAGE 0
#endif

namespace mach::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long read_statm_resident_kb() {
  // /proc/self/statm: size resident shared text lib data dt (in pages).
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  long size_pages = 0;
  long resident_pages = 0;
  statm >> size_pages >> resident_pages;
  if (!statm) return 0;
#if MACH_HAVE_GETRUSAGE
  const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
#else
  const long page_kb = 4;
#endif
  return resident_pages * (page_kb > 0 ? page_kb : 4);
}

}  // namespace

ResourceUsage sample_resource_usage() {
  ResourceUsage usage;
#if MACH_HAVE_GETRUSAGE
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.user_cpu_seconds = static_cast<double>(ru.ru_utime.tv_sec) +
                             static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    usage.system_cpu_seconds = static_cast<double>(ru.ru_stime.tv_sec) +
                               static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
#if defined(__APPLE__)
    usage.peak_rss_kb = ru.ru_maxrss / 1024;  // macOS reports bytes
#else
    usage.peak_rss_kb = ru.ru_maxrss;  // Linux reports kilobytes
#endif
    usage.minor_faults = ru.ru_minflt;
    usage.major_faults = ru.ru_majflt;
  }
#endif
  usage.current_rss_kb = read_statm_resident_kb();
  if (usage.current_rss_kb == 0) usage.current_rss_kb = usage.peak_rss_kb;
  return usage;
}

ResourceSampler::ResourceSampler(double interval_seconds,
                                 std::size_t max_samples)
    : interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 0.25),
      max_samples_(max_samples < 2 ? 2 : max_samples),
      start_seconds_(steady_seconds()) {
  samples_.reserve(max_samples_);
}

bool ResourceSampler::maybe_sample() {
  const double now = steady_seconds() - start_seconds_;
  if (last_sample_seconds_ >= 0.0 &&
      now - last_sample_seconds_ < interval_seconds_) {
    return false;
  }
  capture();
  return true;
}

void ResourceSampler::force_sample() { capture(); }

ResourceSample ResourceSampler::latest() const {
  if (!samples_.empty()) return samples_.back();
  ResourceSample sample;
  sample.elapsed_seconds = steady_seconds() - start_seconds_;
  sample.usage = sample_resource_usage();
  return sample;
}

void ResourceSampler::capture() {
  if (samples_.size() >= max_samples_) {
    // Decimate: keep every other sample and double the interval, so the
    // history stays bounded but spans the whole run evenly.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) {
      samples_[kept++] = samples_[i];
    }
    samples_.resize(kept);
    interval_seconds_ *= 2.0;
  }
  ResourceSample sample;
  sample.elapsed_seconds = steady_seconds() - start_seconds_;
  sample.usage = sample_resource_usage();
  last_sample_seconds_ = sample.elapsed_seconds;
  samples_.push_back(sample);
}

HardwareInfo read_hardware_info() {
  HardwareInfo info;
  info.cpu_model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t begin = colon + 1;
      while (begin < line.size() && line[begin] == ' ') ++begin;
      if (begin < line.size()) info.cpu_model = line.substr(begin);
      break;
    }
  }
  info.hardware_threads = std::thread::hardware_concurrency();
  info.peak_rss_kb = sample_resource_usage().peak_rss_kb;
  return info;
}

std::string hardware_json() {
  const HardwareInfo info = read_hardware_info();
  JsonObjectWriter out;
  out.begin();
  out.field("cpu_model", info.cpu_model);
  out.field("hardware_threads",
            static_cast<std::uint64_t>(info.hardware_threads));
  out.field("peak_rss_kb", static_cast<std::int64_t>(info.peak_rss_kb));
  return out.end();
}

}  // namespace mach::obs
