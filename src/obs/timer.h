// RAII wall-clock phase timers for the simulator's hot phases.
//
// A ScopedTimer charges the enclosed scope's duration to a PhaseAccumulator
// on destruction; the accumulators live in a PhaseTimerSet indexed by the
// Phase enum (one steady_clock read on entry and one on exit — cheap enough
// to leave permanently enabled, so every run carries its phase breakdown).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <string_view>

namespace mach::obs {

/// The simulator phases the ROADMAP's perf work needs timed.
enum class Phase : std::size_t {
  SamplerDecision = 0,  // edge_probabilities (+ oracle probes) per edge
  DeviceTraining,       // local updating, Eq. 4
  EdgeAggregation,      // Horvitz-Thompson edge aggregation, Eq. 5
  CloudAggregation,     // edge -> cloud fold + broadcast, Eq. 6
  Evaluation,           // global-model evaluation passes
  Checkpoint,           // run-state snapshot encode + durable write
  kCount,
};

constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

/// Stable machine-readable phase name ("device_training", ...).
std::string_view phase_name(Phase phase) noexcept;

/// Accumulated wall-clock statistics of one phase.
struct PhaseAccumulator {
  std::uint64_t count = 0;   // number of timed scopes
  double total_seconds = 0.0;
  double min_seconds = 0.0;  // 0 until the first observation
  double max_seconds = 0.0;

  void add(double seconds) noexcept {
    if (count == 0 || seconds < min_seconds) min_seconds = seconds;
    if (seconds > max_seconds) max_seconds = seconds;
    total_seconds += seconds;
    ++count;
  }
  double mean_seconds() const noexcept {
    return count == 0 ? 0.0 : total_seconds / static_cast<double>(count);
  }

  /// Folds another accumulator in (cross-run aggregation for bench sweeps).
  void merge(const PhaseAccumulator& other) noexcept {
    if (other.count == 0) return;
    if (count == 0 || other.min_seconds < min_seconds) {
      min_seconds = other.min_seconds;
    }
    if (other.max_seconds > max_seconds) max_seconds = other.max_seconds;
    total_seconds += other.total_seconds;
    count += other.count;
  }
};

/// One accumulator per Phase. Value-semantic; reset() between runs.
class PhaseTimerSet {
 public:
  PhaseAccumulator& operator[](Phase phase) noexcept {
    return accumulators_[static_cast<std::size_t>(phase)];
  }
  const PhaseAccumulator& operator[](Phase phase) const noexcept {
    return accumulators_[static_cast<std::size_t>(phase)];
  }

  double total_seconds() const noexcept {
    double total = 0.0;
    for (const auto& acc : accumulators_) total += acc.total_seconds;
    return total;
  }

  void reset() noexcept { accumulators_ = {}; }

  /// Folds another set in phase-by-phase (bench sweeps sum per-seed runs).
  void merge(const PhaseTimerSet& other) noexcept {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      accumulators_[i].merge(other.accumulators_[i]);
    }
  }

 private:
  std::array<PhaseAccumulator, kNumPhases> accumulators_{};
};

/// Charges the lifetime of the object to one accumulator. Movable-from-scope
/// usage is intentionally not supported; create it in the scope to measure.
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseAccumulator& accumulator) noexcept
      : accumulator_(&accumulator), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(PhaseTimerSet& timers, Phase phase) noexcept
      : ScopedTimer(timers[phase]) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { accumulator_->add(elapsed_seconds()); }

  /// Seconds since construction (the destructor records this same quantity).
  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  PhaseAccumulator* accumulator_;
  std::chrono::steady_clock::time_point start_;
};

/// Free-standing stopwatch for callers that want the duration as a value
/// (e.g. to put into a trace event) rather than into an accumulator.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(std::chrono::steady_clock::now()) {}
  double seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mach::obs
