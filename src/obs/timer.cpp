#include "obs/timer.h"

namespace mach::obs {

std::string_view phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::SamplerDecision: return "sampler_decision";
    case Phase::DeviceTraining: return "device_training";
    case Phase::EdgeAggregation: return "edge_aggregation";
    case Phase::CloudAggregation: return "cloud_aggregation";
    case Phase::Evaluation: return "evaluation";
    case Phase::Checkpoint: return "checkpoint";
    case Phase::kCount: break;
  }
  return "unknown";
}

}  // namespace mach::obs
