// Live-run heartbeat: a small status.json rewritten periodically via
// write-temp-then-rename, so an external watcher (tail loop, dashboard,
// orchestrator) always reads a complete, internally-consistent document —
// never a torn partial write. Schema is documented in DESIGN.md §12.
//
// Every document carries the writing process's `pid` and a monotonic-clock
// `uptime_ms` (milliseconds since the writer's construction): a supervisor
// can tell "this heartbeat stopped advancing" (hang) apart from "the wall
// clock jumped" (skew) by watching the monotonic fields, and can tell a
// fresh attempt's heartbeat apart from a dead predecessor's leftover file by
// the pid. See obs/heartbeat.h for the matching reader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mach::obs {

/// What the engine knows about the run right now. All rates/ETAs are
/// computed by the caller so this stays a dumb serialisable snapshot.
struct StatusSnapshot {
  std::string sampler;
  std::size_t step = 0;            // current simulation step (0-based, done)
  std::size_t total_steps = 0;
  std::size_t cloud_rounds = 0;
  std::uint64_t devices_trained = 0;
  double devices_per_second = 0.0;
  double elapsed_seconds = 0.0;
  double eta_seconds = 0.0;        // 0 when unknown or finished
  std::uint64_t faults_lost = 0;   // devices lost to injected faults
  std::uint64_t spans_dropped = 0; // profiler ring overflow (0 = complete)
  long current_rss_kb = 0;
  long peak_rss_kb = 0;
  bool finished = false;
};

/// Rate-limited writer. maybe_write() is a no-op (one clock read) inside the
/// interval unless the snapshot is final; every actual write goes to
/// `<path>.tmp` and is renamed over `<path>` atomically.
class StatusWriter {
 public:
  StatusWriter(std::string path, double interval_seconds);

  /// Writes when the interval elapsed or `snapshot.finished` is set.
  /// Returns true when a write happened.
  bool maybe_write(const StatusSnapshot& snapshot);

  /// Writes unconditionally. Returns false on I/O failure.
  bool write_now(const StatusSnapshot& snapshot);

  /// Re-writes the last snapshot handed to maybe_write/write_now with
  /// `"aborted": true`, so watchers see a terminal document even when the
  /// run died before its finished-forces-write path. No-op (returning
  /// false) when nothing was ever written or the last write was already
  /// final. Called by AbortScope; exposed for tests.
  bool write_aborted();

  /// RAII companion for the abnormal-exit path: destruction force-writes
  /// the writer's last snapshot with aborted=true unless that snapshot was
  /// final. Placed on the stack inside the run loop's scope — an exception
  /// unwinding out of the engine still leaves a terminal heartbeat, with no
  /// atexit hook involved (plain scope unwind). A null writer is allowed
  /// (guard is inert), so callers need no conditional.
  class AbortScope {
   public:
    explicit AbortScope(StatusWriter* writer) noexcept : writer_(writer) {}
    AbortScope(const AbortScope&) = delete;
    AbortScope& operator=(const AbortScope&) = delete;
    ~AbortScope() {
      if (writer_ != nullptr) writer_->write_aborted();
    }

   private:
    StatusWriter* writer_;
  };

  std::uint64_t writes() const noexcept { return sequence_; }
  const std::string& path() const noexcept { return path_; }

 private:
  bool write_document(const StatusSnapshot& snapshot, bool aborted);

  std::string path_;
  std::string tmp_path_;
  double interval_seconds_;
  double last_write_seconds_ = -1.0;
  double start_seconds_;           // monotonic birth time (uptime_ms origin)
  long pid_;
  std::uint64_t sequence_ = 0;
  StatusSnapshot last_snapshot_;   // replayed by write_aborted()
  bool have_snapshot_ = false;
};

}  // namespace mach::obs
