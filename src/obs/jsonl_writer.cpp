#include "obs/jsonl_writer.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "obs/json.h"

namespace mach::obs {

namespace {

/// Nested q-summary object shared by edge_agg lines.
std::string q_summary_json(const QSummary& q) {
  JsonObjectWriter w;
  w.begin();
  w.field("count", q.count);
  w.field("min", q.min);
  w.field("mean", q.mean);
  w.field("max", q.max);
  w.field("sum", q.sum);
  w.field("clamped_to_floor", q.clamped_to_floor);
  w.field("clamped_to_one", q.clamped_to_one);
  return w.end();
}

std::string phases_json(const PhaseTimerSet& phases) {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const auto phase = static_cast<Phase>(i);
    const PhaseAccumulator& acc = phases[phase];
    JsonObjectWriter w;
    w.begin();
    w.field("count", acc.count);
    w.field("total_s", acc.total_seconds);
    w.field("mean_s", acc.mean_seconds());
    w.field("min_s", acc.min_seconds);
    w.field("max_s", acc.max_seconds);
    if (!first) out += ',';
    first = false;
    out += '"';
    out += phase_name(phase);
    out += "\":";
    out += w.end();
  }
  out += '}';
  return out;
}

std::string registry_json(const MetricsRegistry& registry) {
  const MetricsSnapshot snap = registry.snapshot();
  JsonObjectWriter counters;
  counters.begin();
  for (const auto& entry : snap.counters) counters.field(entry.name, entry.value);
  JsonObjectWriter gauges;
  gauges.begin();
  for (const auto& entry : snap.gauges) gauges.field(entry.name, entry.value);
  std::string histograms = "{";
  bool first = true;
  for (const auto& entry : snap.histograms) {
    JsonObjectWriter h;
    h.begin();
    h.field("bounds", entry.bounds);
    h.field("buckets", entry.buckets);
    h.field("count", entry.count);
    h.field("sum", entry.sum);
    if (!first) histograms += ',';
    first = false;
    histograms += '"' + json_escape(entry.name) + "\":" + h.end();
  }
  histograms += '}';
  JsonObjectWriter w;
  w.begin();
  w.raw_field("counters", counters.end());
  w.raw_field("gauges", gauges.end());
  w.raw_field("histograms", histograms);
  return w.end();
}

/// Realised-fault payload of one edge round (only emitted when the fault
/// layer is active — fault-free traces keep their exact bytes).
std::string fault_summary_json(const FaultSummary& faults) {
  JsonObjectWriter w;
  w.begin();
  w.field("outage", faults.edge_outage);
  w.field("dropped", static_cast<std::uint64_t>(faults.num_dropped));
  w.field("straggler_arrivals",
          static_cast<std::uint64_t>(faults.num_straggler_arrivals));
  w.field("straggler_timeouts",
          static_cast<std::uint64_t>(faults.num_straggler_timeouts));
  w.field("retries", static_cast<std::uint64_t>(faults.num_retries));
  w.field("survivors", faults.survivors);
  w.field("lost", faults.lost);
  return w.end();
}

/// Encoded-byte ledger payload of the run_end line: messages and bytes per
/// link plus the fp32-equivalent total for compression-ratio readouts.
std::string comm_json(const RunEndEvent& event) {
  const auto link = [](const comm::LinkTraffic& traffic) {
    JsonObjectWriter w;
    w.begin();
    w.field("messages", traffic.messages);
    w.field("bytes", traffic.bytes);
    return w.end();
  };
  const comm::ByteLedger& ledger = *event.ledger;
  JsonObjectWriter w;
  w.begin();
  w.raw_field("device_download", link(ledger.device_download));
  w.raw_field("device_upload", link(ledger.device_upload));
  w.raw_field("retry_upload", link(ledger.retry_upload));
  w.raw_field("probe_download", link(ledger.probe_download));
  w.raw_field("edge_upload", link(ledger.edge_upload));
  w.raw_field("cloud_broadcast", link(ledger.cloud_broadcast));
  w.field("total_bytes", ledger.total_bytes());
  w.field("assumed_fp32_bytes", event.assumed_fp32_bytes);
  w.field("mixed_model_sizes", event.mixed_model_sizes);
  return w.end();
}

/// min/mean/max summary of a per-device array (null-safe on empty).
std::string summary_json(const std::vector<double>& values) {
  JsonObjectWriter w;
  w.begin();
  w.field("count", values.size());
  if (!values.empty()) {
    double min = values.front(), max = values.front(), sum = 0.0;
    for (const double v : values) {
      min = std::min(min, v);
      max = std::max(max, v);
      sum += v;
    }
    w.field("min", min);
    w.field("mean", sum / static_cast<double>(values.size()));
    w.field("max", max);
  }
  return w.end();
}

}  // namespace

JsonlTraceWriter::JsonlTraceWriter(const std::string& path, JsonlTraceOptions options)
    : options_(options),
      owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      out_(owned_.get()) {
  if (!*owned_) {
    throw std::runtime_error("JsonlTraceWriter: cannot open " + path);
  }
}

JsonlTraceWriter::JsonlTraceWriter(std::ostream& out, JsonlTraceOptions options)
    : options_(options), out_(&out) {}

JsonlTraceWriter::JsonlTraceWriter(const std::string& path,
                                   const TraceCursor& resume_from,
                                   JsonlTraceOptions options)
    : options_(options) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw std::runtime_error("JsonlTraceWriter: cannot resume " + path + ": " +
                             ec.message());
  }
  if (size < resume_from.byte_offset) {
    throw std::runtime_error(
        "JsonlTraceWriter: trace " + path + " is shorter (" +
        std::to_string(size) + " bytes) than the checkpoint cursor (" +
        std::to_string(resume_from.byte_offset) + ") — wrong file?");
  }
  // Drop everything the crashed process wrote after its last snapshot; the
  // resumed run re-emits those events identically.
  std::filesystem::resize_file(path, resume_from.byte_offset, ec);
  if (ec) {
    throw std::runtime_error("JsonlTraceWriter: cannot truncate " + path + ": " +
                             ec.message());
  }
  // in|out|ate ("r+", positioned at end) rather than app: append-mode
  // streams pin every write to end-of-file but leave tellp() unreliable,
  // and the next snapshot needs an exact byte cursor from tellp().
  owned_ = std::make_unique<std::ofstream>(
      path, std::ios::in | std::ios::out | std::ios::ate);
  out_ = owned_.get();
  if (!*owned_) {
    throw std::runtime_error("JsonlTraceWriter: cannot reopen " + path);
  }
  lines_ = static_cast<std::size_t>(resume_from.lines);
}

JsonlTraceWriter::~JsonlTraceWriter() { out_->flush(); }

void JsonlTraceWriter::write_line(std::string line) {
  *out_ << line << '\n';
  ++lines_;
  if (options_.flush_every_event) out_->flush();
}

void JsonlTraceWriter::on_run_begin(const RunBeginEvent& event) {
  JsonObjectWriter w;
  w.begin();
  w.field("event", "run_begin");
  w.field("sampler", event.sampler);
  w.field("seed", event.seed);
  w.field("steps", event.steps);
  w.field("num_devices", event.num_devices);
  w.field("num_edges", event.num_edges);
  w.field("cloud_interval", event.cloud_interval);
  if (!event.fault_spec.empty()) w.field("faults", event.fault_spec);
  if (!event.codec_spec.empty()) w.field("codec", event.codec_spec);
  write_line(w.end());
}

void JsonlTraceWriter::on_step_begin(const StepBeginEvent& event) {
  if (!options_.step_events) return;
  JsonObjectWriter w;
  w.begin();
  w.field("event", "step");
  w.field("t", event.t);
  w.field("active_edges", event.active_edges);
  w.field("devices_present", event.devices_present);
  write_line(w.end());
}

void JsonlTraceWriter::on_device_trained(const DeviceTrainedEvent& event) {
  if (!options_.device_events) return;
  JsonObjectWriter w;
  w.begin();
  w.field("event", "device");
  w.field("t", event.t);
  w.field("device", static_cast<std::uint64_t>(event.device));
  w.field("edge", event.edge);
  w.field("q", event.q);
  w.field("mean_loss", event.mean_loss);
  w.field("last_grad_sq_norm", event.last_grad_sq_norm);
  w.field("seconds", event.seconds);
  write_line(w.end());
}

void JsonlTraceWriter::on_edge_aggregated(const EdgeAggregatedEvent& event) {
  JsonObjectWriter w;
  w.begin();
  w.field("event", "edge_agg");
  w.field("t", event.t);
  w.field("edge", event.edge);
  w.field("capacity", event.capacity);
  w.field("num_devices", event.num_devices);
  w.field("num_sampled", event.num_sampled);
  w.raw_field("q", q_summary_json(event.q));
  w.field("ht_weight_sum", event.ht_weight_sum);
  w.field("ht_weight_variance", event.ht_weight_variance);
  w.field("sampler_seconds", event.sampler_seconds);
  w.field("train_seconds", event.train_seconds);
  w.field("aggregate_seconds", event.aggregate_seconds);
  if (event.faults.active) w.raw_field("faults", fault_summary_json(event.faults));
  write_line(w.end());
}

void JsonlTraceWriter::on_cloud_round(const CloudRoundEvent& event) {
  JsonObjectWriter w;
  w.begin();
  w.field("event", "cloud_round");
  w.field("t", event.t);
  w.field("round", event.round);
  w.field("num_edges", event.num_edges);
  w.field("seconds", event.seconds);
  if (event.faults_active) w.field("uploads_lost", event.lost_edges);
  if (!event.sampler.empty()) {
    w.raw_field("g_squared_summary", summary_json(event.sampler.g_squared));
    if (options_.sampler_arrays) {
      w.field("g_squared", event.sampler.g_squared);
      w.field("buffer_sizes", event.sampler.buffer_sizes);
      w.field("participations", event.sampler.participations);
    }
  }
  write_line(w.end());
}

void JsonlTraceWriter::on_eval(const EvalEvent& event) {
  JsonObjectWriter w;
  w.begin();
  w.field("event", "eval");
  w.field("t", event.t);
  w.field("test_accuracy", event.test_accuracy);
  w.field("test_loss", event.test_loss);
  w.field("train_loss", event.train_loss);
  w.field("participants", event.participants);
  w.field("global_grad_sq_norm", event.global_grad_sq_norm);
  w.field("seconds", event.seconds);
  write_line(w.end());
}

void JsonlTraceWriter::on_checkpoint(const CheckpointEvent& event) {
  JsonObjectWriter w;
  w.begin();
  w.field("event", "checkpoint");
  w.field("t", event.t);
  w.field("steps", event.steps);
  write_line(w.end());
}

std::optional<TraceCursor> JsonlTraceWriter::checkpoint_cursor() {
  out_->flush();
  const std::ostream::pos_type pos = out_->tellp();
  if (pos < 0) return std::nullopt;
  TraceCursor cursor;
  cursor.byte_offset = static_cast<std::uint64_t>(pos);
  cursor.lines = lines_;
  return cursor;
}

void JsonlTraceWriter::on_run_end(const RunEndEvent& event) {
  JsonObjectWriter w;
  w.begin();
  w.field("event", "run_end");
  w.field("steps", event.steps);
  w.field("cloud_rounds", event.cloud_rounds);
  if (event.phases != nullptr) {
    w.raw_field("phases", phases_json(*event.phases));
    w.field("phase_total_s", event.phases->total_seconds());
  }
  if (event.registry != nullptr) {
    w.raw_field("metrics", registry_json(*event.registry));
  }
  if (event.ledger != nullptr) {
    w.raw_field("comm", comm_json(event));
  }
  write_line(w.end());
  out_->flush();
}

}  // namespace mach::obs
