// Minimal JSON support for the trace subsystem: a streaming object writer
// (used by JsonlTraceWriter to emit one object per line) and a small
// recursive-descent parser (used by trace_summary and the tests to read
// traces back). Only what JSONL traces need — no comments, no trailing
// commas; numbers are doubles.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mach::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view text);

/// Serialises a double the way JSON expects (no inf/nan — they become null,
/// mirroring what lenient encoders do; traces should never contain them).
std::string json_number(double value);

/// Incremental single-object writer: out.begin(); out.field("k", v); ...;
/// out.end(). Nested objects/arrays via raw_field. Values are escaped.
class JsonObjectWriter {
 public:
  void begin() {
    buffer_ = "{";
    first_ = true;
  }
  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value) {
    field(key, std::string_view(value));
  }
  void field(std::string_view key, double value);
  void field(std::string_view key, std::uint64_t value);  // also size_t here
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, bool value);
  /// Inserts `json` verbatim as the value (caller guarantees validity).
  void raw_field(std::string_view key, std::string_view json);
  /// Numeric array helper.
  void field(std::string_view key, const std::vector<double>& values);
  void field(std::string_view key, const std::vector<std::uint64_t>& values);
  std::string end() {
    buffer_ += '}';
    return std::move(buffer_);
  }

 private:
  void key_prefix(std::string_view key);
  std::string buffer_;
  bool first_ = true;
};

/// Parsed JSON value (object keys are sorted; duplicate keys keep the last).
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::Number), number_(d) {}
  explicit JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  explicit JsonValue(Array a)
      : kind_(Kind::Array), array_(std::make_shared<Array>(std::move(a))) {}
  explicit JsonValue(Object o)
      : kind_(Kind::Object), object_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_bool() const noexcept { return kind_ == Kind::Bool; }

  /// Typed accessors throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; null-kind value reference when absent or when
  /// this value is not an object (convenient chained lookups).
  const JsonValue& operator[](std::string_view key) const;

  /// Lenient readers for trace consumers: fall back when missing/mistyped.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;    // shared: JsonValue stays cheaply copyable
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document. Returns nullopt (with a message in `error` when
/// provided) on malformed input, trailing garbage, or documents nested more
/// than 128 levels deep (stack-exhaustion guard).
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

struct JsonParseOptions {
  /// Reject objects that spell the same key twice instead of keeping the
  /// last occurrence. Config parsers (the sweep spec) want the strictness;
  /// trace readers keep the lenient default.
  bool reject_duplicate_keys = false;
};

std::optional<JsonValue> parse_json(std::string_view text, std::string* error,
                                    const JsonParseOptions& options);

}  // namespace mach::obs
