// Process resource telemetry: point-in-time usage snapshots (RSS, CPU time,
// page faults) via getrusage + /proc/self/statm, a rate-limited periodic
// sampler feeding the Chrome-trace counter track and status.json, and
// machine context (CPU model, hardware threads) for BENCH_*.json emitters.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mach::obs {

/// One point-in-time snapshot of the process's resource consumption.
struct ResourceUsage {
  double user_cpu_seconds = 0.0;
  double system_cpu_seconds = 0.0;
  long peak_rss_kb = 0;     // ru_maxrss: high-water mark since process start
  long current_rss_kb = 0;  // /proc/self/statm resident pages (0 off-Linux)
  long minor_faults = 0;
  long major_faults = 0;
};

/// Captures the current usage (getrusage(RUSAGE_SELF) + /proc/self/statm).
ResourceUsage sample_resource_usage();

struct ResourceSample {
  double elapsed_seconds = 0.0;  // since the sampler's construction
  ResourceUsage usage;
};

/// Periodic sampler: maybe_sample() is cheap when called inside the interval
/// (one steady_clock read). When the sample buffer fills it decimates —
/// keeps every other sample and doubles the interval — so long runs keep a
/// bounded, evenly-thinned history instead of losing the tail.
class ResourceSampler {
 public:
  explicit ResourceSampler(double interval_seconds,
                           std::size_t max_samples = 4096);

  /// Captures a sample when at least the interval has elapsed since the
  /// last one. Returns true when a sample was taken.
  bool maybe_sample();

  /// Captures a sample unconditionally (used for the final snapshot).
  void force_sample();

  const std::vector<ResourceSample>& samples() const noexcept {
    return samples_;
  }
  /// Latest captured sample; a fresh capture when none exists yet.
  ResourceSample latest() const;
  double interval_seconds() const noexcept { return interval_seconds_; }

 private:
  void capture();

  double interval_seconds_;
  std::size_t max_samples_;
  double start_seconds_;  // steady_clock at construction
  double last_sample_seconds_ = -1.0;
  std::vector<ResourceSample> samples_;
};

/// Machine context recorded into BENCH_*.json so results are interpretable
/// across machines.
struct HardwareInfo {
  std::string cpu_model;        // "unknown" when /proc/cpuinfo is unreadable
  std::size_t hardware_threads = 0;
  long peak_rss_kb = 0;         // process high-water mark at capture time
};

HardwareInfo read_hardware_info();

/// JSON object string {"cpu_model":...,"hardware_threads":...,"peak_rss_kb":...}
/// for embedding via JsonObjectWriter::raw_field.
std::string hardware_json();

}  // namespace mach::obs
