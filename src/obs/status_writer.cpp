#include "obs/status_writer.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace mach::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusWriter::StatusWriter(std::string path, double interval_seconds)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 0.5),
      start_seconds_(steady_seconds()),
      pid_(static_cast<long>(::getpid())) {}

bool StatusWriter::maybe_write(const StatusSnapshot& snapshot) {
  const double now = steady_seconds();
  if (!snapshot.finished && last_write_seconds_ >= 0.0 &&
      now - last_write_seconds_ < interval_seconds_) {
    return false;
  }
  last_write_seconds_ = now;
  return write_now(snapshot);
}

bool StatusWriter::write_now(const StatusSnapshot& snapshot) {
  return write_document(snapshot, /*aborted=*/false);
}

bool StatusWriter::write_aborted() {
  if (!have_snapshot_ || last_snapshot_.finished) return false;
  const StatusSnapshot snap = last_snapshot_;  // copy: write_document aliases
  const bool ok = write_document(snap, /*aborted=*/true);
  last_snapshot_.finished = true;  // fire once per run, even if called twice
  return ok;
}

bool StatusWriter::write_document(const StatusSnapshot& snapshot, bool aborted) {
  last_snapshot_ = snapshot;
  have_snapshot_ = true;

  JsonObjectWriter out;
  out.begin();
  out.field("kind", "mach_status");
  out.field("sequence", ++sequence_);
  out.field("updated_unix",
            std::chrono::duration<double>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
  out.field("pid", static_cast<std::int64_t>(pid_));
  out.field("uptime_ms",
            static_cast<std::uint64_t>(
                (steady_seconds() - start_seconds_) * 1000.0));
  out.field("sampler", snapshot.sampler);
  out.field("step", static_cast<std::uint64_t>(snapshot.step));
  out.field("total_steps", static_cast<std::uint64_t>(snapshot.total_steps));
  out.field("cloud_rounds", static_cast<std::uint64_t>(snapshot.cloud_rounds));
  out.field("devices_trained", snapshot.devices_trained);
  out.field("devices_per_second", snapshot.devices_per_second);
  out.field("elapsed_seconds", snapshot.elapsed_seconds);
  out.field("eta_seconds", snapshot.eta_seconds);
  out.field("faults_lost", snapshot.faults_lost);
  out.field("spans_dropped", snapshot.spans_dropped);
  out.field("current_rss_kb", static_cast<std::int64_t>(snapshot.current_rss_kb));
  out.field("peak_rss_kb", static_cast<std::int64_t>(snapshot.peak_rss_kb));
  out.field("finished", snapshot.finished);
  out.field("aborted", aborted);
  const std::string body = out.end();

  {
    std::ofstream tmp(tmp_path_, std::ios::trunc);
    if (!tmp) return false;
    tmp << body << '\n';
    tmp.flush();
    if (!tmp) return false;
  }
  // Atomic replace: readers see either the previous document or this one.
  return std::rename(tmp_path_.c_str(), path_.c_str()) == 0;
}

}  // namespace mach::obs
