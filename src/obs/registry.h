// Lightweight run-metrics registry: monotonic counters, gauges and
// fixed-bucket histograms, cheap enough to update from the simulator's inner
// loops (an increment is one add on a cached reference; no lookups, locks or
// allocations on the hot path).
//
// Instruments are registered by name once (typically at construction of the
// owning component) and the returned references stay valid for the registry's
// lifetime. `snapshot()` flattens everything into plain structs for export —
// the JSONL trace writer embeds a snapshot in its run_end record.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace mach::obs {

/// Monotonically increasing event count. Increments are lock-free and safe
/// from concurrent threads (the runtime subsystem's parallel sections may
/// touch counters from workers); reads are exact once the incrementing
/// section has joined.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  /// Checkpoint restore: jumps the count to `value` (single-threaded phase).
  void set(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. "current learning rate").
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with an
/// implicit overflow bucket above the last bound. Also tracks sum/count so the
/// mean survives even when the bucket resolution is coarse.
class Histogram {
 public:
  /// `bucket_bounds` must be strictly increasing; it is copied once.
  explicit Histogram(std::vector<double> bucket_bounds);

  void observe(double value) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }
  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept;

  /// Checkpoint restore: overwrites the accumulated state. `buckets` must
  /// have bounds().size() + 1 entries (throws std::invalid_argument).
  void restore(const std::vector<std::uint64_t>& buckets, std::uint64_t count,
               double sum);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Flattened registry state for export.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
};

class MetricsRegistry {
 public:
  /// Returns the instrument registered under `name`, creating it on first
  /// use. References remain valid for the registry's lifetime (instruments
  /// live in deques, which never relocate elements).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bucket_bounds` is only consulted on first registration; later calls
  /// with the same name return the existing histogram unchanged.
  Histogram& histogram(const std::string& name, std::vector<double> bucket_bounds);

  /// Instruments registered so far (alphabetical within each kind).
  MetricsSnapshot snapshot() const;

  /// Checkpoint restore: loads every instrument in `snap` back into the
  /// registry, creating missing instruments (histograms with the snapshot's
  /// bounds) and leaving instruments absent from the snapshot untouched.
  /// Registered references stay valid — restore happens between runs/steps,
  /// never concurrently with instrument updates.
  void restore(const MetricsSnapshot& snap);

  /// Resets every instrument's state, keeping registrations (and thus every
  /// cached reference) alive. Used between repeated simulator runs.
  void reset();

 private:
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*> counter_index_;
  std::map<std::string, Gauge*> gauge_index_;
  std::map<std::string, Histogram*> histogram_index_;
};

}  // namespace mach::obs
