// Per-run metric recording: accuracy trajectory of the global model and the
// paper's headline metric, time-steps-to-target-accuracy.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mach::hfl {

/// Square confusion matrix over class labels: rows = true class, columns =
/// predicted class. Used to analyse how tail classes are learned under the
/// long-tailed Non-IID partitions.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(int true_label, int predicted_label);

  std::size_t num_classes() const noexcept { return classes_; }
  std::size_t count(std::size_t true_class, std::size_t predicted) const;
  std::size_t total() const noexcept { return total_; }

  /// Overall accuracy (0 when empty).
  double accuracy() const noexcept;
  /// Recall of one class (0 when the class has no examples).
  double recall(std::size_t true_class) const;
  /// Precision of one class (0 when nothing was predicted as it).
  double precision(std::size_t predicted_class) const;
  /// Mean per-class recall — the balanced accuracy the long-tail literature
  /// reports (insensitive to the label marginal).
  double balanced_accuracy() const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // classes_ x classes_, row-major
};

struct EvalPoint {
  std::size_t t = 0;            // time step at which the global model was evaluated
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  double train_loss = 0.0;      // mean loss over participating devices since last eval
  std::size_t participants = 0; // devices sampled since the previous eval point
  /// ||∇f(w^t)||² over a training-data sample — the quantity Theorem 1
  /// bounds. Only populated when HflOptions::track_global_grad_norm is set.
  double global_grad_sq_norm = 0.0;
};

class MetricsRecorder {
 public:
  void record(EvalPoint point) { points_.push_back(point); }

  const std::vector<EvalPoint>& points() const noexcept { return points_; }
  bool empty() const noexcept { return points_.empty(); }

  /// First time step whose evaluation accuracy reaches `target`.
  /// std::nullopt when never reached.
  std::optional<std::size_t> time_to_accuracy(double target) const;

  /// Highest accuracy seen.
  double best_accuracy() const noexcept;

  /// Accuracy at the final evaluation (0 when empty).
  double final_accuracy() const noexcept;

  /// Writes "t,test_accuracy,test_loss,train_loss,participants,
  /// global_grad_sq_norm" rows (one per recorded EvalPoint).
  bool write_csv(const std::string& path) const;

 private:
  std::vector<EvalPoint> points_;
};

}  // namespace mach::hfl
