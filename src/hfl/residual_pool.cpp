#include "hfl/residual_pool.h"

#include <algorithm>

#include "ckpt/bytes.h"

namespace mach::hfl {

void ResidualPool::reset(std::size_t num_devices, std::size_t stride) {
  stride_ = stride;
  allocated_ = 0;
  handles_.assign(num_devices, kNoSlot);
  slab_.clear();
  slab_.shrink_to_fit();
}

std::span<float> ResidualPool::get(std::uint32_t device) {
  const std::uint32_t slot = handles_.at(device);
  if (slot == kNoSlot) return {};
  return {slab_.data() + static_cast<std::size_t>(slot) * stride_, stride_};
}

std::span<const float> ResidualPool::get(std::uint32_t device) const {
  const std::uint32_t slot = handles_.at(device);
  if (slot == kNoSlot) return {};
  return {slab_.data() + static_cast<std::size_t>(slot) * stride_, stride_};
}

std::span<float> ResidualPool::get_or_alloc(std::uint32_t device) {
  std::uint32_t& slot = handles_.at(device);
  if (slot == kNoSlot) {
    slot = static_cast<std::uint32_t>(allocated_++);
    slab_.resize(allocated_ * stride_, 0.0f);
  }
  return {slab_.data() + static_cast<std::size_t>(slot) * stride_, stride_};
}

void ResidualPool::save_state(ckpt::ByteWriter& out) const {
  out.u64(handles_.size());
  for (std::uint32_t m = 0; m < handles_.size(); ++m) {
    out.vec_f32(get(m));  // empty vec_f32 for never-allocated devices
  }
}

void ResidualPool::load_state(ckpt::ByteReader& in) {
  const std::uint64_t count = in.u64();
  if (count != handles_.size()) {
    throw ckpt::CorruptPayload("checkpoint: residual count mismatch");
  }
  // Re-allocate in device order; handles may differ from the run that wrote
  // the snapshot (which allocated in participation order), but handle values
  // are internal — per-device contents and the wire format are identical.
  std::fill(handles_.begin(), handles_.end(), kNoSlot);
  allocated_ = 0;
  slab_.clear();
  for (std::uint32_t m = 0; m < handles_.size(); ++m) {
    const std::vector<float> residual = in.vec_f32();
    if (residual.empty()) continue;
    if (residual.size() != stride_) {
      throw ckpt::CorruptPayload("checkpoint: residual size mismatch");
    }
    const std::span<float> dst = get_or_alloc(m);
    std::copy(residual.begin(), residual.end(), dst.begin());
  }
}

}  // namespace mach::hfl
