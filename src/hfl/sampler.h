// Device-sampling strategy interface (the Q^t_n of §II-B.1).
//
// The HFL engine asks the active Sampler, once per (time step, edge), for
// the inclusion probabilities q[t][m,n] of the devices currently inside that
// edge, then feeds back the training observations of the devices that
// actually participated. Baselines live in src/sampling, MACH in src/core.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/observer.h"

namespace mach::ckpt {
class ByteWriter;
class ByteReader;
}  // namespace mach::ckpt

namespace mach::hfl {

/// Static facts about the federation, available to samplers up front.
/// (Class histograms are metadata a device would report at registration
/// time; they do not leak example contents.)
struct FederationInfo {
  std::size_t num_devices = 0;
  std::size_t num_edges = 0;
  std::size_t num_classes = 0;
  std::size_t cloud_interval = 1;  // T_g
  /// Per-device label histogram (num_devices x num_classes).
  std::vector<std::vector<std::size_t>> class_histograms;
};

/// Everything an edge knows when building its sampling strategy at step t.
struct EdgeSamplingContext {
  std::size_t t = 0;
  std::size_t edge = 0;
  /// Expected participation budget K_n (Eq. 3). May be fractional.
  double capacity = 0.0;
  /// M_n^t: ids of the devices currently associated with this edge.
  std::span<const std::uint32_t> devices;
  /// True squared gradient norms for `devices`, probed from the current edge
  /// model. Only filled when the sampler declares needs_oracle(); empty
  /// otherwise. Used by the MACH-P upper-bound baseline.
  std::span<const double> oracle_grad_sq_norms;
};

/// Feedback from one device's completed local-update phase.
struct TrainingObservation {
  std::size_t t = 0;
  std::uint32_t device = 0;
  std::size_t edge = 0;
  /// ||g_m(w^{t,tau}, xi)||^2 for each of the I local steps (Eq. 14's input).
  std::vector<double> local_grad_sq_norms;
  double mean_loss = 0.0;
};

class Sampler {
 public:
  virtual ~Sampler() = default;
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  virtual std::string name() const = 0;

  /// Called once before the run starts.
  virtual void bind(const FederationInfo& /*info*/) {}

  /// Returns q for every device in ctx.devices (same order). The engine
  /// clamps results to (0, 1] and never exceeds expected budget feasibility;
  /// implementations should already satisfy sum(q) <= capacity (Eq. 11/12).
  virtual std::vector<double> edge_probabilities(const EdgeSamplingContext& ctx) = 0;

  /// Called after each participating device finishes its local updates.
  /// Arrivals only: under fault injection, a sampled device whose update
  /// never reaches the edge (dropout, straggler timeout, edge outage) is
  /// invisible here — experience buffers must reflect what the edge actually
  /// received, exactly as a deployed coordinator would see it.
  virtual void observe_training(const TrainingObservation& /*obs*/) {}

  /// Called at every cloud aggregation step (t mod T_g == 0), after
  /// aggregation. MACH refreshes UCB estimates and clears buffers here.
  virtual void on_cloud_round(std::size_t /*t*/) {}

  /// True when edge_probabilities needs oracle_grad_sq_norms filled (MACH-P).
  virtual bool needs_oracle() const { return false; }

  /// Checkpointing: serialises all run-accumulated state (experience
  /// buffers, UCB statistics, EMA estimates, internal RNG streams) into
  /// `out`, and restores it from `in`. load_state is called after bind() on
  /// a freshly constructed sampler; a restored sampler must continue the
  /// run bit-for-bit as the original would have. Stateless samplers (and
  /// samplers whose bind() fully reconstructs their state) keep the no-op
  /// defaults. Implementations should lead their blob with a version byte.
  virtual void save_state(ckpt::ByteWriter& /*out*/) const {}
  virtual void load_state(ckpt::ByteReader& /*in*/) {}

  /// Telemetry: fills `out` with the sampler's per-device internals (for
  /// MACH, Algorithm 2's G~^2 estimates, buffer occupancy and participation
  /// counts) and returns true. Stateless samplers return false and leave
  /// `out` untouched. Must not mutate sampler state — the engine calls it
  /// once per cloud round when a RunObserver is attached.
  virtual bool introspect(obs::SamplerIntrospection& /*out*/) const {
    return false;
  }

 protected:
  Sampler() = default;
};

using SamplerPtr = std::unique_ptr<Sampler>;

}  // namespace mach::hfl
