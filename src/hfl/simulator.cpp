#include "hfl/simulator.h"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <stdexcept>

#include <unistd.h>

#include "ckpt/bytes.h"
#include "ckpt/rng_codec.h"
#include "ckpt/run_state.h"
#include "common/log.h"
#include "nn/sgd.h"
#include "runtime/chunking.h"
#include "tensor/kernels/kernels.h"

namespace mach::hfl {

namespace {
/// Examples per evaluation chunk — the shard unit of both evaluation paths.
constexpr std::size_t kEvalChunk = 256;
}  // namespace

HflSimulator::HflSimulator(const data::Dataset& train, const data::Dataset& test,
                           data::Partition partition,
                           const mobility::MobilitySchedule& schedule,
                           ModelFactory model_factory, HflOptions options)
    : train_(train),
      test_(test),
      partition_(std::move(partition)),
      schedule_(schedule),
      options_(options),
      model_(model_factory()),
      engine_rng_(common::split_seed(
          options.sampling_seed != 0 ? options.sampling_seed : options.seed,
          0xe791)) {
  if (partition_.size() != schedule_.num_devices()) {
    throw std::invalid_argument("HflSimulator: partition/schedule device mismatch");
  }
  if (!options_.edge_capacities.empty() &&
      options_.edge_capacities.size() != schedule_.num_edges()) {
    throw std::invalid_argument("HflSimulator: edge_capacities size mismatch");
  }
  if (options_.local_epochs == 0 || options_.cloud_interval == 0 ||
      options_.batch_size == 0) {
    throw std::invalid_argument("HflSimulator: zero local_epochs/cloud_interval/batch");
  }
  for (const auto& part : partition_) {
    if (part.empty()) throw std::invalid_argument("HflSimulator: empty device shard");
  }
  if (!options_.faults.empty()) {
    options_.faults.validate();
    options_.faults.validate_topology(partition_.size(), schedule_.num_edges());
    injector_ = fault::FaultInjector(options_.faults, options_.seed);
  }
  common::Rng init_rng(common::split_seed(options_.seed, 0x1417));
  model_.init_params(init_rng);
  global_ = model_.get_parameters();
  param_count_ = global_.size();
  edge_models_.assign(schedule_.num_edges(), global_);
  device_rngs_.reserve(partition_.size());
  for (std::size_t m = 0; m < partition_.size(); ++m) {
    device_rngs_.emplace_back(common::split_seed(options_.seed, 0xd00 + m));
  }
  const std::size_t workers = runtime::resolve_threads(options_.parallel);
  if (workers > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(workers);
    replicas_ = std::make_unique<runtime::ModelReplicaPool>(model_factory, workers);
  }
  // Transfer codecs: built once (immutable), encoded sizes cached — the
  // ledger charges per message without touching the model path.
  codec_device_up_ = comm::make_codec(options_.comm.device_up);
  codec_device_down_ = comm::make_codec(options_.comm.device_down);
  codec_probe_ = comm::make_codec(options_.comm.probe);
  codec_edge_up_ = comm::make_codec(options_.comm.edge_up);
  codec_cloud_down_ = comm::make_codec(options_.comm.cloud_down);
  comm_lossy_ = !options_.comm.all_fp32();
  bytes_device_up_ = codec_device_up_->encoded_bytes(param_count_);
  bytes_device_down_ = codec_device_down_->encoded_bytes(param_count_);
  bytes_probe_ = codec_probe_->encoded_bytes(param_count_);
  bytes_edge_up_ = codec_edge_up_->encoded_bytes(param_count_);
  bytes_cloud_down_ = codec_cloud_down_->encoded_bytes(param_count_);
}

void HflSimulator::transcode(const comm::Codec& codec,
                             std::span<const float> values,
                             std::span<const float> reference,
                             std::span<float> residual,
                             std::vector<float>& out, std::int64_t t,
                             std::int64_t id) {
  {
    const obs::SpanGuard span("comm.encode", t, id);
    codec.encode(values, reference, residual, wire_);
  }
  if (ctr_comm_encodes_ != nullptr) ctr_comm_encodes_->add();
  {
    const obs::SpanGuard span("comm.decode", t, id);
    codec.decode(wire_, values.size(), reference, out);
  }
  if (ctr_comm_decodes_ != nullptr) ctr_comm_decodes_->add();
}

double HflSimulator::edge_capacity(std::size_t edge) const {
  if (!options_.edge_capacities.empty()) return options_.edge_capacities.at(edge);
  return options_.participation * static_cast<double>(num_devices()) /
         static_cast<double>(num_edges());
}

FederationInfo HflSimulator::federation_info() const {
  FederationInfo info;
  info.num_devices = num_devices();
  info.num_edges = num_edges();
  info.num_classes = train_.num_classes();
  info.cloud_interval = options_.cloud_interval;
  info.class_histograms.reserve(partition_.size());
  for (const auto& part : partition_) {
    info.class_histograms.push_back(train_.class_histogram(part));
  }
  return info;
}

double HflSimulator::learning_rate_at(std::size_t t) const {
  return options_.learning_rate / (1.0 + options_.lr_decay * static_cast<double>(t));
}

TrainingObservation HflSimulator::train_device(std::size_t t, std::uint32_t device,
                                               std::size_t edge,
                                               const std::vector<float>& edge_model,
                                               double learning_rate,
                                               nn::Sequential& model,
                                               std::vector<float>& params_out) {
  model.set_parameters(edge_model);
  nn::Sgd sgd({.learning_rate = learning_rate, .momentum = 0.0, .weight_decay = 0.0});
  TrainingObservation obs;
  obs.t = t;
  obs.device = device;
  obs.edge = edge;
  obs.local_grad_sq_norms.reserve(options_.local_epochs);
  double loss_total = 0.0;
  auto& rng = device_rngs_[device];
  const obs::SpanGuard span("local_sgd", static_cast<std::int64_t>(t), device);
  for (std::size_t tau = 0; tau < options_.local_epochs; ++tau) {
    const data::Batch batch =
        train_.sample_batch(partition_[device], options_.batch_size, rng);
    const nn::StepStats stats = model.forward_backward(batch.features, batch.labels);
    sgd.step(model);
    obs.local_grad_sq_norms.push_back(stats.grad_squared_norm);
    loss_total += stats.loss;
  }
  obs.mean_loss = loss_total / static_cast<double>(options_.local_epochs);
  params_out = model.get_parameters();
  return obs;
}

double HflSimulator::probe_gradient_norm(std::uint32_t device,
                                         const std::vector<float>& params) {
  // Oracle probe (MACH-P): the true gradient norm at the current edge model,
  // computed over a fixed prefix of the device's shard (capped for cost).
  // Deterministic so the oracle baseline is noise-free, as the paper assumes
  // ("training experiences for each device in every time step are known").
  model_.set_parameters(params);
  constexpr std::size_t kProbeCap = 16;
  const auto& shard = partition_[device];
  const std::size_t count = std::min(shard.size(), kProbeCap);
  const data::Batch batch =
      train_.gather(std::span<const std::size_t>(shard.data(), count));
  return model_.forward_backward(batch.features, batch.labels).grad_squared_norm;
}

EvalPoint HflSimulator::evaluate_global(std::size_t t) {
  EvalPoint point;
  point.t = t;
  std::size_t total = test_.size();
  if (options_.eval_max_examples != 0) {
    total = std::min(total, options_.eval_max_examples);
  }
  // Test evaluation is sharded into fixed chunks; each chunk's statistics
  // land in a slot and the fold below walks the slots in chunk order, so the
  // serial and parallel paths produce bitwise-identical sums.
  const std::size_t chunks = runtime::num_chunks(total, kEvalChunk);
  eval_slots_.assign(chunks, nn::StepStats{});
  const auto eval_chunk = [&](std::size_t c, nn::Sequential& model,
                              std::vector<std::size_t>& indices) {
    runtime::fill_iota(indices, runtime::chunk_range(c, total, kEvalChunk));
    const data::Batch batch = test_.gather(indices);
    eval_slots_[c] = model.evaluate(batch.features, batch.labels);
  };
  if (pool_ != nullptr && chunks > 1) {
    replicas_->publish(&global_);
    pool_->parallel_for(0, chunks, [&](std::size_t c, std::size_t slot) {
      std::optional<obs::SpanProfiler::ThreadScope> track_scope;
      if (profiler_ != nullptr) {
        track_scope.emplace(profiler_.get(),
                            static_cast<std::uint32_t>(slot + 1));
      }
      const obs::SpanGuard span("eval_chunk", static_cast<std::int64_t>(t),
                                static_cast<std::int64_t>(c));
      std::vector<std::size_t> indices;
      eval_chunk(c, replicas_->synced_model(slot), indices);
    });
  } else {
    model_.set_parameters(global_);
    std::vector<std::size_t> indices;
    for (std::size_t c = 0; c < chunks; ++c) eval_chunk(c, model_, indices);
  }
  std::size_t correct = 0;
  double loss = 0.0;
  std::size_t seen = 0;
  for (const nn::StepStats& stats : eval_slots_) {
    correct += stats.correct;
    loss += stats.loss * static_cast<double>(stats.batch_size);
    seen += stats.batch_size;
  }
  if (seen > 0) {
    point.test_accuracy = static_cast<double>(correct) / static_cast<double>(seen);
    point.test_loss = loss / static_cast<double>(seen);
  }
  if (options_.track_global_grad_norm_examples > 0) {
    // Theorem 1's LHS: gradient of the population objective f (Eq. 2) at the
    // current global model, over a fixed prefix of the training data.
    const std::size_t count =
        std::min(train_.size(), options_.track_global_grad_norm_examples);
    std::vector<std::size_t> sample(count);
    for (std::size_t i = 0; i < count; ++i) sample[i] = i;
    const data::Batch batch = train_.gather(sample);
    model_.set_parameters(global_);
    point.global_grad_sq_norm =
        model_.forward_backward(batch.features, batch.labels).grad_squared_norm;
  }
  return point;
}

ConfusionMatrix HflSimulator::evaluate_confusion() {
  ConfusionMatrix confusion(test_.num_classes());
  const std::size_t total = test_.size();
  const std::size_t chunks = runtime::num_chunks(total, kEvalChunk);
  // Per-chunk (label, prediction) pairs; merged in chunk order below so the
  // matrix fills identically at any thread count.
  std::vector<std::vector<std::pair<int, int>>> predictions(chunks);
  const auto classify_chunk = [&](std::size_t c, nn::Sequential& model,
                                  std::vector<std::size_t>& indices) {
    runtime::fill_iota(indices, runtime::chunk_range(c, total, kEvalChunk));
    const data::Batch batch = test_.gather(indices);
    model.set_training(false);
    const tensor::Tensor& logits = model.forward(batch.features);
    const std::size_t classes = logits.dim(1);
    auto& out = predictions[c];
    out.reserve(batch.size());
    for (std::size_t row = 0; row < batch.size(); ++row) {
      const float* values = logits.data() + row * classes;
      std::size_t best = 0;
      for (std::size_t cls = 1; cls < classes; ++cls) {
        if (values[cls] > values[best]) best = cls;
      }
      out.emplace_back(batch.labels[row], static_cast<int>(best));
    }
  };
  if (pool_ != nullptr && chunks > 1) {
    replicas_->publish(&global_);
    pool_->parallel_for(0, chunks, [&](std::size_t c, std::size_t slot) {
      std::vector<std::size_t> indices;
      classify_chunk(c, replicas_->synced_model(slot), indices);
    });
  } else {
    model_.set_parameters(global_);
    std::vector<std::size_t> indices;
    for (std::size_t c = 0; c < chunks; ++c) classify_chunk(c, model_, indices);
  }
  for (const auto& chunk : predictions) {
    for (const auto& [label, predicted] : chunk) confusion.add(label, predicted);
  }
  return confusion;
}

std::uint64_t HflSimulator::run_fingerprint(const Sampler& sampler,
                                            std::size_t steps) const {
  std::uint64_t h = ckpt::kHashSeed;
  h = ckpt::hash_u64(h, options_.seed);
  h = ckpt::hash_u64(h, options_.sampling_seed);
  h = ckpt::hash_u64(h, num_devices());
  h = ckpt::hash_u64(h, num_edges());
  h = ckpt::hash_u64(h, param_count_);
  h = ckpt::hash_u64(h, options_.local_epochs);
  h = ckpt::hash_u64(h, options_.cloud_interval);
  h = ckpt::hash_u64(h, options_.batch_size);
  h = ckpt::hash_f64(h, options_.learning_rate);
  h = ckpt::hash_f64(h, options_.lr_decay);
  h = ckpt::hash_f64(h, options_.participation);
  h = ckpt::hash_u64(h, options_.edge_capacities.size());
  for (const double c : options_.edge_capacities) h = ckpt::hash_f64(h, c);
  h = ckpt::hash_f64(h, options_.min_probability);
  h = ckpt::hash_u64(h, static_cast<std::uint64_t>(options_.aggregation));
  h = ckpt::hash_u64(h, options_.eval_every_cloud_rounds);
  h = ckpt::hash_u64(h, options_.eval_max_examples);
  h = ckpt::hash_u64(h, options_.track_global_grad_norm_examples);
  h = ckpt::hash_str(h, options_.faults.empty() ? "" : options_.faults.to_string());
  h = ckpt::hash_str(h, options_.comm.all_fp32() ? "" : options_.comm.to_string());
  h = ckpt::hash_str(h, sampler.name());
  h = ckpt::hash_u64(h, steps);
  // The mobility world itself: scenario presets and layout knobs (stations,
  // hotspots, stay probability, ...) change the device->edge association
  // stream without touching any hyperparameter above, and resuming into a
  // different world silently corrupts the run.
  h = ckpt::hash_u64(h, schedule_.horizon());
  for (std::size_t t = 0; t < schedule_.horizon(); ++t) {
    for (std::size_t device = 0; device < num_devices(); ++device) {
      h = ckpt::hash_u64(h, schedule_.edge_of(t, device));
    }
  }
  return h;
}

void HflSimulator::save_checkpoint(Sampler& sampler, std::size_t steps,
                                   std::size_t next_t, std::size_t cloud_rounds,
                                   double window_train_loss,
                                   std::size_t window_participants,
                                   const MetricsRecorder& metrics) {
  // Marker first: the cursor captured below must cover the marker line, so
  // the resumed trace (truncated to the cursor, then appended) carries the
  // same markers as an uninterrupted checkpointed run.
  std::optional<obs::TraceCursor> cursor;
  if (observer_ != nullptr) {
    obs::CheckpointEvent event;
    event.t = next_t;
    event.steps = steps;
    observer_->on_checkpoint(event);
    cursor = observer_->checkpoint_cursor();
  }

  ckpt::ByteWriter out;
  ckpt::RunStateHeader header;
  header.fingerprint = run_fingerprint(sampler, steps);
  header.next_t = next_t;
  header.total_steps = steps;
  header.cloud_rounds = cloud_rounds;
  header.window_train_loss = window_train_loss;
  header.window_participants = window_participants;
  if (cursor.has_value()) {
    header.has_trace_cursor = true;
    header.trace_bytes = cursor->byte_offset;
    header.trace_lines = cursor->lines;
  }
  header.encode(out);

  // Model state: the global model and every edge model.
  out.vec_f32(global_);
  out.u64(edge_models_.size());
  for (const auto& edge_model : edge_models_) out.vec_f32(edge_model);

  // RNG streams: the engine's Bernoulli stream plus one minibatch stream per
  // device (each including any cached Box–Muller half-draw).
  ckpt::write_rng(out, engine_rng_);
  out.u64(device_rngs_.size());
  for (const auto& rng : device_rngs_) ckpt::write_rng(out, rng);

  // Communication-cost accumulators.
  out.u64(cost_.device_downloads);
  out.u64(cost_.device_uploads);
  out.u64(cost_.retry_uploads);
  out.u64(cost_.probe_downloads);
  out.u64(cost_.edge_uploads);
  out.u64(cost_.cloud_broadcasts);
  out.u64(cost_.model_parameters);
  // v2: the encoded-byte ledger (pure integer accumulators) plus the sticky
  // mixed-size flag. Always present, even when every link is fp32.
  out.boolean(cost_.mixed_model_sizes);
  const auto write_link = [&out](const comm::LinkTraffic& link) {
    out.u64(link.messages);
    out.u64(link.bytes);
  };
  write_link(cost_.ledger.device_download);
  write_link(cost_.ledger.device_upload);
  write_link(cost_.ledger.retry_upload);
  write_link(cost_.ledger.probe_download);
  write_link(cost_.ledger.edge_upload);
  write_link(cost_.ledger.cloud_broadcast);
  // v2: lossy-codec model state — per-device error-feedback residuals (empty
  // until a device first uploads through a stateful codec) and the reference
  // model the cloud last broadcast. Absent when every link is fp32, so the
  // fingerprint-compatible fp32 payload stays minimal.
  out.boolean(comm_lossy_);
  if (comm_lossy_) {
    upload_residuals_.save_state(out);
    out.vec_f32(last_broadcast_);
  }

  // Recorded evaluation trajectory (the final CSV is regenerated from this,
  // which is what makes resumed CSVs byte-identical).
  out.u64(metrics.points().size());
  for (const EvalPoint& p : metrics.points()) {
    out.u64(p.t);
    out.f64(p.test_accuracy);
    out.f64(p.test_loss);
    out.f64(p.train_loss);
    out.u64(p.participants);
    out.f64(p.global_grad_sq_norm);
  }

  // Instrument registry (the run_end trace line embeds its snapshot).
  const obs::MetricsSnapshot snap = registry_.snapshot();
  out.u64(snap.counters.size());
  for (const auto& entry : snap.counters) {
    out.str(entry.name);
    out.u64(entry.value);
  }
  out.u64(snap.gauges.size());
  for (const auto& entry : snap.gauges) {
    out.str(entry.name);
    out.f64(entry.value);
  }
  out.u64(snap.histograms.size());
  for (const auto& entry : snap.histograms) {
    out.str(entry.name);
    out.vec_f64(entry.bounds);
    out.vec_u64(entry.buckets);
    out.u64(entry.count);
    out.f64(entry.sum);
  }

  // Sampler experience (each implementation versions its own blob).
  out.str(sampler.name());
  sampler.save_state(out);

  ckpt_manager_->save(next_t, ckpt::kRunStateVersion,
                      std::span<const std::uint8_t>(out.data()));
}

std::size_t HflSimulator::restore_run_state(Sampler& sampler, std::size_t steps,
                                            std::size_t& cloud_rounds,
                                            double& window_train_loss,
                                            std::size_t& window_participants,
                                            MetricsRecorder& metrics) {
  ckpt::ByteReader in(resume_payload_);
  const ckpt::RunStateHeader header = ckpt::RunStateHeader::decode(in);
  if (header.fingerprint != run_fingerprint(sampler, steps)) {
    throw std::runtime_error(
        "checkpoint: fingerprint mismatch — the snapshot was produced by a "
        "different run configuration (seed/topology/hyperparameters/sampler/"
        "steps must match; thread count may differ)");
  }
  if (header.total_steps != steps || header.next_t > steps) {
    throw std::runtime_error("checkpoint: step horizon mismatch");
  }

  global_ = in.vec_f32();
  if (global_.size() != param_count_) {
    throw ckpt::CorruptPayload("checkpoint: global model size mismatch");
  }
  const std::uint64_t num_edge_models = in.u64();
  if (num_edge_models != edge_models_.size()) {
    throw ckpt::CorruptPayload("checkpoint: edge model count mismatch");
  }
  for (auto& edge_model : edge_models_) {
    edge_model = in.vec_f32();
    if (edge_model.size() != param_count_) {
      throw ckpt::CorruptPayload("checkpoint: edge model size mismatch");
    }
  }

  ckpt::read_rng(in, engine_rng_);
  const std::uint64_t num_rngs = in.u64();
  if (num_rngs != device_rngs_.size()) {
    throw ckpt::CorruptPayload("checkpoint: device RNG count mismatch");
  }
  for (auto& rng : device_rngs_) ckpt::read_rng(in, rng);

  cost_.device_downloads = in.u64();
  cost_.device_uploads = in.u64();
  cost_.retry_uploads = in.u64();
  cost_.probe_downloads = in.u64();
  cost_.edge_uploads = in.u64();
  cost_.cloud_broadcasts = in.u64();
  cost_.model_parameters = in.u64();
  cost_.mixed_model_sizes = in.boolean();
  const auto read_link = [&in](comm::LinkTraffic& link) {
    link.messages = in.u64();
    link.bytes = in.u64();
  };
  read_link(cost_.ledger.device_download);
  read_link(cost_.ledger.device_upload);
  read_link(cost_.ledger.retry_upload);
  read_link(cost_.ledger.probe_download);
  read_link(cost_.ledger.edge_upload);
  read_link(cost_.ledger.cloud_broadcast);
  const bool snapshot_lossy = in.boolean();
  if (snapshot_lossy != comm_lossy_) {
    // Unreachable in practice: the codec spec feeds the fingerprint above.
    throw ckpt::CorruptPayload("checkpoint: codec state/config mismatch");
  }
  if (comm_lossy_) {
    upload_residuals_.load_state(in);
    last_broadcast_ = in.vec_f32();
    if (last_broadcast_.size() != param_count_) {
      throw ckpt::CorruptPayload("checkpoint: broadcast model size mismatch");
    }
  }

  const std::uint64_t num_points = in.u64();
  for (std::uint64_t i = 0; i < num_points; ++i) {
    EvalPoint p;
    p.t = in.u64();
    p.test_accuracy = in.f64();
    p.test_loss = in.f64();
    p.train_loss = in.f64();
    p.participants = in.u64();
    p.global_grad_sq_norm = in.f64();
    metrics.record(p);
  }

  obs::MetricsSnapshot snap;
  const std::uint64_t num_counters = in.u64();
  for (std::uint64_t i = 0; i < num_counters; ++i) {
    const std::string name = in.str();
    snap.counters.push_back({name, in.u64()});
  }
  const std::uint64_t num_gauges = in.u64();
  for (std::uint64_t i = 0; i < num_gauges; ++i) {
    const std::string name = in.str();
    snap.gauges.push_back({name, in.f64()});
  }
  const std::uint64_t num_histograms = in.u64();
  for (std::uint64_t i = 0; i < num_histograms; ++i) {
    obs::MetricsSnapshot::HistogramEntry entry;
    entry.name = in.str();
    entry.bounds = in.vec_f64();
    entry.buckets = in.vec_u64();
    entry.count = in.u64();
    entry.sum = in.f64();
    snap.histograms.push_back(std::move(entry));
  }
  registry_.restore(snap);

  const std::string sampler_name = in.str();
  if (sampler_name != sampler.name()) {
    throw std::runtime_error("checkpoint: sampler mismatch (snapshot has '" +
                             sampler_name + "', run uses '" + sampler.name() +
                             "')");
  }
  sampler.load_state(in);
  if (!in.at_end()) {
    throw ckpt::CorruptPayload("checkpoint: trailing bytes after run state");
  }

  cloud_rounds = header.cloud_rounds;
  window_train_loss = header.window_train_loss;
  window_participants = header.window_participants;
  return static_cast<std::size_t>(header.next_t);
}

MetricsRecorder HflSimulator::run(Sampler& sampler, std::size_t steps) {
  sampler.bind(federation_info());
  MetricsRecorder metrics;
  cost_ = CommunicationCost{};
  cost_.model_parameters = param_count_;
  timers_.reset();
  registry_.reset();

  // Deep-profiling runtime. Everything below is strictly passive (no RNG
  // use, no registry entries — the run_end registry snapshot stays identical
  // whether profiling is on or off) and entirely absent from the hot path
  // when disabled: a SpanGuard on an unbound thread is one thread_local read.
  profiler_.reset();
  resources_.reset();
  status_.reset();
  profile_export_ok_ = true;
  interrupted_at_.reset();
  if (options_.profile.spans_enabled()) {
    const std::size_t tracks = 1 + (pool_ != nullptr ? pool_->num_workers() : 0);
    profiler_ = std::make_unique<obs::SpanProfiler>(
        tracks, options_.profile.ring_capacity);
  }
  if (options_.profile.any_enabled()) {
    resources_ = std::make_unique<obs::ResourceSampler>(
        options_.profile.resource_interval_seconds);
  }
  if (!options_.profile.status_path.empty()) {
    status_ = std::make_unique<obs::StatusWriter>(
        options_.profile.status_path, options_.profile.status_interval_seconds);
  }
  // If anything below throws, the scope unwind re-writes the last heartbeat
  // with aborted=true — a terminal document for watchers, with no atexit
  // hook. Inert when the heartbeat is off or the final write was `finished`.
  const obs::StatusWriter::AbortScope status_abort_scope(status_.get());
  // Track 0 (coordinator) binding for the whole run; workers bind per
  // parallel section to track slot+1.
  std::optional<obs::SpanProfiler::ThreadScope> profile_scope;
  if (profiler_ != nullptr) profile_scope.emplace(profiler_.get(), 0);
  const obs::Stopwatch run_watch;

  // Inner-loop instruments: references are cached once here, so the hot path
  // pays one add per event. None of this touches the RNG stream — attaching
  // an observer (or not) cannot change the simulated run.
  obs::Counter& ctr_trained = registry_.counter("devices_trained");
  obs::Counter& ctr_floor_clamps = registry_.counter("q_clamped_to_floor");
  obs::Counter& ctr_edge_aggs = registry_.counter("edge_aggregations");
  obs::Counter& ctr_empty_edges = registry_.counter("edge_rounds_no_participant");
  obs::Counter& ctr_evals = registry_.counter("evaluations");
  obs::Gauge& gauge_lr = registry_.gauge("learning_rate");
  obs::Histogram& hist_q = registry_.histogram(
      "sampling_probability", {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0});

  // Fault instruments only exist when a schedule is active: an all-zero
  // schedule must leave the registry snapshot (and thus the run_end trace
  // line) byte-identical to a fault-free run.
  const bool faults_on = injector_.enabled();
  obs::Counter* ctr_fault_drops = nullptr;
  obs::Counter* ctr_fault_straggler_arrivals = nullptr;
  obs::Counter* ctr_fault_straggler_timeouts = nullptr;
  obs::Counter* ctr_fault_retries = nullptr;
  obs::Counter* ctr_fault_outages = nullptr;
  obs::Counter* ctr_fault_cloud_lost = nullptr;
  obs::Counter* ctr_fault_updates_lost = nullptr;
  if (faults_on) {
    ctr_fault_drops = &registry_.counter("fault_dropouts");
    ctr_fault_straggler_arrivals = &registry_.counter("fault_straggler_arrivals");
    ctr_fault_straggler_timeouts = &registry_.counter("fault_straggler_timeouts");
    ctr_fault_retries = &registry_.counter("fault_retries");
    ctr_fault_outages = &registry_.counter("fault_edge_outage_rounds");
    ctr_fault_cloud_lost = &registry_.counter("fault_cloud_uploads_lost");
    ctr_fault_updates_lost = &registry_.counter("fault_updates_lost");
  }

  // Codec instruments follow the same rule: they only exist when some link
  // actually transcodes, so an all-fp32 run keeps the registry snapshot (and
  // the run_end trace line) byte-identical to pre-codec builds.
  ctr_comm_encodes_ = nullptr;
  ctr_comm_decodes_ = nullptr;
  if (comm_lossy_) {
    ctr_comm_encodes_ = &registry_.counter("comm_encodes");
    ctr_comm_decodes_ = &registry_.counter("comm_decodes");
  }

  // Codec model state, (re)initialised before any resume restore overwrites
  // it: error-feedback residuals start empty (allocated lazily on a device's
  // first encode) and the cloud's last broadcast starts at the initial
  // global model every edge was constructed with.
  upload_residuals_.reset(0, 0);
  last_broadcast_.clear();
  if (comm_lossy_) {
    if (codec_device_up_->stateful()) {
      upload_residuals_.reset(num_devices(), param_count_);
    }
    last_broadcast_ = global_;
  }

  // Resume path: apply the pending snapshot after instrument registration
  // (restore is lookup-or-create against the same names, so the cached
  // references above stay live) and before any event is emitted — the
  // run_begin line and baseline evaluation already happened in the original
  // run and live in the truncated trace / restored recorder.
  double window_train_loss = 0.0;
  std::size_t window_participants = 0;
  std::size_t cloud_rounds = 0;
  std::size_t start_t = 0;
  const bool resumed = !resume_payload_.empty();

  if (options_.checkpoint.every > 0 || options_.checkpoint.resume) {
    if (ckpt_manager_ == nullptr) {
      ckpt_manager_ = std::make_unique<ckpt::CheckpointManager>(
          options_.checkpoint.dir, options_.checkpoint.keep);
    }
  }

  if (resumed) {
    start_t = restore_run_state(sampler, steps, cloud_rounds, window_train_loss,
                                window_participants, metrics);
    resume_payload_.clear();
    resume_payload_.shrink_to_fit();
  }

  if (!resumed && observer_ != nullptr) {
    obs::RunBeginEvent event;
    event.sampler = sampler.name();
    event.seed = options_.seed;
    event.steps = steps;
    event.num_devices = num_devices();
    event.num_edges = num_edges();
    event.cloud_interval = options_.cloud_interval;
    if (faults_on) event.fault_spec = options_.faults.to_string();
    if (comm_lossy_) event.codec_spec = options_.comm.to_string();
    observer_->on_run_begin(event);
  }

  const auto record_eval = [&](EvalPoint point, double seconds) {
    metrics.record(point);
    ctr_evals.add();
    if (observer_ != nullptr) {
      obs::EvalEvent event;
      event.t = point.t;
      event.test_accuracy = point.test_accuracy;
      event.test_loss = point.test_loss;
      event.train_loss = point.train_loss;
      event.participants = point.participants;
      event.global_grad_sq_norm = point.global_grad_sq_norm;
      event.seconds = seconds;
      observer_->on_eval(event);
    }
  };

  // Baseline point: the untrained global model (already recorded in the
  // restored trajectory when resuming).
  if (!resumed) {
    obs::ScopedTimer timer(timers_, obs::Phase::Evaluation);
    const obs::SpanGuard span("evaluation", 0);
    EvalPoint baseline = evaluate_global(0);
    record_eval(baseline, timer.elapsed_seconds());
  }

  std::vector<float> aggregate(param_count_);
  std::vector<double> probs;
  std::vector<double> oracle_norms;
  std::vector<std::uint64_t> cloud_lost;  // edges whose upload was lost
  std::vector<float> prev_global;         // w^t backup for all-lost rounds

  for (std::size_t t = start_t; t < steps; ++t) {
    const obs::SpanGuard round_span("round", static_cast<std::int64_t>(t));
    const double lr = learning_rate_at(t);
    gauge_lr.set(lr);
    const auto per_edge = schedule_.devices_per_edge(t);
    if (observer_ != nullptr) {
      obs::StepBeginEvent event;
      event.t = t;
      for (const auto& devices : per_edge) {
        if (devices.empty()) continue;
        ++event.active_edges;
        event.devices_present += devices.size();
      }
      observer_->on_step_begin(event);
    }
    for (std::size_t n = 0; n < per_edge.size(); ++n) {
      const auto& devices = per_edge[n];
      if (devices.empty()) continue;

      // Transient edge outage: the edge runs no round at all — no sampling
      // draws, no training, the edge model carries over unchanged. The
      // Bernoulli stream is untouched because fault decisions never consume
      // engine randomness.
      if (faults_on && injector_.edge_out(t, n)) {
        ctr_fault_outages->add();
        if (observer_ != nullptr) {
          obs::EdgeAggregatedEvent event;
          event.t = t;
          event.edge = n;
          event.capacity = edge_capacity(n);
          event.num_devices = devices.size();
          event.faults.active = true;
          event.faults.edge_outage = true;
          observer_->on_edge_aggregated(event);
        }
        continue;
      }
      std::vector<float>& edge_model = edge_models_[n];
      const obs::SpanGuard edge_span("edge_round", static_cast<std::int64_t>(t),
                                     static_cast<std::int64_t>(n));

      // Sampler decision phase (Alg. 3 + any oracle probing).
      double sampler_seconds = 0.0;
      {
        obs::ScopedTimer timer(timers_, obs::Phase::SamplerDecision);
        const obs::SpanGuard span("sampler_decision",
                                  static_cast<std::int64_t>(t),
                                  static_cast<std::int64_t>(n));
        EdgeSamplingContext ctx;
        ctx.t = t;
        ctx.edge = n;
        ctx.capacity = edge_capacity(n);
        ctx.devices = devices;
        if (sampler.needs_oracle()) {
          oracle_norms.resize(devices.size());
          // One encoded probe broadcast serves every device in this edge
          // round: probing is memoryless (no reference, no residual), so the
          // decode is shared and each device is charged one message.
          const std::vector<float>* probe_view = &edge_model;
          if (!codec_probe_->lossless()) {
            transcode(*codec_probe_, edge_model, {}, {}, probe_model_,
                      static_cast<std::int64_t>(t),
                      static_cast<std::int64_t>(n));
            probe_view = &probe_model_;
          }
          for (std::size_t i = 0; i < devices.size(); ++i) {
            oracle_norms[i] = probe_gradient_norm(devices[i], *probe_view);
          }
          cost_.probe_downloads += devices.size();
          cost_.ledger.probe_download.add(devices.size(), bytes_probe_);
          ctx.oracle_grad_sq_norms = oracle_norms;
        }
        probs = sampler.edge_probabilities(ctx);
        if (probs.size() != devices.size()) {
          throw std::logic_error("sampler returned wrong probability count");
        }
        for (auto& q : probs) {
          if (q < options_.min_probability) ctr_floor_clamps.add();
          q = std::clamp(q, options_.min_probability, 1.0);
          hist_q.observe(q);
        }
        sampler_seconds = timer.elapsed_seconds();
      }

      // Device sampling: independent Bernoulli trials drawn in device-index
      // order, so the engine RNG stream is identical at any thread count.
      sampled_.clear();
      for (std::size_t i = 0; i < devices.size(); ++i) {
        if (engine_rng_.bernoulli(probs[i])) {
          sampled_.push_back(static_cast<std::uint32_t>(i));
        }
      }
      cost_.device_downloads += sampled_.size();  // devices fetch w_n^t (Eq. 4)
      cost_.ledger.device_download.add(sampled_.size(), bytes_device_down_);
      // Downlink transcode: every sampled device trains from the *decoded*
      // broadcast, so one shared decode per edge round stands in for all of
      // them (the encoding is deterministic, all devices receive the same
      // bytes). The fp32 identity codec skips this entirely — `device_view`
      // aliasing `edge_model` is what keeps the default path bitwise equal
      // to pre-codec builds.
      const std::vector<float>* device_view = &edge_model;
      if (!codec_device_down_->lossless() && !sampled_.empty()) {
        transcode(*codec_device_down_, edge_model, {}, {},
                  downlink_model_, static_cast<std::int64_t>(t),
                  static_cast<std::int64_t>(n));
        device_view = &downlink_model_;
      }
      if (!faults_on) {
        cost_.device_uploads += sampled_.size();  // devices return w_m^{t+1}
        cost_.ledger.device_upload.add(sampled_.size(), bytes_device_up_);
      } else {
        // Fates are decided on the coordinator before training dispatch, one
        // hashed RNG stream per (t, edge, device): thread-count independent
        // and exactly replayable. Dropped devices vanish before uploading;
        // stragglers pay one upload per attempt (counted even when every
        // attempt misses the timeout budget).
        const obs::SpanGuard span("fault_fates", static_cast<std::int64_t>(t),
                                  static_cast<std::int64_t>(n));
        fates_.resize(sampled_.size());
        for (std::size_t k = 0; k < sampled_.size(); ++k) {
          fates_[k] = injector_.device_fate(t, n, devices[sampled_[k]]);
          const fault::DeviceFaultDecision& fate = fates_[k];
          switch (fate.fate) {
            case fault::DeviceFate::Completed:
              cost_.device_uploads += 1;
              cost_.ledger.device_upload.add(1, bytes_device_up_);
              break;
            case fault::DeviceFate::Dropped:
              break;
            case fault::DeviceFate::StragglerArrived:
            case fault::DeviceFate::StragglerTimedOut:
              // Every attempt crosses the wire at the encoded size — codecs
              // produce value-independent message sizes precisely so lost
              // retransmissions can be charged without encoding anything.
              cost_.device_uploads += 1 + fate.retries;
              cost_.retry_uploads += fate.retries;
              cost_.ledger.device_upload.add(1 + fate.retries, bytes_device_up_);
              cost_.ledger.retry_upload.add(fate.retries, bytes_device_up_);
              break;
          }
        }
      }

      // Local updating (Eq. 4): each sampled device trains into its own
      // result slot. Sampled devices are independent — each touches only its
      // shard and RNG stream plus a private scratch model — so the parallel
      // path dispatches them across the worker replicas and is bitwise
      // identical to the serial path (the reduction below never reorders).
      if (device_slots_.size() < sampled_.size()) {
        device_slots_.resize(sampled_.size());
      }
      if (pool_ != nullptr && sampled_.size() > 1) {
        // One DeviceTraining scope per edge round: the accumulator records
        // the wall time of the whole parallel section, so the phase
        // breakdown shows the realised speedup; per-device wall times are
        // kept in the slots for the trace events.
        obs::ScopedTimer section_timer(timers_, obs::Phase::DeviceTraining);
        pool_->parallel_for(
            0, sampled_.size(), [&](std::size_t k, std::size_t slot) {
              if (faults_on && !fates_[k].arrived) return;
              // Bind this worker to its slot's span track for the duration
              // of the slice (slot ownership is exclusive within a section,
              // so the track ring is single-writer).
              std::optional<obs::SpanProfiler::ThreadScope> track_scope;
              if (profiler_ != nullptr) {
                track_scope.emplace(profiler_.get(),
                                    static_cast<std::uint32_t>(slot + 1));
              }
              DeviceSlot& out = device_slots_[k];
              const obs::SpanGuard span("device_train",
                                        static_cast<std::int64_t>(t),
                                        devices[sampled_[k]]);
              const obs::Stopwatch watch;
              out.observation =
                  train_device(t, devices[sampled_[k]], n, *device_view, lr,
                               replicas_->model(slot), out.params);
              out.seconds = watch.seconds();
            });
      } else {
        for (std::size_t k = 0; k < sampled_.size(); ++k) {
          // Non-arriving devices never train here: their update is lost
          // either way, the sampler must not observe them, and skipping
          // keeps their local RNG streams unconsumed (so a device's future
          // minibatch draws do not depend on past fault outcomes).
          if (faults_on && !fates_[k].arrived) continue;
          DeviceSlot& out = device_slots_[k];
          obs::ScopedTimer timer(timers_, obs::Phase::DeviceTraining);
          const obs::SpanGuard span("device_train",
                                    static_cast<std::int64_t>(t),
                                    devices[sampled_[k]]);
          out.observation = train_device(t, devices[sampled_[k]], n,
                                         *device_view, lr, model_, out.params);
          out.seconds = timer.elapsed_seconds();
        }
      }

      // Ordered reduction: observer events, sampler experience and the
      // Horvitz-Thompson accumulation all walk the slots in device-index
      // order — float addition order matches the serial path exactly.
      std::fill(aggregate.begin(), aggregate.end(), 0.0f);
      const double inv_edge_size = 1.0 / static_cast<double>(devices.size());
      double weight_total = 0.0;
      double weight_sq_total = 0.0;  // for the HT-variance diagnostic
      const std::size_t num_sampled = sampled_.size();
      std::size_t num_arrived = 0;
      std::size_t round_dropped = 0;
      std::size_t round_straggler_arrivals = 0;
      std::size_t round_straggler_timeouts = 0;
      std::size_t round_retries = 0;
      survivors_.clear();
      lost_.clear();
      double train_seconds = 0.0;
      double aggregate_seconds = 0.0;
      std::optional<obs::SpanGuard> reduce_span;
      if (profiler_ != nullptr) {
        reduce_span.emplace("edge_reduce", static_cast<std::int64_t>(t),
                            static_cast<std::int64_t>(n));
      }
      for (std::size_t k = 0; k < num_sampled; ++k) {
        const std::size_t i = sampled_[k];
        if (faults_on) {
          const fault::DeviceFaultDecision& fate = fates_[k];
          round_retries += fate.retries;
          if (!fate.arrived) {
            // Update lost: no observer event, no sampler experience, no HT
            // contribution. Survivor weights absorb the loss below.
            lost_.push_back(devices[i]);
            if (fate.fate == fault::DeviceFate::Dropped) {
              ++round_dropped;
            } else {
              ++round_straggler_timeouts;
            }
            continue;
          }
          survivors_.push_back(devices[i]);
          if (fate.fate == fault::DeviceFate::StragglerArrived) {
            ++round_straggler_arrivals;
          }
        }
        ++num_arrived;
        const DeviceSlot& device_slot = device_slots_[k];
        const TrainingObservation& observation = device_slot.observation;
        train_seconds += device_slot.seconds;
        ctr_trained.add();
        window_train_loss += observation.mean_loss;
        ++window_participants;
        if (observer_ != nullptr) {
          obs::DeviceTrainedEvent event;
          event.t = t;
          event.device = devices[i];
          event.edge = n;
          event.q = probs[i];
          event.mean_loss = observation.mean_loss;
          event.last_grad_sq_norm = observation.local_grad_sq_norms.empty()
                                        ? 0.0
                                        : observation.local_grad_sq_norms.back();
          event.seconds = device_slot.seconds;
          observer_->on_device_trained(event);
        }
        sampler.observe_training(observation);
        // Eq. 5's weight over the surviving set: the realised inclusion
        // probability of an *arriving* device is q_m * a_m, where a_m is the
        // schedule's analytic arrival probability (independent thinning), so
        // dividing by it keeps the edge aggregate exactly unbiased.
        double q_effective = probs[i];
        if (faults_on) {
          q_effective *= injector_.arrival_probability(n, devices[i]);
        }
        const double ht_weight = inv_edge_size / q_effective;
        weight_total += ht_weight;
        weight_sq_total += ht_weight * ht_weight;
        const auto weight = static_cast<float>(ht_weight);
        // Uplink transcode, on the coordinator in sampled order (bitwise
        // deterministic at any thread count). The upload's reference frame
        // is the *decoded downlink* the device trained from — for delta
        // codecs (top-k) the edge reconstructs reference + sparse delta, and
        // the untransmitted remainder feeds the device's error-feedback
        // residual for its next participation.
        const std::vector<float>* upload_view = &device_slot.params;
        if (!codec_device_up_->lossless()) {
          const std::span<float> residual =
              codec_device_up_->stateful()
                  ? upload_residuals_.get_or_alloc(devices[i])
                  : std::span<float>{};
          transcode(*codec_device_up_, device_slot.params, *device_view,
                    residual, decoded_upload_, static_cast<std::int64_t>(t),
                    static_cast<std::int64_t>(devices[i]));
          upload_view = &decoded_upload_;
        }
        const obs::Stopwatch accumulate_watch;
        if (options_.aggregation == AggregationForm::UpdateForm) {
          // HT-weighted deltas (the form the paper's proof analyses) against
          // the model the device actually received.
          tensor::kernels::axpy_delta(param_count_, weight,
                                      upload_view->data(),
                                      device_view->data(), aggregate.data());
        } else {
          // HT-weighted parameters (Eq. 5).
          tensor::kernels::axpy(param_count_, weight,
                                upload_view->data(), aggregate.data());
        }
        aggregate_seconds += accumulate_watch.seconds();
      }
      // Edge aggregation (Eq. 5). With no arriving participant (nothing
      // sampled, or every sampled update lost to faults) the edge model is
      // carried over unchanged in every form.
      const bool any_sampled = num_arrived > 0;
      if (any_sampled) {
        const obs::Stopwatch fold_watch;
        switch (options_.aggregation) {
          case AggregationForm::Literal:
            edge_model.assign(aggregate.begin(), aggregate.end());
            break;
          case AggregationForm::SelfNormalized: {
            const auto inv = static_cast<float>(1.0 / weight_total);
            tensor::kernels::scale_copy(param_count_, inv, aggregate.data(),
                                        edge_model.data());
            break;
          }
          case AggregationForm::UpdateForm:
            tensor::kernels::vadd(param_count_, aggregate.data(),
                                  edge_model.data());
            break;
        }
        aggregate_seconds += fold_watch.seconds();
      }
      timers_[obs::Phase::EdgeAggregation].add(aggregate_seconds);
      reduce_span.reset();
      ctr_edge_aggs.add();
      if (!any_sampled) ctr_empty_edges.add();
      if (faults_on) {
        if (round_dropped > 0) ctr_fault_drops->add(round_dropped);
        if (round_straggler_arrivals > 0) {
          ctr_fault_straggler_arrivals->add(round_straggler_arrivals);
        }
        if (round_straggler_timeouts > 0) {
          ctr_fault_straggler_timeouts->add(round_straggler_timeouts);
        }
        if (round_retries > 0) ctr_fault_retries->add(round_retries);
        if (!lost_.empty()) ctr_fault_updates_lost->add(lost_.size());
      }
      if (observer_ != nullptr) {
        obs::EdgeAggregatedEvent event;
        event.t = t;
        event.edge = n;
        event.capacity = edge_capacity(n);
        event.num_devices = devices.size();
        event.num_sampled = num_sampled;
        event.q = obs::QSummary::from(probs, options_.min_probability);
        event.ht_weight_sum = weight_total;
        if (num_arrived > 0) {
          const double mean_w = weight_total / static_cast<double>(num_arrived);
          event.ht_weight_variance =
              weight_sq_total / static_cast<double>(num_arrived) - mean_w * mean_w;
        }
        event.sampler_seconds = sampler_seconds;
        event.train_seconds = train_seconds;
        event.aggregate_seconds = aggregate_seconds;
        if (faults_on) {
          event.faults.active = true;
          event.faults.num_dropped = round_dropped;
          event.faults.num_straggler_arrivals = round_straggler_arrivals;
          event.faults.num_straggler_timeouts = round_straggler_timeouts;
          event.faults.num_retries = round_retries;
          event.faults.survivors = survivors_;
          event.faults.lost = lost_;
        }
        observer_->on_edge_aggregated(event);
      }
    }

    // Edge-to-cloud communication (Eq. 6) on the paper's t mod T_g schedule.
    if (t % options_.cloud_interval == 0) {
      double cloud_seconds = 0.0;
      cloud_lost.clear();
      {
        obs::ScopedTimer timer(timers_, obs::Phase::CloudAggregation);
        const obs::SpanGuard span("cloud_aggregate",
                                  static_cast<std::int64_t>(t));
        // Losing every upload must keep the previous global model; back it
        // up before the in-place fold (only when losses are possible).
        const bool cloud_faults =
            faults_on && options_.faults.cloud_loss.probability > 0.0;
        if (cloud_faults) prev_global = global_;
        std::fill(global_.begin(), global_.end(), 0.0f);
        const double inv_all = 1.0 / static_cast<double>(num_devices());
        double total_mass = 0.0;
        double surviving_mass = 0.0;
        for (std::size_t n = 0; n < num_edges(); ++n) {
          const double weight = static_cast<double>(per_edge[n].size()) * inv_all;
          if (weight == 0.0) continue;
          total_mass += weight;
          if (cloud_faults && injector_.cloud_upload_lost(t, n)) {
            cloud_lost.push_back(n);
            continue;
          }
          surviving_mass += weight;
          const auto w = static_cast<float>(weight);
          // Uplink transcode: the cloud folds the *decoded* edge upload. The
          // reference frame is the model the cloud last broadcast (which
          // both ends know), so delta codecs ship edge drift, not weights.
          const std::vector<float>* up_view = &edge_models_[n];
          if (!codec_edge_up_->lossless()) {
            transcode(*codec_edge_up_, edge_models_[n], last_broadcast_,
                      {}, decoded_upload_, static_cast<std::int64_t>(t),
                      static_cast<std::int64_t>(n));
            up_view = &decoded_upload_;
          }
          tensor::kernels::axpy(param_count_, w, up_view->data(),
                                global_.data());
        }
        if (!cloud_lost.empty()) {
          if (surviving_mass > 0.0) {
            // Eq. 6 renormalised over the surviving edge mass: surviving
            // edges keep their relative |M_n| weights, the overall scale
            // matches the loss-free fold.
            tensor::kernels::scale(
                param_count_, static_cast<float>(total_mass / surviving_mass),
                global_.data());
          } else {
            global_ = prev_global;  // every upload lost: keep w^t
          }
        }
        // Broadcast (downlink assumed reliable, lost uploads included).
        // Edges receive the *decoded* broadcast; the cloud also keeps it as
        // the reference frame for next round's delta uploads (deterministic
        // encoding means both ends can reproduce it exactly).
        const std::vector<float>* broadcast_view = &global_;
        if (!codec_cloud_down_->lossless()) {
          transcode(*codec_cloud_down_, global_, {}, {},
                    broadcast_model_, static_cast<std::int64_t>(t), -1);
          broadcast_view = &broadcast_model_;
        }
        for (auto& edge_model : edge_models_) edge_model = *broadcast_view;
        if (comm_lossy_) last_broadcast_ = *broadcast_view;
        cloud_seconds = timer.elapsed_seconds();
      }
      cost_.edge_uploads += num_edges();
      cost_.cloud_broadcasts += num_edges();
      cost_.ledger.edge_upload.add(num_edges(), bytes_edge_up_);
      cost_.ledger.cloud_broadcast.add(num_edges(), bytes_cloud_down_);
      if (faults_on && !cloud_lost.empty()) {
        ctr_fault_cloud_lost->add(cloud_lost.size());
      }
      {
        // UCB refresh (Alg. 2) is sampler work, charged to its phase.
        obs::ScopedTimer timer(timers_, obs::Phase::SamplerDecision);
        const obs::SpanGuard span("sampler_refresh",
                                  static_cast<std::int64_t>(t));
        sampler.on_cloud_round(t);
      }
      ++cloud_rounds;
      if (observer_ != nullptr) {
        obs::CloudRoundEvent event;
        event.t = t;
        event.round = cloud_rounds;
        event.num_edges = num_edges();
        event.seconds = cloud_seconds;
        if (faults_on) {
          event.faults_active = true;
          event.lost_edges = cloud_lost;
        }
        sampler.introspect(event.sampler);
        observer_->on_cloud_round(event);
      }
      if (cloud_rounds % options_.eval_every_cloud_rounds == 0) {
        EvalPoint point;
        double eval_seconds = 0.0;
        {
          obs::ScopedTimer timer(timers_, obs::Phase::Evaluation);
          const obs::SpanGuard span("evaluation",
                                    static_cast<std::int64_t>(t));
          point = evaluate_global(t + 1);
          eval_seconds = timer.elapsed_seconds();
        }
        point.train_loss = window_participants > 0
                               ? window_train_loss /
                                     static_cast<double>(window_participants)
                               : 0.0;
        point.participants = window_participants;
        record_eval(point, eval_seconds);
        window_train_loss = 0.0;
        window_participants = 0;
      }
    }

    // Snapshot after every `every` completed steps (never after the final
    // step — the run is about to finish anyway and a resumable snapshot
    // would outlive its purpose).
    const std::size_t done = t + 1;
    if (options_.checkpoint.every > 0 && done % options_.checkpoint.every == 0 &&
        done < steps) {
      {
        obs::ScopedTimer timer(timers_, obs::Phase::Checkpoint);
        const obs::SpanGuard span("checkpoint",
                                  static_cast<std::int64_t>(done));
        save_checkpoint(sampler, steps, done, cloud_rounds, window_train_loss,
                        window_participants, metrics);
      }
      // CI/test harness: simulate preemption by hard-killing the process the
      // moment the first snapshot at or past `kill_at` is durable. SIGKILL
      // on purpose — no destructors, no stream flushes, exactly the crash
      // the resume path must survive.
      if (options_.checkpoint.kill_at > 0 && done >= options_.checkpoint.kill_at) {
        ::kill(::getpid(), SIGKILL);
      }
    }

    // Test/CI harness: freeze the coordinator so the heartbeat stops
    // advancing — the deterministic hang a supervisor's watchdog must
    // detect and SIGKILL. pause() returns on caught signals; looping keeps
    // the freeze absolute short of SIGKILL.
    if (options_.hang_at > 0 && done >= options_.hang_at) {
      common::log_warn("harness: hanging forever at step ", done,
                       " (hang_at=", options_.hang_at, ")");
      for (;;) ::pause();
    }

    // Cooperative drain (SIGTERM/SIGINT via HflOptions::stop_flag): make the
    // completed work durable with one extra snapshot if the interval block
    // above didn't just write one, then return early. The resumed run
    // replays the remaining steps bitwise-identically, so a drained fleet
    // loses nothing but wall-clock time.
    if (options_.stop_flag != nullptr && *options_.stop_flag != 0 &&
        done < steps) {
      if (options_.checkpoint.every > 0 && done % options_.checkpoint.every != 0) {
        obs::ScopedTimer timer(timers_, obs::Phase::Checkpoint);
        const obs::SpanGuard span("checkpoint", static_cast<std::int64_t>(done));
        save_checkpoint(sampler, steps, done, cloud_rounds, window_train_loss,
                        window_participants, metrics);
      }
      interrupted_at_ = done;
      break;
    }

    // Telemetry upkeep at the step barrier: no parallel section is running,
    // so draining the worker rings is race-free, and the heartbeat reflects
    // a fully-completed step.
    if (profiler_ != nullptr) profiler_->merge_thread_rings();
    if (resources_ != nullptr) resources_->maybe_sample();
    if (status_ != nullptr) {
      obs::StatusSnapshot snap;
      snap.sampler = sampler.name();
      snap.step = done;
      snap.total_steps = steps;
      snap.cloud_rounds = cloud_rounds;
      snap.devices_trained = ctr_trained.value();
      snap.elapsed_seconds = run_watch.seconds();
      if (snap.elapsed_seconds > 0.0) {
        snap.devices_per_second =
            static_cast<double>(snap.devices_trained) / snap.elapsed_seconds;
      }
      const std::size_t completed = done - start_t;
      if (completed > 0) {
        snap.eta_seconds = snap.elapsed_seconds /
                           static_cast<double>(completed) *
                           static_cast<double>(steps - done);
      }
      if (ctr_fault_updates_lost != nullptr) {
        snap.faults_lost = ctr_fault_updates_lost->value();
      }
      if (profiler_ != nullptr) snap.spans_dropped = profiler_->spans_dropped();
      const obs::ResourceSample resource = resources_->latest();
      snap.current_rss_kb = resource.usage.current_rss_kb;
      snap.peak_rss_kb = resource.usage.peak_rss_kb;
      status_->maybe_write(snap);
    }
  }
  if (observer_ != nullptr) {
    obs::RunEndEvent event;
    event.steps = steps;
    event.cloud_rounds = cloud_rounds;
    event.phases = &timers_;
    event.registry = &registry_;
    event.ledger = &cost_.ledger;
    event.assumed_fp32_bytes = cost_.assumed_fp32_bytes();
    event.mixed_model_sizes = cost_.mixed_model_sizes;
    observer_->on_run_end(event);
  }

  // Final telemetry flush: last resource sample, terminal heartbeat
  // (finished=true forces a write regardless of the interval), and the
  // Chrome trace export. Export failures must not fail the run — the
  // simulation result is already complete.
  if (resources_ != nullptr) resources_->force_sample();
  if (status_ != nullptr) {
    obs::StatusSnapshot snap;
    snap.sampler = sampler.name();
    snap.step = interrupted_at_.value_or(steps);
    snap.total_steps = steps;
    snap.cloud_rounds = cloud_rounds;
    snap.devices_trained = ctr_trained.value();
    snap.elapsed_seconds = run_watch.seconds();
    if (snap.elapsed_seconds > 0.0) {
      snap.devices_per_second =
          static_cast<double>(snap.devices_trained) / snap.elapsed_seconds;
    }
    if (ctr_fault_updates_lost != nullptr) {
      snap.faults_lost = ctr_fault_updates_lost->value();
    }
    if (profiler_ != nullptr) snap.spans_dropped = profiler_->spans_dropped();
    const obs::ResourceSample resource = resources_->latest();
    snap.current_rss_kb = resource.usage.current_rss_kb;
    snap.peak_rss_kb = resource.usage.peak_rss_kb;
    // A drained (stop_flag) run is terminal but not finished; its final
    // document bypasses the interval gate, and the AbortScope above then
    // upgrades it with aborted=true on scope exit.
    snap.finished = !interrupted_at_.has_value();
    if (snap.finished) {
      status_->maybe_write(snap);
    } else {
      status_->write_now(snap);
    }
  }
  if (profiler_ != nullptr) {
    profile_export_ok_ = profiler_->write_chrome_trace(
        options_.profile.trace_path, resources_.get());
    if (!profile_export_ok_) {
      common::log_warn("profile: failed to write Chrome trace to ",
                       options_.profile.trace_path);
    }
  }
  return metrics;
}

}  // namespace mach::hfl
