// End-to-end experiment assembly: synthesises the dataset, the Non-IID
// partition and the mobility schedule for one of the paper's three learning
// tasks, then runs the HFL simulator under a given sampler.
//
// Two preset scales exist for every task:
//   * smoke — MLP models and reduced populations sized for a single-core CI
//     box (the default for benches and tests);
//   * full  — the paper's population (100 devices / 10 edges) and CNN
//     architectures (2conv+2fc / 3conv+2fc), enabled with REPRO_FULL=1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "hfl/simulator.h"
#include "mobility/scenario.h"

namespace mach::hfl {

enum class ModelKind { Mlp, PaperCnn };

struct ExperimentConfig {
  data::TaskKind task = data::TaskKind::MnistLike;
  data::SyntheticSpec data_spec = data::SyntheticSpec::mnist_like();

  std::size_t num_devices = 50;
  std::size_t num_edges = 10;
  std::size_t train_per_device = 80;
  std::size_t test_examples = 1000;

  /// Long-tail ratio shared by the global and per-device label marginals.
  double long_tail_ratio = 0.65;
  /// Sample-diversity heterogeneity (see data::apply_redundancy): fraction
  /// of devices whose shard collapses to `redundant_keep` unique examples.
  /// This supplies the persistent gradient-norm spread across devices that
  /// real federated datasets exhibit; 0 disables it.
  double redundant_fraction = 0.6;
  double redundant_keep = 0.08;

  ModelKind model = ModelKind::Mlp;
  std::size_t mlp_hidden = 32;

  HflOptions hfl;                 // local epochs, T_g, lr, participation, ...
  std::size_t horizon = 120;      // time steps per run
  double target_accuracy = 0.75;  // the task's time-to-accuracy target

  /// Mobility: telecom-style layout replayed through the Markov model. The
  /// layout knobs default to StationLayoutSpec's values; a named scenario
  /// preset (mobility/scenario.h) overrides the whole group at once via
  /// apply_scenario().
  std::size_t num_stations = 60;
  std::size_t num_hotspots = 6;
  double area_size = 100.0;
  double hotspot_stddev = 8.0;
  double background_fraction = 0.25;
  double stay_prob = 0.8;
  double move_range = 25.0;
  /// Name of the scenario preset applied (banners/reports only; "" = none).
  std::string scenario_name;

  /// Run seed: model init, Bernoulli device sampling, local minibatches.
  /// Varied across the averaged repetitions (the paper repeats each
  /// experiment three times over the same data and trace).
  std::uint64_t seed = 1;
  /// Data seed: synthetic concept, Non-IID partition, redundancy draw,
  /// station layout and mobility trace. Fixed across repetitions, exactly as
  /// the paper's MNIST/FMNIST/CIFAR10 datasets and replayed Telecom traces
  /// are fixed.
  std::uint64_t data_seed = 42;

  /// Paper-scaled presets per task (see file comment).
  static ExperimentConfig smoke(data::TaskKind task);
  static ExperimentConfig full(data::TaskKind task);
  /// smoke() unless the REPRO_FULL env flag is set.
  static ExperimentConfig preset(data::TaskKind task);

  /// Applies a new run seed (model init / sampling / minibatches). The data
  /// seed is left untouched; set `data_seed` directly to change the world.
  ExperimentConfig with_seed(std::uint64_t seed) const;
};

/// The generated inputs of one experiment instance.
struct ExperimentArtifacts {
  data::Dataset train;
  data::Dataset test;
  data::Partition partition;
  mobility::MobilitySchedule schedule;
};

/// Deterministically synthesises data + partition + mobility for the config.
ExperimentArtifacts build_experiment(const ExperimentConfig& config);

/// Pastes a mobility scenario preset (mobility/scenario.h) into the config's
/// station-layout and Markov-model knobs. Orthogonal to --faults/--codec/
/// --threads: scenarios only shape the world the run moves through.
void apply_scenario(const mobility::Scenario& scenario, ExperimentConfig& config);

/// Model builder matching the config's task/model kind.
ModelFactory make_model_factory(const ExperimentConfig& config);

struct RunResult {
  MetricsRecorder metrics;
  /// First step reaching target_accuracy; nullopt if never within horizon.
  std::optional<std::size_t> time_to_target;
  std::string sampler_name;
  /// Wall-clock phase breakdown of this run (simulator.phase_timers()).
  obs::PhaseTimerSet phases;
};

/// Builds everything from the config and runs one full simulation. The
/// optional observer receives the run's telemetry events (see obs/observer.h);
/// pass nullptr (the default) for an unobserved run — behaviour is identical
/// either way.
RunResult run_experiment(const ExperimentConfig& config, Sampler& sampler,
                         obs::RunObserver* observer = nullptr);

/// Time-to-target averaged over seeds (paper averages three runs). Runs that
/// never reach the target count as the horizon, and `reach_rate` reports the
/// fraction that did.
struct AveragedTimeToTarget {
  double mean_steps = 0.0;
  double reach_rate = 0.0;
  std::vector<std::optional<std::size_t>> per_seed;
};

/// Sampler factory: fresh sampler per seed (experience must not leak).
using SamplerFactory = std::function<SamplerPtr()>;

AveragedTimeToTarget averaged_time_to_target(const ExperimentConfig& config,
                                             const SamplerFactory& make_sampler,
                                             std::span<const std::uint64_t> seeds);

/// Point-wise mean accuracy curve across runs (eval grids must align, which
/// holds for runs sharing a config).
std::vector<EvalPoint> average_curves(const std::vector<MetricsRecorder>& runs);

/// Mean time-to-target over already-averaged curves with target smoothing:
/// first eval step where the mean curve reaches `target`.
std::optional<std::size_t> curve_time_to_target(const std::vector<EvalPoint>& curve,
                                                double target);

}  // namespace mach::hfl
