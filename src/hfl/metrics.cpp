#include "hfl/metrics.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace mach::hfl {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes_(num_classes), counts_(num_classes * num_classes, 0) {
  if (num_classes == 0) {
    throw std::invalid_argument("ConfusionMatrix: zero classes");
  }
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  if (true_label < 0 || predicted_label < 0 ||
      static_cast<std::size_t>(true_label) >= classes_ ||
      static_cast<std::size_t>(predicted_label) >= classes_) {
    throw std::out_of_range("ConfusionMatrix::add: label out of range");
  }
  ++counts_[static_cast<std::size_t>(true_label) * classes_ +
            static_cast<std::size_t>(predicted_label)];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t true_class,
                                   std::size_t predicted) const {
  if (true_class >= classes_ || predicted >= classes_) {
    throw std::out_of_range("ConfusionMatrix::count");
  }
  return counts_[true_class * classes_ + predicted];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes_; ++c) correct += counts_[c * classes_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(std::size_t true_class) const {
  std::size_t row_total = 0;
  for (std::size_t p = 0; p < classes_; ++p) row_total += count(true_class, p);
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(true_class, true_class)) /
         static_cast<double>(row_total);
}

double ConfusionMatrix::precision(std::size_t predicted_class) const {
  std::size_t col_total = 0;
  for (std::size_t t = 0; t < classes_; ++t) col_total += count(t, predicted_class);
  if (col_total == 0) return 0.0;
  return static_cast<double>(count(predicted_class, predicted_class)) /
         static_cast<double>(col_total);
}

double ConfusionMatrix::balanced_accuracy() const {
  double total = 0.0;
  for (std::size_t c = 0; c < classes_; ++c) total += recall(c);
  return total / static_cast<double>(classes_);
}

std::optional<std::size_t> MetricsRecorder::time_to_accuracy(double target) const {
  for (const auto& p : points_) {
    if (p.test_accuracy >= target) return p.t;
  }
  return std::nullopt;
}

double MetricsRecorder::best_accuracy() const noexcept {
  double best = 0.0;
  for (const auto& p : points_) best = std::max(best, p.test_accuracy);
  return best;
}

double MetricsRecorder::final_accuracy() const noexcept {
  return points_.empty() ? 0.0 : points_.back().test_accuracy;
}

bool MetricsRecorder::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "t,test_accuracy,test_loss,train_loss,participants,global_grad_sq_norm\n";
  for (const auto& p : points_) {
    out << p.t << ',' << p.test_accuracy << ',' << p.test_loss << ','
        << p.train_loss << ',' << p.participants << ',' << p.global_grad_sq_norm
        << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace mach::hfl
