// Pooled per-device error-feedback residuals: one contiguous float slab plus
// a fixed 4-byte handle per device, replacing the vector-per-device layout.
//
// With a stateful upload codec (top-k) every participating device owns a
// param_count-sized residual. A vector per device costs an allocation, a
// pointer triple and heap scatter per device — at million-device scale that
// is both RAM and cache churn. The pool packs live residuals back-to-back in
// one slab (allocated lazily, in first-participation order) and keeps only a
// u32 slot handle per device, which is the representation the device-state
// byte budget accounts for.
//
// The checkpoint wire format is exactly the historical one (u64 device
// count, then one vec_f32 per device — empty when unallocated), so snapshots
// are interchangeable with the pre-pool layout byte for byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mach::ckpt {
class ByteWriter;
class ByteReader;
}  // namespace mach::ckpt

namespace mach::hfl {

class ResidualPool {
 public:
  /// No devices, no slab; get() on any device is invalid.
  ResidualPool() = default;

  /// Tracks `num_devices` handles, each resolving to a `stride`-float
  /// residual once allocated. Frees any previous slab.
  void reset(std::size_t num_devices, std::size_t stride);

  /// True once reset() has been called with a nonzero device count.
  bool enabled() const noexcept { return !handles_.empty(); }
  std::size_t num_devices() const noexcept { return handles_.size(); }
  std::size_t stride() const noexcept { return stride_; }
  /// Devices currently owning a residual slab slot.
  std::size_t allocated() const noexcept { return allocated_; }

  bool has(std::uint32_t device) const {
    return handles_.at(device) != kNoSlot;
  }

  /// The device's residual, or an empty span when it never participated.
  std::span<float> get(std::uint32_t device);
  std::span<const float> get(std::uint32_t device) const;

  /// The device's residual, allocating (zero-filled) on first use. An
  /// allocation may move the slab: spans returned earlier are invalidated,
  /// so fetch the span immediately before each use.
  std::span<float> get_or_alloc(std::uint32_t device);

  /// Slab + handle bytes actually reserved (capacity) — scale accounting.
  std::size_t memory_bytes() const noexcept {
    return slab_.capacity() * sizeof(float) +
           handles_.capacity() * sizeof(std::uint32_t);
  }

  /// Wire-compatible with the historical vector-per-device serialisation.
  void save_state(ckpt::ByteWriter& out) const;
  /// Throws ckpt::CorruptPayload on device-count or stride mismatch.
  void load_state(ckpt::ByteReader& in);

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  std::size_t stride_ = 0;
  std::size_t allocated_ = 0;
  std::vector<std::uint32_t> handles_;  // device → slab slot (kNoSlot = none)
  std::vector<float> slab_;             // allocated_ * stride_ floats
};

}  // namespace mach::hfl
