// Communication-cost accounting for the hierarchical wireless network.
//
// The paper frames device sampling as minimising convergence error under
// *time-averaged cost constraints* (the per-edge channel budget K_n). This
// module counts the messages the simulated system actually exchanges so
// experiments can report cost alongside time-to-accuracy:
//   * device <-> edge: one model download per sampled device per step
//     (Eq. 4's starting point) and one model upload after local updating;
//   * oracle probes (MACH-P only): one extra model download per probed
//     device per step;
//   * edge <-> cloud: per cloud round (Eq. 6), each edge uploads its model
//     and receives the new global model.
#pragma once

#include <cstddef>

namespace mach::hfl {

struct CommunicationCost {
  std::size_t device_downloads = 0;   // edge model -> device
  std::size_t device_uploads = 0;     // local model -> edge
  /// Straggler retransmissions (fault injection); these attempts are already
  /// included in device_uploads — this counts the redundant share.
  std::size_t retry_uploads = 0;
  std::size_t probe_downloads = 0;    // oracle probes (MACH-P)
  std::size_t edge_uploads = 0;       // edge model -> cloud
  std::size_t cloud_broadcasts = 0;   // global model -> edge
  /// Scalar parameters per model message (for byte conversion).
  std::size_t model_parameters = 0;

  std::size_t total_model_messages() const noexcept {
    return device_downloads + device_uploads + probe_downloads + edge_uploads +
           cloud_broadcasts;
  }

  /// Total bytes moved assuming float32 parameters.
  std::size_t total_bytes() const noexcept {
    return total_model_messages() * model_parameters * sizeof(float);
  }

  /// Device-edge messages per time step (the channel-budget view, Eq. 3).
  double device_messages_per_step(std::size_t steps) const noexcept {
    if (steps == 0) return 0.0;
    return static_cast<double>(device_downloads + device_uploads) /
           static_cast<double>(steps);
  }

  CommunicationCost& operator+=(const CommunicationCost& other) noexcept {
    device_downloads += other.device_downloads;
    device_uploads += other.device_uploads;
    retry_uploads += other.retry_uploads;
    probe_downloads += other.probe_downloads;
    edge_uploads += other.edge_uploads;
    cloud_broadcasts += other.cloud_broadcasts;
    // model_parameters is a per-message size, not a count: accumulating runs
    // of the same model must keep it (a default-constructed accumulator has
    // 0). Mixing different model sizes in one accumulator is a caller bug;
    // taking the max keeps total_bytes() a lower bound in that case.
    if (other.model_parameters > model_parameters) {
      model_parameters = other.model_parameters;
    }
    return *this;
  }
};

}  // namespace mach::hfl
