// Communication-cost accounting for the hierarchical wireless network.
//
// The paper frames device sampling as minimising convergence error under
// *time-averaged cost constraints* (the per-edge channel budget K_n). This
// module counts the messages the simulated system actually exchanges so
// experiments can report cost alongside time-to-accuracy:
//   * device <-> edge: one model download per sampled device per step
//     (Eq. 4's starting point) and one model upload after local updating;
//   * oracle probes (MACH-P only): one extra model download per probed
//     device per step;
//   * edge <-> cloud: per cloud round (Eq. 6), each edge uploads its model
//     and receives the new global model.
//
// Byte truth lives in `ledger` (src/comm/): the engine charges every message
// at its link codec's *encoded* size, so total_bytes() reports what actually
// crossed the wire — 4·model_parameters per message only when the link runs
// the fp32 identity codec. The legacy fp32 product remains available as
// assumed_fp32_bytes() (and as the fallback for hand-built accumulators that
// never went through the engine).
#pragma once

#include <cassert>
#include <cstddef>

#include "comm/ledger.h"

namespace mach::hfl {

struct CommunicationCost {
  std::size_t device_downloads = 0;   // edge model -> device
  std::size_t device_uploads = 0;     // local model -> edge
  /// Straggler retransmissions (fault injection); these attempts are already
  /// included in device_uploads — this counts the redundant share.
  std::size_t retry_uploads = 0;
  std::size_t probe_downloads = 0;    // oracle probes (MACH-P)
  std::size_t edge_uploads = 0;       // edge model -> cloud
  std::size_t cloud_broadcasts = 0;   // global model -> edge
  /// Scalar parameters per model message (for byte conversion).
  std::size_t model_parameters = 0;
  /// Encoded bytes per link, maintained by the engine alongside the message
  /// counters above (fp32 links charge exactly 4·model_parameters/message).
  comm::ByteLedger ledger;
  /// Sticky accumulation-error flag: set when operator+= folded together
  /// accumulators with different nonzero model_parameters. Byte totals from
  /// the legacy fp32 product are under-counted past that point; the ledger
  /// (per-message charges) stays exact. Surfaced by tools/trace_summary.
  bool mixed_model_sizes = false;

  std::size_t total_model_messages() const noexcept {
    return device_downloads + device_uploads + probe_downloads + edge_uploads +
           cloud_broadcasts;
  }

  /// Total bytes assuming uncompressed float32 parameters on every link (the
  /// pre-codec reporting convention; kept for comparison against `ledger`).
  std::size_t assumed_fp32_bytes() const noexcept {
    return total_model_messages() * model_parameters * sizeof(float);
  }

  /// Total bytes moved: the encoded-byte ledger when the engine maintained
  /// one, else the fp32 assumption (hand-built accumulators).
  std::size_t total_bytes() const noexcept {
    if (!ledger.empty()) return static_cast<std::size_t>(ledger.total_bytes());
    return assumed_fp32_bytes();
  }

  /// Device-edge messages per time step (the channel-budget view, Eq. 3).
  double device_messages_per_step(std::size_t steps) const noexcept {
    if (steps == 0) return 0.0;
    return static_cast<double>(device_downloads + device_uploads) /
           static_cast<double>(steps);
  }

  CommunicationCost& operator+=(const CommunicationCost& other) noexcept {
    device_downloads += other.device_downloads;
    device_uploads += other.device_uploads;
    retry_uploads += other.retry_uploads;
    probe_downloads += other.probe_downloads;
    edge_uploads += other.edge_uploads;
    cloud_broadcasts += other.cloud_broadcasts;
    ledger += other.ledger;
    mixed_model_sizes |= other.mixed_model_sizes;
    // model_parameters is a per-message size, not a count: accumulating runs
    // of the same model must keep it (a default-constructed accumulator has
    // 0). Mixing different model sizes in one accumulator makes the fp32
    // product meaningless — assert in debug, and record the mix in the
    // sticky flag either way so reports can surface it; the max keeps
    // assumed_fp32_bytes() a lower bound.
    if (model_parameters != 0 && other.model_parameters != 0 &&
        model_parameters != other.model_parameters) {
      mixed_model_sizes = true;
      assert(!"CommunicationCost: accumulating mixed model sizes "
              "(assumed_fp32_bytes under-counts; use the byte ledger)");
    }
    if (other.model_parameters > model_parameters) {
      model_parameters = other.model_parameters;
    }
    return *this;
  }
};

}  // namespace mach::hfl
