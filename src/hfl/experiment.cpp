#include "hfl/experiment.h"

#include <iomanip>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "ckpt/manager.h"
#include "ckpt/run_state.h"
#include "common/cli.h"
#include "common/log.h"
#include "mobility/mobility_model.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/factory.h"

namespace mach::hfl {

namespace {

/// Task-specific knobs shared by both scales.
void apply_task_defaults(ExperimentConfig& config, data::TaskKind task) {
  config.task = task;
  config.data_spec = data::SyntheticSpec::preset(task);
  switch (task) {
    case data::TaskKind::MnistLike:
      config.hfl.cloud_interval = 5;
      config.target_accuracy = 0.75;
      break;
    case data::TaskKind::FmnistLike:
      config.hfl.cloud_interval = 5;
      config.target_accuracy = 0.65;
      break;
    case data::TaskKind::CifarLike:
      config.hfl.cloud_interval = 10;
      config.target_accuracy = 0.60;
      break;
  }
}

}  // namespace

ExperimentConfig ExperimentConfig::smoke(data::TaskKind task) {
  ExperimentConfig config;
  apply_task_defaults(config, task);
  config.num_devices = 40;
  config.num_edges = 10;
  config.train_per_device = 60;
  config.test_examples = 600;
  config.model = ModelKind::Mlp;
  config.hfl.local_epochs = 5;
  config.hfl.batch_size = 4;
  config.hfl.participation = 0.5;
  config.num_stations = 40;
  config.num_hotspots = 5;
  // Smoke mode shrinks images (the MLP flattens them anyway); full mode
  // keeps the preset resolutions required by the paper's CNN stacks.
  config.data_spec.height = 8;
  config.data_spec.width = 8;
  // Horizons, learning rates and targets below are calibrated so that the
  // target accuracy falls in the mid/late convergence region of each tier
  // (mirroring where the paper's targets sit on its real-data curves).
  switch (task) {
    case data::TaskKind::MnistLike:
      config.mlp_hidden = 32;
      config.hfl.learning_rate = 0.05;
      config.horizon = 200;
      config.target_accuracy = 0.78;
      break;
    case data::TaskKind::FmnistLike:
      config.mlp_hidden = 32;
      config.hfl.learning_rate = 0.05;
      config.horizon = 240;
      config.target_accuracy = 0.48;
      break;
    case data::TaskKind::CifarLike:
      config.mlp_hidden = 48;
      config.hfl.learning_rate = 0.045;
      config.horizon = 240;
      config.target_accuracy = 0.37;
      break;
  }
  return config;
}

ExperimentConfig ExperimentConfig::full(data::TaskKind task) {
  ExperimentConfig config;
  apply_task_defaults(config, task);
  config.num_devices = 100;
  config.num_edges = 10;
  config.train_per_device = 150;
  config.test_examples = 2000;
  config.model = ModelKind::PaperCnn;
  config.hfl.local_epochs = 10;
  config.hfl.batch_size = 16;
  config.hfl.participation = 0.5;
  config.num_stations = 80;
  config.num_hotspots = 8;
  switch (task) {
    case data::TaskKind::MnistLike:
      config.hfl.learning_rate = 0.02;
      config.horizon = 400;
      break;
    case data::TaskKind::FmnistLike:
      config.hfl.learning_rate = 0.02;
      config.horizon = 500;
      break;
    case data::TaskKind::CifarLike:
      config.hfl.learning_rate = 0.02;
      config.horizon = 800;
      break;
  }
  return config;
}

ExperimentConfig ExperimentConfig::preset(data::TaskKind task) {
  return common::env_flag("REPRO_FULL") ? full(task) : smoke(task);
}

ExperimentConfig ExperimentConfig::with_seed(std::uint64_t seed) const {
  ExperimentConfig copy = *this;
  copy.seed = seed;
  copy.hfl.seed = seed;
  return copy;
}

ExperimentArtifacts build_experiment(const ExperimentConfig& config) {
  // Data: one generator (fixed concept), long-tailed global label marginal.
  data::SyntheticGenerator generator(config.data_spec,
                                     common::split_seed(config.data_seed, 0x9e1));
  common::Rng data_rng(common::split_seed(config.data_seed, 0x9e2));
  const auto global_weights = data::long_tailed_weights(config.data_spec.classes,
                                                        config.long_tail_ratio);
  data::Dataset train = generator.generate(
      config.num_devices * config.train_per_device, global_weights, data_rng);
  data::Dataset test = generator.generate_uniform(config.test_examples, data_rng);

  // Partition: per-device long-tailed marginals with random dominant class.
  common::Rng part_rng(common::split_seed(config.data_seed, 0x9e3));
  data::Partition partition = data::partition_long_tailed(
      train, config.num_devices, config.long_tail_ratio, part_rng);
  if (config.redundant_fraction > 0.0) {
    common::Rng redundancy_rng(common::split_seed(config.data_seed, 0x9e7));
    data::apply_redundancy(partition, config.redundant_fraction,
                           config.redundant_keep, redundancy_rng);
  }

  // Mobility: telecom-style station layout -> k-means edges -> Markov trace.
  mobility::StationLayoutSpec layout;
  layout.num_stations = config.num_stations;
  layout.num_hotspots = config.num_hotspots;
  layout.area_size = config.area_size;
  layout.hotspot_stddev = config.hotspot_stddev;
  layout.background_fraction = config.background_fraction;
  auto stations = mobility::generate_stations(layout,
                                              common::split_seed(config.data_seed, 0x9e4));
  const auto clustering = mobility::cluster_stations(
      stations, config.num_edges, common::split_seed(config.data_seed, 0x9e5));
  mobility::MarkovMobilityModel model(std::move(stations), config.stay_prob,
                                      config.move_range);
  const mobility::Trace trace = mobility::generate_trace(
      model, config.num_devices, std::max<std::size_t>(config.horizon, 1),
      common::split_seed(config.data_seed, 0x9e6));
  const mobility::TraceReplay replay(trace);
  auto schedule = mobility::MobilitySchedule::from_trace(replay, clustering);

  return ExperimentArtifacts{std::move(train), std::move(test), std::move(partition),
                             std::move(schedule)};
}

void apply_scenario(const mobility::Scenario& scenario, ExperimentConfig& config) {
  config.num_stations = scenario.num_stations;
  config.num_hotspots = scenario.num_hotspots;
  config.area_size = scenario.area_size;
  config.hotspot_stddev = scenario.hotspot_stddev;
  config.background_fraction = scenario.background_fraction;
  config.stay_prob = scenario.stay_prob;
  config.move_range = scenario.move_range;
  config.scenario_name = scenario.to_string();
}

ModelFactory make_model_factory(const ExperimentConfig& config) {
  const auto& spec = config.data_spec;
  if (config.model == ModelKind::Mlp) {
    const std::size_t features = spec.channels * spec.height * spec.width;
    const std::size_t hidden = config.mlp_hidden;
    const std::size_t classes = spec.classes;
    return [features, hidden, classes] {
      nn::Sequential model;
      model.add(std::make_unique<nn::Flatten>())
          .add(std::make_unique<nn::Dense>(features, hidden))
          .add(std::make_unique<nn::ReLU>())
          .add(std::make_unique<nn::Dense>(hidden, classes));
      return model;
    };
  }
  if (config.task == data::TaskKind::CifarLike) {
    return [spec] {
      return nn::make_cnn3(spec.channels, spec.height, spec.width, spec.classes);
    };
  }
  return [spec] {
    return nn::make_cnn2(spec.channels, spec.height, spec.width, spec.classes);
  };
}

RunResult run_experiment(const ExperimentConfig& config, Sampler& sampler,
                         obs::RunObserver* observer) {
  ExperimentArtifacts artifacts = build_experiment(config);
  HflOptions options = config.hfl;
  options.seed = config.seed;
  if (options.checkpoint.enabled() && !options.checkpoint.dir.empty()) {
    // Sweeps run many (task, sampler, seed, hyperparameter) combinations back
    // to back; give each its own snapshot subdirectory so runs never clobber
    // each other and --resume picks up exactly the run it belongs to. The
    // hash suffix separates sweep points that differ only in hyperparameters
    // (e.g. fig5's participation grid).
    std::uint64_t h = ckpt::kHashSeed;
    h = ckpt::hash_u64(h, config.num_devices);
    h = ckpt::hash_u64(h, config.num_edges);
    h = ckpt::hash_u64(h, config.train_per_device);
    h = ckpt::hash_u64(h, config.horizon);
    h = ckpt::hash_u64(h, config.hfl.local_epochs);
    h = ckpt::hash_u64(h, config.hfl.cloud_interval);
    h = ckpt::hash_u64(h, config.hfl.batch_size);
    h = ckpt::hash_u64(h, static_cast<std::uint64_t>(config.hfl.aggregation));
    h = ckpt::hash_u64(h, config.data_seed);
    h = ckpt::hash_f64(h, config.hfl.participation);
    h = ckpt::hash_f64(h, config.hfl.learning_rate);
    h = ckpt::hash_f64(h, config.stay_prob);
    h = ckpt::hash_f64(h, config.long_tail_ratio);
    // Scenario-shaped world knobs: sweeps over --scenario must not share
    // snapshot directories between presets.
    h = ckpt::hash_u64(h, config.num_stations);
    h = ckpt::hash_u64(h, config.num_hotspots);
    h = ckpt::hash_f64(h, config.area_size);
    h = ckpt::hash_f64(h, config.hotspot_stddev);
    h = ckpt::hash_f64(h, config.background_fraction);
    h = ckpt::hash_f64(h, config.move_range);
    h = ckpt::hash_str(h, config.hfl.faults.empty() ? ""
                                                    : config.hfl.faults.to_string());
    h = ckpt::hash_str(h, config.hfl.comm.all_fp32() ? ""
                                                     : config.hfl.comm.to_string());
    std::ostringstream subdir;
    subdir << '/' << data::task_name(config.task) << '_' << sampler.name()
           << "_s" << config.seed << '_' << std::hex << std::setw(8)
           << std::setfill('0') << static_cast<std::uint32_t>(h ^ (h >> 32));
    options.checkpoint.dir += subdir.str();
  }
  HflSimulator simulator(artifacts.train, artifacts.test, std::move(artifacts.partition),
                         artifacts.schedule, make_model_factory(config), options);
  simulator.set_observer(observer);
  if (options.checkpoint.resume) {
    ckpt::CheckpointManager manager(options.checkpoint.dir, options.checkpoint.keep);
    if (auto loaded = manager.load_latest()) {
      if (loaded->version != ckpt::kRunStateVersion) {
        common::log_warn("resume: snapshot in " + options.checkpoint.dir +
                         " has payload version " + std::to_string(loaded->version) +
                         " (engine writes " + std::to_string(ckpt::kRunStateVersion) +
                         ") -- starting from step 0");
      } else {
        simulator.set_resume_payload(std::move(loaded->payload));
      }
    } else {
      common::log_warn("resume: no usable snapshot in " + options.checkpoint.dir +
                       " -- starting from step 0");
    }
  }
  RunResult result;
  result.sampler_name = sampler.name();
  result.metrics = simulator.run(sampler, config.horizon);
  result.time_to_target = result.metrics.time_to_accuracy(config.target_accuracy);
  result.phases = simulator.phase_timers();
  return result;
}

AveragedTimeToTarget averaged_time_to_target(const ExperimentConfig& config,
                                             const SamplerFactory& make_sampler,
                                             std::span<const std::uint64_t> seeds) {
  AveragedTimeToTarget result;
  if (seeds.empty()) return result;
  double total = 0.0;
  std::size_t reached = 0;
  for (std::uint64_t seed : seeds) {
    SamplerPtr sampler = make_sampler();
    const RunResult run = run_experiment(config.with_seed(seed), *sampler);
    result.per_seed.push_back(run.time_to_target);
    if (run.time_to_target) {
      total += static_cast<double>(*run.time_to_target);
      ++reached;
    } else {
      total += static_cast<double>(config.horizon);
    }
  }
  result.mean_steps = total / static_cast<double>(seeds.size());
  result.reach_rate = static_cast<double>(reached) / static_cast<double>(seeds.size());
  return result;
}

std::vector<EvalPoint> average_curves(const std::vector<MetricsRecorder>& runs) {
  std::vector<EvalPoint> curve;
  if (runs.empty()) return curve;
  std::size_t points = runs.front().points().size();
  for (const auto& run : runs) points = std::min(points, run.points().size());
  curve.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    EvalPoint& avg = curve[i];
    avg.t = runs.front().points()[i].t;
    for (const auto& run : runs) {
      const EvalPoint& p = run.points()[i];
      avg.test_accuracy += p.test_accuracy;
      avg.test_loss += p.test_loss;
      avg.train_loss += p.train_loss;
      avg.participants += p.participants;
    }
    const auto denom = static_cast<double>(runs.size());
    avg.test_accuracy /= denom;
    avg.test_loss /= denom;
    avg.train_loss /= denom;
    avg.participants = static_cast<std::size_t>(
        static_cast<double>(avg.participants) / denom);
  }
  return curve;
}

std::optional<std::size_t> curve_time_to_target(const std::vector<EvalPoint>& curve,
                                                double target) {
  for (const auto& p : curve) {
    if (p.test_accuracy >= target) return p.t;
  }
  return std::nullopt;
}

}  // namespace mach::hfl
