// The hierarchical federated learning engine (Algorithm 1's skeleton).
//
// One simulator instance runs the full device → edge → cloud loop over a
// mobility schedule:
//   1. device sampling with the pluggable Sampler (q^t_{m,n}, Eq. 3),
//   2. local updating — I SGD steps per sampled device (Eq. 4),
//   3. edge aggregation with inverse-probability weights (Eq. 5),
//   4. cloud aggregation every T_g steps (Eq. 6) + evaluation.
//
// Aggregation form. Eq. (5) weighs the sampled devices' parameters by
// 1[m]/q[m] (Horvitz-Thompson): unbiased (Lemma 1) but highly sensitive to
// small sampling probabilities — exactly the gradient-explosion behaviour
// §III-B.2 describes and that MACH's transfer function S(.) is designed to
// tame. Three variants are provided (AggregationForm): the literal Eq. (5)
// (default — matches the paper's system and reproduces the instability that
// separates MACH from unclipped baselines), the self-normalised form most
// practical FedAvg implementations use (keeps the 1/q composition weighting
// but drops the pure scale noise), and the update form the paper's proof
// (Eq. 19) analyses (lowest variance; ablation).
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ckpt/manager.h"
#include "ckpt/options.h"
#include "comm/codec.h"
#include "comm/config.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "hfl/cost.h"
#include "hfl/metrics.h"
#include "hfl/residual_pool.h"
#include "hfl/sampler.h"
#include "mobility/schedule.h"
#include "nn/model.h"
#include "obs/observer.h"
#include "obs/registry.h"
#include "obs/resource.h"
#include "obs/span_profiler.h"
#include "obs/status_writer.h"
#include "obs/timer.h"
#include "runtime/parallel_config.h"
#include "runtime/thread_pool.h"
#include "runtime/worker_context.h"

namespace mach::hfl {

/// Edge aggregation rule (all Horvitz-Thompson-weighted; see file comment).
enum class AggregationForm {
  /// Eq. (5) verbatim: w_n = sum (1/|M_n|)(1/q_m) w_m over sampled devices.
  /// Unbiased but carries both scale noise (sum of weights != 1) and
  /// composition noise (small-q devices dominate when sampled).
  Literal,
  /// Self-normalised HT: w_n = sum (1/q_m) w_m / sum (1/q_m). The standard
  /// FedAvg-style implementation of Eq. (5): removes the pure scale noise
  /// while keeping the 1/q composition weighting (and thus the instability
  /// that extreme sampling probabilities cause — the effect MACH's transfer
  /// function defends against).
  SelfNormalized,
  /// HT weighting applied to local updates (w_m - w_n), non-sampled devices
  /// implicitly contribute the unchanged edge model — the form the paper's
  /// proof (Eq. 19) analyses. Lowest variance; ablation.
  UpdateForm,
};

struct HflOptions {
  std::size_t local_epochs = 10;       // I in Eq. (4)
  std::size_t cloud_interval = 5;      // T_g
  std::size_t batch_size = 16;         // |xi| per local step
  double learning_rate = 0.01;         // gamma
  double lr_decay = 0.0;               // gamma_t = gamma / (1 + decay * t)
  double participation = 0.5;          // sets K_n = participation * |M| / |N|
  /// Optional per-edge capacity override (size == num_edges); empty means
  /// the uniform capacity derived from `participation`.
  std::vector<double> edge_capacities;
  /// Floor applied to sampling probabilities to keep inverse weights finite.
  double min_probability = 1e-3;
  /// Edge aggregation rule (see AggregationForm).
  AggregationForm aggregation = AggregationForm::Literal;
  /// Evaluate the global model every `eval_every` cloud rounds (1 = every).
  std::size_t eval_every_cloud_rounds = 1;
  /// Cap on test examples per evaluation (0 = all).
  std::size_t eval_max_examples = 0;
  /// Also measure ||∇f(w^t)||² (Theorem 1's left-hand side) at every
  /// evaluation, over a fixed training-data sample of this many examples
  /// (0 disables the measurement).
  std::size_t track_global_grad_norm_examples = 0;
  std::uint64_t seed = 1;
  /// Optional separate seed for the Bernoulli device-sampling draws; 0 means
  /// derive from `seed`. Lets tests vary the sampling realisation while
  /// keeping model init and minibatch draws fixed (Lemma 1 Monte-Carlo).
  std::uint64_t sampling_seed = 0;
  /// Worker threads for device training and evaluation sharding (1 = the
  /// classic serial path, 0 = hardware_concurrency). Any value produces
  /// bitwise-identical runs: sampled devices train on per-worker model
  /// replicas against their own RNG streams, and every floating-point
  /// reduction (Eq. 5 edge aggregation, evaluation chunk folds) happens
  /// serially in index order afterwards.
  runtime::ParallelConfig parallel;
  /// Crash-tolerant checkpointing (src/ckpt/). With `checkpoint.every` > 0
  /// the engine freezes its full run state — model parameters, every RNG
  /// stream (including cached Box–Muller halves), sampler experience,
  /// communication counters, recorded metrics, the instrument registry and
  /// the attached trace sink's byte cursor — into an atomic CRC-checked
  /// snapshot after every N completed steps. A run restored from such a
  /// snapshot (see set_resume_payload) replays the remaining steps bitwise
  /// identically to the uninterrupted run, at any thread count.
  ckpt::CheckpointOptions checkpoint;
  /// Fault-injection schedule (device dropout, stragglers vs per-edge
  /// timeouts, edge outages, cloud upload loss — see fault/schedule.h). The
  /// default (empty) schedule takes the exact fault-free code path: every
  /// output is bitwise identical to a run without the fault layer. With
  /// faults active, survivors' Horvitz-Thompson weights are divided by the
  /// schedule's analytic arrival probability, keeping Eq. 5 unbiased over
  /// the surviving set; samplers only observe devices that actually
  /// reported. Fault draws are deterministic per (t, edge, device) — runs
  /// replay bitwise-identically at any thread count.
  fault::FaultSchedule faults;
  /// Deep profiling (src/obs/span_profiler.h). With `profile.trace_path` set
  /// the engine records hierarchical spans (round → edge round → device
  /// train → local SGD) into per-track ring buffers — two steady_clock reads
  /// and zero allocations per span — merges them at step barriers and writes
  /// a Chrome trace-event JSON (Perfetto-loadable) at run end. With
  /// `profile.status_path` set it additionally rewrites a status.json
  /// heartbeat (atomic rename) every `status_interval_seconds`. Profiling is
  /// strictly passive: the default (both paths empty) takes the exact
  /// pre-profiler code path, and even with profiling on the RNG streams,
  /// trace events and CSV output are untouched.
  obs::ProfileOptions profile;
  /// Cooperative-stop flag polled at every step barrier (nullptr = never
  /// stops early). When it becomes nonzero the engine saves one extra
  /// snapshot at the current step (when checkpointing is configured), skips
  /// the remaining steps and returns; interrupted_at() reports the cut. Set
  /// it from a SIGTERM/SIGINT handler — sig_atomic_t stores are
  /// async-signal-safe — to get checkpoint-and-exit drains (the contract
  /// the sweep orchestrator relies on).
  const volatile std::sig_atomic_t* stop_flag = nullptr;
  /// Test/CI harness: busy-hang the coordinator forever once this many
  /// steps completed (0 = off). The heartbeat stops advancing, which is
  /// exactly what a supervisor's watchdog must detect; nothing but SIGKILL
  /// gets the process out.
  std::size_t hang_at = 0;
  /// Per-link transfer codecs (src/comm/). The default (all links fp32)
  /// takes the exact pre-codec model path — bitwise identical to a build
  /// without the comm layer — while the encoded-byte ledger (pure integer
  /// arithmetic) still runs. Lossy codecs transcode every model message
  /// through encode→decode on the coordinator thread, so runs stay bitwise
  /// identical at any thread count; the top-k upload codec's per-device
  /// error-feedback residuals are part of checkpointed run state.
  comm::CommConfig comm;
};

/// Builds a fresh untrained model; invoked once for the serial scratch model
/// and, when HflOptions::parallel asks for workers, once more per worker
/// replica (the simulator reuses these model objects for every device,
/// swapping flat parameter vectors).
using ModelFactory = std::function<nn::Sequential()>;

class HflSimulator {
 public:
  /// `train`/`test` must outlive the simulator. The partition maps device ->
  /// indices into `train`. The schedule supplies B[t][n,m]; its horizon may
  /// be shorter than the requested run (it repeats cyclically).
  HflSimulator(const data::Dataset& train, const data::Dataset& test,
               data::Partition partition, const mobility::MobilitySchedule& schedule,
               ModelFactory model_factory, HflOptions options);

  /// Runs `steps` time steps with the given sampler; returns the metrics.
  /// The sampler's lifetime spans the run (experience carries across steps).
  MetricsRecorder run(Sampler& sampler, std::size_t steps);

  /// Evaluates the current global model on the test split.
  EvalPoint evaluate_global(std::size_t t);

  /// Full confusion matrix of the current global model on the test split
  /// (per-class view of the long-tail learning progress).
  ConfusionMatrix evaluate_confusion();

  /// Communication counters accumulated by the most recent run().
  const CommunicationCost& last_run_cost() const noexcept { return cost_; }

  /// Attaches one telemetry observer (nullptr detaches). Non-owning; the
  /// observer must outlive every subsequent run(). Observers are strictly
  /// passive: attaching one never changes sampling, training or aggregation
  /// (the RNG stream is untouched), only what gets reported.
  void set_observer(obs::RunObserver* observer) noexcept { observer_ = observer; }

  /// Hands the engine a decoded checkpoint payload (ckpt::CheckpointManager
  /// load → CheckpointBlob::payload) to continue from. The next run() call
  /// consumes it: it validates the fingerprint against its own configuration
  /// and the bound sampler, restores every piece of run state, skips the
  /// run_begin event and baseline evaluation (both already happened in the
  /// original run) and resumes the step loop at the recorded `next_t`.
  /// Throws ckpt::CorruptPayload (malformed snapshot) or std::runtime_error
  /// (configuration mismatch) from within that run() call.
  void set_resume_payload(std::vector<std::uint8_t> payload) {
    resume_payload_ = std::move(payload);
  }

  /// Configuration hash recorded in snapshots (see ckpt/run_state.h). Covers
  /// everything that shapes the deterministic event sequence — topology,
  /// seeds, hyperparameters, aggregation form, fault spec, sampler name and
  /// the horizon — and deliberately excludes the thread count (resuming at a
  /// different `--threads` is legal).
  std::uint64_t run_fingerprint(const Sampler& sampler, std::size_t steps) const;

  /// Wall-clock phase breakdown of the most recent run() (always recorded,
  /// observer or not — two steady_clock reads per phase scope).
  const obs::PhaseTimerSet& phase_timers() const noexcept { return timers_; }

  /// Counter/gauge/histogram registry of the most recent run().
  const obs::MetricsRegistry& metrics_registry() const noexcept { return registry_; }

  /// Span profiler of the most recent run() (nullptr unless
  /// HflOptions::profile.trace_path was set). Exposed so callers can read
  /// spans_dropped or re-export; the engine already wrote the Chrome trace
  /// at run end.
  const obs::SpanProfiler* span_profiler() const noexcept {
    return profiler_.get();
  }

  /// Whether the Chrome-trace export at the end of the last profiled run()
  /// landed on disk (true when profiling was off). A failed export is also
  /// logged as a warning at run end.
  bool profile_export_ok() const noexcept { return profile_export_ok_; }

  /// Step count at which the last run() honoured HflOptions::stop_flag and
  /// returned early (nullopt = ran to completion). When checkpointing was
  /// configured, a snapshot covering exactly this many steps is durable, so
  /// a --resume continues bitwise-identically from the cut.
  std::optional<std::size_t> interrupted_at() const noexcept {
    return interrupted_at_;
  }

  std::size_t num_devices() const noexcept { return partition_.size(); }
  std::size_t num_edges() const noexcept { return schedule_.num_edges(); }
  /// K_n for edge n (Eq. 3).
  double edge_capacity(std::size_t edge) const;

  /// Flat parameters of the current global model (for tests/examples).
  const std::vector<float>& global_parameters() const noexcept { return global_; }

  /// FederationInfo handed to samplers at bind() time.
  FederationInfo federation_info() const;

 private:
  /// Per-sampled-device result slot for one edge round: the parallel path
  /// trains into slots from workers, then the coordinator reduces them in
  /// device-index order (the serial path fills the same slots in order, so
  /// both paths share one reduction).
  struct DeviceSlot {
    TrainingObservation observation;
    std::vector<float> params;  // trained parameters w_m^{t+1}
    double seconds = 0.0;       // wall time of this device's local updates
  };

  /// One local-update phase for a device (Eq. 4) on the given scratch model
  /// (the shared serial model or a worker replica); returns its observation
  /// and leaves the trained parameters in `params_out`.
  TrainingObservation train_device(std::size_t t, std::uint32_t device,
                                   std::size_t edge,
                                   const std::vector<float>& edge_model,
                                   double learning_rate, nn::Sequential& model,
                                   std::vector<float>& params_out);

  /// ||g||^2 probe used for samplers with needs_oracle() (MACH-P).
  double probe_gradient_norm(std::uint32_t device, const std::vector<float>& params);

  /// One wire round-trip through `codec`: encodes `values` (against
  /// `reference` / `residual` where the codec uses them) into the reusable
  /// wire buffer and decodes it into `out`, emitting comm.encode/comm.decode
  /// spans. Runs on the coordinator thread only.
  void transcode(const comm::Codec& codec, std::span<const float> values,
                 std::span<const float> reference, std::span<float> residual,
                 std::vector<float>& out, std::int64_t t, std::int64_t id);

  /// Freezes the complete run state into an atomic snapshot: emits the
  /// checkpoint marker + cursor to the observer first (so the marker itself
  /// is covered by the recorded trace offset), then encodes and writes via
  /// the checkpoint manager. `next_t` steps are complete.
  void save_checkpoint(Sampler& sampler, std::size_t steps, std::size_t next_t,
                       std::size_t cloud_rounds, double window_train_loss,
                       std::size_t window_participants,
                       const MetricsRecorder& metrics);

  /// Applies a decoded snapshot payload; returns the step to resume at.
  /// Must run after Sampler::bind and instrument registration. Throws
  /// ckpt::CorruptPayload / std::runtime_error (see set_resume_payload).
  std::size_t restore_run_state(Sampler& sampler, std::size_t steps,
                                std::size_t& cloud_rounds,
                                double& window_train_loss,
                                std::size_t& window_participants,
                                MetricsRecorder& metrics);

  double learning_rate_at(std::size_t t) const;

  const data::Dataset& train_;
  const data::Dataset& test_;
  data::Partition partition_;
  const mobility::MobilitySchedule& schedule_;
  HflOptions options_;

  nn::Sequential model_;            // shared scratch model (serial path)
  std::size_t param_count_ = 0;
  std::vector<float> global_;       // w^t
  std::vector<std::vector<float>> edge_models_;  // w_n^t
  CommunicationCost cost_;
  common::Rng engine_rng_;
  std::vector<common::Rng> device_rngs_;  // local minibatch randomness

  // Parallel execution runtime (null in serial mode, i.e. threads <= 1).
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::unique_ptr<runtime::ModelReplicaPool> replicas_;
  std::vector<std::uint32_t> sampled_;     // per-edge realised Bernoulli draws
  std::vector<DeviceSlot> device_slots_;   // one per sampled device, reused
  std::vector<nn::StepStats> eval_slots_;  // one per evaluation chunk, reused

  // Fault-injection runtime (inactive with an empty schedule). Fates are
  // decided on the coordinator before training dispatch, from per-event
  // hashed RNG streams — identical at any thread count.
  fault::FaultInjector injector_;
  std::vector<fault::DeviceFaultDecision> fates_;  // parallel to sampled_
  std::vector<std::uint64_t> survivors_;           // device ids, per round
  std::vector<std::uint64_t> lost_;                // device ids, per round

  // Communication-codec runtime (src/comm/). Codec objects are immutable
  // and built once in the constructor; with the all-fp32 default none of the
  // lossy machinery below runs and the model path is untouched.
  std::unique_ptr<comm::Codec> codec_device_up_;
  std::unique_ptr<comm::Codec> codec_device_down_;
  std::unique_ptr<comm::Codec> codec_probe_;
  std::unique_ptr<comm::Codec> codec_edge_up_;
  std::unique_ptr<comm::Codec> codec_cloud_down_;
  bool comm_lossy_ = false;  // any link non-fp32
  // Encoded bytes per message on each link (value-independent).
  std::uint64_t bytes_device_up_ = 0;
  std::uint64_t bytes_device_down_ = 0;
  std::uint64_t bytes_probe_ = 0;
  std::uint64_t bytes_edge_up_ = 0;
  std::uint64_t bytes_cloud_down_ = 0;
  /// Per-device error-feedback residuals of the upload codec, packed into
  /// one contiguous slab with a u32 handle per device (inactive unless the
  /// codec is stateful); checkpointed so resume is bitwise identical.
  ResidualPool upload_residuals_;
  /// The last cloud broadcast as the edges received it — the shared
  /// reference both ends of a delta-coded edge→cloud upload agree on.
  std::vector<float> last_broadcast_;
  std::vector<float> downlink_model_;   // decoded device-download payload
  std::vector<float> probe_model_;      // decoded probe payload
  std::vector<float> decoded_upload_;   // decoded device/edge upload payload
  std::vector<float> broadcast_model_;  // decoded cloud broadcast payload
  comm::Encoded wire_;                  // reused encode buffer
  obs::Counter* ctr_comm_encodes_ = nullptr;  // set per run when lossy
  obs::Counter* ctr_comm_decodes_ = nullptr;

  obs::RunObserver* observer_ = nullptr;  // non-owning; see set_observer
  obs::PhaseTimerSet timers_;
  obs::MetricsRegistry registry_;

  // Deep-profiling runtime (all null unless HflOptions::profile enables
  // them; rebuilt at the start of each run()).
  std::unique_ptr<obs::SpanProfiler> profiler_;
  std::unique_ptr<obs::ResourceSampler> resources_;
  std::unique_ptr<obs::StatusWriter> status_;
  bool profile_export_ok_ = true;
  std::optional<std::size_t> interrupted_at_;

  // Checkpoint runtime (null until a run with checkpoint.every > 0 starts).
  std::unique_ptr<ckpt::CheckpointManager> ckpt_manager_;
  std::vector<std::uint8_t> resume_payload_;  // consumed by the next run()
};

}  // namespace mach::hfl
