// Fully-connected layer: y = x W + b, x[batch, in], W[in, out], b[out].
#pragma once

#include "nn/layer.h"

namespace mach::nn {

class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  const tensor::Tensor& forward(const tensor::Tensor& input) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  void init_params(common::Rng& rng) override;
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  tensor::Tensor weight_;       // [in, out]
  tensor::Tensor bias_;         // [out]
  tensor::Tensor grad_weight_;  // [in, out]
  tensor::Tensor grad_bias_;    // [out]
  tensor::Tensor input_;        // cached forward input
  tensor::Tensor output_;
  tensor::Tensor grad_input_;
};

}  // namespace mach::nn
