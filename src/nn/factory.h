// Builders for the model architectures used in the paper's evaluation:
//   - 2 conv + 2 fc for the MNIST / FMNIST tasks,
//   - 3 conv + 2 fc for the CIFAR10 task,
// plus a small MLP used by fast tests and smoke-mode benches.
#pragma once

#include <cstddef>

#include "nn/model.h"

namespace mach::nn {

/// Paper's MNIST/FMNIST network: conv-relu-pool ×2, then fc-relu-fc.
/// Input must be [batch, channels, height, width] with height and width
/// divisible by 4 (two 2x2 poolings).
Sequential make_cnn2(std::size_t channels, std::size_t height, std::size_t width,
                     std::size_t classes);

/// Paper's CIFAR10 network: conv-relu-pool ×3, then fc-relu-fc. Height and
/// width must be divisible by 8.
Sequential make_cnn3(std::size_t channels, std::size_t height, std::size_t width,
                     std::size_t classes);

/// Two-layer MLP over flat feature vectors: fc-relu-fc.
Sequential make_mlp(std::size_t features, std::size_t hidden, std::size_t classes);

}  // namespace mach::nn
