// 2-D convolution layer (square kernel, stride 1, symmetric zero padding),
// implemented via im2col + GEMM. Input/output layout is NCHW.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace mach::nn {

class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t pad);

  const tensor::Tensor& forward(const tensor::Tensor& input) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  void init_params(common::Rng& rng) override;
  std::string name() const override { return "Conv2D"; }

  const tensor::ConvSpec& spec() const noexcept { return spec_; }
  const tensor::ScratchArena* scratch_arena() const override { return &arena_; }

 private:
  tensor::ConvSpec spec_;
  tensor::Tensor weight_;       // [out_c, in_c, k, k]
  tensor::Tensor bias_;         // [out_c]
  tensor::Tensor grad_weight_;
  tensor::Tensor grad_bias_;
  tensor::Tensor input_;
  tensor::Tensor output_;
  tensor::Tensor grad_input_;
  tensor::ScratchArena arena_;  // im2col cols + grad-cols scratch
};

}  // namespace mach::nn
