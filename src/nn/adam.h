// Adam optimiser (Kingma & Ba) with bias-corrected first/second moments.
// Provided as an alternative local optimiser for extension experiments; the
// paper's local updating rule (Eq. 4) is plain SGD.
#pragma once

#include <vector>

#include "nn/model.h"

namespace mach::nn {

struct AdamOptions {
  double learning_rate = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam {
 public:
  explicit Adam(AdamOptions options) : options_(options) {}

  /// Applies one update using the gradients currently in the layers. Must
  /// stay paired with one model whose layer structure does not change.
  void step(Sequential& model);

  /// Drops moment estimates and the step counter.
  void reset();

  double learning_rate() const noexcept { return options_.learning_rate; }
  void set_learning_rate(double lr) noexcept { options_.learning_rate = lr; }
  std::size_t steps_taken() const noexcept { return step_count_; }

 private:
  AdamOptions options_;
  std::size_t step_count_ = 0;
  std::vector<std::vector<float>> first_moments_;
  std::vector<std::vector<float>> second_moments_;
};

}  // namespace mach::nn
