// Adam optimiser (Kingma & Ba) with bias-corrected first/second moments.
// Provided as an alternative local optimiser for extension experiments; the
// paper's local updating rule (Eq. 4) is plain SGD.
#pragma once

#include <vector>

#include "nn/model.h"

namespace mach::nn {

struct AdamOptions {
  double learning_rate = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam {
 public:
  explicit Adam(AdamOptions options) : options_(options) {}

  /// Applies one update using the gradients currently in the layers. Must
  /// stay paired with one model whose layer structure does not change.
  void step(Sequential& model);

  /// Drops moment estimates and the step counter.
  void reset();

  double learning_rate() const noexcept { return options_.learning_rate; }
  void set_learning_rate(double lr) noexcept { options_.learning_rate = lr; }
  std::size_t steps_taken() const noexcept { return step_count_; }

  /// Moment estimates, one buffer per parameter tensor in layer order
  /// (empty until the first step). Exposed for optimizer-state
  /// checkpointing; bias correction depends on steps_taken(), so the three
  /// pieces must be restored together via set_state.
  const std::vector<std::vector<float>>& first_moments() const noexcept {
    return first_moments_;
  }
  const std::vector<std::vector<float>>& second_moments() const noexcept {
    return second_moments_;
  }
  /// Checkpoint restore: replaces the step counter and both moment sets.
  void set_state(std::size_t step_count,
                 std::vector<std::vector<float>> first_moments,
                 std::vector<std::vector<float>> second_moments) {
    step_count_ = step_count;
    first_moments_ = std::move(first_moments);
    second_moments_ = std::move(second_moments);
  }

 private:
  AdamOptions options_;
  std::size_t step_count_ = 0;
  std::vector<std::vector<float>> first_moments_;
  std::vector<std::vector<float>> second_moments_;
};

}  // namespace mach::nn
