#include "nn/model.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace mach::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  param_refs_valid_ = false;
  return *this;
}

void Sequential::init_params(common::Rng& rng) {
  for (auto& layer : layers_) layer->init_params(rng);
}

void Sequential::set_training(bool training) {
  for (auto& layer : layers_) layer->set_training(training);
}

const tensor::Tensor& Sequential::forward(const tensor::Tensor& input) {
  if (layers_.empty()) throw std::logic_error("Sequential::forward: empty model");
  const tensor::Tensor* current = &input;
  for (auto& layer : layers_) current = &layer->forward(*current);
  return *current;
}

StepStats Sequential::forward_backward(const tensor::Tensor& input,
                                       std::span<const int> labels) {
  set_training(true);
  const tensor::Tensor& logits = forward(input);
  if (!probs_.same_shape(logits)) probs_ = tensor::Tensor(logits.shape());
  tensor::softmax(logits, probs_);

  StepStats stats;
  stats.batch_size = labels.size();
  stats.loss = tensor::cross_entropy_loss(probs_, labels);
  stats.correct = tensor::count_correct(logits, labels);

  if (!grad_logits_.same_shape(logits)) grad_logits_ = tensor::Tensor(logits.shape());
  tensor::softmax_cross_entropy_backward(probs_, labels, grad_logits_);

  const tensor::Tensor* grad = &grad_logits_;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = &(*it)->backward(*grad);
  }

  for (const ParamRef& ref : param_refs()) {
    stats.grad_squared_norm += ref.grad->squared_norm();
  }
  return stats;
}

StepStats Sequential::evaluate(const tensor::Tensor& input, std::span<const int> labels) {
  set_training(false);
  const tensor::Tensor& logits = forward(input);
  if (!probs_.same_shape(logits)) probs_ = tensor::Tensor(logits.shape());
  tensor::softmax(logits, probs_);
  StepStats stats;
  stats.batch_size = labels.size();
  stats.loss = tensor::cross_entropy_loss(probs_, labels);
  stats.correct = tensor::count_correct(logits, labels);
  return stats;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> refs;
  for (auto& layer : layers_) {
    for (ParamRef ref : layer->params()) refs.push_back(ref);
  }
  return refs;
}

const std::vector<ParamRef>& Sequential::param_refs() {
  if (!param_refs_valid_) {
    cached_param_refs_ = params();
    param_refs_valid_ = true;
  }
  return cached_param_refs_;
}

std::size_t Sequential::scratch_grow_events() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    if (const tensor::ScratchArena* arena = layer->scratch_arena()) {
      total += arena->stats().grow_events;
    }
  }
  return total;
}

std::size_t Sequential::num_parameters() {
  std::size_t total = 0;
  for (const ParamRef& ref : param_refs()) total += ref.value->numel();
  return total;
}

std::vector<float> Sequential::get_parameters() {
  std::vector<float> flat;
  flat.reserve(num_parameters());
  for (const ParamRef& ref : param_refs()) {
    flat.insert(flat.end(), ref.value->flat().begin(), ref.value->flat().end());
  }
  return flat;
}

void Sequential::set_parameters(std::span<const float> flat) {
  std::size_t offset = 0;
  for (const ParamRef& ref : param_refs()) {
    const std::size_t count = ref.value->numel();
    if (offset + count > flat.size()) {
      throw std::invalid_argument("Sequential::set_parameters: vector too short");
    }
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
              flat.begin() + static_cast<std::ptrdiff_t>(offset + count),
              ref.value->flat().begin());
    offset += count;
  }
  if (offset != flat.size()) {
    throw std::invalid_argument("Sequential::set_parameters: vector too long");
  }
}

std::vector<float> Sequential::get_gradients() {
  std::vector<float> flat;
  flat.reserve(num_parameters());
  for (const ParamRef& ref : param_refs()) {
    flat.insert(flat.end(), ref.grad->flat().begin(), ref.grad->flat().end());
  }
  return flat;
}

}  // namespace mach::nn
