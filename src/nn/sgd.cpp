#include "nn/sgd.h"

namespace mach::nn {

void Sgd::step(Sequential& model) {
  auto refs = model.params();
  if (options_.momentum != 0.0 && velocities_.size() != refs.size()) {
    velocities_.assign(refs.size(), {});
  }
  const auto lr = static_cast<float>(options_.learning_rate);
  const auto mu = static_cast<float>(options_.momentum);
  const auto wd = static_cast<float>(options_.weight_decay);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    auto values = refs[i].value->flat();
    auto grads = refs[i].grad->flat();
    if (mu != 0.0f) {
      auto& velocity = velocities_[i];
      if (velocity.size() != values.size()) velocity.assign(values.size(), 0.0f);
      for (std::size_t j = 0; j < values.size(); ++j) {
        const float g = grads[j] + wd * values[j];
        velocity[j] = mu * velocity[j] + g;
        values[j] -= lr * velocity[j];
      }
    } else {
      for (std::size_t j = 0; j < values.size(); ++j) {
        values[j] -= lr * (grads[j] + wd * values[j]);
      }
    }
  }
}

}  // namespace mach::nn
