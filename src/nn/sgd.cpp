#include "nn/sgd.h"

#include "tensor/kernels/kernels.h"

namespace mach::nn {

void Sgd::step(Sequential& model) {
  const auto& refs = model.param_refs();
  if (options_.momentum != 0.0 && velocities_.size() != refs.size()) {
    velocities_.assign(refs.size(), {});
  }
  const auto lr = static_cast<float>(options_.learning_rate);
  const auto mu = static_cast<float>(options_.momentum);
  const auto wd = static_cast<float>(options_.weight_decay);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    auto values = refs[i].value->flat();
    auto grads = refs[i].grad->flat();
    if (mu != 0.0f) {
      auto& velocity = velocities_[i];
      if (velocity.size() != values.size()) velocity.assign(values.size(), 0.0f);
      tensor::kernels::sgd_momentum_step(values.size(), lr, mu, wd,
                                         grads.data(), velocity.data(),
                                         values.data());
    } else {
      tensor::kernels::sgd_step(values.size(), lr, wd, grads.data(),
                                values.data());
    }
  }
}

}  // namespace mach::nn
