#include "nn/dense.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace mach::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({in_features, out_features}),
      bias_({out_features}),
      grad_weight_({in_features, out_features}),
      grad_bias_({out_features}) {}

void Dense::init_params(common::Rng& rng) {
  // He-normal fan-in initialisation; biases start at zero.
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_));
  for (auto& w : weight_.flat()) w = static_cast<float>(rng.normal(0.0, stddev));
  bias_.zero();
}

const tensor::Tensor& Dense::forward(const tensor::Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected [batch, " +
                                std::to_string(in_) + "], got " + input.shape_string());
  }
  input_ = input;  // cache for backward
  const std::size_t batch = input.dim(0);
  if (output_.rank() != 2 || output_.dim(0) != batch || output_.dim(1) != out_) {
    output_ = tensor::Tensor({batch, out_});
  }
  tensor::linear_forward(input_, weight_, bias_, output_);
  return output_;
}

const tensor::Tensor& Dense::backward(const tensor::Tensor& grad_output) {
  const std::size_t batch = input_.dim(0);
  if (grad_output.rank() != 2 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_) {
    throw std::invalid_argument("Dense::backward: bad grad shape");
  }
  // dW = x^T * dy ; db = column sums of dy ; dx = dy * W^T
  tensor::gemm_at_b(input_, grad_output, grad_weight_);
  tensor::sum_rows(grad_output, grad_bias_);
  if (grad_input_.rank() != 2 || grad_input_.dim(0) != batch ||
      grad_input_.dim(1) != in_) {
    grad_input_ = tensor::Tensor({batch, in_});
  }
  tensor::gemm_a_bt(grad_output, weight_, grad_input_);
  return grad_input_;
}

std::vector<ParamRef> Dense::params() {
  return {{&weight_, &grad_weight_, "weight"}, {&bias_, &grad_bias_, "bias"}};
}

}  // namespace mach::nn
