#include "nn/activations.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.h"

namespace mach::nn {

const tensor::Tensor& ReLU::forward(const tensor::Tensor& input) {
  input_ = input;
  if (!output_.same_shape(input)) output_ = tensor::Tensor(input.shape());
  tensor::relu_forward(input_, output_);
  return output_;
}

const tensor::Tensor& ReLU::backward(const tensor::Tensor& grad_output) {
  if (!grad_input_.same_shape(input_)) grad_input_ = tensor::Tensor(input_.shape());
  tensor::relu_backward(input_, grad_output, grad_input_);
  return grad_input_;
}

const tensor::Tensor& MaxPool2x2::forward(const tensor::Tensor& input) {
  if (input.rank() != 4) throw std::invalid_argument("MaxPool2x2: rank-4 input required");
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0), c = input.dim(1);
  const std::size_t oh = input.dim(2) / 2, ow = input.dim(3) / 2;
  if (output_.rank() != 4 || output_.dim(0) != batch || output_.dim(1) != c ||
      output_.dim(2) != oh || output_.dim(3) != ow) {
    output_ = tensor::Tensor({batch, c, oh, ow});
  }
  tensor::maxpool2x2_forward(input, output_, argmax_);
  return output_;
}

const tensor::Tensor& MaxPool2x2::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(output_)) {
    throw std::invalid_argument("MaxPool2x2::backward: bad grad shape");
  }
  if (grad_input_.shape() != input_shape_) grad_input_ = tensor::Tensor(input_shape_);
  tensor::maxpool2x2_backward(grad_output, argmax_, grad_input_);
  return grad_input_;
}

const tensor::Tensor& Flatten::forward(const tensor::Tensor& input) {
  if (input.rank() < 2) throw std::invalid_argument("Flatten: rank >= 2 required");
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  const std::size_t features = input.numel() / batch;
  if (output_.rank() != 2 || output_.dim(0) != batch || output_.dim(1) != features) {
    output_ = tensor::Tensor({batch, features});
  }
  std::copy(input.flat().begin(), input.flat().end(), output_.flat().begin());
  return output_;
}

const tensor::Tensor& Flatten::backward(const tensor::Tensor& grad_output) {
  if (grad_output.numel() != tensor::Tensor::shape_numel(input_shape_)) {
    throw std::invalid_argument("Flatten::backward: element count mismatch");
  }
  if (grad_input_.shape() != input_shape_) {
    grad_input_ = tensor::Tensor(input_shape_);
  }
  std::copy(grad_output.flat().begin(), grad_output.flat().end(),
            grad_input_.flat().begin());
  return grad_input_;
}

}  // namespace mach::nn
