// Inverted dropout: during training each activation is zeroed with
// probability `rate` and the survivors are scaled by 1/(1-rate), so
// evaluation mode is a pass-through. Deterministic given its seed.
#pragma once

#include "nn/layer.h"

namespace mach::nn {

class Dropout final : public Layer {
 public:
  /// `rate` in [0, 1): probability of dropping an activation.
  explicit Dropout(double rate, std::uint64_t seed = 0xd120);

  const tensor::Tensor& forward(const tensor::Tensor& input) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_output) override;
  void set_training(bool training) override { training_ = training; }
  std::string name() const override { return "Dropout"; }

  double rate() const noexcept { return rate_; }
  bool training() const noexcept { return training_; }

 private:
  double rate_;
  bool training_ = true;
  common::Rng rng_;
  std::vector<float> mask_;  // 0 or 1/(1-rate) per element of the last forward
  tensor::Tensor output_;
  tensor::Tensor grad_input_;
};

}  // namespace mach::nn
