// Layer normalisation (Ba et al.): per-sample standardisation over the
// feature dimension with learned gain/bias. Unlike BatchNorm it carries no
// cross-device running statistics, which makes it the normalisation of
// choice in federated settings (no stats to aggregate).
// Operates on [batch, features] inputs.
#pragma once

#include "nn/layer.h"

namespace mach::nn {

class LayerNorm final : public Layer {
 public:
  explicit LayerNorm(std::size_t features, double epsilon = 1e-5);

  const tensor::Tensor& forward(const tensor::Tensor& input) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  void init_params(common::Rng& rng) override;
  std::string name() const override { return "LayerNorm"; }

  std::size_t features() const noexcept { return features_; }

 private:
  std::size_t features_;
  double epsilon_;
  tensor::Tensor gain_;       // [features]
  tensor::Tensor bias_;       // [features]
  tensor::Tensor grad_gain_;
  tensor::Tensor grad_bias_;
  tensor::Tensor normalized_;  // cached x_hat
  std::vector<float> inv_std_; // per-row 1/sigma
  tensor::Tensor output_;
  tensor::Tensor grad_input_;
};

}  // namespace mach::nn
