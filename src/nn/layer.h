// Layer abstraction for the from-scratch neural-network substrate.
//
// The simulator trains hundreds of small per-device models, so layers cache
// their activations internally and reuse buffers across steps; a fresh
// forward() invalidates the previous backward() state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace mach::nn {

/// Non-owning handle to one parameter tensor and its gradient accumulator.
struct ParamRef {
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;
  std::string name;
};

class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Runs the layer on `input`, returning a reference to the cached output.
  /// The reference stays valid until the next forward() on this layer.
  virtual const tensor::Tensor& forward(const tensor::Tensor& input) = 0;

  /// Backpropagates `grad_output` (shape of the last forward output), filling
  /// parameter gradients and returning a reference to the cached input grad.
  virtual const tensor::Tensor& backward(const tensor::Tensor& grad_output) = 0;

  /// Parameter handles; empty for stateless layers.
  virtual std::vector<ParamRef> params() { return {}; }

  /// Randomises parameters (He initialisation for ReLU nets). Stateless
  /// layers ignore it.
  virtual void init_params(common::Rng& /*rng*/) {}

  /// Toggles training-time behaviour (Dropout noise on/off). Most layers
  /// behave identically in both modes and ignore this.
  virtual void set_training(bool /*training*/) {}

  /// The layer's scratch arena, if it owns one (Conv2D does). Exposed so the
  /// allocation test can assert the arenas stop growing once training is
  /// warm.
  virtual const tensor::ScratchArena* scratch_arena() const { return nullptr; }

  virtual std::string name() const = 0;

 protected:
  Layer() = default;
};

}  // namespace mach::nn
