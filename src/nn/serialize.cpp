#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace mach::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4d414348;  // "MACH"
constexpr std::uint32_t kVersion = 1;
}  // namespace

bool save_parameters(Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::vector<float> flat = model.get_parameters();
  const auto count = static_cast<std::uint64_t>(flat.size());
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(flat.data()),
            static_cast<std::streamsize>(flat.size() * sizeof(float)));
  return static_cast<bool>(out);
}

void load_parameters(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  if (version != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version");
  }
  if (count != model.num_parameters()) {
    throw std::invalid_argument("load_parameters: parameter count mismatch");
  }
  std::vector<float> flat(count);
  in.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) throw std::runtime_error("load_parameters: truncated file " + path);
  model.set_parameters(flat);
}

}  // namespace mach::nn
