#include "nn/serialize.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace mach::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4d414348;      // "MACH" — flat weights
constexpr std::uint32_t kOptimMagic = 0x4d4f5054;  // "MOPT" — optimizer state
constexpr std::uint32_t kVersion = 1;
// Optimizer kind discriminator inside a "MOPT" file: loading with the wrong
// overload is a hard error, not a silent misinterpretation of the buffers.
constexpr std::uint32_t kKindSgd = 1;
constexpr std::uint32_t kKindAdam = 2;

/// errno as captured right after the failed stream operation. ofstream/
/// ifstream set errno on the underlying open/read/write syscalls, so this is
/// the actionable half of the error message (ENOENT, EACCES, ENOSPC, ...).
[[noreturn]] void throw_io_error(const std::string& what, const std::string& path) {
  const int err = errno;
  std::string message = what + ": " + path;
  if (err != 0) {
    message += " (";
    message += std::strerror(err);
    message += ")";
  }
  throw std::runtime_error(message);
}

void write_bytes(std::ofstream& out, const void* data, std::size_t bytes,
                 const std::string& what, const std::string& path) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw_io_error(what + ": write failed", path);
}

void read_bytes(std::ifstream& in, void* data, std::size_t bytes,
                const std::string& what, const std::string& path) {
  in.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (!in) throw_io_error(what + ": truncated file", path);
}

/// Nested float buffers (SGD velocities, Adam moments): outer count, then
/// per-buffer length + float32 payload.
void write_buffers(std::ofstream& out, const std::vector<std::vector<float>>& buffers,
                   const std::string& what, const std::string& path) {
  const auto outer = static_cast<std::uint64_t>(buffers.size());
  write_bytes(out, &outer, sizeof(outer), what, path);
  for (const auto& buffer : buffers) {
    const auto inner = static_cast<std::uint64_t>(buffer.size());
    write_bytes(out, &inner, sizeof(inner), what, path);
    write_bytes(out, buffer.data(), buffer.size() * sizeof(float), what, path);
  }
}

std::vector<std::vector<float>> read_buffers(std::ifstream& in,
                                             const std::string& what,
                                             const std::string& path) {
  std::uint64_t outer = 0;
  read_bytes(in, &outer, sizeof(outer), what, path);
  std::vector<std::vector<float>> buffers(static_cast<std::size_t>(outer));
  for (auto& buffer : buffers) {
    std::uint64_t inner = 0;
    read_bytes(in, &inner, sizeof(inner), what, path);
    buffer.resize(static_cast<std::size_t>(inner));
    read_bytes(in, buffer.data(), buffer.size() * sizeof(float), what, path);
  }
  return buffers;
}

std::ofstream open_for_write(const std::string& path, const std::string& what) {
  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) throw_io_error(what + ": cannot create", path);
  return out;
}

std::ifstream open_for_read(const std::string& path, const std::string& what) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_io_error(what + ": cannot open", path);
  return in;
}

/// Shared "MOPT" preamble reader: validates magic/version and returns the
/// kind tag for the caller to check against its expected optimizer.
std::uint32_t read_optimizer_preamble(std::ifstream& in, const std::string& what,
                                      const std::string& path) {
  std::uint32_t magic = 0, version = 0, kind = 0;
  read_bytes(in, &magic, sizeof(magic), what, path);
  read_bytes(in, &version, sizeof(version), what, path);
  read_bytes(in, &kind, sizeof(kind), what, path);
  if (magic != kOptimMagic) {
    throw std::runtime_error(what + ": bad magic in " + path);
  }
  if (version != kVersion) {
    throw std::runtime_error(what + ": unsupported version in " + path);
  }
  return kind;
}

}  // namespace

void save_parameters(Sequential& model, const std::string& path) {
  const std::string what = "save_parameters";
  std::ofstream out = open_for_write(path, what);
  const std::vector<float> flat = model.get_parameters();
  const auto count = static_cast<std::uint64_t>(flat.size());
  write_bytes(out, &kMagic, sizeof(kMagic), what, path);
  write_bytes(out, &kVersion, sizeof(kVersion), what, path);
  write_bytes(out, &count, sizeof(count), what, path);
  write_bytes(out, flat.data(), flat.size() * sizeof(float), what, path);
  out.flush();
  if (!out) throw_io_error(what + ": flush failed", path);
}

void load_parameters(Sequential& model, const std::string& path) {
  const std::string what = "load_parameters";
  std::ifstream in = open_for_read(path, what);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t count = 0;
  read_bytes(in, &magic, sizeof(magic), what, path);
  if (magic != kMagic) {
    throw std::runtime_error(what + ": bad magic in " + path);
  }
  read_bytes(in, &version, sizeof(version), what, path);
  if (version != kVersion) {
    throw std::runtime_error(what + ": unsupported version in " + path);
  }
  read_bytes(in, &count, sizeof(count), what, path);
  if (count != model.num_parameters()) {
    throw std::invalid_argument(what + ": parameter count mismatch");
  }
  std::vector<float> flat(count);
  read_bytes(in, flat.data(), flat.size() * sizeof(float), what, path);
  model.set_parameters(flat);
}

void save_optimizer_state(const Sgd& optimizer, const std::string& path) {
  const std::string what = "save_optimizer_state(sgd)";
  std::ofstream out = open_for_write(path, what);
  write_bytes(out, &kOptimMagic, sizeof(kOptimMagic), what, path);
  write_bytes(out, &kVersion, sizeof(kVersion), what, path);
  write_bytes(out, &kKindSgd, sizeof(kKindSgd), what, path);
  write_buffers(out, optimizer.velocities(), what, path);
  out.flush();
  if (!out) throw_io_error(what + ": flush failed", path);
}

void save_optimizer_state(const Adam& optimizer, const std::string& path) {
  const std::string what = "save_optimizer_state(adam)";
  std::ofstream out = open_for_write(path, what);
  write_bytes(out, &kOptimMagic, sizeof(kOptimMagic), what, path);
  write_bytes(out, &kVersion, sizeof(kVersion), what, path);
  write_bytes(out, &kKindAdam, sizeof(kKindAdam), what, path);
  const auto steps = static_cast<std::uint64_t>(optimizer.steps_taken());
  write_bytes(out, &steps, sizeof(steps), what, path);
  write_buffers(out, optimizer.first_moments(), what, path);
  write_buffers(out, optimizer.second_moments(), what, path);
  out.flush();
  if (!out) throw_io_error(what + ": flush failed", path);
}

void load_optimizer_state(Sgd& optimizer, const std::string& path) {
  const std::string what = "load_optimizer_state(sgd)";
  std::ifstream in = open_for_read(path, what);
  if (read_optimizer_preamble(in, what, path) != kKindSgd) {
    throw std::runtime_error(what + ": " + path + " holds a different optimizer kind");
  }
  optimizer.set_velocities(read_buffers(in, what, path));
}

void load_optimizer_state(Adam& optimizer, const std::string& path) {
  const std::string what = "load_optimizer_state(adam)";
  std::ifstream in = open_for_read(path, what);
  if (read_optimizer_preamble(in, what, path) != kKindAdam) {
    throw std::runtime_error(what + ": " + path + " holds a different optimizer kind");
  }
  std::uint64_t steps = 0;
  read_bytes(in, &steps, sizeof(steps), what, path);
  std::vector<std::vector<float>> first = read_buffers(in, what, path);
  std::vector<std::vector<float>> second = read_buffers(in, what, path);
  optimizer.set_state(static_cast<std::size_t>(steps), std::move(first),
                      std::move(second));
}

}  // namespace mach::nn
