// Plain SGD optimiser with optional momentum and weight decay, matching the
// per-device local updating rule of Eq. (4) in the paper.
#pragma once

#include <vector>

#include "nn/model.h"

namespace mach::nn {

struct SgdOptions {
  double learning_rate = 0.01;
  double momentum = 0.0;       // 0 disables the velocity buffer
  double weight_decay = 0.0;   // L2 penalty coefficient
};

class Sgd {
 public:
  explicit Sgd(SgdOptions options) : options_(options) {}

  /// Applies one update to every parameter of `model` using the gradients
  /// currently stored in the layers. Velocity buffers are lazily created and
  /// keyed by parameter order, so a Sgd instance must stay paired with one
  /// model whose layer structure does not change.
  void step(Sequential& model);

  /// Drops velocity state (used when a device re-downloads an edge model).
  void reset() { velocities_.clear(); }

  double learning_rate() const noexcept { return options_.learning_rate; }
  void set_learning_rate(double lr) noexcept { options_.learning_rate = lr; }

  /// Velocity buffers, one per parameter tensor in layer order (empty until
  /// the first momentum step). Exposed for optimizer-state checkpointing.
  const std::vector<std::vector<float>>& velocities() const noexcept {
    return velocities_;
  }
  /// Checkpoint restore: replaces the velocity buffers. The shapes must
  /// match the paired model's parameter tensors (unchecked here — step()
  /// indexes by parameter order).
  void set_velocities(std::vector<std::vector<float>> velocities) {
    velocities_ = std::move(velocities);
  }

 private:
  SgdOptions options_;
  std::vector<std::vector<float>> velocities_;
};

}  // namespace mach::nn
