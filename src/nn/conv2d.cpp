#include "nn/conv2d.h"

#include <cmath>
#include <stdexcept>

namespace mach::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t pad)
    : weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  spec_.in_channels = in_channels;
  spec_.out_channels = out_channels;
  spec_.kernel = kernel;
  spec_.pad = pad;
  spec_.stride = 1;
}

void Conv2D::init_params(common::Rng& rng) {
  const double fan_in =
      static_cast<double>(spec_.in_channels * spec_.kernel * spec_.kernel);
  const double stddev = std::sqrt(2.0 / fan_in);
  for (auto& w : weight_.flat()) w = static_cast<float>(rng.normal(0.0, stddev));
  bias_.zero();
}

const tensor::Tensor& Conv2D::forward(const tensor::Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != spec_.in_channels) {
    throw std::invalid_argument("Conv2D::forward: bad input " + input.shape_string());
  }
  input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t oh = spec_.out_dim(input.dim(2));
  const std::size_t ow = spec_.out_dim(input.dim(3));
  if (output_.rank() != 4 || output_.dim(0) != batch ||
      output_.dim(1) != spec_.out_channels || output_.dim(2) != oh ||
      output_.dim(3) != ow) {
    output_ = tensor::Tensor({batch, spec_.out_channels, oh, ow});
  }
  tensor::conv2d_forward(input_, weight_, bias_, spec_, output_, arena_);
  return output_;
}

const tensor::Tensor& Conv2D::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(output_)) {
    throw std::invalid_argument("Conv2D::backward: bad grad shape");
  }
  if (!grad_input_.same_shape(input_)) {
    grad_input_ = tensor::Tensor(input_.shape());
  }
  tensor::conv2d_backward(input_, weight_, grad_output, spec_, grad_input_,
                          grad_weight_, grad_bias_, arena_);
  return grad_input_;
}

std::vector<ParamRef> Conv2D::params() {
  return {{&weight_, &grad_weight_, "weight"}, {&bias_, &grad_bias_, "bias"}};
}

}  // namespace mach::nn
