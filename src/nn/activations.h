// Stateless shape-preserving layers: ReLU, MaxPool2x2 and Flatten.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace mach::nn {

class ReLU final : public Layer {
 public:
  const tensor::Tensor& forward(const tensor::Tensor& input) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  tensor::Tensor input_;
  tensor::Tensor output_;
  tensor::Tensor grad_input_;
};

/// 2x2 max pooling with stride 2 over NCHW input (H and W must be even).
class MaxPool2x2 final : public Layer {
 public:
  const tensor::Tensor& forward(const tensor::Tensor& input) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2x2"; }

 private:
  std::vector<std::size_t> input_shape_;
  std::vector<std::uint32_t> argmax_;
  tensor::Tensor output_;
  tensor::Tensor grad_input_;
};

/// Collapses [n, c, h, w] (or any rank >= 2) into [n, c*h*w].
class Flatten final : public Layer {
 public:
  const tensor::Tensor& forward(const tensor::Tensor& input) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> input_shape_;
  tensor::Tensor output_;
  tensor::Tensor grad_input_;
};

}  // namespace mach::nn
