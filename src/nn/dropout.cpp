#include "nn/dropout.h"

#include <stdexcept>

namespace mach::nn {

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate_ < 0.0 || rate_ >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

const tensor::Tensor& Dropout::forward(const tensor::Tensor& input) {
  if (!output_.same_shape(input)) output_ = tensor::Tensor(input.shape());
  if (!training_ || rate_ == 0.0) {
    std::copy(input.flat().begin(), input.flat().end(), output_.flat().begin());
    mask_.assign(input.numel(), 1.0f);
    return output_;
  }
  const auto keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_.resize(input.numel());
  const float* in = input.data();
  float* out = output_.data();
  for (std::size_t i = 0; i < input.numel(); ++i) {
    mask_[i] = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    out[i] = in[i] * mask_[i];
  }
  return output_;
}

const tensor::Tensor& Dropout::backward(const tensor::Tensor& grad_output) {
  if (grad_output.numel() != mask_.size()) {
    throw std::invalid_argument("Dropout::backward: no matching forward");
  }
  if (!grad_input_.same_shape(grad_output)) {
    grad_input_ = tensor::Tensor(grad_output.shape());
  }
  const float* gout = grad_output.data();
  float* gin = grad_input_.data();
  for (std::size_t i = 0; i < mask_.size(); ++i) gin[i] = gout[i] * mask_[i];
  return grad_input_;
}

}  // namespace mach::nn
