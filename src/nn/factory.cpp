#include "nn/factory.h"

#include <memory>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"

namespace mach::nn {

Sequential make_cnn2(std::size_t channels, std::size_t height, std::size_t width,
                     std::size_t classes) {
  if (height % 4 != 0 || width % 4 != 0) {
    throw std::invalid_argument("make_cnn2: height/width must be divisible by 4");
  }
  const std::size_t c1 = 8, c2 = 16, hidden = 32;
  Sequential model;
  model.add(std::make_unique<Conv2D>(channels, c1, 3, 1))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2x2>())
      .add(std::make_unique<Conv2D>(c1, c2, 3, 1))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2x2>())
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(c2 * (height / 4) * (width / 4), hidden))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(hidden, classes));
  return model;
}

Sequential make_cnn3(std::size_t channels, std::size_t height, std::size_t width,
                     std::size_t classes) {
  if (height % 8 != 0 || width % 8 != 0) {
    throw std::invalid_argument("make_cnn3: height/width must be divisible by 8");
  }
  const std::size_t c1 = 8, c2 = 16, c3 = 32, hidden = 64;
  Sequential model;
  model.add(std::make_unique<Conv2D>(channels, c1, 3, 1))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2x2>())
      .add(std::make_unique<Conv2D>(c1, c2, 3, 1))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2x2>())
      .add(std::make_unique<Conv2D>(c2, c3, 3, 1))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2x2>())
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(c3 * (height / 8) * (width / 8), hidden))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(hidden, classes));
  return model;
}

Sequential make_mlp(std::size_t features, std::size_t hidden, std::size_t classes) {
  Sequential model;
  model.add(std::make_unique<Dense>(features, hidden))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(hidden, classes));
  return model;
}

}  // namespace mach::nn
