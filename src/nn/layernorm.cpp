#include "nn/layernorm.h"

#include <cmath>
#include <stdexcept>

namespace mach::nn {

LayerNorm::LayerNorm(std::size_t features, double epsilon)
    : features_(features),
      epsilon_(epsilon),
      gain_({features}),
      bias_({features}),
      grad_gain_({features}),
      grad_bias_({features}) {
  if (features_ == 0) throw std::invalid_argument("LayerNorm: zero features");
  gain_.fill(1.0f);
  bias_.zero();
}

void LayerNorm::init_params(common::Rng& /*rng*/) {
  gain_.fill(1.0f);
  bias_.zero();
}

const tensor::Tensor& LayerNorm::forward(const tensor::Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != features_) {
    throw std::invalid_argument("LayerNorm::forward: expected [batch, " +
                                std::to_string(features_) + "]");
  }
  const std::size_t batch = input.dim(0);
  if (!normalized_.same_shape(input)) {
    normalized_ = tensor::Tensor(input.shape());
    output_ = tensor::Tensor(input.shape());
  }
  inv_std_.resize(batch);
  const float* in = input.data();
  float* xhat = normalized_.data();
  float* out = output_.data();
  const float* g = gain_.data();
  const float* b = bias_.data();
  for (std::size_t r = 0; r < batch; ++r) {
    const float* row = in + r * features_;
    double mean = 0.0;
    for (std::size_t c = 0; c < features_; ++c) mean += row[c];
    mean /= static_cast<double>(features_);
    double var = 0.0;
    for (std::size_t c = 0; c < features_; ++c) {
      var += (row[c] - mean) * (row[c] - mean);
    }
    var /= static_cast<double>(features_);
    const auto inv = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
    inv_std_[r] = inv;
    for (std::size_t c = 0; c < features_; ++c) {
      const float value = (row[c] - static_cast<float>(mean)) * inv;
      xhat[r * features_ + c] = value;
      out[r * features_ + c] = value * g[c] + b[c];
    }
  }
  return output_;
}

const tensor::Tensor& LayerNorm::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(normalized_)) {
    throw std::invalid_argument("LayerNorm::backward: bad grad shape");
  }
  const std::size_t batch = grad_output.dim(0);
  if (!grad_input_.same_shape(grad_output)) {
    grad_input_ = tensor::Tensor(grad_output.shape());
  }
  grad_gain_.zero();
  grad_bias_.zero();
  const float* gout = grad_output.data();
  const float* xhat = normalized_.data();
  const float* g = gain_.data();
  float* gg = grad_gain_.data();
  float* gb = grad_bias_.data();
  float* gin = grad_input_.data();
  const auto n = static_cast<float>(features_);
  for (std::size_t r = 0; r < batch; ++r) {
    // dgain/dbias accumulate across the batch.
    float sum_dy = 0.0f;       // sum of gain-scaled upstream grads
    float sum_dy_xhat = 0.0f;  // and their correlation with x_hat
    for (std::size_t c = 0; c < features_; ++c) {
      const float dy = gout[r * features_ + c];
      const float xh = xhat[r * features_ + c];
      gg[c] += dy * xh;
      gb[c] += dy;
      const float dyg = dy * g[c];
      sum_dy += dyg;
      sum_dy_xhat += dyg * xh;
    }
    // dx = inv_std/n * (n*dy*g - sum(dy*g) - x_hat * sum(dy*g*x_hat)).
    for (std::size_t c = 0; c < features_; ++c) {
      const float dyg = gout[r * features_ + c] * g[c];
      const float xh = xhat[r * features_ + c];
      gin[r * features_ + c] =
          inv_std_[r] / n * (n * dyg - sum_dy - xh * sum_dy_xhat);
    }
  }
  return grad_input_;
}

std::vector<ParamRef> LayerNorm::params() {
  return {{&gain_, &grad_gain_, "gain"}, {&bias_, &grad_bias_, "bias"}};
}

}  // namespace mach::nn
