// Flat-weight checkpointing: save/load a model's parameter vector to a
// small self-describing binary file (magic + count + float32 payload).
// Architecture is not serialised — loading requires a model with the same
// parameter count, which is how the simulator moves weights around anyway.
#pragma once

#include <string>

#include "nn/model.h"

namespace mach::nn {

/// Writes all parameters of `model` to `path`. Returns false on I/O error.
bool save_parameters(Sequential& model, const std::string& path);

/// Restores parameters saved by save_parameters. Throws std::runtime_error
/// on missing/corrupt files and std::invalid_argument on a parameter-count
/// mismatch with `model`.
void load_parameters(Sequential& model, const std::string& path);

}  // namespace mach::nn
