// Flat-weight checkpointing: save/load a model's parameter vector to a
// small self-describing binary file (magic + count + float32 payload).
// Architecture is not serialised — loading requires a model with the same
// parameter count, which is how the simulator moves weights around anyway.
//
// Optimizer state travels in a separate file with its own magic: SGD saves
// its velocity buffers, Adam its step counter and first/second moments, so
// a training loop interrupted mid-schedule can continue with momentum
// intact. Both sides of every function report I/O failures the same way —
// std::runtime_error carrying the errno/strerror context of the failed
// operation (std::invalid_argument for shape mismatches).
#pragma once

#include <string>

#include "nn/adam.h"
#include "nn/model.h"
#include "nn/sgd.h"

namespace mach::nn {

/// Writes all parameters of `model` to `path`. Throws std::runtime_error
/// with errno context when the file cannot be created or written.
void save_parameters(Sequential& model, const std::string& path);

/// Restores parameters saved by save_parameters. Throws std::runtime_error
/// (with errno context for I/O failures) on missing/corrupt files and
/// std::invalid_argument on a parameter-count mismatch with `model`.
void load_parameters(Sequential& model, const std::string& path);

/// Writes the optimizer's accumulated state (velocity buffers for SGD;
/// step counter + moment estimates for Adam). Throws std::runtime_error
/// with errno context on I/O failure.
void save_optimizer_state(const Sgd& optimizer, const std::string& path);
void save_optimizer_state(const Adam& optimizer, const std::string& path);

/// Restores state saved by the matching save_optimizer_state overload.
/// Throws std::runtime_error on missing/corrupt/mismatched-kind files.
void load_optimizer_state(Sgd& optimizer, const std::string& path);
void load_optimizer_state(Adam& optimizer, const std::string& path);

}  // namespace mach::nn
