#include "nn/adam.h"

#include <cmath>

namespace mach::nn {

void Adam::step(Sequential& model) {
  auto refs = model.params();
  if (first_moments_.size() != refs.size()) {
    first_moments_.assign(refs.size(), {});
    second_moments_.assign(refs.size(), {});
  }
  ++step_count_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double correction1 = 1.0 - std::pow(b1, static_cast<double>(step_count_));
  const double correction2 = 1.0 - std::pow(b2, static_cast<double>(step_count_));
  const double lr = options_.learning_rate;
  const double eps = options_.epsilon;
  const auto wd = static_cast<float>(options_.weight_decay);

  for (std::size_t i = 0; i < refs.size(); ++i) {
    auto values = refs[i].value->flat();
    auto grads = refs[i].grad->flat();
    auto& m = first_moments_[i];
    auto& v = second_moments_[i];
    if (m.size() != values.size()) {
      m.assign(values.size(), 0.0f);
      v.assign(values.size(), 0.0f);
    }
    for (std::size_t j = 0; j < values.size(); ++j) {
      const float g = grads[j] + wd * values[j];
      m[j] = static_cast<float>(b1 * m[j] + (1.0 - b1) * g);
      v[j] = static_cast<float>(b2 * v[j] + (1.0 - b2) * g * g);
      const double m_hat = m[j] / correction1;
      const double v_hat = v[j] / correction2;
      values[j] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + eps));
    }
  }
}

void Adam::reset() {
  first_moments_.clear();
  second_moments_.clear();
  step_count_ = 0;
}

}  // namespace mach::nn
