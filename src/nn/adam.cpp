#include "nn/adam.h"

#include <cmath>

#include "tensor/kernels/kernels.h"

namespace mach::nn {

void Adam::step(Sequential& model) {
  const auto& refs = model.param_refs();
  if (first_moments_.size() != refs.size()) {
    first_moments_.assign(refs.size(), {});
    second_moments_.assign(refs.size(), {});
  }
  ++step_count_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double correction1 = 1.0 - std::pow(b1, static_cast<double>(step_count_));
  const double correction2 = 1.0 - std::pow(b2, static_cast<double>(step_count_));
  const double lr = options_.learning_rate;
  const double eps = options_.epsilon;
  const auto wd = static_cast<float>(options_.weight_decay);

  for (std::size_t i = 0; i < refs.size(); ++i) {
    auto values = refs[i].value->flat();
    auto grads = refs[i].grad->flat();
    auto& m = first_moments_[i];
    auto& v = second_moments_[i];
    if (m.size() != values.size()) {
      m.assign(values.size(), 0.0f);
      v.assign(values.size(), 0.0f);
    }
    tensor::kernels::adam_step(values.size(), lr, b1, b2, correction1,
                               correction2, eps, wd, grads.data(), m.data(),
                               v.data(), values.data());
  }
}

void Adam::reset() {
  first_moments_.clear();
  second_moments_.clear();
  step_count_ = 0;
}

}  // namespace mach::nn
