// Sequential model with a softmax cross-entropy head, plus flat-parameter
// accessors used by the federated aggregation code.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/layer.h"

namespace mach::nn {

/// Result of a single forward/backward pass over one minibatch.
struct StepStats {
  double loss = 0.0;
  std::size_t correct = 0;
  std::size_t batch_size = 0;
  /// Squared L2 norm of the concatenated parameter gradient — the observable
  /// the paper's statistical/MACH samplers consume (Assumption 3's ||g||^2).
  double grad_squared_norm = 0.0;
};

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) noexcept = default;
  Sequential& operator=(Sequential&&) noexcept = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// He-initialises every parameterised layer.
  void init_params(common::Rng& rng);

  /// Propagates training/eval mode to every layer (Dropout etc.).
  /// forward_backward() switches to training mode, evaluate() to eval mode;
  /// call this only for custom loops using forward() directly.
  void set_training(bool training);

  /// Forward pass; returns the logits (valid until the next forward).
  const tensor::Tensor& forward(const tensor::Tensor& input);

  /// Forward + loss + backward; gradients are left in the layers' grad
  /// tensors for the optimiser. Labels are class indices.
  StepStats forward_backward(const tensor::Tensor& input, std::span<const int> labels);

  /// Loss/accuracy evaluation without gradient computation.
  StepStats evaluate(const tensor::Tensor& input, std::span<const int> labels);

  /// All parameter handles across layers, in layer order.
  std::vector<ParamRef> params();

  /// Cached parameter handles (built once, invalidated by add()). The hot
  /// path — forward_backward's grad-norm reduction and the optimiser steps —
  /// uses this instead of params() so steady-state training allocates
  /// nothing.
  const std::vector<ParamRef>& param_refs();

  /// Sum of scratch-arena grow events across layers. Flat once training is
  /// warm; the allocation test asserts this.
  std::size_t scratch_grow_events() const;

  /// Total number of scalar parameters.
  std::size_t num_parameters();

  /// Copies all parameters into one flat vector (layer order).
  std::vector<float> get_parameters();
  /// Restores parameters from a flat vector produced by get_parameters().
  void set_parameters(std::span<const float> flat);
  /// Copies all gradients into one flat vector (layer order).
  std::vector<float> get_gradients();

  std::size_t num_layers() const noexcept { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<ParamRef> cached_param_refs_;
  bool param_refs_valid_ = false;
  tensor::Tensor probs_;
  tensor::Tensor grad_logits_;
};

}  // namespace mach::nn
