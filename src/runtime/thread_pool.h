// Deterministic fixed-size thread pool for the simulator's fan-out phases.
//
// Design constraints (why this is not a generic executor):
//   * Fixed worker count, no work stealing. parallel_for() statically
//     partitions the index range into at most num_workers() contiguous
//     slices; slice k carries the slot id k. Which OS thread runs a slice is
//     scheduler-dependent, but the index→slot mapping is a pure function of
//     (range, worker count) — so any per-slot state (e.g. a model replica in
//     runtime::ModelReplicaPool) is touched by exactly one slice per section
//     and results can be reduced in index order, independent of timing.
//   * The caller blocks until the section completes; sections never overlap,
//     so one task queue and one in-flight callable suffice.
//   * Nested sections are rejected: calling parallel_for() from inside a
//     worker throws std::logic_error instead of deadlocking.
//   * The first exception a slice throws is captured and rethrown on the
//     calling thread after every slice has finished (remaining slices still
//     run; the section always joins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mach::runtime {

class ThreadPool {
 public:
  /// Spawns `workers` (>= 1) persistent threads. Throws std::invalid_argument
  /// on zero (resolve the 0 = hardware_concurrency convention with
  /// resolve_threads() first).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const noexcept { return threads_.size(); }

  /// Invoked as fn(index, slot): `index` walks [begin, end), `slot` is the
  /// id of the contiguous slice the index belongs to (0 <= slot <
  /// num_workers()). Blocks until every index has run; rethrows the first
  /// exception thrown by fn. Throws std::logic_error when called from
  /// inside a pool worker (nested sections are not supported).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t index, std::size_t slot)>& fn);

  /// True when the calling thread is a worker of *any* ThreadPool.
  static bool inside_worker() noexcept;

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t slot = 0;
  };

  void worker_loop();
  void run_task(const Task& task);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable section_done_;
  std::deque<Task> queue_;
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t unfinished_ = 0;       // slices still queued or running
  std::exception_ptr first_error_;   // first exception of the active section
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace mach::runtime
