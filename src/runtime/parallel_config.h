// Degree-of-parallelism knob for the runtime subsystem.
//
// The simulator's device-training and evaluation fan-out is gated on one
// number: `threads == 1` keeps the classic single-model serial path,
// `threads >= 2` dispatches across that many worker replicas, and
// `threads == 0` asks for one worker per hardware thread. Whatever the
// value, results are bitwise identical (see thread_pool.h for the
// determinism contract) — the knob trades wall-clock only.
#pragma once

#include <cstddef>
#include <thread>

namespace mach::runtime {

struct ParallelConfig {
  /// Worker count: 1 = serial path (default), 0 = hardware_concurrency.
  std::size_t threads = 1;
};

/// Effective worker count for a config (resolves 0 to the hardware thread
/// count, falling back to 1 when the runtime cannot report it).
inline std::size_t resolve_threads(const ParallelConfig& config) noexcept {
  if (config.threads != 0) return config.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace mach::runtime
