#include "runtime/worker_context.h"

#include <stdexcept>

namespace mach::runtime {

ModelReplicaPool::ModelReplicaPool(const ModelBuilder& build, std::size_t slots) {
  if (slots == 0) throw std::invalid_argument("ModelReplicaPool: zero slots");
  if (!build) throw std::invalid_argument("ModelReplicaPool: empty model builder");
  replicas_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    replicas_.push_back(Replica{build(), 0});
  }
}

nn::Sequential& ModelReplicaPool::synced_model(std::size_t slot) {
  if (published_ == nullptr) {
    throw std::logic_error("ModelReplicaPool: synced_model before publish");
  }
  Replica& replica = replicas_[slot];
  if (replica.seen_generation != generation_) {
    replica.model.set_parameters(*published_);
    replica.seen_generation = generation_;
  }
  return replica.model;
}

}  // namespace mach::runtime
