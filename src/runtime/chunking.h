// Fixed-size chunking of an index range [0, total).
//
// Both evaluation paths (test-set accuracy/loss and the confusion matrix)
// walk the test split in contiguous chunks and gather each chunk into one
// batch; these helpers are the single source of that chunk geometry, shared
// by the serial loops and the thread-pool dispatch so the two paths cannot
// drift apart.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace mach::runtime {

/// Half-open index range of one chunk.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const noexcept { return end - begin; }
};

/// Number of chunks covering [0, total) at the given chunk size.
inline std::size_t num_chunks(std::size_t total, std::size_t chunk_size) noexcept {
  return chunk_size == 0 ? 0 : (total + chunk_size - 1) / chunk_size;
}

/// The chunk_index-th chunk of [0, total); the last chunk may be short.
inline ChunkRange chunk_range(std::size_t chunk_index, std::size_t total,
                              std::size_t chunk_size) noexcept {
  const std::size_t begin = std::min(chunk_index * chunk_size, total);
  return ChunkRange{begin, std::min(begin + chunk_size, total)};
}

/// Fills `indices` with range.begin .. range.end-1 (the gather pattern the
/// evaluation paths share). Reuses the vector's capacity.
inline void fill_iota(std::vector<std::size_t>& indices, ChunkRange range) {
  indices.resize(range.size());
  for (std::size_t i = range.begin; i < range.end; ++i) {
    indices[i - range.begin] = i;
  }
}

}  // namespace mach::runtime
