// Per-slot model replicas for parallel sections.
//
// The simulator historically reused ONE scratch nn::Sequential for every
// device (swapping flat parameter vectors in and out). Under the thread
// pool each slice needs its own scratch model — forward/backward scribbles
// on layer activations — so this pool builds one structurally identical
// replica per slot from the same factory the simulator's own model came
// from. Replicas are never He-initialised: callers always set_parameters()
// before use (directly for device training, or lazily via synced_model()
// for evaluation sharding), so a replica's compute is bit-identical to the
// serial scratch model's.
//
// Thread-safety contract: publish() runs on the coordinating thread strictly
// between parallel sections; synced_model(slot)/model(slot) are called with
// distinct slots by distinct slices inside a section. The ThreadPool's queue
// mutex orders publish() before any worker reads, so no further
// synchronisation is needed here.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/model.h"

namespace mach::runtime {

/// Builds one fresh untrained model (mirrors hfl::ModelFactory without
/// depending on the hfl layer).
using ModelBuilder = std::function<nn::Sequential()>;

class ModelReplicaPool {
 public:
  /// Builds `slots` replicas up front (>= 1).
  ModelReplicaPool(const ModelBuilder& build, std::size_t slots);

  std::size_t size() const noexcept { return replicas_.size(); }

  /// Publishes the flat parameter vector every subsequent synced_model()
  /// call must see. `params` is borrowed: it must outlive the sections run
  /// against it and stay unchanged while they run.
  void publish(const std::vector<float>* params) noexcept {
    published_ = params;
    ++generation_;
  }

  /// The slot's replica, parameters lazily synced to the published vector
  /// (a replica that already saw this publish() generation is returned
  /// as-is, so repeated sections against the same parameters pay one copy
  /// per slot in total).
  nn::Sequential& synced_model(std::size_t slot);

  /// The slot's replica untouched — for callers that set parameters
  /// themselves (device training sets the edge model per device anyway).
  nn::Sequential& model(std::size_t slot) noexcept { return replicas_[slot].model; }

 private:
  struct Replica {
    nn::Sequential model;
    std::uint64_t seen_generation = 0;
  };

  std::vector<Replica> replicas_;
  const std::vector<float>* published_ = nullptr;
  std::uint64_t generation_ = 0;
};

}  // namespace mach::runtime
