#include "runtime/thread_pool.h"

#include <stdexcept>

namespace mach::runtime {

namespace {
/// Set for the lifetime of every pool worker thread; parallel_for consults
/// it to reject nested sections from any pool.
thread_local bool tls_inside_worker = false;
}  // namespace

bool ThreadPool::inside_worker() noexcept { return tls_inside_worker; }

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    throw std::invalid_argument("ThreadPool: zero workers (resolve_threads first)");
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::worker_loop() {
  tls_inside_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, and nothing left to drain
      task = queue_.front();
      queue_.pop_front();
    }
    run_task(task);
  }
}

void ThreadPool::run_task(const Task& task) {
  std::exception_ptr error;
  try {
    for (std::size_t i = task.begin; i < task.end; ++i) (*fn_)(i, task.slot);
  } catch (...) {
    error = std::current_exception();
  }
  bool section_finished = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !first_error_) first_error_ = error;
    section_finished = --unfinished_ == 0;
  }
  if (section_finished) section_done_.notify_all();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (tls_inside_worker) {
    throw std::logic_error("ThreadPool: nested parallel_for from a worker");
  }
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t slices = std::min(count, num_workers());
  {
    std::unique_lock<std::mutex> lock(mutex_);
    fn_ = &fn;
    first_error_ = nullptr;
    unfinished_ = slices;
    for (std::size_t k = 0; k < slices; ++k) {
      // Even static partition: slice k covers the half-open index range
      // [begin + k*count/slices, begin + (k+1)*count/slices).
      queue_.push_back(Task{begin + k * count / slices,
                            begin + (k + 1) * count / slices, k});
    }
  }
  work_available_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    section_done_.wait(lock, [this] { return unfinished_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
    fn_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace mach::runtime
