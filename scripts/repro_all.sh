#!/usr/bin/env bash
# One-shot reproduction: build, test, and regenerate every paper figure/table.
#
#   scripts/repro_all.sh [output_dir]
#
# Environment:
#   BENCH_SEEDS  repetitions per data point (default 2; the paper uses 3)
#   REPRO_FULL   1 = paper-scale populations and CNN models (hours on a laptop)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${1:-$repo_root/repro_out}"
mkdir -p "$out_dir"
cd "$repo_root"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee "$out_dir/tests.log"

cd "$out_dir"
"$repo_root/build/bench/fig3_time_to_accuracy" | tee fig3.log
"$repo_root/build/bench/fig4_edge_count"       | tee fig4.log
"$repo_root/build/bench/fig5_participation"    | tee fig5.log
"$repo_root/build/bench/table1_local_epochs"   | tee table1.log
"$repo_root/build/bench/ablation_mach" --task fmnist | tee ablation_mach.log
"$repo_root/build/bench/ablation_mobility" --task mnist | tee ablation_mobility.log
"$repo_root/build/bench/micro_substrate" --benchmark_min_time=0.2s | tee micro.log

echo "All outputs in $out_dir"
