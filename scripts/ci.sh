#!/usr/bin/env bash
# One-command verification pipeline: configure, build, run the tier-1 test
# suite, then smoke-check the telemetry tooling. Usable locally and from any
# CI runner:
#
#   ./scripts/ci.sh              # build into ./build (default)
#   BUILD_DIR=ci-build ./scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tier-1 tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== telemetry smoke =="
"$BUILD_DIR/tools/trace_summary" --help > /dev/null
trace="$(mktemp -t hfl_trace_XXXXXX.jsonl)"
trap 'rm -f "$trace"' EXIT
"$BUILD_DIR/examples/experiment_runner" \
  --devices 8 --edges 2 --steps 10 --local_epochs 2 --trace "$trace" > /dev/null
"$BUILD_DIR/tools/trace_summary" "$trace" > /dev/null

echo "CI OK"
