#!/usr/bin/env bash
# One-command verification pipeline: configure, build, run the tier-1 test
# suite, then smoke-check the telemetry tooling. Usable locally and from any
# CI runner:
#
#   ./scripts/ci.sh              # build into ./build (default)
#   BUILD_DIR=ci-build ./scripts/ci.sh
#   TSAN=0 ./scripts/ci.sh       # skip the ThreadSanitizer stage
#   UBSAN=0 ./scripts/ci.sh      # skip the UBSan kernels-equivalence stage
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tier-1 tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== telemetry smoke =="
"$BUILD_DIR/tools/trace_summary" --help > /dev/null
trace="$(mktemp -t hfl_trace_XXXXXX.jsonl)"
trap 'rm -f "$trace"' EXIT
"$BUILD_DIR/examples/experiment_runner" \
  --devices 8 --edges 2 --steps 10 --local_epochs 2 --trace "$trace" > /dev/null
"$BUILD_DIR/tools/trace_summary" "$trace" > /dev/null

echo "== kernels microbench smoke =="
# Tiny time budget: checks the bench runs end-to-end and that blocked and
# reference kernels agree exactly (nonzero exit on mismatch). The committed
# BENCH_kernels.json is produced by a full run (default --min_ms).
kernels_json="$(mktemp -t hfl_kernels_XXXXXX.json)"
trap 'rm -f "$trace" "$kernels_json"' EXIT
"$BUILD_DIR/bench/kernels" --min_ms 2 --out "$kernels_json" > /dev/null

echo "== span profiler smoke =="
# Deep-profiling path end to end: a profiled run must emit a Chrome trace
# and a status heartbeat, and trace_summary must classify and render both.
prof_json="$(mktemp -t hfl_prof_XXXXXX.json)"
status_json="$(mktemp -t hfl_status_XXXXXX.json)"
trap 'rm -f "$trace" "$kernels_json" "$prof_json" "$status_json"' EXIT
"$BUILD_DIR/examples/experiment_runner" \
  --devices 8 --edges 2 --steps 10 --local_epochs 2 \
  --profile "$prof_json" --status "$status_json" \
  | grep -q '^span profile written'
"$BUILD_DIR/tools/trace_summary" "$prof_json" | grep -q 'span profile summary'
"$BUILD_DIR/tools/trace_summary" "$prof_json" | grep -q 'round latency'
"$BUILD_DIR/tools/trace_summary" "$status_json" | grep -q 'status heartbeat'

echo "== bench perf gate (bench_diff) =="
# Self-comparison must always be clean (exit 0, zero deltas).
"$BUILD_DIR/tools/bench_diff" \
  --baseline BENCH_kernels.json --current BENCH_kernels.json > /dev/null
# Fresh microbench vs the committed baseline. The smoke run uses a tiny time
# budget and CI machines differ from the baseline's, so the threshold is
# generous — and on single-core containers (too noisy to gate) it only warns.
if [ "$(nproc 2>/dev/null || echo 1)" -le 1 ]; then
  "$BUILD_DIR/tools/bench_diff" \
    --baseline BENCH_kernels.json --current "$kernels_json" \
    --threshold_pct 30 \
    || echo "WARN: kernels regressed vs the committed baseline" \
            "(single-core container: warn-only, not gating)"
else
  "$BUILD_DIR/tools/bench_diff" \
    --baseline BENCH_kernels.json --current "$kernels_json" \
    --threshold_pct 30
fi

echo "== faults smoke =="
# End-to-end fault injection: a faulted run must complete, carry its fault
# history in the trace, and the summary tool must render it.
fault_trace="$(mktemp -t hfl_faults_XXXXXX.jsonl)"
trap 'rm -f "$trace" "$kernels_json" "$prof_json" "$status_json" "$fault_trace"' EXIT
"$BUILD_DIR/examples/experiment_runner" \
  --devices 8 --edges 2 --steps 10 --local_epochs 2 --trace "$fault_trace" \
  --faults 'dropout:p=0.2;straggler:p=0.3,delay=1.5,timeout=1;edge_outage:edge=0,from=2,to=4;cloud_loss:p=0.2;seed=5' \
  | grep -q '^faults:'
grep -q '"faults"' "$fault_trace"
"$BUILD_DIR/tools/trace_summary" "$fault_trace" | grep -q 'fault injection'

echo "== codec smoke + round-trip fuzz =="
# End-to-end transfer codecs: a lossy per-link run must complete, report its
# encoded-byte breakdown, record the codec spec and per-link ledger in the
# trace, and trace_summary must render the bytes-by-link table. Then the
# randomized round-trip suite re-runs with a raised iteration budget (fp32
# exact; bf16/int8/topk within their documented bounds).
codec_trace="$(mktemp -t hfl_codec_XXXXXX.jsonl)"
trap 'rm -f "$trace" "$kernels_json" "$prof_json" "$status_json" "$fault_trace" "$codec_trace"' EXIT
"$BUILD_DIR/examples/experiment_runner" \
  --devices 8 --edges 2 --steps 10 --local_epochs 2 --trace "$codec_trace" \
  --codec 'up=topk:k=0.05,down=bf16,probe=int8,edge_up=int8,cloud_down=bf16' \
  | grep -q '^encoded bytes:'
grep -q '"codec"' "$codec_trace"
grep -q '"comm"' "$codec_trace"
"$BUILD_DIR/tools/trace_summary" "$codec_trace" | grep -q 'communication bytes by link'
MACH_CODEC_FUZZ_ITERS=400 "$BUILD_DIR/tests/test_comm" --gtest_filter='CodecFuzz.*'

echo "== comm bench smoke =="
# Accuracy-vs-bytes bench end to end on a tiny horizon: must produce a JSON
# the perf gate can self-compare cleanly, and the int8 device-upload
# reduction assertion (>= 3.9x) must hold. The committed BENCH_comm.json is
# produced by a full default-horizon run.
comm_json="$(mktemp -t hfl_comm_XXXXXX.json)"
trap 'rm -f "$trace" "$kernels_json" "$prof_json" "$status_json" "$fault_trace" "$codec_trace" "$comm_json"' EXIT
"$BUILD_DIR/bench/comm" --task mnist --horizon 20 --out "$comm_json" > /dev/null
"$BUILD_DIR/tools/bench_diff" \
  --baseline "$comm_json" --current "$comm_json" > /dev/null

echo "== algorithm zoo smoke =="
# Sampler-x-scenario comparison end to end on a tiny grid: the bench must
# produce a ranked report trace_summary can render, and the perf gate must
# self-compare it cleanly (final_accuracy/reach_rate gate higher-is-better,
# steps_to_target/total_bytes lower-is-better). The committed BENCH_zoo.json
# is produced by a full default run (all zoo samplers x all four presets).
zoo_json="$(mktemp -t hfl_zoo_XXXXXX.json)"
trap 'rm -f "$trace" "$kernels_json" "$prof_json" "$status_json" "$fault_trace" "$codec_trace" "$comm_json" "$zoo_json"' EXIT
"$BUILD_DIR/bench/zoo" --task mnist --samplers mach,uniform \
  --scenarios metro,vehicular --horizon 20 --out "$zoo_json" > /dev/null
"$BUILD_DIR/tools/trace_summary" "$zoo_json" | grep -q 'algorithm ranking'
"$BUILD_DIR/tools/bench_diff" \
  --baseline "$zoo_json" --current "$zoo_json" > /dev/null
# The committed full-grid report must stay parseable and gateable.
"$BUILD_DIR/tools/bench_diff" \
  --baseline BENCH_zoo.json --current BENCH_zoo.json > /dev/null

echo "== scenario flag smoke =="
# --scenario composes with the rest of the CLI and rejects bad specs.
"$BUILD_DIR/examples/experiment_runner" \
  --devices 8 --edges 2 --steps 6 --local_epochs 1 \
  --sampler churn_aware --scenario 'vehicular:stations=16' \
  | grep -q 'scenario=vehicular:stations=16'
if "$BUILD_DIR/examples/experiment_runner" --scenario bogus --steps 2 \
  > /dev/null 2>&1; then
  echo "unknown scenario preset was expected to fail"; exit 1
fi

echo "== scale smoke (10k devices, RSS ceiling) =="
# Million-device engine end to end at CI scale: a 10k-device sweep must run
# sub-second rounds inside the fixed per-device memory budget and a 512 MiB
# process RSS ceiling, and trace_summary must render the result. The
# committed BENCH_scale.json is produced by the full default sweep (to 1M).
scale_json="$(mktemp -t hfl_scale_XXXXXX.json)"
trap 'rm -f "$trace" "$kernels_json" "$prof_json" "$status_json" "$fault_trace" "$codec_trace" "$comm_json" "$zoo_json" "$scale_json"' EXIT
"$BUILD_DIR/bench/scale" --devices 10000 --edges 100 --rounds 2 \
  --rss_ceiling_mb 512 --out "$scale_json" > /dev/null
"$BUILD_DIR/tools/trace_summary" "$scale_json" | grep -q 'worst round p95'
"$BUILD_DIR/tools/bench_diff" \
  --baseline "$scale_json" --current "$scale_json" > /dev/null
# Fresh smoke vs the committed full-sweep baseline: only the shared 10k x 100
# case matches; wall-time/RSS gate with generous slack for machine variance,
# warn-only on single-core containers (too noisy to gate).
if [ "$(nproc 2>/dev/null || echo 1)" -le 1 ]; then
  "$BUILD_DIR/tools/bench_diff" \
    --baseline BENCH_scale.json --current "$scale_json" \
    --threshold_pct 50 \
    || echo "WARN: scale bench regressed vs the committed baseline" \
            "(single-core container: warn-only, not gating)"
else
  "$BUILD_DIR/tools/bench_diff" \
    --baseline BENCH_scale.json --current "$scale_json" \
    --threshold_pct 50
fi

echo "== crash-resume smoke =="
# Kill-and-resume end-to-end: a fixed-seed run SIGKILLs itself right after a
# mid-run snapshot becomes durable, then a resumed run (at a different thread
# count) must reproduce the uninterrupted reference CSV byte for byte and
# leave checkpoint markers in the trace.
ckpt_dir="$(mktemp -d -t hfl_ckpt_XXXXXX)"
trap 'rm -f "$trace" "$kernels_json" "$prof_json" "$status_json" "$fault_trace" "$codec_trace" "$comm_json" "$zoo_json" "$scale_json"; rm -rf "$ckpt_dir"' EXIT
resume_args=(--task mnist --devices 8 --edges 2 --steps 12 --local_epochs 2 --seed 11)
"$BUILD_DIR/examples/experiment_runner" "${resume_args[@]}" --threads 1 \
  --csv "$ckpt_dir/ref.csv" --trace "$ckpt_dir/ref.jsonl" > /dev/null
if "$BUILD_DIR/examples/experiment_runner" "${resume_args[@]}" --threads 1 \
  --csv "$ckpt_dir/run.csv" --trace "$ckpt_dir/run.jsonl" \
  --checkpoint_every 3 --checkpoint_dir "$ckpt_dir/snaps" \
  --kill_at_step 6 > /dev/null 2>&1; then
  echo "kill_at_step run was expected to SIGKILL itself"; exit 1
fi
"$BUILD_DIR/examples/experiment_runner" "${resume_args[@]}" --threads 2 \
  --csv "$ckpt_dir/run.csv" --trace "$ckpt_dir/run.jsonl" \
  --checkpoint_every 3 --checkpoint_dir "$ckpt_dir/snaps" --resume \
  | grep -q '^resuming from'
cmp "$ckpt_dir/ref.csv" "$ckpt_dir/run.csv"
grep -q '"event":"checkpoint"' "$ckpt_dir/run.jsonl"
"$BUILD_DIR/tools/trace_summary" "$ckpt_dir/run.jsonl" | grep -q 'checkpointed run'

echo "== sweep orchestrator smoke =="
# Self-healing sweep end to end: a 6-point sweep where one injected config
# hangs forever must finish with the five healthy points done and the hung
# config watchdog-killed twice then quarantined — reported via exit code 1
# and a journaled failure history the report renderer surfaces.
sweep_dir="$(mktemp -d -t hfl_sweep_XXXXXX)"
trap 'rm -f "$trace" "$kernels_json" "$prof_json" "$status_json" "$fault_trace" "$codec_trace" "$comm_json" "$zoo_json" "$scale_json"; rm -rf "$ckpt_dir" "$sweep_dir"' EXIT
cat > "$sweep_dir/spec.json" <<'SPEC'
{
  "name": "ci_smoke",
  "defaults": {"task": "mnist", "devices": 8, "edges": 2, "steps": 6,
               "local_epochs": 1, "participation": 0.5},
  "grid": {"seed": [1, 2, 3, 4, 5]},
  "points": [{"seed": 6, "steps": 40, "hang_at_step": 1}]
}
SPEC
sweep_status=0
"$BUILD_DIR/tools/sweep_runner" --spec "$sweep_dir/spec.json" \
  --out "$sweep_dir/out" --parallel 2 --watchdog 2 --max_attempts 2 \
  --backoff_base 0.1 > /dev/null || sweep_status=$?
if [ "$sweep_status" -ne 1 ]; then
  echo "sweep with a hanging config must exit 1 (quarantined), got $sweep_status"
  exit 1
fi
grep -q '"outcome":"quarantined"' "$sweep_dir/out/report.json"
grep -q 'watchdog: heartbeat made no progress' "$sweep_dir/out/report.json"
"$BUILD_DIR/tools/trace_summary" "$sweep_dir/out/report.json" \
  | grep -q 'sweep report'
# Rerunning a finished sweep relaunches nothing and reproduces the report
# byte for byte (the exactly-once property CI can check cheaply).
cp "$sweep_dir/out/report.json" "$sweep_dir/report.before"
"$BUILD_DIR/tools/sweep_runner" --spec "$sweep_dir/spec.json" \
  --out "$sweep_dir/out" --watchdog 2 --max_attempts 2 > /dev/null \
  || true  # still exits 1: the quarantined point stays quarantined
cmp "$sweep_dir/report.before" "$sweep_dir/out/report.json"

if [ "${UBSAN:-1}" != "0" ]; then
  # Undefined-behaviour check over the kernel layer: a separate UBSan build
  # running the blocked-vs-reference equivalence suite (pointer arithmetic,
  # masked edge tiles and the packed-panel indexing are the risky parts),
  # plus the checkpoint suite (byte-codec casts, CRC table indexing and the
  # raw-byte RNG state round-trips are the risky parts), plus the comm suite
  # (float<->bits bit_casts, wire byte packing and int8 narrowing are the
  # risky parts), plus the sampling + scale suites (Fenwick node index
  # arithmetic, alias-bucket uniform splitting and the hash-based synthetic
  # gradient mixing are the risky parts; test_sampling now also carries the
  # whole-registry conformance suite, so every zoo sampler's probability
  # arithmetic runs sanitized), plus the mobility suite (the scenario spec
  # parser's from_chars walking and its fuzz sweep are the risky parts),
  # plus the sweep suite with a raised fuzz budget (the spec parser's strict
  # validation layers, the journal's CRC framing / torn-tail byte walking,
  # and the orchestrator's waitpid status decoding are the risky parts; the
  # e2e tests fork UBSan-built child binaries, so the engine's drain/hang
  # harness paths run sanitized too).
  echo "== undefined behaviour sanitizer (kernels + faults + ckpt + comm + sampling + mobility + scale + sweep) =="
  UBSAN_DIR="${UBSAN_DIR:-${BUILD_DIR}-ubsan}"
  cmake -B "$UBSAN_DIR" -S . \
    -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"
  cmake --build "$UBSAN_DIR" -j "$JOBS" --target test_tensor test_fault test_ckpt test_comm test_sampling test_mobility test_scale test_sweep
  "$UBSAN_DIR/tests/test_tensor"
  "$UBSAN_DIR/tests/test_fault"
  "$UBSAN_DIR/tests/test_ckpt"
  "$UBSAN_DIR/tests/test_comm"
  "$UBSAN_DIR/tests/test_sampling"
  "$UBSAN_DIR/tests/test_mobility"
  "$UBSAN_DIR/tests/test_scale"
  MACH_SWEEP_FUZZ_ITERS=1500 "$UBSAN_DIR/tests/test_sweep"
fi

if [ "${TSAN:-1}" != "0" ]; then
  # Data-race check over the runtime subsystem: a separate TSan build of the
  # thread-pool unit suite plus the parallel-determinism integration test
  # (the only paths that run worker threads). Filtered rather than the full
  # suite because TSan's ~10x slowdown would dominate CI otherwise.
  echo "== thread sanitizer =="
  TSAN_DIR="${TSAN_DIR:-${BUILD_DIR}-tsan}"
  cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$TSAN_DIR" -j "$JOBS" --target test_runtime test_hfl test_fault test_obs test_comm test_sampling test_scale
  "$TSAN_DIR/tests/test_runtime"
  "$TSAN_DIR/tests/test_hfl" --gtest_filter='ParallelDeterminism.*:ProfilerIntegration.*'
  # Every registered sampler driven through real 2- and 4-worker simulator
  # runs: samplers are coordinator-only by contract; TSan proves none of the
  # zoo's per-device state is touched from worker threads.
  "$TSAN_DIR/tests/test_sampling" --gtest_filter='*RunsBitwiseIdenticalAcrossThreadCounts*'
  # The fault replay/determinism suites drive 2- and 4-worker runs with the
  # injector active — the only new code reachable from worker threads.
  "$TSAN_DIR/tests/test_fault" --gtest_filter='FaultDeterminism.*:FailureReplay.*'
  # Span profiler: per-track rings written from worker threads, merged at the
  # barrier — the thread_local binding and merge must be race-free.
  "$TSAN_DIR/tests/test_obs" --gtest_filter='SpanProfiler.*'
  # Lossy-codec runs at 2 and 4 workers: transcodes are coordinator-only by
  # design; TSan proves no codec state is touched from worker threads.
  "$TSAN_DIR/tests/test_comm" --gtest_filter='CommIntegration.*'
  # Scale engine determinism/resume suite: single-threaded by design — TSan
  # proves nothing in the million-device round loop spawns hidden threads.
  "$TSAN_DIR/tests/test_scale"
fi

echo "CI OK"
