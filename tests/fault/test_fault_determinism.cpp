// The fault layer's two determinism contracts, end to end through the
// engine:
//   1. with a FaultSchedule active, the same schedule + seed produces
//      bitwise-identical runs at 1/2/4 worker threads — final parameters,
//      metrics CSV, fault counters and the whole canonicalised trace;
//   2. with an all-zero schedule, every artifact is bitwise identical to a
//      run that never touched the fault layer at all.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "fault/schedule.h"
#include "hfl/experiment.h"
#include "hfl/trace_canon.h"
#include "obs/jsonl_writer.h"

namespace mach::hfl {
namespace {

using mach::test::canonical_trace;
using mach::test::slurp;

ExperimentConfig fault_scenario(std::uint64_t seed) {
  ExperimentConfig config = ExperimentConfig::smoke(data::TaskKind::MnistLike);
  config.num_devices = 8;
  config.num_edges = 2;
  config.train_per_device = 30;
  config.test_examples = 300;  // > one eval chunk so evaluation shards
  config.mlp_hidden = 16;
  config.hfl.local_epochs = 2;
  config.hfl.participation = 0.6;
  config.horizon = 8;
  config.num_stations = 6;
  config.num_hotspots = 2;
  return config.with_seed(seed);
}

fault::FaultSchedule busy_schedule() {
  return fault::FaultSchedule::parse(
      "dropout:p=0.25;straggler:p=0.3,delay=1.5,timeout=1,backoff=0.5,"
      "retries=2;edge_timeout:edge=1,timeout=0.5;"
      "edge_outage:edge=0,from=2,to=4;cloud_loss:p=0.3;seed=77");
}

struct RunArtifacts {
  std::vector<float> params;
  std::string csv;
  std::vector<std::string> trace;
};

RunArtifacts run_with(const ExperimentArtifacts& artifacts,
                      const ExperimentConfig& config,
                      const fault::FaultSchedule& faults, std::size_t threads,
                      const std::string& sampler_name = "mach") {
  HflOptions options = config.hfl;
  options.seed = config.seed;
  options.parallel.threads = threads;
  options.faults = faults;
  HflSimulator simulator(artifacts.train, artifacts.test, artifacts.partition,
                         artifacts.schedule, make_model_factory(config),
                         options);

  std::ostringstream trace_stream;
  obs::JsonlTraceOptions trace_options;
  trace_options.device_events = true;
  obs::JsonlTraceWriter trace(trace_stream, trace_options);
  simulator.set_observer(&trace);

  auto sampler = core::make_sampler(sampler_name);
  const MetricsRecorder metrics = simulator.run(*sampler, config.horizon);

  RunArtifacts result;
  result.params = simulator.global_parameters();
  const std::string csv_path = ::testing::TempDir() + "fault_determinism_" +
                               std::to_string(threads) + ".csv";
  EXPECT_TRUE(metrics.write_csv(csv_path));
  result.csv = slurp(csv_path);
  std::remove(csv_path.c_str());
  simulator.set_observer(nullptr);
  result.trace = canonical_trace(trace_stream.str());
  return result;
}

TEST(FaultDeterminism, SameScheduleReplaysAtAnyThreadCount) {
  const ExperimentConfig config = fault_scenario(51);
  const ExperimentArtifacts artifacts = build_experiment(config);
  const fault::FaultSchedule schedule = busy_schedule();

  const RunArtifacts serial = run_with(artifacts, config, schedule, 1);
  ASSERT_FALSE(serial.params.empty());
  ASSERT_GE(serial.trace.size(), 4u);

  // The schedule actually fired: some trace line carries a fault payload.
  bool fault_payload_seen = false;
  for (const std::string& event : serial.trace) {
    if (event.find("\"faults\":{") != std::string::npos) {
      fault_payload_seen = true;
      break;
    }
  }
  ASSERT_TRUE(fault_payload_seen) << "schedule never fired; test is vacuous";

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunArtifacts parallel = run_with(artifacts, config, schedule, threads);
    EXPECT_EQ(parallel.params, serial.params);  // element-exact, no tolerance
    EXPECT_EQ(parallel.csv, serial.csv);
    ASSERT_EQ(parallel.trace.size(), serial.trace.size());
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(parallel.trace[i], serial.trace[i]) << "event " << i;
    }
  }
}

TEST(FaultDeterminism, AllZeroScheduleIsBitwiseIdentity) {
  const ExperimentConfig config = fault_scenario(52);
  const ExperimentArtifacts artifacts = build_experiment(config);

  // Fault layer never constructed (the default HflOptions).
  const RunArtifacts plain =
      run_with(artifacts, config, fault::FaultSchedule{}, 1);

  // Fault layer constructed from a non-trivial but *inert* schedule: knobs
  // set, nothing can ever fire. Must take the identical code path — same
  // bytes in every artifact, including the run_end metrics snapshot (no
  // fault counters may appear).
  fault::FaultSchedule inert;
  inert.straggler.delay_mean = 42.0;     // inactive: p == 0
  inert.edge_timeouts.push_back({1, 0.5});  // inert without stragglers
  ASSERT_TRUE(inert.empty());
  const RunArtifacts gated = run_with(artifacts, config, inert, 1);

  EXPECT_EQ(gated.params, plain.params);
  EXPECT_EQ(gated.csv, plain.csv);
  ASSERT_EQ(gated.trace.size(), plain.trace.size());
  for (std::size_t i = 0; i < plain.trace.size(); ++i) {
    EXPECT_EQ(gated.trace[i], plain.trace[i]) << "event " << i;
  }
  for (const std::string& event : plain.trace) {
    EXPECT_EQ(event.find("fault"), std::string::npos)
        << "fault-free trace leaked a fault field: " << event;
  }
}

TEST(FaultDeterminism, FaultSeedChangesOnlyTheFaultHistory) {
  // Two schedules differing only in their pinned fault seed must sample the
  // same devices (the engine Bernoulli stream is untouched) while realising
  // different fault histories. Uniform sampler: its probabilities don't
  // adapt to the observed training, so the sampled sets stay comparable.
  const ExperimentConfig config = fault_scenario(53);
  const ExperimentArtifacts artifacts = build_experiment(config);
  fault::FaultSchedule a = fault::FaultSchedule::parse("dropout:p=0.4;seed=1");
  fault::FaultSchedule b = fault::FaultSchedule::parse("dropout:p=0.4;seed=2");

  const RunArtifacts run_a = run_with(artifacts, config, a, 1, "uniform");
  const RunArtifacts run_b = run_with(artifacts, config, b, 1, "uniform");

  // Same sampling decisions: every edge_agg line reports the same
  // num_sampled sequence...
  std::vector<std::string> sampled_a, sampled_b;
  const auto collect = [](const std::vector<std::string>& trace,
                          std::vector<std::string>& out) {
    for (const std::string& event : trace) {
      const std::size_t pos = event.find("\"num_sampled\":");
      if (pos != std::string::npos) {
        out.push_back(event.substr(pos, event.find(',', pos) - pos));
      }
    }
  };
  collect(run_a.trace, sampled_a);
  collect(run_b.trace, sampled_b);
  EXPECT_EQ(sampled_a, sampled_b);
  // ...while the realised runs differ (different survivors -> different
  // parameters).
  EXPECT_NE(run_a.params, run_b.params);
}

}  // namespace
}  // namespace mach::hfl
