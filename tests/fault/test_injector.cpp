// FaultInjector: decisions are pure functions of (seed, coordinates), the
// analytic arrival probability matches the realised fate frequencies, and
// the straggler retry ladder respects the per-edge timeout budget.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "fault/injector.h"
#include "fault/schedule.h"

namespace mach::fault {
namespace {

TEST(FaultInjector, DefaultConstructedIsDisabled) {
  const FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjector, EmptyScheduleIsDisabled) {
  const FaultInjector injector(FaultSchedule{}, 7);
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjector, DecisionsArePureFunctionsOfCoordinates) {
  const FaultSchedule schedule =
      FaultSchedule::parse("dropout:p=0.4;straggler:p=0.4,delay=2,timeout=1;"
                           "cloud_loss:p=0.3;seed=11");
  const FaultInjector a(schedule, 1);
  const FaultInjector b(schedule, 1);
  for (std::size_t t = 0; t < 20; ++t) {
    for (std::size_t edge = 0; edge < 3; ++edge) {
      for (std::uint32_t device = 0; device < 10; ++device) {
        const DeviceFaultDecision first = a.device_fate(t, edge, device);
        const DeviceFaultDecision second = b.device_fate(t, edge, device);
        EXPECT_EQ(first.fate, second.fate);
        EXPECT_EQ(first.arrived, second.arrived);
        EXPECT_EQ(first.retries, second.retries);
        EXPECT_EQ(first.delay_seconds, second.delay_seconds);
      }
      EXPECT_EQ(a.cloud_upload_lost(t, edge), b.cloud_upload_lost(t, edge));
    }
  }
}

TEST(FaultInjector, PinnedScheduleSeedOverridesRunSeed) {
  const FaultSchedule pinned = FaultSchedule::parse("dropout:p=0.5;seed=123");
  const FaultInjector run_a(pinned, 1);
  const FaultInjector run_b(pinned, 999);
  std::size_t agree = 0, total = 0;
  for (std::size_t t = 0; t < 50; ++t) {
    for (std::uint32_t device = 0; device < 8; ++device) {
      ++total;
      if (run_a.device_fate(t, 0, device).arrived ==
          run_b.device_fate(t, 0, device).arrived) {
        ++agree;
      }
    }
  }
  EXPECT_EQ(agree, total);  // run seed is irrelevant once the schedule pins one

  // Without a pinned seed, different run seeds give different histories.
  const FaultSchedule derived = FaultSchedule::parse("dropout:p=0.5");
  const FaultInjector derived_a(derived, 1);
  const FaultInjector derived_b(derived, 999);
  agree = 0;
  for (std::size_t t = 0; t < 50; ++t) {
    for (std::uint32_t device = 0; device < 8; ++device) {
      if (derived_a.device_fate(t, 0, device).arrived ==
          derived_b.device_fate(t, 0, device).arrived) {
        ++agree;
      }
    }
  }
  EXPECT_LT(agree, total);
}

TEST(FaultInjector, DropoutTargetsOnlyListedDevices) {
  const FaultSchedule schedule =
      FaultSchedule::parse("dropout:p=1.0,devices=2/5;seed=3");
  const FaultInjector injector(schedule, 1);
  for (std::size_t t = 0; t < 10; ++t) {
    for (std::uint32_t device = 0; device < 8; ++device) {
      const bool targeted = device == 2 || device == 5;
      const DeviceFaultDecision decision = injector.device_fate(t, 0, device);
      EXPECT_EQ(decision.fate == DeviceFate::Dropped, targeted)
          << "t=" << t << " device=" << device;
      EXPECT_DOUBLE_EQ(injector.arrival_probability(0, device),
                       targeted ? 0.0 : 1.0);
    }
  }
}

TEST(FaultInjector, EdgeOutageWindowsAreHalfOpen) {
  const FaultSchedule schedule =
      FaultSchedule::parse("edge_outage:edge=1,from=3,to=6");
  const FaultInjector injector(schedule, 1);
  EXPECT_TRUE(injector.enabled());
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_EQ(injector.edge_out(t, 1), t >= 3 && t < 6) << "t=" << t;
    EXPECT_FALSE(injector.edge_out(t, 0));
  }
}

TEST(FaultInjector, StragglerRetriesRespectTheTimeoutBudget) {
  // One retry halves the delay once: arrival iff initial <= 2, so direct
  // arrivals (~39%), retried arrivals (~24%) and timeouts (~37%) all occur
  // comfortably within 200 trials.
  const FaultSchedule schedule = FaultSchedule::parse(
      "straggler:p=1,delay=2,timeout=1,backoff=0.5,retries=1;seed=21");
  const FaultInjector injector(schedule, 1);
  std::size_t arrivals = 0, timeouts = 0, retried_arrivals = 0;
  for (std::size_t t = 0; t < 200; ++t) {
    const DeviceFaultDecision decision = injector.device_fate(t, 0, 0);
    if (decision.arrived) {
      ASSERT_EQ(decision.fate, DeviceFate::StragglerArrived);
      // The accepted attempt fits the budget...
      EXPECT_LE(decision.delay_seconds, 1.0);
      if (decision.retries > 0) {
        ++retried_arrivals;
        // ...and every earlier attempt missed it (backoff halves the delay,
        // so the previous attempt was delay * 2 > timeout).
        EXPECT_GT(decision.delay_seconds * 2.0, 1.0);
      }
      // Total virtual time is the whole ladder, not just the last rung.
      EXPECT_GE(decision.virtual_seconds, decision.delay_seconds);
      ++arrivals;
    } else {
      ASSERT_EQ(decision.fate, DeviceFate::StragglerTimedOut);
      EXPECT_EQ(decision.retries, 1u);
      EXPECT_GT(decision.delay_seconds, 1.0);  // final attempt still late
      ++timeouts;
    }
  }
  EXPECT_GT(arrivals, 0u);
  EXPECT_GT(timeouts, 0u);
  EXPECT_GT(retried_arrivals, 0u);
}

TEST(FaultInjector, PerEdgeTimeoutOverrides) {
  const FaultSchedule schedule = FaultSchedule::parse(
      "straggler:p=1,delay=1,timeout=2,backoff=0.5,retries=0;"
      "edge_timeout:edge=1,timeout=0.01;seed=5");
  const FaultInjector injector(schedule, 1);
  EXPECT_DOUBLE_EQ(injector.edge_timeout(0), 2.0);
  EXPECT_DOUBLE_EQ(injector.edge_timeout(1), 0.01);
  // A tight budget makes arrival much rarer on the overridden edge.
  EXPECT_GT(injector.arrival_probability(0, 0),
            injector.arrival_probability(1, 0));
  std::size_t arrive_default = 0, arrive_tight = 0;
  for (std::size_t t = 0; t < 300; ++t) {
    arrive_default += injector.device_fate(t, 0, 0).arrived ? 1 : 0;
    arrive_tight += injector.device_fate(t, 1, 0).arrived ? 1 : 0;
  }
  EXPECT_GT(arrive_default, arrive_tight);
}

TEST(FaultInjector, ArrivalProbabilityMatchesRealisedFrequency) {
  // The HT correction divides by arrival_probability, so it must equal the
  // true per-event survival rate of device_fate. Monte Carlo over many
  // (t, device) coordinates; 3-sigma binomial tolerance.
  const FaultSchedule schedule = FaultSchedule::parse(
      "dropout:p=0.2;straggler:p=0.5,delay=1.5,timeout=1,backoff=0.5,"
      "retries=2;seed=17");
  const FaultInjector injector(schedule, 1);
  const double expected = injector.arrival_probability(0, 0);
  EXPECT_GT(expected, 0.0);
  EXPECT_LT(expected, 1.0);
  std::size_t arrived = 0;
  const std::size_t trials = 40000;
  for (std::size_t i = 0; i < trials; ++i) {
    // Spread over t so each trial uses a fresh hashed stream.
    if (injector.device_fate(i, 0, static_cast<std::uint32_t>(i % 64)).arrived) {
      ++arrived;
    }
  }
  const double realised = static_cast<double>(arrived) / static_cast<double>(trials);
  const double sigma =
      std::sqrt(expected * (1.0 - expected) / static_cast<double>(trials));
  EXPECT_NEAR(realised, expected, 3.0 * sigma)
      << "analytic " << expected << " vs realised " << realised;
}

TEST(FaultInjector, CloudLossMatchesItsProbability) {
  const FaultSchedule schedule = FaultSchedule::parse("cloud_loss:p=0.3;seed=29");
  const FaultInjector injector(schedule, 1);
  std::size_t lost = 0;
  const std::size_t trials = 20000;
  for (std::size_t t = 0; t < trials; ++t) {
    if (injector.cloud_upload_lost(t, t % 8)) ++lost;
  }
  const double realised = static_cast<double>(lost) / static_cast<double>(trials);
  const double sigma = std::sqrt(0.3 * 0.7 / static_cast<double>(trials));
  EXPECT_NEAR(realised, 0.3, 3.0 * sigma);

  // Probability zero never loses and never needs randomness.
  const FaultInjector quiet(FaultSchedule::parse("dropout:p=0.1"), 1);
  for (std::size_t t = 0; t < 50; ++t) {
    EXPECT_FALSE(quiet.cloud_upload_lost(t, 0));
  }
}

TEST(FaultInjector, DeviceAndCloudStreamsAreDisjoint) {
  // Same coordinates, different domains: histories must not correlate
  // perfectly (a shared stream would make them identical for p=0.5 rules).
  const FaultSchedule schedule =
      FaultSchedule::parse("dropout:p=0.5;cloud_loss:p=0.5;seed=31");
  const FaultInjector injector(schedule, 1);
  std::size_t agree = 0;
  const std::size_t trials = 400;
  for (std::size_t t = 0; t < trials; ++t) {
    const bool dropped = !injector.device_fate(t, 0, 0).arrived;
    if (dropped == injector.cloud_upload_lost(t, 0)) ++agree;
  }
  EXPECT_GT(agree, 0u);
  EXPECT_LT(agree, trials);
}

}  // namespace
}  // namespace mach::fault
