// FaultSchedule spec grammar: parsing, canonical round-trips, and the
// validation errors the CLI surfaces (bad device ids, overlapping outage
// windows, out-of-range probabilities, arrival-probability floor).
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/schedule.h"

namespace mach::fault {
namespace {

TEST(FaultSchedule, EmptySpecIsAllZero) {
  const FaultSchedule schedule = FaultSchedule::parse("");
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule, FaultSchedule{});
  EXPECT_EQ(schedule.to_string(), "");
}

TEST(FaultSchedule, WhitespaceAndEmptyClausesAreIgnored) {
  const FaultSchedule schedule = FaultSchedule::parse("  ; dropout: p=0.25 ;; ");
  EXPECT_FALSE(schedule.empty());
  EXPECT_DOUBLE_EQ(schedule.dropout.probability, 0.25);
}

TEST(FaultSchedule, ParsesEveryClauseKind) {
  const FaultSchedule schedule = FaultSchedule::parse(
      "dropout:p=0.1,devices=0/3/8-11;"
      "straggler:p=0.2,delay=2.0,timeout=1.5,backoff=0.5,retries=3;"
      "edge_timeout:edge=1,timeout=0.25;"
      "edge_outage:edge=0,from=10,to=20;"
      "cloud_loss:p=0.05;seed=7");
  EXPECT_DOUBLE_EQ(schedule.dropout.probability, 0.1);
  EXPECT_EQ(schedule.dropout.devices,
            (std::vector<std::uint32_t>{0, 3, 8, 9, 10, 11}));
  EXPECT_DOUBLE_EQ(schedule.straggler.probability, 0.2);
  EXPECT_DOUBLE_EQ(schedule.straggler.delay_mean, 2.0);
  EXPECT_DOUBLE_EQ(schedule.straggler.timeout, 1.5);
  EXPECT_DOUBLE_EQ(schedule.straggler.backoff, 0.5);
  EXPECT_EQ(schedule.straggler.max_retries, 3u);
  ASSERT_EQ(schedule.edge_timeouts.size(), 1u);
  EXPECT_EQ(schedule.edge_timeouts[0].edge, 1u);
  EXPECT_DOUBLE_EQ(schedule.edge_timeouts[0].timeout, 0.25);
  ASSERT_EQ(schedule.outages.size(), 1u);
  EXPECT_EQ(schedule.outages[0], (EdgeOutage{0, 10, 20}));
  EXPECT_DOUBLE_EQ(schedule.cloud_loss.probability, 0.05);
  EXPECT_EQ(schedule.seed, 7u);
}

TEST(FaultSchedule, ToStringRoundTrips) {
  const char* specs[] = {
      "dropout:p=0.1",
      "dropout:p=0.5,devices=1/4/6",
      "straggler:p=0.3,delay=2,timeout=1.5,backoff=0.5,retries=2",
      "dropout:p=0.1;cloud_loss:p=0.2;seed=99",
      "edge_outage:edge=2,from=0,to=5;edge_outage:edge=2,from=5,to=9",
  };
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    const FaultSchedule parsed = FaultSchedule::parse(spec);
    EXPECT_EQ(FaultSchedule::parse(parsed.to_string()), parsed);
  }
}

TEST(FaultSchedule, DeviceListDeduplicatesAndSorts) {
  const FaultSchedule schedule =
      FaultSchedule::parse("dropout:p=0.5,devices=7/2/2-4/3");
  EXPECT_EQ(schedule.dropout.devices, (std::vector<std::uint32_t>{2, 3, 4, 7}));
}

TEST(FaultSchedule, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus:p=0.1",                 // unknown clause
      "dropout",                     // clause without body
      "dropout:p",                   // missing value
      "dropout:p=nope",              // not a number
      "dropout:p=1.5",               // probability out of range
      "dropout:p=-0.1",              // negative probability
      "dropout:q=0.5",               // unknown key
      "dropout:p=0.1,devices=",      // empty device list entry
      "dropout:p=0.1,devices=a-b",   // bad device id
      "dropout:p=0.1,devices=9-3",   // reversed range
      "dropout:p=0.1;dropout:p=0.2", // duplicate clause
      "straggler:p=0.5,timeout=0",   // timeout must be > 0
      "straggler:p=0.5,delay=-1",    // delay must be > 0
      "straggler:p=0.5,retries=40",  // retries over the cap
      "edge_timeout:edge=0",         // missing timeout
      "edge_timeout:edge=0,timeout=1;edge_timeout:edge=0,timeout=2",  // dup edge
      "edge_outage:edge=0,from=5,to=5",  // empty window
      "edge_outage:edge=0,from=0,to=9;edge_outage:edge=0,from=4,to=12",  // overlap
      "cloud_loss:p=2",              // probability out of range
      "seed=x",                      // bad seed
      "seed=1;seed=2",               // duplicate seed
  };
  for (const char* spec : bad) {
    SCOPED_TRACE(spec);
    EXPECT_THROW(FaultSchedule::parse(spec), std::invalid_argument);
  }
}

TEST(FaultSchedule, ErrorsNameTheOffendingClause) {
  try {
    FaultSchedule::parse("edge_outage:edge=3,from=2,to=8;edge_outage:edge=3,from=7,to=9");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("overlapping windows"), std::string::npos) << message;
    EXPECT_NE(message.find("edge 3"), std::string::npos) << message;
  }
  try {
    FaultSchedule::parse("dropout:p=0.1,devices=5x");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("bad device id"), std::string::npos)
        << error.what();
  }
}

TEST(FaultSchedule, RejectsVanishingArrivalProbability) {
  // Near-certain dropout: HT weights 1/(q a) would explode on the rare
  // arrival.
  EXPECT_THROW(FaultSchedule::parse("dropout:p=0.9999999"),
               std::invalid_argument);
  // Certain straggling with a timeout the backoff ladder can never meet.
  EXPECT_THROW(
      FaultSchedule::parse(
          "straggler:p=1,delay=1e9,timeout=1e-9,backoff=1.0,retries=0"),
      std::invalid_argument);
  // High-but-sane rates pass; so does *certain* dropout (deterministically
  // dead devices never arrive, so no inverse weight is ever computed).
  EXPECT_NO_THROW(FaultSchedule::parse("dropout:p=0.9"));
  EXPECT_NO_THROW(FaultSchedule::parse("dropout:p=1"));
}

TEST(FaultSchedule, TopologyValidation) {
  const FaultSchedule schedule = FaultSchedule::parse(
      "dropout:p=0.1,devices=0/7;edge_timeout:edge=1,timeout=1;"
      "edge_outage:edge=1,from=0,to=4");
  EXPECT_NO_THROW(schedule.validate_topology(8, 2));
  EXPECT_THROW(schedule.validate_topology(7, 2), std::invalid_argument);  // device 7
  EXPECT_THROW(schedule.validate_topology(8, 1), std::invalid_argument);  // edge 1
}

TEST(FaultSchedule, EmptinessIgnoresInactiveKnobs) {
  // A straggler clause with p=0 never fires; edge_timeouts alone are inert.
  FaultSchedule schedule;
  schedule.straggler.delay_mean = 99.0;
  schedule.edge_timeouts.push_back({0, 0.5});
  EXPECT_TRUE(schedule.empty());
  schedule.outages.push_back({0, 0, 1});
  EXPECT_FALSE(schedule.empty());
}

}  // namespace
}  // namespace mach::fault
